"""CI smoke benchmarks: tiny inputs, every pipeline layer, fast enough to gate.

This file is what the ``bench-smoke`` CI job runs (with ``--benchmark-json``)
and compares against ``benchmarks/baseline.json`` via ``compare.py``.  The
sizes are deliberately small — the job exists to catch order-of-magnitude
performance regressions (an accidental O(n^2) loop, a lost cache), not to
measure scaling; the full-size suite in the sibling files does that.

Keep the set small and stable: every benchmark here must have a matching
entry in ``baseline.json``, and the baseline must be refreshed (locally,
``pytest benchmarks/test_bench_smoke.py --benchmark-json=benchmarks/baseline.json``)
whenever a benchmark is added or its workload changes.
"""

from __future__ import annotations

import numpy as np

from repro import LabelOracle, PointSet, active_classify, solve_passive
from repro.datasets.synthetic import planted_monotone, width_controlled
from repro.parallel import GridConfig, run_grid
from repro.poset.sparse import (
    dominance_pair_count,
    maximal_points_sparse,
    minimal_points_sparse,
)


def test_smoke_passive_flow(benchmark):
    """Passive optimum via min-cut on a small planted instance."""
    points = planted_monotone(400, 2, noise=0.1, rng=0)
    result = benchmark(lambda: solve_passive(points))
    benchmark.extra_info["optimal_error"] = result.optimal_error


def test_smoke_active_serial(benchmark):
    """Full active pipeline, serial path (workers=1)."""
    points = width_controlled(800, 4, noise=0.05, rng=0)
    hidden = points.with_hidden_labels()

    def job():
        return active_classify(hidden, LabelOracle(points), epsilon=1.0, rng=1)

    result = benchmark(job)
    benchmark.extra_info["probes"] = result.probing_cost


def test_smoke_active_parallel_path(benchmark):
    """Active pipeline through the chain-dispatch path (workers=2).

    Times the sharding/absorb/merge machinery itself on a small input; the
    point is catching overhead regressions in the parallel layer, not
    demonstrating speedup (see BENCH_parallel.json for that).
    """
    points = width_controlled(800, 4, noise=0.05, rng=0)
    hidden = points.with_hidden_labels()

    def job():
        return active_classify(hidden, LabelOracle(points), epsilon=1.0,
                               rng=1, workers=2)

    result = benchmark(job)
    benchmark.extra_info["probes"] = result.probing_cost


def test_smoke_passive_hasse(benchmark):
    """Passive optimum through the Hasse-reduced network (chain-structured)."""
    points = width_controlled(800, 4, noise=0.1, rng=0)

    def job():
        return solve_passive(points, use_hasse_reduction=True)

    result = benchmark(job)
    benchmark.extra_info["optimal_error"] = result.optimal_error


def test_smoke_poset_sparse_large(benchmark):
    """Sparse poset engine at n = 4096, d = 3: the memory-bounded hot path.

    Blockwise minimal/maximal extraction plus the order-pair count — one
    full O(d n^2) dominance sweep in O(block * n) memory.  Guards the
    per-dimension accumulation kernels against an accidental return to
    (rows, n, d) broadcast intermediates (a memory *and* time cliff).
    """
    gen = np.random.default_rng(0)
    points = PointSet(gen.uniform(size=(4096, 3)), [0] * 4096)

    def job():
        mins = minimal_points_sparse(points, block_size=512)
        maxs = maximal_points_sparse(points, block_size=512)
        pairs = dominance_pair_count(points, block_size=512)
        return len(mins), len(maxs), pairs

    num_min, num_max, pairs = benchmark(job)
    benchmark.extra_info["minimal"] = num_min
    benchmark.extra_info["maximal"] = num_max
    benchmark.extra_info["order_pairs"] = pairs


def _smoke_rows(n=200, seed=0):
    points = planted_monotone(n, 2, noise=0.1, rng=seed)
    result = active_classify(points.with_hidden_labels(), LabelOracle(points),
                             epsilon=1.0, rng=seed)
    return [{"n": n, "probes": result.probing_cost}]


def test_smoke_grid_fanout(benchmark):
    """Config-grid fan-out machinery (2 configs, 2 workers)."""
    configs = [
        GridConfig(name=f"smoke{i}", func=_smoke_rows, params={"seed": i})
        for i in range(2)
    ]

    def job():
        return run_grid(configs, workers=2)

    results = benchmark(job)
    assert all(r.ok for r in results)
