"""Shared configuration for the benchmark suite.

Every benchmark corresponds to a row of the experiment index in DESIGN.md
(and a paper-claim record in EXPERIMENTS.md).  Measured quantities beyond
wall-clock time — probe counts, error ratios, chain counts — are attached
to each benchmark's ``extra_info`` so they appear in pytest-benchmark's
output and JSON exports.

Run with ``--obs-metrics`` to additionally wrap every benchmark in a
:func:`repro.obs.metrics_session`; all counters and gauges the pipeline
emits (oracle probes, recursion depth, flow pushes, ...) land in
``extra_info`` under ``obs.*`` keys, so benchmark JSON carries the
theory-side quantities next to wall-clock.  The flag is off by default:
timing runs exercise the no-op recorder path, whose overhead the obs test
suite pins as negligible.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--obs-metrics", action="store_true", default=False,
        help="collect repro.obs counters per benchmark into extra_info",
    )


@pytest.fixture(autouse=True)
def _obs_metrics(request):
    """Opt-in per-benchmark metrics session feeding ``extra_info``."""
    if (not request.config.getoption("--obs-metrics")
            or "benchmark" not in request.fixturenames):
        yield None
        return
    from repro import obs

    benchmark = request.getfixturevalue("benchmark")
    with obs.metrics_session(name=request.node.name) as registry:
        yield registry
    snapshot = registry.snapshot()
    extra = {f"obs.{name}": value
             for name, value in snapshot["counters"].items()}
    extra.update({f"obs.{name}": value
                  for name, value in snapshot["gauges"].items()
                  if value is not None})
    benchmark.extra_info.update(extra)


def pytest_configure(config):
    """Keep the suite fast: several benchmarks run multi-second pipelines.

    One round per benchmark is enough for the claim-shaped quantities
    (probes, ratios, chain counts) recorded in ``extra_info``; wall-clock
    numbers remain indicative.  Command-line overrides still win.
    """
    if config.option.benchmark_min_rounds == 5:  # the plugin default
        config.option.benchmark_min_rounds = 1
    if config.option.benchmark_max_time == 1.0:  # the plugin default
        config.option.benchmark_max_time = 0.2
    if config.option.benchmark_warmup == "auto":
        config.option.benchmark_warmup = "off"


def pytest_collection_modifyitems(items):
    """Keep benchmark ordering stable: figures first, ablations last."""
    order = {
        "test_bench_figures": 0,
        "test_bench_passive": 1,
        "test_bench_active": 2,
        "test_bench_baselines": 3,
        "test_bench_lowerbound": 4,
        "test_bench_poset": 5,
        "test_bench_flow": 6,
        "test_bench_entity": 7,
        "test_bench_ablations": 8,
    }
    items.sort(key=lambda item: order.get(item.module.__name__, 99))
