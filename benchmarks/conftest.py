"""Shared configuration for the benchmark suite.

Every benchmark corresponds to a row of the experiment index in DESIGN.md
(and a paper-claim record in EXPERIMENTS.md).  Measured quantities beyond
wall-clock time — probe counts, error ratios, chain counts — are attached
to each benchmark's ``extra_info`` so they appear in pytest-benchmark's
output and JSON exports.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    """Keep the suite fast: several benchmarks run multi-second pipelines.

    One round per benchmark is enough for the claim-shaped quantities
    (probes, ratios, chain counts) recorded in ``extra_info``; wall-clock
    numbers remain indicative.  Command-line overrides still win.
    """
    if config.option.benchmark_min_rounds == 5:  # the plugin default
        config.option.benchmark_min_rounds = 1
    if config.option.benchmark_max_time == 1.0:  # the plugin default
        config.option.benchmark_max_time = 0.2
    if config.option.benchmark_warmup == "auto":
        config.option.benchmark_warmup = "off"


def pytest_collection_modifyitems(items):
    """Keep benchmark ordering stable: figures first, ablations last."""
    order = {
        "test_bench_figures": 0,
        "test_bench_passive": 1,
        "test_bench_active": 2,
        "test_bench_baselines": 3,
        "test_bench_lowerbound": 4,
        "test_bench_poset": 5,
        "test_bench_flow": 6,
        "test_bench_entity": 7,
        "test_bench_ablations": 8,
    }
    items.sort(key=lambda item: order.get(item.module.__name__, 99))
