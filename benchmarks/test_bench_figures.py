"""Benchmark E1/E2: the Figure 1 worked example (DESIGN.md experiment index).

Regenerates every published number of the paper's running example and
asserts exact agreement; the benchmark clock measures the full pipeline
(width + unweighted optimum + weighted optimum) on the 16-point input.
"""

from __future__ import annotations

from repro import dominance_width, solve_passive
from repro.datasets.figures import (
    FIGURE1_OPTIMAL_UNWEIGHTED_ERROR,
    FIGURE1_OPTIMAL_WEIGHTED_ERROR,
    FIGURE1_WIDTH,
    figure1_point_set,
    figure1_weighted_point_set,
)
from repro.experiments import figure1


def test_figure1_full_example(benchmark):
    points = figure1_point_set()
    weighted = figure1_weighted_point_set()

    def pipeline():
        return (
            dominance_width(points),
            solve_passive(points).optimal_error,
            solve_passive(weighted).optimal_error,
        )

    width, k_star, weighted_opt = benchmark(pipeline)
    assert width == FIGURE1_WIDTH
    assert k_star == FIGURE1_OPTIMAL_UNWEIGHTED_ERROR
    assert weighted_opt == FIGURE1_OPTIMAL_WEIGHTED_ERROR
    benchmark.extra_info.update({
        "paper_width": FIGURE1_WIDTH,
        "paper_k_star": FIGURE1_OPTIMAL_UNWEIGHTED_ERROR,
        "paper_weighted_opt": FIGURE1_OPTIMAL_WEIGHTED_ERROR,
    })


def test_figure1_experiment_rows(benchmark):
    rows = benchmark(figure1.run)
    assert all(row["match"] for row in rows)
    benchmark.extra_info["verified_quantities"] = len(rows)
