"""Benchmark E8: the Theorem 1 lower-bound family (Section 6).

Sweeps prober length over the adversarial family, asserting the measured
totals equal the Lemma 19 closed forms, and times the full-family
evaluation.  The Ω(n²) growth of accurate probers' total cost is recorded
across two family sizes in ``extra_info``.
"""

from __future__ import annotations

import pytest

from repro import (
    ConstantClassifier,
    DeterministicPairProber,
    evaluate_on_family,
    theoretical_nonoptcnt_lower_bound,
    theoretical_totalcost,
)
from repro.experiments import lowerbound_exp


@pytest.mark.parametrize("n", [64, 128])
def test_lowerbound_full_accuracy_prober(benchmark, n):
    """The fully-accurate prober (ell = n/2) pays Theta(n^2) in total."""
    prober = DeterministicPairProber(tuple(range(1, n // 2 + 1)),
                                     ConstantClassifier(0))
    evaluation = benchmark(evaluate_on_family, prober, n)
    assert evaluation.nonoptcnt == 0
    assert evaluation.totalcost == theoretical_totalcost(n, n // 2)
    assert evaluation.totalcost >= n * n / 8
    benchmark.extra_info.update({
        "n": n,
        "totalcost": evaluation.totalcost,
        "quadratic_floor": n * n / 8,
    })


def test_lowerbound_tradeoff_sweep(benchmark):
    rows = benchmark(lowerbound_exp.run, 96)
    assert all(row["cost_match"] for row in rows)
    assert all(row["lb_holds"] for row in rows)
    benchmark.extra_info["rows"] = len(rows)


def test_lowerbound_formulas(benchmark):
    """Micro-bench of the closed forms plus an exhaustive equality sweep."""
    def sweep():
        n = 48
        for ell in range(0, n // 2 + 1):
            prober = DeterministicPairProber(tuple(range(1, ell + 1)),
                                             ConstantClassifier(0))
            evaluation = evaluate_on_family(prober, n)
            assert evaluation.totalcost == theoretical_totalcost(n, ell)
            assert evaluation.nonoptcnt >= \
                theoretical_nonoptcnt_lower_bound(n, ell)
        return n

    assert benchmark(sweep) == 48
