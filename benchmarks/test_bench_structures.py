"""Micro-benchmarks for the supporting data structures and fast paths.

Not tied to a single paper table; they quantify the engineering choices
called out in DESIGN.md (patience vs matching decomposition, sweepline vs
matrix contending mask, incremental vs batch 1-D threshold solving).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import PointSet
from repro.core.errindex import ThresholdErrorIndex
from repro.core.passive import contending_mask
from repro.core.passive_1d import best_threshold
from repro.datasets.synthetic import width_controlled
from repro.poset.chains import matching_chain_decomposition, patience_chain_decomposition
from repro.poset.dominance2d import contending_mask_low_dim


@pytest.mark.parametrize("method", ["patience", "matching"])
def test_decomposition_methods_head_to_head(benchmark, method):
    points = width_controlled(4_000, 8, noise=0.05, rng=0)
    runner = (patience_chain_decomposition if method == "patience"
              else matching_chain_decomposition)
    decomposition = benchmark(runner, points)
    assert decomposition.num_chains == 8
    benchmark.extra_info.update({"method": method, "n": 4_000})


@pytest.mark.parametrize("path", ["sweepline", "matrix"])
def test_contending_mask_fast_path(benchmark, path):
    gen = np.random.default_rng(1)
    coords = gen.random((6_000, 2))
    labels = gen.integers(0, 2, size=6_000)
    points = PointSet(coords, labels)
    if path == "sweepline":
        mask = benchmark(contending_mask_low_dim, points)
    else:
        mask = benchmark(contending_mask, points)
    benchmark.extra_info.update({"path": path, "contending": int(mask.sum())})


def test_incremental_threshold_index(benchmark):
    """O(log n) streaming updates vs repeated batch re-solves."""
    gen = np.random.default_rng(2)
    values = gen.random(5_000)
    labels = (values > 0.5).astype(int)

    def stream():
        index = ThresholdErrorIndex(values)
        for v, l in zip(values, labels):
            index.insert(float(v), int(l))
        return index.best()

    tau, err = benchmark(stream)
    _tau2, expected = best_threshold(values, labels)
    assert err == pytest.approx(expected)
    benchmark.extra_info["n"] = 5_000


def test_batch_threshold_resolve(benchmark):
    """The numpy batch solver, for contrast with the incremental index."""
    gen = np.random.default_rng(2)
    values = gen.random(5_000)
    labels = (values > 0.5).astype(int)
    _tau, err = benchmark(best_threshold, values, labels)
    benchmark.extra_info["n"] = 5_000
