"""Benchmark E11: end-to-end entity matching under a label budget."""

from __future__ import annotations

import pytest

from repro import active_classify, error_count, solve_passive
from repro.baselines import tao2018_classify
from repro.datasets.entity_matching import generate_entity_matching
from repro.experiments.entity_matching_exp import match_f1

N_PAIRS, DIM, NOISE, SEED = 3_000, 3, 0.05, 0


@pytest.fixture(scope="module")
def workload():
    wl = generate_entity_matching(N_PAIRS, dim=DIM, label_noise=NOISE, rng=SEED)
    optimum = solve_passive(wl.points).optimal_error
    return wl, optimum


@pytest.mark.parametrize("epsilon", [1.0, 0.5])
def test_entity_active(benchmark, workload, epsilon):
    wl, optimum = workload
    hidden = wl.hidden()

    def job():
        oracle = wl.oracle()
        return active_classify(hidden, oracle, epsilon=epsilon, rng=SEED + 1)

    result = benchmark(job)
    err = error_count(wl.points, result.classifier)
    benchmark.extra_info.update({
        "labels_spent": result.probing_cost,
        "error_ratio": round(err / optimum, 4) if optimum else 1.0,
        "match_f1": round(match_f1(wl.points, result.classifier), 4),
        "width_w": result.num_chains,
    })
    assert err <= (1 + epsilon) * optimum + 1e-9


def test_entity_tao2018(benchmark, workload):
    wl, optimum = workload
    hidden = wl.hidden()

    def job():
        oracle = wl.oracle()
        return tao2018_classify(hidden, oracle, rng=SEED + 2)

    result = benchmark(job)
    err = error_count(wl.points, result.classifier)
    benchmark.extra_info.update({
        "labels_spent": result.probing_cost,
        "error_ratio": round(err / optimum, 4) if optimum else 1.0,
        "match_f1": round(match_f1(wl.points, result.classifier), 4),
    })


def test_entity_full_information(benchmark, workload):
    wl, optimum = workload
    result = benchmark(solve_passive, wl.points)
    assert result.optimal_error == pytest.approx(optimum)
    benchmark.extra_info.update({
        "labels_spent": N_PAIRS,
        "match_f1": round(match_f1(wl.points, result.classifier), 4),
    })
