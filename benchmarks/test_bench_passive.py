"""Benchmark E3: passive solver CPU time vs n and d (Theorem 4).

The paper claims ``O(d n^2) + T_maxflow(n)``; these benchmarks chart the
empirical curve and certify optimality on the 1-D instances against the
prefix-sum solver.
"""

from __future__ import annotations

import pytest

from repro import solve_passive, solve_passive_1d
from repro.datasets.synthetic import planted_monotone, planted_threshold_1d


@pytest.mark.parametrize("n", [250, 500, 1_000, 2_000])
def test_passive_scaling_n_d2(benchmark, n):
    points = planted_monotone(n, 2, noise=0.1, rng=0, weights="random")
    result = benchmark(solve_passive, points)
    benchmark.extra_info.update({
        "n": n, "d": 2,
        "contending": result.num_contending,
        "optimal_error": result.optimal_error,
    })


@pytest.mark.parametrize("d", [1, 2, 4, 8])
def test_passive_scaling_d_n1000(benchmark, d):
    if d == 1:
        points = planted_threshold_1d(1_000, noise=0.1, rng=1, weights="random")
    else:
        points = planted_monotone(1_000, d, noise=0.1, rng=1, weights="random")
    result = benchmark(solve_passive, points)
    if d == 1:
        exact = solve_passive_1d(points).optimal_error
        assert result.optimal_error == pytest.approx(exact)
    benchmark.extra_info.update({"n": 1_000, "d": d,
                                 "optimal_error": result.optimal_error})


@pytest.mark.parametrize("backend", ["dinic", "push_relabel"])
def test_passive_backend_comparison(benchmark, backend):
    points = planted_monotone(1_500, 3, noise=0.15, rng=2, weights="random")
    result = benchmark(solve_passive, points, backend=backend)
    benchmark.extra_info.update({"backend": backend,
                                 "optimal_error": result.optimal_error})


def test_passive_1d_fast_path(benchmark):
    """The O(n log n) 1-D exact solver, for contrast with the flow path."""
    points = planted_threshold_1d(200_000, noise=0.1, rng=3, weights="random")
    result = benchmark(solve_passive_1d, points)
    benchmark.extra_info.update({"n": 200_000,
                                 "optimal_error": result.optimal_error})
