"""Benchmarks E4/E5/E6: active probing cost vs n, w, eps (Theorem 2).

Each benchmark runs the full active pipeline on a width-controlled workload
and records probes and achieved error ratio in ``extra_info`` — those are
the quantities the paper's Theorem 2 speaks about; wall-clock confirms the
polynomial CPU claim of Theorem 3.
"""

from __future__ import annotations

import pytest

from repro import LabelOracle, active_classify, error_count
from repro.datasets.synthetic import width_controlled
from repro.experiments._common import chainwise_optimum


def _run_and_annotate(benchmark, n, width, epsilon, seed=0, noise=0.05):
    points = width_controlled(n, width, noise=noise, rng=seed)
    optimum = chainwise_optimum(points)
    hidden = points.with_hidden_labels()

    def job():
        oracle = LabelOracle(points)
        return active_classify(hidden, oracle, epsilon=epsilon, rng=seed + 1)

    result = benchmark(job)
    err = error_count(points, result.classifier)
    ratio = err / optimum if optimum else 1.0
    assert ratio <= 1 + epsilon + 1e-9
    benchmark.extra_info.update({
        "n": n, "w": width, "eps": epsilon,
        "probes": result.probing_cost,
        "probe_fraction": round(result.probing_cost / n, 4),
        "error_ratio": round(ratio, 4),
        "k_star": optimum,
    })
    return result


@pytest.mark.parametrize("n", [2_000, 8_000, 32_000])
def test_active_E4_n_sweep(benchmark, n):
    _run_and_annotate(benchmark, n=n, width=8, epsilon=1.0)


@pytest.mark.parametrize("width", [2, 8, 32])
def test_active_E5_w_sweep(benchmark, width):
    _run_and_annotate(benchmark, n=16_000, width=width, epsilon=1.0)


@pytest.mark.parametrize("epsilon", [1.0, 0.5, 0.25])
def test_active_E6_eps_sweep(benchmark, epsilon):
    _run_and_annotate(benchmark, n=16_000, width=8, epsilon=epsilon)


def test_active_1d_large(benchmark):
    """Lemma 9's 1-D algorithm at n = 200k: strongly sublinear probing."""
    from repro import active_classify_1d, solve_passive_1d
    from repro.datasets.synthetic import planted_threshold_1d

    points = planted_threshold_1d(200_000, noise=0.05, rng=4)
    hidden = points.with_hidden_labels()

    def job():
        oracle = LabelOracle(points)
        return active_classify_1d(hidden, oracle, epsilon=1.0, rng=5)

    result = benchmark(job)
    optimum = solve_passive_1d(points).optimal_error
    err = error_count(points, result.classifier)
    assert result.probing_cost < 20_000
    benchmark.extra_info.update({
        "n": 200_000,
        "probes": result.probing_cost,
        "error_ratio": round(err / optimum, 4) if optimum else 1.0,
    })
