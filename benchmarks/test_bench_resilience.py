"""Chaos smoke benchmarks: the resilience layer's overhead must stay flat.

Part of the CI ``bench-smoke`` gate (with ``test_bench_smoke.py``): each
benchmark here has a matching entry in ``benchmarks/baseline.json``, and
the gate fails on a >30% mean regression.  Tiny inputs on purpose — the
job catches order-of-magnitude slips (a retry loop gone hot, journal
fsyncs in a tight loop), not scaling behavior.
"""

from __future__ import annotations

from repro import LabelOracle, active_classify
from repro.datasets.synthetic import width_controlled
from repro.resilience import FaultSpec, ResilienceConfig, RetryPolicy


def _workload():
    points = width_controlled(800, 4, noise=0.05, rng=0)
    return points, points.with_hidden_labels()


def test_bench_resilience_chaos(benchmark):
    """Active pipeline under 10% transient faults with retries."""
    points, hidden = _workload()
    config = ResilienceConfig(
        retry=RetryPolicy(max_attempts=8),
        faults=FaultSpec(transient_rate=0.1, seed=3),
    )

    def job():
        return active_classify(hidden, LabelOracle(points), epsilon=1.0,
                               rng=1, resilience=config)

    result = benchmark(job)
    assert result.report is not None and result.report.completed
    benchmark.extra_info["probes"] = result.probing_cost
    benchmark.extra_info["faults"] = result.report.faults_injected


def test_bench_resilience_checkpoint(benchmark, tmp_path):
    """Active pipeline with the journal + per-chain checkpoints enabled."""
    points, hidden = _workload()
    counter = [0]

    def job():
        counter[0] += 1
        ckpt = tmp_path / f"bench-{counter[0]}.ckpt.json"
        config = ResilienceConfig(checkpoint=str(ckpt))
        return active_classify(hidden, LabelOracle(points), epsilon=1.0,
                               rng=1, resilience=config)

    result = benchmark(job)
    benchmark.extra_info["probes"] = result.probing_cost
