"""Serving-layer smoke benchmarks: query latency must stay flat.

Part of the CI ``bench-smoke`` gate: each benchmark has a matching entry
in ``benchmarks/baseline.json`` and the gate fails on a >30% mean
regression.  Tiny inputs on purpose — this catches order-of-magnitude
slips (a digest recomputed per query, a journal fsync per point), not
scaling behavior.  ``BENCH_serve.json`` holds the standing throughput /
p99 summary; refresh it with ``benchmarks/run_serve.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.points import PointSet
from repro.serve import ServeEngine, fit_artifact, load_artifact, save_artifact


@pytest.fixture(scope="module")
def deployed(tmp_path_factory):
    rng = np.random.default_rng(17)
    coords = rng.random((300, 2))
    labels = (coords.sum(axis=1) > 1.0).astype(int)
    labels[:20] ^= 1
    artifact = fit_artifact(PointSet(coords, labels), "passive")
    path = tmp_path_factory.mktemp("bench-serve") / "model.json"
    save_artifact(artifact, path)
    return path


def test_bench_serve_batch_queries(benchmark, deployed):
    """Batched query throughput through the full engine path (queue +
    journal off): 64 batches of 512 points per round."""
    engine = ServeEngine(deployed)
    engine.reload()
    rng = np.random.default_rng(3)
    batches = [rng.random((512, 2)) for _ in range(64)]

    def job():
        answered = 0
        for coords in batches:
            result = engine.classify_batch(coords)
            assert result.ok
            answered += result.n
        return answered

    answered = benchmark(job)
    benchmark.extra_info["points_per_round"] = answered


def test_bench_serve_single_queries(benchmark, deployed):
    """Single-point query latency (the per-request overhead floor)."""
    engine = ServeEngine(deployed)
    engine.reload()
    rng = np.random.default_rng(4)
    points = [tuple(p) for p in rng.random((256, 2))]

    def job():
        labels = 0
        for point in points:
            result = engine.classify(point)
            labels += result.label or 0
        return labels

    benchmark(job)
    benchmark.extra_info["queries_per_round"] = len(points)


def test_bench_serve_artifact_load(benchmark, deployed):
    """Artifact load + digest verification (the reload path's cost)."""

    def job():
        return load_artifact(deployed)

    artifact = benchmark(job)
    benchmark.extra_info["digest"] = (artifact.digest or "")[:12]
