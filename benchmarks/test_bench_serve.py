"""Serving-layer smoke benchmarks: query latency must stay flat.

Part of the CI ``bench-smoke`` gate: each benchmark has a matching entry
in ``benchmarks/baseline.json`` and the gate fails on a >30% mean
regression.  Tiny inputs on purpose — this catches order-of-magnitude
slips (a digest recomputed per query, a journal fsync per point), not
scaling behavior.  ``BENCH_serve.json`` holds the standing throughput /
p99 summary; refresh it with ``benchmarks/run_serve.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.points import PointSet
from repro.serve import (
    ModelFleet,
    ServeEngine,
    fit_artifact,
    load_artifact,
    save_artifact,
)


@pytest.fixture(scope="module")
def deployed(tmp_path_factory):
    rng = np.random.default_rng(17)
    coords = rng.random((300, 2))
    labels = (coords.sum(axis=1) > 1.0).astype(int)
    labels[:20] ^= 1
    artifact = fit_artifact(PointSet(coords, labels), "passive")
    path = tmp_path_factory.mktemp("bench-serve") / "model.json"
    save_artifact(artifact, path)
    return path


def test_bench_serve_batch_queries(benchmark, deployed):
    """Batched query throughput through the full engine path (queue +
    journal off): 64 batches of 512 points per round."""
    engine = ServeEngine(deployed)
    engine.reload()
    rng = np.random.default_rng(3)
    batches = [rng.random((512, 2)) for _ in range(64)]

    def job():
        answered = 0
        for coords in batches:
            result = engine.classify_batch(coords)
            assert result.ok
            answered += result.n
        return answered

    answered = benchmark(job)
    benchmark.extra_info["points_per_round"] = answered


def test_bench_serve_single_queries(benchmark, deployed):
    """Single-point query latency (the per-request overhead floor)."""
    engine = ServeEngine(deployed)
    engine.reload()
    rng = np.random.default_rng(4)
    points = [tuple(p) for p in rng.random((256, 2))]

    def job():
        labels = 0
        for point in points:
            result = engine.classify(point)
            labels += result.label or 0
        return labels

    benchmark(job)
    benchmark.extra_info["queries_per_round"] = len(points)


def test_bench_serve_artifact_load(benchmark, deployed):
    """Artifact load + digest verification (the reload path's cost)."""

    def job():
        return load_artifact(deployed)

    artifact = benchmark(job)
    benchmark.extra_info["digest"] = (artifact.digest or "")[:12]


@pytest.fixture(scope="module")
def fleet_dir(tmp_path_factory):
    rng = np.random.default_rng(23)
    directory = tmp_path_factory.mktemp("bench-fleet")
    for k in range(4):
        coords = rng.random((120, 2))
        labels = (coords.sum(axis=1) > 1.0).astype(int)
        labels[:8] ^= 1
        artifact = fit_artifact(PointSet(coords, labels), "passive")
        save_artifact(artifact, directory / f"m{k}.json")
    return directory


def test_bench_fleet_dispatch(benchmark, fleet_dir):
    """Fleet dispatch overhead vs a bare engine: 64 batches of 256 points
    round-robined across 4 resident models (bulkhead gate + breaker + LRU
    bookkeeping on every call)."""
    fleet = ModelFleet.from_directory(fleet_dir)
    names = fleet.models
    rng = np.random.default_rng(5)
    batches = [rng.random((256, 2)) for _ in range(64)]

    def job():
        answered = 0
        for i, coords in enumerate(batches):
            result = fleet.dispatch(names[i % len(names)], coords)
            assert result.ok
            answered += result.n
        return answered

    answered = benchmark(job)
    fleet.close()
    benchmark.extra_info["points_per_round"] = answered


def test_bench_fleet_lru_churn(benchmark, fleet_dir):
    """Worst-case residency thrash: resident_limit=1 over 4 models, so
    every dispatch pays an eviction plus a digest-verified cold load."""
    fleet = ModelFleet.from_directory(fleet_dir, resident_limit=1)
    names = fleet.models
    rng = np.random.default_rng(6)
    batches = [rng.random((32, 2)) for _ in range(16)]

    def job():
        for i, coords in enumerate(batches):
            assert fleet.dispatch(names[i % len(names)], coords).ok
        return len(batches)

    benchmark(job)
    fleet.close()
    benchmark.extra_info["cold_loads_per_round"] = len(batches)
