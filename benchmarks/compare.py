"""Benchmark-regression gate: compare a pytest-benchmark JSON to a baseline.

Usage::

    python benchmarks/compare.py baseline.json current.json [--threshold 0.30]

Both files are ``--benchmark-json`` exports.  Benchmarks are matched by
``fullname``; for each match the mean runtime is compared, and the gate
fails (exit 1) if any benchmark is more than ``threshold`` slower than its
baseline mean.  Benchmarks present in only one file are reported but never
fail the gate (new benchmarks must be allowed to land before a baseline
refresh; retired ones must not haunt it).

Stdlib only, on purpose: CI runs this before any project dependency is
importable-by-accident, and local runs should not need the bench venv.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List


def load_means(path: str) -> Dict[str, float]:
    """Map benchmark ``fullname`` -> mean seconds from a benchmark JSON."""
    with open(path) as handle:
        payload = json.load(handle)
    means: Dict[str, float] = {}
    for bench in payload.get("benchmarks", []):
        name = bench.get("fullname") or bench.get("name")
        stats = bench.get("stats") or {}
        mean = stats.get("mean")
        if name and isinstance(mean, (int, float)) and mean > 0:
            means[name] = float(mean)
    return means


def compare(
    baseline: Dict[str, float],
    current: Dict[str, float],
    threshold: float,
) -> List[str]:
    """Return one failure line per benchmark regressing beyond ``threshold``."""
    failures: List[str] = []
    for name in sorted(baseline):
        if name not in current:
            print(f"  [gone]  {name} (in baseline only; not gating)")
            continue
        base, cur = baseline[name], current[name]
        ratio = cur / base
        marker = "FAIL" if ratio > 1.0 + threshold else "ok"
        print(f"  [{marker:>4}] {name}: {base * 1e3:.2f}ms -> {cur * 1e3:.2f}ms "
              f"({ratio:.2f}x baseline)")
        if ratio > 1.0 + threshold:
            failures.append(
                f"{name}: mean {cur * 1e3:.2f}ms vs baseline {base * 1e3:.2f}ms "
                f"({ratio:.2f}x, threshold {1.0 + threshold:.2f}x)"
            )
    for name in sorted(set(current) - set(baseline)):
        print(f"  [new ]  {name} (no baseline; not gating)")
    return failures


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline --benchmark-json file")
    parser.add_argument("current", help="freshly produced --benchmark-json file")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="allowed slowdown fraction over baseline mean (default 0.30)",
    )
    args = parser.parse_args(argv)

    baseline = load_means(args.baseline)
    current = load_means(args.current)
    if not baseline:
        print(f"error: no benchmarks found in baseline {args.baseline}",
              file=sys.stderr)
        return 2
    if not current:
        print(f"error: no benchmarks found in {args.current}", file=sys.stderr)
        return 2

    print(f"comparing {len(current)} benchmark(s) against "
          f"{len(baseline)} baseline entr(y/ies), threshold "
          f"+{args.threshold:.0%}:")
    failures = compare(baseline, current, args.threshold)
    if failures:
        print(f"\n{len(failures)} benchmark regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nno regressions beyond threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
