"""Benchmark E7: Theorem 2 vs the Section 1.2 baselines.

One benchmark per method on the same workload; probes and error ratios in
``extra_info`` reproduce the qualitative ordering the paper claims.
"""

from __future__ import annotations

import pytest

from repro import LabelOracle, active_classify, error_count
from repro.baselines import a2_classify, probe_all_classify, tao2018_classify
from repro.datasets.synthetic import width_controlled
from repro.experiments._common import chainwise_optimum

N, WIDTH, EPS, NOISE, SEED = 8_000, 4, 0.5, 0.08, 0


@pytest.fixture(scope="module")
def workload():
    points = width_controlled(N, WIDTH, noise=NOISE, rng=SEED)
    return points, chainwise_optimum(points), points.with_hidden_labels()


def _annotate(benchmark, points, optimum, probes, classifier):
    err = error_count(points, classifier)
    benchmark.extra_info.update({
        "probes": probes,
        "probe_fraction": round(probes / N, 4),
        "error_ratio": round(err / optimum, 4) if optimum else 1.0,
    })


def test_baseline_theorem2(benchmark, workload):
    points, optimum, hidden = workload

    def job():
        oracle = LabelOracle(points)
        return active_classify(hidden, oracle, epsilon=EPS, rng=SEED + 1)

    result = benchmark(job)
    _annotate(benchmark, points, optimum, result.probing_cost, result.classifier)
    assert benchmark.extra_info["error_ratio"] <= 1 + EPS + 1e-9


def test_baseline_probe_all(benchmark, workload):
    points, optimum, hidden = workload

    def job():
        oracle = LabelOracle(points)
        return probe_all_classify(hidden, oracle)

    result = benchmark(job)
    _annotate(benchmark, points, optimum, result.probing_cost, result.classifier)
    assert result.probing_cost == N
    assert benchmark.extra_info["error_ratio"] == pytest.approx(1.0)


def test_baseline_tao2018(benchmark, workload):
    points, optimum, hidden = workload

    def job():
        oracle = LabelOracle(points)
        return tao2018_classify(hidden, oracle, rng=SEED + 2)

    result = benchmark(job)
    _annotate(benchmark, points, optimum, result.probing_cost, result.classifier)
    assert result.probing_cost < N // 20  # logarithmic probing


def test_baseline_a2(benchmark, workload):
    points, optimum, hidden = workload

    def job():
        oracle = LabelOracle(points)
        return a2_classify(hidden, oracle, epsilon=EPS, rng=SEED + 3)

    result = benchmark(job)
    _annotate(benchmark, points, optimum, result.probing_cost, result.classifier)
