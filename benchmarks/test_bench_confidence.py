"""Benchmark E12: empirical failure probability (Theorem 2 confidence)."""

from __future__ import annotations

from repro.experiments import confidence


def test_confidence_sweep(benchmark):
    rows = benchmark(confidence.run, 8_000, 0.1, ((1.0, 0.1),), 10, 1)
    row = rows[0]
    assert row["within_delta"]
    benchmark.extra_info.update({
        "runs": row["runs"],
        "failures": row["failures"],
        "delta": row["delta"],
        "mean_probes": row["mean_probes"],
    })
