"""Benchmark E10: max-flow backend agreement and runtime (Lemmas 7-8)."""

from __future__ import annotations

import pytest

from repro.experiments.flow_backends import random_flow_network
from repro.flow import FLOW_BACKENDS, solve_max_flow, solve_min_cut


@pytest.mark.parametrize("backend", sorted(FLOW_BACKENDS))
@pytest.mark.parametrize("size", [200, 600])
def test_flow_backend_runtime(benchmark, backend, size):
    reference = None
    for other in FLOW_BACKENDS:
        net = random_flow_network(size, 0.08, seed=7)
        value = solve_max_flow(net, 0, size - 1, backend=other)
        if reference is None:
            reference = value
        assert value == pytest.approx(reference, rel=1e-9)

    def job():
        net = random_flow_network(size, 0.08, seed=7)
        return solve_max_flow(net, 0, size - 1, backend=backend)

    value = benchmark(job)
    assert value == pytest.approx(reference, rel=1e-9)
    benchmark.extra_info.update({"V": size, "flow_value": round(value, 4)})


def test_flow_against_networkx(benchmark):
    nx = pytest.importorskip("networkx")
    size = 300
    net = random_flow_network(size, 0.08, seed=8)
    graph = nx.DiGraph()
    graph.add_nodes_from(range(size))
    for _arc, arc in net.forward_arcs():
        if graph.has_edge(arc.tail, arc.head):
            graph[arc.tail][arc.head]["capacity"] += arc.capacity
        else:
            graph.add_edge(arc.tail, arc.head, capacity=arc.capacity)
    expected = nx.maximum_flow_value(graph, 0, size - 1)

    def job():
        fresh = random_flow_network(size, 0.08, seed=8)
        return solve_max_flow(fresh, 0, size - 1, backend="dinic")

    value = benchmark(job)
    assert value == pytest.approx(expected, rel=1e-9)
    benchmark.extra_info["networkx_value"] = round(expected, 4)


def test_min_cut_extraction(benchmark):
    size = 400

    def job():
        net = random_flow_network(size, 0.08, seed=9)
        return solve_min_cut(net, 0, size - 1)

    cut = benchmark(job)
    benchmark.extra_info.update({
        "cut_value": round(cut.value, 4),
        "cut_edges": len(cut.cut_arcs),
    })
