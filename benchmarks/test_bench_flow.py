"""Benchmark E10: max-flow backend agreement and runtime (Lemmas 7-8)."""

from __future__ import annotations

import pytest

from repro.experiments.flow_backends import random_flow_network
from repro.flow import FLOW_BACKENDS, solve_max_flow, solve_min_cut


@pytest.mark.parametrize("backend", sorted(FLOW_BACKENDS))
@pytest.mark.parametrize("size", [200, 600])
def test_flow_backend_runtime(benchmark, backend, size):
    reference = None
    for other in FLOW_BACKENDS:
        net = random_flow_network(size, 0.08, seed=7)
        value = solve_max_flow(net, 0, size - 1, backend=other)
        if reference is None:
            reference = value
        assert value == pytest.approx(reference, rel=1e-9)

    def job():
        net = random_flow_network(size, 0.08, seed=7)
        return solve_max_flow(net, 0, size - 1, backend=backend)

    value = benchmark(job)
    assert value == pytest.approx(reference, rel=1e-9)
    benchmark.extra_info.update({"V": size, "flow_value": round(value, 4)})


def test_flow_against_networkx(benchmark):
    nx = pytest.importorskip("networkx")
    size = 300
    net = random_flow_network(size, 0.08, seed=8)
    graph = nx.DiGraph()
    graph.add_nodes_from(range(size))
    for _arc, arc in net.forward_arcs():
        if graph.has_edge(arc.tail, arc.head):
            graph[arc.tail][arc.head]["capacity"] += arc.capacity
        else:
            graph.add_edge(arc.tail, arc.head, capacity=arc.capacity)
    expected = nx.maximum_flow_value(graph, 0, size - 1)

    def job():
        fresh = random_flow_network(size, 0.08, seed=8)
        return solve_max_flow(fresh, 0, size - 1, backend="dinic")

    value = benchmark(job)
    assert value == pytest.approx(expected, rel=1e-9)
    benchmark.extra_info["networkx_value"] = round(expected, 4)


def test_min_cut_extraction(benchmark):
    size = 400

    def job():
        net = random_flow_network(size, 0.08, seed=9)
        return solve_min_cut(net, 0, size - 1)

    cut = benchmark(job)
    benchmark.extra_info.update({
        "cut_value": round(cut.value, 4),
        "cut_edges": len(cut.cut_arcs),
    })


# ---------------------------------------------------------------------------
# Loop-vs-array engine pairs (PR: array-native flow solver engine).
#
# Same instance, same seed, loop engine vs its CSR array sibling, at a size
# below the kernels' full-scale runs so the pair fits the bench-smoke gate.
# solve_min_cut is benchmarked (not bare max-flow) because the array path
# also replaces the cut extraction above FLOW_ARRAY_CUTOFF.
# ---------------------------------------------------------------------------

_PAIR_SIZES = [512, 1024]
_PAIR_DENSITY = 0.05
_pair_reference: dict = {}


def _pair_value(size: int) -> float:
    """Loop-dinic reference value for the paired instance of ``size``."""
    if size not in _pair_reference:
        net = random_flow_network(size, _PAIR_DENSITY, seed=13)
        _pair_reference[size] = solve_max_flow(net, 0, size - 1, backend="dinic")
    return _pair_reference[size]


@pytest.mark.parametrize("engine", ["dinic", "push_relabel"])
@pytest.mark.parametrize("size", _PAIR_SIZES)
def test_flow_solver_loop(benchmark, engine, size):
    def job():
        net = random_flow_network(size, _PAIR_DENSITY, seed=13)
        return solve_min_cut(net, 0, size - 1, backend=engine)

    cut = benchmark(job)
    assert cut.value == pytest.approx(_pair_value(size), rel=1e-9, abs=1e-12)
    benchmark.extra_info.update({"V": size, "flow_value": round(cut.value, 4)})


@pytest.mark.parametrize("engine", ["dinic", "push_relabel"])
@pytest.mark.parametrize("size", _PAIR_SIZES)
def test_flow_solver_array(benchmark, engine, size):
    def job():
        net = random_flow_network(size, _PAIR_DENSITY, seed=13)
        return solve_min_cut(net, 0, size - 1, backend=f"{engine}_array")

    cut = benchmark(job)
    if engine == "dinic":
        assert cut.value == _pair_value(size)  # bit-identical by contract
    else:
        assert cut.value == pytest.approx(_pair_value(size), rel=1e-9, abs=1e-12)
    benchmark.extra_info.update({"V": size, "flow_value": round(cut.value, 4)})
