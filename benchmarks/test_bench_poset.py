"""Benchmark E9: chain decomposition exactness and runtime (Lemma 6)."""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import planted_monotone, width_controlled
from repro.poset.chains import (
    greedy_chain_decomposition,
    matching_chain_decomposition,
    patience_chain_decomposition,
)
from repro.poset.width import is_antichain, maximum_antichain


@pytest.mark.parametrize("n,width", [(2_000, 4), (2_000, 32), (8_000, 8)])
def test_matching_decomposition(benchmark, n, width):
    points = width_controlled(n, width, noise=0.05, rng=0)
    decomposition = benchmark(matching_chain_decomposition, points)
    assert decomposition.num_chains == width
    benchmark.extra_info.update({"n": n, "true_w": width,
                                 "chains": decomposition.num_chains})


@pytest.mark.parametrize("n", [20_000, 100_000])
def test_patience_decomposition_large(benchmark, n):
    points = width_controlled(n, 16, noise=0.05, rng=1)
    decomposition = benchmark(patience_chain_decomposition, points)
    assert decomposition.num_chains == 16
    benchmark.extra_info.update({"n": n, "chains": decomposition.num_chains})


def test_greedy_vs_exact_chain_count(benchmark):
    points = planted_monotone(3_000, 3, noise=0.1, rng=2)
    exact = matching_chain_decomposition(points).num_chains
    greedy = benchmark(greedy_chain_decomposition, points)
    assert greedy.num_chains >= exact
    benchmark.extra_info.update({"exact_w": exact,
                                 "greedy_chains": greedy.num_chains})


def test_antichain_certificate(benchmark):
    points = planted_monotone(1_500, 3, noise=0.1, rng=3)
    antichain = benchmark(maximum_antichain, points)
    assert is_antichain(points, antichain)
    assert len(antichain) == matching_chain_decomposition(points).num_chains
    benchmark.extra_info["width"] = len(antichain)
