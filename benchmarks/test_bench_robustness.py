"""Benchmark E13: noise-model robustness of the active algorithm."""

from __future__ import annotations

import pytest

from repro import LabelOracle, active_classify, error_count
from repro.datasets.noise import NOISE_MODELS
from repro.datasets.synthetic import width_controlled
from repro.experiments._common import chainwise_optimum


@pytest.mark.parametrize("model", sorted(NOISE_MODELS))
def test_robustness_per_noise_model(benchmark, model):
    clean = width_controlled(6_000, 4, noise=0.0, rng=0)
    noisy = NOISE_MODELS[model](clean, 0.08, rng=1)
    optimum = chainwise_optimum(noisy)
    hidden = noisy.with_hidden_labels()

    def job():
        oracle = LabelOracle(noisy)
        return active_classify(hidden, oracle, epsilon=0.5, rng=2)

    result = benchmark(job)
    err = error_count(noisy, result.classifier)
    ratio = err / optimum if optimum else 1.0
    assert ratio <= 1.5 + 1e-9
    benchmark.extra_info.update({
        "noise_model": model,
        "probes": result.probing_cost,
        "error_ratio": round(ratio, 4),
        "k_star": optimum,
    })
