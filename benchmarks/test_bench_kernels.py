"""Kernel benchmarks: packed-bitset engine vs the loop/dense reference.

Gated in the ``bench-smoke`` CI job alongside the pipeline smoke
benchmarks: each kernel is measured in *both* engines at two sizes, so a
regression in either substrate (or an accidental de-vectorization) trips
``compare.py`` against ``baseline.json``.  The bitset/loop ratio is the
speedup the engine buys; the measured numbers are recorded in
``BENCH_kernels.json`` at the repo root.

The loop variants deliberately re-implement the pre-bitset code paths
(dense order-matrix consumers, adjacency-list Hopcroft–Karp, per-pair
``add_edge``) so the comparison stays meaningful after the library
defaults switched to the packed engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import PointSet
from repro.datasets.synthetic import width_controlled
from repro.flow import FlowNetwork
from repro.poset.bitset import (
    dominance_pair_count_bitset,
    hopcroft_karp_bitset,
    maximal_points_bitset,
    minimal_points_bitset,
    packed_order,
)
from repro.poset.dominance import _order_matrix
from repro.poset.matching import hopcroft_karp

DOMINANCE_SIZES = [1024, 4096]
MATCHING_SIZES = [2048, 4096]
FLOW_SIZES = [1024, 4096]


def _points(n: int, dim: int = 3) -> PointSet:
    gen = np.random.default_rng(n)
    return PointSet(gen.uniform(size=(n, dim)), [0] * n)


@pytest.mark.parametrize("n", DOMINANCE_SIZES)
def test_kernel_dominance_loop(benchmark, n):
    """Dense reference: order matrix + row/column ``any`` + pair count."""
    points = _points(n)

    def job():
        # Re-derive from coordinates: construction is the kernel.  Both
        # caches must be dropped, otherwise order_matrix() reuses the
        # weak-dominance matrix after round one and skips the pairwise work.
        points._order = None
        points._weak_dom = None
        order = _order_matrix(points)
        mins = np.flatnonzero(~order.any(axis=1))
        maxs = np.flatnonzero(~order.any(axis=0))
        return len(mins), len(maxs), int(order.sum())

    num_min, num_max, pairs = benchmark(job)
    benchmark.extra_info["order_pairs"] = pairs


@pytest.mark.parametrize("n", DOMINANCE_SIZES)
def test_kernel_dominance_bitset(benchmark, n):
    """Packed engine: blockwise pack + byte-wise ``any`` + popcount."""
    points = _points(n)

    def job():
        points._packed_order = None  # re-pack: construction is the kernel
        mins = minimal_points_bitset(points)
        maxs = maximal_points_bitset(points)
        return len(mins), len(maxs), dominance_pair_count_bitset(points)

    num_min, num_max, pairs = benchmark(job)
    benchmark.extra_info["order_pairs"] = pairs


def _matching_instance(n: int):
    points = width_controlled(n, 24, rng=0)
    order = _order_matrix(
        PointSet(points.coords.copy(), points.labels.copy(),
                 points.weights.copy()))
    adjacency = [np.flatnonzero(order[:, u]).tolist() for u in range(n)]
    packed = packed_order(points)
    return adjacency, packed


@pytest.mark.parametrize("n", MATCHING_SIZES)
def test_kernel_matching_loop(benchmark, n):
    """Reference Hopcroft–Karp over prebuilt adjacency lists."""
    adjacency, _ = _matching_instance(n)
    result = benchmark(lambda: hopcroft_karp(adjacency, n))
    benchmark.extra_info["matching_size"] = result.size


@pytest.mark.parametrize("n", MATCHING_SIZES)
def test_kernel_matching_bitset(benchmark, n):
    """Bitset-frontier Hopcroft–Karp over the packed adjacency."""
    _, packed = _matching_instance(n)
    result = benchmark(lambda: hopcroft_karp_bitset(packed.above, n))
    benchmark.extra_info["matching_size"] = result.size


def _flow_edges(n: int):
    gen = np.random.default_rng(1)
    m = 30 * n
    return (gen.integers(0, n, m), gen.integers(0, n, m), gen.random(m))


@pytest.mark.parametrize("n", FLOW_SIZES)
def test_kernel_flow_build_loop(benchmark, n):
    """Per-edge ``add_edge`` network construction (the pre-bitset path)."""
    tails, heads, caps = _flow_edges(n)

    def job():
        network = FlowNetwork(n)
        for u, v, c in zip(tails, heads, caps):
            network.add_edge(int(u), int(v), float(c))
        return network

    network = benchmark(job)
    benchmark.extra_info["edges"] = network.num_edges


@pytest.mark.parametrize("n", FLOW_SIZES)
def test_kernel_flow_build_bulk(benchmark, n):
    """Vectorized ``add_edges`` construction of the identical network."""
    tails, heads, caps = _flow_edges(n)

    def job():
        network = FlowNetwork(n)
        network.add_edges(tails, heads, caps)
        return network

    network = benchmark(job)
    benchmark.extra_info["edges"] = network.num_edges
