"""Benchmark E14: recursion geometry aggregation (Lemma 10 empirics)."""

from __future__ import annotations

from repro.experiments import recursion_geometry


def test_recursion_geometry_sweep(benchmark):
    rows = benchmark(recursion_geometry.run, 20_000, 0.1, 0.5, 5, 3)
    summary = rows[-1]
    assert summary["level"] == "summary"
    # mean shrink factor (stored in mean_sample of the summary row) stays
    # below the Lemma 10 bound of 5/8.
    assert summary["mean_sample"] <= 5 / 8
    benchmark.extra_info.update({
        "mean_shrink": round(summary["mean_sample"], 4),
        "mean_depth": round(summary["mean_population"], 2),
    })
