"""Instrumentation-overhead smoke benchmarks (the observability gate).

Three benchmarks time the *same* active-pipeline workload under the three
instrumentation states — no session (the no-op recorder path), a metrics
session, and a tracing session including the Chrome-trace/profiler
post-processing — so the committed baseline pins each state's cost and
``compare.py`` fails CI when instrumentation overhead regresses by more
than the gate threshold.  Two micro-benchmarks additionally guard the two
hot primitives the pipeline leans on: histogram observation (the
log-bucket path) and span enter/exit under tracing.

The absolute no-op overhead target (< 2 % over a bare run) is recorded in
``BENCH_obs.json``; these benchmarks guard against *drift* rather than
re-deriving the ratio, which single-round CI timing is too noisy to pin.
"""

from __future__ import annotations

from repro import LabelOracle, active_classify, obs
from repro.datasets.synthetic import width_controlled


def _workload():
    points = width_controlled(800, 4, noise=0.05, rng=0)
    hidden = points.with_hidden_labels()

    def job():
        return active_classify(hidden, LabelOracle(points), epsilon=1.0, rng=1)

    return job


def test_smoke_obs_noop_path(benchmark):
    """Active pipeline with NO session: every call site hits NullRecorder.

    This is the price every un-instrumented run pays; a regression here
    means a hot path stopped honoring the single-attribute-check contract.
    """
    job = _workload()
    result = benchmark(job)
    benchmark.extra_info["probes"] = result.probing_cost


def test_smoke_obs_metrics_session(benchmark):
    """The same pipeline inside a metrics session (counters/spans live)."""
    job = _workload()

    def instrumented():
        with obs.metrics_session(name="bench"):
            return job()

    result = benchmark(instrumented)
    benchmark.extra_info["probes"] = result.probing_cost


def test_smoke_obs_tracing_session(benchmark):
    """Tracing session plus export: timeline buffer, Chrome JSON, profiler."""
    job = _workload()

    def traced():
        with obs.metrics_session(name="bench", trace=True) as registry:
            result = job()
        obs.to_chrome_trace(registry)
        obs.profile_events(registry)
        return result, len(registry.trace_events)

    (result, num_events) = benchmark(traced)
    benchmark.extra_info["probes"] = result.probing_cost
    benchmark.extra_info["trace_events"] = num_events


def test_smoke_histogram_observe(benchmark):
    """50k observations through the log-bucket histogram (spilled path)."""
    def job():
        hist = obs.Histogram("bench")
        for i in range(50_000):
            hist.observe(float(i % 997) + 0.5)
        return hist.quantiles((0.5, 0.9, 0.99))

    quantiles = benchmark(job)
    benchmark.extra_info["p99"] = quantiles[2]


def test_smoke_span_tracing(benchmark):
    """10k span enter/exit cycles with the timeline buffer enabled."""
    def job():
        registry = obs.MetricsRegistry("bench", trace=True)
        for _ in range(2_000):
            with registry.span("outer"):
                with registry.span("inner"):
                    pass
        return len(registry.trace_events)

    events = benchmark(job)
    assert events == 4_000
