"""Refresh ``benchmarks/baseline.json`` from a ``--benchmark-json`` export.

Usage::

    PYTHONPATH=src pytest benchmarks/test_bench_smoke.py \
        --benchmark-json=/tmp/smoke.json
    python benchmarks/rebaseline.py /tmp/smoke.json

Keeps only the fields ``compare.py`` gates on (plus a little provenance),
so the committed baseline stays a small, reviewable diff.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

BASELINE = Path(__file__).parent / "baseline.json"


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    payload = json.loads(Path(argv[0]).read_text())
    trimmed = {
        "comment": "Smoke-benchmark baseline for benchmarks/compare.py. "
                   "Refresh with benchmarks/rebaseline.py (see its docstring).",
        "machine_info": {
            key: payload.get("machine_info", {}).get(key)
            for key in ("python_version", "cpu")
        },
        "benchmarks": [
            {
                "fullname": bench["fullname"],
                "name": bench["name"],
                "stats": {
                    "mean": bench["stats"]["mean"],
                    "min": bench["stats"]["min"],
                    "stddev": bench["stats"]["stddev"],
                    "rounds": bench["stats"]["rounds"],
                },
                "extra_info": bench.get("extra_info", {}),
            }
            for bench in payload["benchmarks"]
        ],
    }
    BASELINE.write_text(json.dumps(trimmed, indent=1) + "\n")
    print(f"wrote {BASELINE} ({len(trimmed['benchmarks'])} benchmarks)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
