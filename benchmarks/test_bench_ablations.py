"""Benchmarks A1/A2/A3: the design-choice ablations from DESIGN.md."""

from __future__ import annotations

import pytest

from repro import LabelOracle, active_classify, error_count, solve_passive
from repro.datasets.synthetic import planted_monotone, planted_threshold_1d, width_controlled
from repro.stats.estimation import SamplingPlan


@pytest.mark.parametrize("use_reduction", [True, False])
def test_A1_contending_reduction(benchmark, use_reduction):
    points = planted_monotone(1_200, 3, noise=0.05, rng=0, weights="random")
    result = benchmark(solve_passive, points,
                       use_contending_reduction=use_reduction)
    benchmark.extra_info.update({
        "use_reduction": use_reduction,
        "graph_points": result.num_contending,
        "optimal_error": result.optimal_error,
    })


@pytest.mark.parametrize("method", ["exact", "greedy"])
def test_A2_decomposition_method(benchmark, method):
    points = width_controlled(8_000, 8, noise=0.05, rng=1)
    hidden = points.with_hidden_labels()

    def job():
        oracle = LabelOracle(points)
        return active_classify(hidden, oracle, epsilon=1.0,
                               decomposition=method, rng=2)

    result = benchmark(job)
    benchmark.extra_info.update({
        "method": method,
        "chains_used": result.num_chains,
        "probes": result.probing_cost,
    })


@pytest.mark.parametrize("constant", [2.0, 6.0, 18.0])
def test_A3_sampling_constant(benchmark, constant):
    from repro import active_classify_1d, solve_passive_1d

    points = planted_threshold_1d(50_000, noise=0.1, rng=3)
    optimum = solve_passive_1d(points).optimal_error
    hidden = points.with_hidden_labels()
    plan = SamplingPlan(practical_constant=constant)

    def job():
        oracle = LabelOracle(points)
        return active_classify_1d(hidden, oracle, epsilon=0.5, plan=plan, rng=4)

    result = benchmark(job)
    err = error_count(points, result.classifier)
    benchmark.extra_info.update({
        "constant": constant,
        "probes": result.probing_cost,
        "error_ratio": round(err / optimum, 4) if optimum else 1.0,
    })
