#!/usr/bin/env python
"""Monotone label repair: Problem 2 as data cleaning.

A review team's verdicts on record pairs drifted: some pairs were
rejected despite being more similar (on every metric) than accepted
pairs.  The Theorem 4 solver *is* the minimum-change repair engine:
flip the cheapest set of verdicts so the dataset becomes consistent.

Run:  python examples/label_repair.py
"""

import numpy as np

from repro import repair_labels
from repro.datasets.noise import asymmetric_flip, uniform_flip
from repro.datasets.synthetic import planted_monotone
from repro._util import format_table


def main() -> None:
    clean = planted_monotone(2_000, 3, noise=0.0, rng=5)
    print(f"clean dataset: {clean!r} (labels consistent: "
          f"{clean.is_monotone_labeling()})")

    rows = []
    scenarios = {
        "uniform 5% noise": uniform_flip(clean, 0.05, rng=6),
        "uniform 15% noise": uniform_flip(clean, 0.15, rng=7),
        "biased annotators (1->0 heavy)": asymmetric_flip(clean, 0.02, 0.2,
                                                          rng=8),
    }
    from repro.baselines import closure_repair

    for name, dirty in scenarios.items():
        injected = int((dirty.labels != clean.labels).sum())
        report = repair_labels(dirty)
        greedy = closure_repair(dirty)
        recovered = int((report.repaired.labels == clean.labels).sum())
        rows.append({
            "scenario": name,
            "injected_flips": injected,
            "exact_repair_flips": report.num_flips,
            "greedy_closure_flips": greedy.num_flips,
            "0->1": report.flips_0_to_1,
            "1->0": report.flips_1_to_0,
            "consistent_after": report.repaired.is_monotone_labeling(),
            "agree_with_truth": f"{recovered / clean.n:.1%}",
        })
    print(format_table(rows))
    print("\n(greedy closure = promote/demote propagation, the quick fix; "
          "its flip count upper-bounds the exact min-cut repair's)")

    print(
        "\nNotes: the repair never flips more than the injected noise (it is\n"
        "the minimum-change consistent relabeling), and the repaired labels\n"
        "agree with the uncorrupted ground truth far above the noise floor —\n"
        "monotonicity itself carries enough signal to undo most damage."
    )


if __name__ == "__main__":
    main()
