#!/usr/bin/env python
"""Why monotone classifiers beat per-feature cutoffs: a staircase boundary.

Entity-matching practice often sets one cutoff per similarity metric
("accept if title-sim > 0.8"), i.e. an axis threshold.  A genuinely
monotone boundary can be a staircase that no single cutoff matches.  This
example builds such a workload, solves it exactly with the Theorem 4
min-cut solver, and renders the learned decision region in the terminal.

Run:  python examples/staircase_boundary.py
"""

import numpy as np

from repro import ThresholdClassifier, error_count, solve_passive
from repro.datasets.synthetic import staircase
from repro.viz import render_decision_region, render_points


def main() -> None:
    points = staircase(1_200, steps=4, noise=0.05, rng=9)
    print("the workload (o = non-match, x = match):")
    print(render_points(points, width=56, height=18))

    # Best single-feature cutoff, per feature.
    best_axis = None
    for dim in (0, 1):
        for tau in np.linspace(0, 1, 41):
            h = ThresholdClassifier(float(tau), dim=dim)
            err = error_count(points, h)
            if best_axis is None or err < best_axis[0]:
                best_axis = (err, dim, float(tau))
    axis_err, axis_dim, axis_tau = best_axis
    print(f"\nbest single-feature cutoff: feature {axis_dim} > {axis_tau:.2f} "
          f"-> {axis_err} errors ({axis_err / points.n:.1%})")

    result = solve_passive(points)
    print(f"optimal monotone classifier -> {result.optimal_error:.0f} errors "
          f"({result.optimal_error / points.n:.1%})")

    print("\nits decision region (a monotone staircase, # = match):")
    print(render_decision_region(result.classifier, width=56, height=18))

    improvement = axis_err / max(result.optimal_error, 1)
    print(f"\nThe monotone optimum makes {improvement:.1f}x fewer errors than "
          "the best per-feature cutoff, while remaining fully explainable: "
          "no accepted pair is less similar than a rejected one on every metric.")


if __name__ == "__main__":
    main()
