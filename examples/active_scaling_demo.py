#!/usr/bin/env python
"""Seeing Theorem 2's probing bound in action: O((w/eps^2) log n log(n/w)).

Sweeps input size, dominance width, and accuracy target on width-controlled
workloads, printing how the probe count moves with each factor while the
achieved error always stays within (1 + eps) of optimal.

Run:  python examples/active_scaling_demo.py
"""

from repro import LabelOracle, active_classify, error_count
from repro._util import format_table
from repro.datasets.synthetic import width_controlled
from repro.experiments._common import chainwise_optimum


def one_row(n: int, width: int, eps: float, seed: int = 0) -> dict:
    points = width_controlled(n, width, noise=0.05, rng=seed)
    optimum = chainwise_optimum(points)
    oracle = LabelOracle(points)
    result = active_classify(points.with_hidden_labels(), oracle,
                             epsilon=eps, rng=seed + 1)
    err = error_count(points, result.classifier)
    return {
        "n": n,
        "w": width,
        "eps": eps,
        "probes": result.probing_cost,
        "probed%": f"{result.probing_cost / n:.1%}",
        "err/k*": f"{err / optimum:.3f}" if optimum else "exact",
        "bound(1+eps)": 1 + eps,
    }


def main() -> None:
    print("1. Growing n (w=8, eps=1): the probed FRACTION shrinks —")
    print("   cost is polylogarithmic in n, not linear:")
    print(format_table([one_row(n, 8, 1.0) for n in
                        (2_000, 8_000, 32_000)]))

    print("\n2. Growing w (n=16000, eps=1): cost scales ~linearly with the")
    print("   dominance width, the paper's key hardness parameter:")
    print(format_table([one_row(16_000, w, 1.0) for w in (2, 8, 32)]))

    print("\n3. Tightening eps (n=16000, w=8): accuracy costs 1/eps^2:")
    print(format_table([one_row(16_000, 8, eps) for eps in (1.0, 0.5, 0.25)]))


if __name__ == "__main__":
    main()
