#!/usr/bin/env python
"""Weighted passive classification: walking through the paper's Figure 1/2.

Reconstructs the running example of the paper and solves it three ways:

1. unweighted (Figure 1(a)): the optimal classifier errs on exactly 3
   points — p1, p11, p15;
2. weighted (Figure 1(b)): with weight(p1)=100 and weight(p11)=weight(p15)
   =60, that classifier costs 220, and the true optimum (104) instead maps
   only p10, p12, p16 to 1;
3. via the min-cut construction of Figure 2(b), showing the flow value,
   the contending points, and the cut edges.

Run:  python examples/weighted_passive.py
"""

import numpy as np

from repro import solve_passive, weighted_error
from repro.core.passive import contending_mask
from repro.datasets.figures import (
    figure1_point_set,
    figure1_weighted_point_set,
)
from repro.poset import dominance_width, minimum_chain_decomposition


def names_of(points, mask) -> str:
    return ", ".join(f"p{i + 1}" for i in np.flatnonzero(mask))


def main() -> None:
    points = figure1_point_set()
    weighted = figure1_weighted_point_set()

    print("== the input (Figure 1) ==")
    for i, point in enumerate(points):
        tag = "black(1)" if point.label == 1 else "white(0)"
        print(f"  p{i + 1:<3} {point.coords}  {tag}  weight={weighted.weights[i]:g}")

    print(f"\ndominance width w = {dominance_width(points)} (paper: 6)")
    decomposition = minimum_chain_decomposition(points)
    print(f"a minimum chain decomposition ({decomposition.num_chains} chains):")
    for chain in decomposition.chains:
        print("  " + " <= ".join(f"p{i + 1}" for i in chain))

    print("\n== unweighted optimum (Figure 1(a)) ==")
    unweighted = solve_passive(points)
    wrong = unweighted.assignment != points.labels
    print(f"k* = {unweighted.optimal_error:.0f} (paper: 3); "
          f"misclassified: {names_of(points, wrong)}")

    print("\n== weighted problem (Figure 1(b)) ==")
    # The unweighted-optimal classifier is terrible under weights:
    naive = unweighted.assignment
    print(f"unweighted-optimal classifier costs "
          f"w-err = {weighted_error(weighted, naive):.0f} (paper: 220)")

    result = solve_passive(weighted)
    print(f"true weighted optimum = {result.optimal_error:.0f} (paper: 104)")
    ones = result.assignment == 1
    print(f"optimal classifier maps to 1: {names_of(points, ones)} "
          f"(paper: p10, p12, p16)")

    print("\n== the min-cut view (Figure 2) ==")
    mask = contending_mask(weighted)
    zeros = mask & (weighted.labels == 0)
    ones_c = mask & (weighted.labels == 1)
    print(f"contending label-0 (source edges): {names_of(points, zeros)}")
    print(f"contending label-1 (sink edges):   {names_of(points, ones_c)}")
    print(f"max-flow = min-cut value = {result.flow_value:.0f} (paper: 104)")
    flipped = (weighted.labels == 1) & (result.assignment == 0)
    print(f"cut sink edges (flipped to 0): {names_of(points, flipped)}")


if __name__ == "__main__":
    main()
