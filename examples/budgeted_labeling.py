#!/usr/bin/env python
"""Budget-first active learning: "we can afford 3,000 labels — go."

Teams plan in budgets, not epsilons.  `active_classify_budgeted` inverts
the Theorem 2 cost bound to pick the tightest accuracy target the budget
can buy, enforces the budget *hard* (the oracle refuses probe #B+1), and
degrades gracefully when the budget is tiny.

Run:  python examples/budgeted_labeling.py
"""

from repro import LabelOracle, active_classify_budgeted, error_count
from repro._util import format_table
from repro.datasets.synthetic import width_controlled
from repro.experiments._common import chainwise_optimum


def main() -> None:
    n, w = 24_000, 4
    points = width_controlled(n, w, noise=0.06, rng=13)
    optimum = chainwise_optimum(points)
    print(f"workload: n={n}, dominance width w={w}, "
          f"full-information optimum k*={optimum:.0f}\n")

    rows = []
    for budget in (100, 2_000, 6_000, 12_000, n):
        oracle = LabelOracle(points)
        result = active_classify_budgeted(points.with_hidden_labels(), oracle,
                                          budget=budget, rng=14)
        err = error_count(points, result.classifier)
        rows.append({
            "budget": budget,
            "mode": result.mode,
            "eps_chosen": result.epsilon if result.epsilon else "-",
            "labels_spent": result.probing_cost,
            "errors": err,
            "vs_optimum": f"{err / optimum:.2f}x" if optimum else "-",
        })
        assert result.probing_cost <= budget  # the budget is a hard wall
    print(format_table(rows))

    print(
        "\nReading the table: with the full budget the answer is exactly\n"
        "optimal; workable budgets run the Theorem 2 algorithm at the\n"
        "tightest epsilon the budget affords; tiny budgets fall back to a\n"
        "uniform sample + passive solve.  No mode ever exceeds its budget."
    )


if __name__ == "__main__":
    main()
