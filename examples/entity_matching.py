#!/usr/bin/env python
"""Entity matching on a label budget — the paper's motivating scenario.

A record-linkage team has 20,000 candidate record pairs with two
(grid-quantized) similarity scores each.  Human verdicts cost money, so
the team compares labeling strategies:

* spend everything (probe all 20,000 pairs, exact optimum);
* the paper's Theorem 2 algorithm at several accuracy targets eps;
* the cheap Tao'18-style per-chain binary search.

Run:  python examples/entity_matching.py
"""

from repro import LabelOracle, active_classify, error_count, solve_passive
from repro._util import format_table
from repro.baselines import tao2018_classify
from repro.datasets.entity_matching import generate_entity_matching
from repro.experiments.entity_matching_exp import match_f1


def main() -> None:
    # Similarity scores are quantized to a 0.05 grid, as practical matchers
    # do; that caps the dominance width w — the quantity Theorem 2 charges
    # probes for — far below what continuous scores would give.
    workload = generate_entity_matching(
        n_pairs=20_000, dim=2, match_rate=0.3, label_noise=0.05,
        quantize=20, rng=11)
    points = workload.points
    from repro.poset import dominance_width

    print(f"workload: {points.n} record pairs, {points.dim} similarity "
          f"metrics, {int((points.labels == 1).sum())} true matches, "
          f"dominance width w = {dominance_width(points)}")

    # Full-information reference: what unlimited labeling budget buys.
    optimum = solve_passive(points).optimal_error
    print(f"full-information optimum k* = {optimum:.0f} "
          f"(annotator noise makes it non-zero)\n")

    rows = []
    for eps in (1.0, 0.5, 0.25):
        oracle = workload.oracle()
        result = active_classify(workload.hidden(), oracle,
                                 epsilon=eps, rng=3)
        err = error_count(points, result.classifier)
        rows.append({
            "strategy": f"theorem2 eps={eps}",
            "labels": result.probing_cost,
            "budget_used": f"{result.probing_cost / points.n:.1%}",
            "errors": err,
            "vs_optimum": f"{err / optimum:.3f}x" if optimum else "-",
            "match_F1": f"{match_f1(points, result.classifier):.3f}",
        })

    oracle = workload.oracle()
    tao = tao2018_classify(workload.hidden(), oracle, rng=4)
    err = error_count(points, tao.classifier)
    rows.append({
        "strategy": "tao2018 binary-search",
        "labels": tao.probing_cost,
        "budget_used": f"{tao.probing_cost / points.n:.1%}",
        "errors": err,
        "vs_optimum": f"{err / optimum:.3f}x" if optimum else "-",
        "match_F1": f"{match_f1(points, tao.classifier):.3f}",
    })

    full = solve_passive(points)  # the strategy that probes everything
    err = error_count(points, full.classifier)
    rows.append({
        "strategy": "probe everything",
        "labels": points.n,
        "budget_used": "100.0%",
        "errors": err,
        "vs_optimum": "1.000x",
        "match_F1": f"{match_f1(points, full.classifier):.3f}",
    })

    print(format_table(rows))
    print("\nTakeaway: the Theorem 2 learner reaches within (1+eps) of the "
          "full-information optimum while paying a fraction of the labels; "
          "tighter eps buys accuracy with more labels.")


if __name__ == "__main__":
    main()
