#!/usr/bin/env python
"""Streaming 1-D monotone classification with the augmented index.

The paper's footnote 2 (Section 3.4) mentions that the 1-D algorithm is
implemented efficiently with augmented binary search trees over the
sample points.  This example uses that structure directly in a scenario a
database team actually faces: labels arrive one at a time (say, from a
review queue), and after every arrival we want the currently-optimal
monotone threshold — in O(log n) per update, not a re-solve.

Run:  python examples/streaming_threshold.py
"""

import numpy as np

from repro import PointSet, solve_passive_1d
from repro.core.errindex import OnlineThreshold1D


def main() -> None:
    rng = np.random.default_rng(42)
    n = 5_000
    values = rng.random(n)
    clean = (values > 0.62).astype(int)
    labels = np.where(rng.random(n) < 0.12, 1 - clean, clean)

    # The value support (or any discretization grid) is known up front;
    # the labels stream in.
    learner = OnlineThreshold1D(values)

    checkpoints = {100, 500, 1_000, 2_500, 5_000}
    print(f"{'#labels':>8}  {'tau':>8}  {'stream err':>10}  {'re-solve err':>12}")
    for i in range(n):
        learner.observe(float(values[i]), int(labels[i]))
        if (i + 1) in checkpoints:
            # Cross-check against a full batch re-solve of the prefix.
            prefix = PointSet(values[: i + 1].reshape(-1, 1), labels[: i + 1])
            batch = solve_passive_1d(prefix)
            assert learner.current_error == batch.optimal_error
            print(f"{i + 1:>8}  {learner.classifier().tau:>8.4f}  "
                  f"{learner.current_error:>10.0f}  {batch.optimal_error:>12.0f}")

    print("\nEvery checkpoint matched the batch solver exactly;")
    print("each streaming update costs O(log n) instead of a full re-solve.")


if __name__ == "__main__":
    main()
