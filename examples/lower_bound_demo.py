#!/usr/bin/env python
"""Why exact active classification cannot be cheap (Theorem 1, Section 6).

Builds the paper's adversarial family over n points and sweeps the length
of deterministic pair-probing algorithms, printing the trade-off between
total probing cost (over the whole family) and the number of inputs where
the algorithm's answer is non-optimal.  The measured totals match the
Lemma 19 closed forms exactly, and any algorithm accurate on more than
2/3 of the family pays a quadratic total — i.e. Omega(n) per input.

Run:  python examples/lower_bound_demo.py
"""

from repro import (
    ConstantClassifier,
    DeterministicPairProber,
    adversarial_input,
    evaluate_on_family,
    optimal_error_of_family_input,
    theoretical_totalcost,
)
from repro._util import format_table


def main() -> None:
    n = 64
    half = n // 2

    print("One family member, P_00(2) at n=12: labels flip pair 2 to (0,0)")
    demo = adversarial_input(12, 2, "00")
    print("  values:", [int(v) for v in demo.coords[:, 0]])
    print("  labels:", list(demo.labels))
    print(f"  optimal error of every family input: n/2 - 1 = "
          f"{optimal_error_of_family_input(12)}\n")

    rows = []
    for ell in (0, half // 8, half // 4, half // 2, 3 * half // 4, half):
        prober = DeterministicPairProber(tuple(range(1, ell + 1)),
                                         ConstantClassifier(0))
        evaluation = evaluate_on_family(prober, n)
        rows.append({
            "pairs_probed": ell,
            "totalcost": evaluation.totalcost,
            "closed_form": theoretical_totalcost(n, ell),
            "wrong_inputs": evaluation.nonoptcnt,
            "of": n,
            "accurate_enough": evaluation.nonoptcnt <= n / 3,
            "avg_cost/input": f"{evaluation.totalcost / n:.1f}",
        })
    print(f"Sweeping prober length over the full family (n = {n}, "
          f"{n} inputs):")
    print(format_table(rows))

    quadratic = [r for r in rows if r["accurate_enough"]]
    cheapest = min(quadratic, key=lambda r: r["totalcost"])
    print(f"\nCheapest accurate prober still pays {cheapest['totalcost']} total"
          f" >= n^2/8 = {n * n // 8} -> Omega(n) probes per input on average."
          "\nThat is Theorem 1: you cannot find an *optimal* monotone"
          " classifier without probing a constant fraction of all labels.")


if __name__ == "__main__":
    main()
