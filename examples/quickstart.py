#!/usr/bin/env python
"""Quickstart: passive and active monotone classification in a few lines.

Generates a noisy monotone workload, finds the exact optimum with the
Theorem 4 min-cut solver, then solves the same task actively — probing only
a fraction of the labels — with the Theorem 2 algorithm.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    LabelOracle,
    PointSet,
    active_classify,
    error_count,
    solve_passive,
)
from repro.poset import dominance_width


def main() -> None:
    rng = np.random.default_rng(7)

    # --- A labeled point set: 2-D scores, monotone ground truth + noise.
    n = 2_000
    coords = rng.random((n, 2))
    clean = (coords[:, 0] + coords[:, 1] > 1.0).astype(int)
    noisy = np.where(rng.random(n) < 0.08, 1 - clean, clean)
    points = PointSet(coords, noisy)
    print(f"input: {points!r}")
    print(f"dominance width w = {dominance_width(points)}")

    # --- Passive (Problem 2): all labels known, exact optimum via min-cut.
    passive = solve_passive(points)
    print(f"\npassive optimum k* = {passive.optimal_error:.0f} "
          f"({passive.num_contending} contending points, "
          f"backend={passive.backend})")

    # --- Active (Problem 1): labels hidden, pay per probe.
    oracle = LabelOracle(points)
    active = active_classify(points.with_hidden_labels(), oracle,
                             epsilon=0.5, rng=1)
    achieved = error_count(points, active.classifier)
    print(f"\nactive run (eps=0.5):")
    print(f"  probes           = {active.probing_cost} / {n} "
          f"({active.probing_cost / n:.1%})")
    print(f"  achieved error   = {achieved}")
    print(f"  guarantee        = {(1 + 0.5) * passive.optimal_error:.0f} "
          f"(1+eps) * k*")
    assert achieved <= 1.5 * passive.optimal_error

    # --- The classifier works on unseen points, too.
    fresh = rng.random((5, 2))
    verdicts = active.classifier.classify_matrix(fresh)
    print("\npredictions on new points:")
    for row, verdict in zip(fresh, verdicts):
        print(f"  ({row[0]:.2f}, {row[1]:.2f}) -> {verdict}")


if __name__ == "__main__":
    main()
