#!/usr/bin/env python
"""Record linkage from raw strings: the full Section 1.1 pipeline.

Two databases describe overlapping people (with typos, dropped middle
names, off-by-one birth years, and dangerous *namesakes* — different
people sharing a full name).  We score candidate pairs with real
similarity functions (token Jaccard, trigram Jaccard, field closeness,
year proximity), train a monotone matcher, and inspect where and why it
disagrees with the ground truth.

Run:  python examples/record_linkage.py
"""

from repro import error_count, solve_passive
from repro._util import format_table
from repro.core.validation import conflict_matching_lower_bound
from repro.datasets.records import generate_record_linkage
from repro.evaluation import holdout_evaluation
from repro.poset import dominance_width


def main() -> None:
    workload = generate_record_linkage(n_entities=800, nonmatch_ratio=3.0,
                                       severity=0.6, namesake_fraction=0.2,
                                       rng=21)
    points = workload.points
    matches = int((points.labels == 1).sum())
    print(f"candidate pairs: {points.n} ({matches} true matches), "
          f"{points.dim} similarity metrics, "
          f"dominance width w = {dominance_width(points)}")

    # Show a few raw pairs behind the vectors.
    print("\nsample pairs (name | city | zip | year):")
    shown = {1: 0, 0: 0}
    for i in range(points.n):
        label = int(points.labels[i])
        if shown[label] >= 2:
            continue
        a, b = workload.pair_records[i]
        tag = "MATCH   " if label else "NONMATCH"
        print(f"  {tag} scores={[round(float(s), 2) for s in points.coords[i]]}")
        print(f"           A: {a.name} | {a.city} | {a.zip_code} | {a.birth_year}")
        print(f"           B: {b.name} | {b.city} | {b.zip_code} | {b.birth_year}")
        shown[label] += 1
        if all(v >= 2 for v in shown.values()):
            break

    result = solve_passive(points)
    lower = conflict_matching_lower_bound(points)
    print(f"\nexact monotone optimum k* = {result.optimal_error:.0f} "
          f"(certified lower bound {lower:.0f}) — typos and namesakes make "
          "a perfect monotone matcher impossible")

    report = holdout_evaluation(points, test_fraction=0.25, rng=22)
    print(format_table([{
        "split": "train", **{k: round(v, 3) for k, v in
                             report.train_metrics.items()},
    }, {
        "split": "held-out", **{k: round(v, 3) for k, v in
                                report.test_metrics.items()},
    }]))

    # What does the matcher get wrong?  Mostly namesakes.
    wrong = [i for i in range(points.n)
             if result.assignment[i] != points.labels[i]]
    namesake_errors = sum(
        1 for i in wrong
        if workload.pair_records[i][0].name == workload.pair_records[i][1].name
        and points.labels[i] == 0
    )
    print(f"\nof {len(wrong)} unavoidable errors, {namesake_errors} are "
          "namesake non-matches that genuinely look like matches on every "
          "metric — exactly the failure mode the paper's weighted variant "
          "(Problem 2) lets you price explicitly.")


if __name__ == "__main__":
    main()
