"""Sampling and estimation substrate (paper Section 2, Lemma 5, Appendix A)."""

from .chernoff import (
    chernoff_two_sided_bound,
    chernoff_upper_tail_bound,
    lemma5_case_sample_size,
)
from .estimation import (
    SamplingPlan,
    estimate_count,
    lemma5_sample_size,
    sample_with_replacement,
)

__all__ = [
    "SamplingPlan",
    "lemma5_sample_size",
    "sample_with_replacement",
    "estimate_count",
    "chernoff_two_sided_bound",
    "chernoff_upper_tail_bound",
    "lemma5_case_sample_size",
]
