"""Chernoff bounds used in the paper's Appendix A (proof of Lemma 5).

The appendix invokes two standard forms for i.i.d. Bernoulli(mu) variables
``X_1..X_t`` (eqs. (35) and (36) of the paper):

* multiplicative two-sided, for ``gamma in (0, 1]``:
  ``Pr[|mu - mean| >= gamma mu] <= 2 exp(-gamma^2 t mu / 3)``;
* upper-tail, for ``gamma >= 0``:
  ``Pr[mean >= (1+gamma) mu] <= exp(-gamma^2 t mu / (2 + gamma))``.

This module exposes those bounds (probability of deviation, and the sample
size inverting each), mirroring the appendix's two-case analysis:
``mu >= phi`` uses the two-sided form, ``mu < phi`` the upper tail.  The
tests verify both bounds empirically by Monte Carlo and check that
:func:`repro.stats.estimation.lemma5_sample_size` dominates the per-case
requirements derived here.
"""

from __future__ import annotations

import math

__all__ = [
    "chernoff_two_sided_bound",
    "chernoff_upper_tail_bound",
    "two_sided_sample_size",
    "upper_tail_sample_size",
    "lemma5_case_sample_size",
]


def chernoff_two_sided_bound(gamma: float, t: int, mu: float) -> float:
    """Eq. (35): ``Pr[|mu - mean| >= gamma mu] <= 2 exp(-gamma^2 t mu / 3)``."""
    if not 0 < gamma <= 1:
        raise ValueError(f"gamma must be in (0, 1]; got {gamma}")
    if t < 1:
        raise ValueError("t must be a positive integer")
    if not 0 <= mu <= 1:
        raise ValueError(f"mu must be in [0, 1]; got {mu}")
    return min(1.0, 2.0 * math.exp(-(gamma * gamma) * t * mu / 3.0))


def chernoff_upper_tail_bound(gamma: float, t: int, mu: float) -> float:
    """Eq. (36): ``Pr[mean >= (1+gamma) mu] <= exp(-gamma^2 t mu / (2+gamma))``."""
    if gamma < 0:
        raise ValueError(f"gamma must be non-negative; got {gamma}")
    if t < 1:
        raise ValueError("t must be a positive integer")
    if not 0 <= mu <= 1:
        raise ValueError(f"mu must be in [0, 1]; got {mu}")
    if gamma == 0:
        return 1.0
    return min(1.0, math.exp(-(gamma * gamma) * t * mu / (2.0 + gamma)))


def two_sided_sample_size(phi: float, delta: float, mu: float) -> int:
    """Case 1 of the appendix (``mu >= phi``): t making eq. (35) <= delta.

    With ``gamma = phi / mu``, the bound is at most ``delta`` once
    ``t >= (3 mu / phi^2) ln(2 / delta)``.
    """
    if not 0 < phi <= mu <= 1:
        raise ValueError("case 1 requires 0 < phi <= mu <= 1")
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    return int(math.ceil((3.0 * mu / (phi * phi)) * math.log(2.0 / delta)))


def upper_tail_sample_size(phi: float, delta: float, mu: float) -> int:
    """Case 2 of the appendix (``mu < phi``): t making eq. (36) <= delta.

    With ``gamma = phi / mu``, the bound is at most ``delta`` once
    ``t >= ((2 mu + phi) / phi^2) ln(1 / delta) <= (3 / phi) ln(1 / delta)``.
    """
    if not 0 < mu < phi <= 1:
        raise ValueError("case 2 requires 0 < mu < phi <= 1")
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    return int(math.ceil(((2.0 * mu + phi) / (phi * phi)) * math.log(1.0 / delta)))


def lemma5_case_sample_size(phi: float, delta: float, mu: float) -> int:
    """The appendix's case split, as one function.

    Returns the sample size the relevant Chernoff form demands for absolute
    error ``phi`` at confidence ``1 - delta``, given the true mean ``mu``.
    Always at most the distribution-free Lemma 5 prescription.
    """
    if mu >= phi:
        return two_sided_sample_size(phi, delta, mu)
    if mu > 0:
        return upper_tail_sample_size(phi, delta, mu)
    return 1  # mu = 0: the empirical mean is deterministically 0
