"""Bernoulli estimation with absolute-error guarantees (paper Lemma 5).

Lemma 5: for i.i.d. Bernoulli(mu) variables ``X_1..X_t``, the empirical mean
deviates from ``mu`` by at least ``phi`` with probability at most ``delta``
as long as ``t >= ceil(max(mu/phi^2, 1/phi) * 3 ln(2/delta))``.

Consequently (Section 2), sampling ``t = O((1/phi^2) log(1/delta))`` points
of ``P`` with replacement estimates the count of points satisfying any fixed
predicate up to absolute error ``phi * n`` — in particular it estimates
``err_P(h)`` for one classifier ``h``.

The proof constants make literal sample sizes enormous (the recursion
targets ``phi = eps/256``), so :class:`SamplingPlan` exposes a ``theory``
profile with the exact constants and a ``practical`` default whose constants
are small; the guarantee tests measure the practical profile empirically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._util import RngLike, as_generator

__all__ = [
    "lemma5_sample_size",
    "SamplingPlan",
    "sample_with_replacement",
    "estimate_count",
]


def lemma5_sample_size(phi: float, delta: float, mu_upper: float = 1.0) -> int:
    """Sample size prescribed by Lemma 5 for absolute error ``phi``.

    Parameters
    ----------
    phi:
        Target absolute error of the empirical mean, in ``(0, 1]``.
    delta:
        Failure probability, in ``(0, 1]``.
    mu_upper:
        Known upper bound on the Bernoulli mean ``mu`` (1 when unknown).
        The lemma's bound is monotone in ``mu``, so any valid upper bound
        yields a valid sample size.
    """
    if not 0 < phi <= 1:
        raise ValueError(f"phi must be in (0, 1]; got {phi}")
    if not 0 < delta <= 1:
        raise ValueError(f"delta must be in (0, 1]; got {delta}")
    if not 0 < mu_upper <= 1:
        raise ValueError(f"mu_upper must be in (0, 1]; got {mu_upper}")
    factor = max(mu_upper / (phi * phi), 1.0 / phi)
    return int(math.ceil(factor * 3.0 * math.log(2.0 / delta)))


@dataclass(frozen=True)
class SamplingPlan:
    """Policy object converting (epsilon, delta, |P|) into sample sizes.

    ``profile='theory'`` reproduces the proof constants of Sections 3.2-3.4
    (absolute error target ``eps/256`` per estimator).  ``profile='practical'``
    (the default everywhere) scales sample sizes by ``practical_constant /
    (eps^2)`` times the same logarithmic term, preserving the *shape*
    ``O((1/eps^2) log(|P| h / delta))`` while keeping experiments feasible.

    ``max_fraction`` caps a level's sample at that fraction of the current
    subproblem — beyond it, probing the whole subproblem is strictly better,
    and the 1-D recursion does exactly that.
    """

    profile: str = "practical"
    practical_constant: float = 6.0
    max_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.profile not in ("theory", "practical"):
            raise ValueError(f"profile must be 'theory' or 'practical'; got {self.profile!r}")
        if self.practical_constant <= 0:
            raise ValueError("practical_constant must be positive")
        if not 0 < self.max_fraction <= 1:
            raise ValueError("max_fraction must be in (0, 1]")

    def level_sample_size(self, epsilon: float, delta: float, population: int,
                          levels: int) -> int:
        """Sample size for one estimator (g1 or g2) at one recursion level.

        Matches Section 3.4: ``O((1/eps^2) * log(|P| h / delta))`` where
        ``h`` is the recursion depth bound, union-bounded over the
        ``|P| + 1`` effective classifiers and both estimators.
        """
        if population <= 0:
            return 0
        log_term = math.log(max(2.0, 2.0 * (population + 1) * max(1, levels) / delta))
        if self.profile == "theory":
            phi = epsilon / 256.0
            per_classifier_delta = delta / (2.0 * max(1, levels) * (population + 1))
            return lemma5_sample_size(phi, per_classifier_delta)
        size = int(math.ceil(self.practical_constant / (epsilon * epsilon) * log_term))
        return max(1, size)


def sample_with_replacement(population: Sequence[int], size: int,
                            rng: RngLike = None) -> np.ndarray:
    """Draw ``size`` elements of ``population`` uniformly with replacement."""
    gen = as_generator(rng)
    pop = np.asarray(population)
    if len(pop) == 0:
        raise ValueError("cannot sample from an empty population")
    picks = gen.integers(0, len(pop), size=size)
    return pop[picks]


def estimate_count(sample_hits: int, sample_size: int, population: int) -> float:
    """Scale a sample count up to a population count (Section 2).

    If ``x`` of ``t`` sampled points satisfy the predicate, ``(x/t) * n``
    estimates the number of satisfying points up to ``phi * n``.
    """
    if sample_size <= 0:
        raise ValueError("sample_size must be positive")
    return (sample_hits / sample_size) * population
