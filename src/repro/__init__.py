"""repro — a reproduction of "New Algorithms for Monotone Classification".

Tao & Wang, PODS 2021 (doi:10.1145/3452021.3458324).

The package provides:

* :mod:`repro.core` — point sets, monotone classifiers, the active
  ``(1+eps)``-approximation algorithm (Theorems 2-3), the exact passive
  min-cut solver (Theorem 4), and the Section 6 lower-bound harness
  (Theorem 1);
* :mod:`repro.poset` — dominance digraphs, Hopcroft–Karp matching, Dilworth
  chain decompositions, and dominance width (Lemma 6);
* :mod:`repro.flow` — Dinic and Goldberg–Tarjan push-relabel max-flow with
  min-cut extraction (Lemmas 7-8);
* :mod:`repro.stats` — Lemma 5 sampling machinery;
* :mod:`repro.baselines` — probe-everything, Tao'18-style, A²-style,
  isotonic (PAVA), and trivial baselines;
* :mod:`repro.datasets` — synthetic workloads, the paper's Figure 1
  example, and an entity-matching simulator;
* :mod:`repro.experiments` — the per-claim experiment harness backing
  EXPERIMENTS.md;
* :mod:`repro.obs` — zero-dependency instrumentation (counters, spans,
  probe/flow telemetry) threaded through every layer above;
* :mod:`repro.resilience` — fault-injected oracles, retry/backoff
  policies, and crash-safe checkpoint/resume for the active pipeline.

Quickstart::

    import numpy as np
    from repro import PointSet, LabelOracle, active_classify, solve_passive

    rng = np.random.default_rng(0)
    coords = rng.random((500, 2))
    labels = (coords.sum(axis=1) > 1.0).astype(int)
    truth = PointSet(coords, labels)

    # Passive: exact optimum via min-cut (Theorem 4).
    result = solve_passive(truth)
    print(result.optimal_error)

    # Active: probe few labels for a (1+eps)-approximation (Theorem 2).
    oracle = LabelOracle(truth)
    active = active_classify(truth.with_hidden_labels(), oracle, epsilon=0.5)
    print(active.probing_cost, oracle.cost)
"""

from . import obs
from .core import (
    HIDDEN,
    ActiveResult,
    ConstantClassifier,
    DeterministicPairProber,
    FamilyEvaluation,
    adversarial_family,
    adversarial_input,
    evaluate_on_family,
    optimal_error_of_family_input,
    theoretical_nonoptcnt_lower_bound,
    theoretical_totalcost,
    LabelOracle,
    LabeledPoint,
    MonotoneClassifier,
    PassiveResult,
    PointSet,
    ProbeBudgetExceeded,
    ThresholdClassifier,
    UpsetClassifier,
    active_classify,
    active_classify_1d,
    brute_force_passive,
    error_count,
    is_monotone_assignment,
    monotone_extension,
    solve_passive,
    solve_passive_1d,
    weighted_error,
)
from .core.boundary import (
    boundary_staircase_2d,
    decision_boundary_1d,
    explain_acceptance,
    explain_rejection,
)
from .core.budgeted import (
    BudgetedResult,
    active_classify_budgeted,
    choose_epsilon_for_budget,
)
from .core.callback_oracle import CallbackOracle
from .core.errindex import OnlineThreshold1D, ThresholdErrorIndex
from .core.repair import RepairReport, repair_labels
from .core.exceptions_variant import (
    ExceptionAugmentedClassifier,
    exception_error,
    with_exceptions,
)
from .core.validation import (
    AuditReport,
    audit_active_result,
    audit_passive_result,
    conflict_matching_lower_bound,
)
from .poset import (
    dominance_width,
    greedy_chain_decomposition,
    maximum_antichain,
    minimum_chain_decomposition,
)
from .evaluation import (
    classification_metrics,
    cross_validate,
    holdout_evaluation,
    train_test_split,
)
from .resilience import (
    FaultSpec,
    FaultyOracle,
    ResilienceConfig,
    ResilientOracle,
    RetryPolicy,
    RunReport,
)
from .serialization import load_classifier, save_classifier
from .stats import SamplingPlan

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "obs",
    "PointSet",
    "LabeledPoint",
    "HIDDEN",
    "MonotoneClassifier",
    "ThresholdClassifier",
    "UpsetClassifier",
    "ConstantClassifier",
    "is_monotone_assignment",
    "monotone_extension",
    "error_count",
    "weighted_error",
    "LabelOracle",
    "ProbeBudgetExceeded",
    "PassiveResult",
    "solve_passive",
    "solve_passive_1d",
    "brute_force_passive",
    "ActiveResult",
    "active_classify",
    "active_classify_1d",
    "dominance_width",
    "maximum_antichain",
    "minimum_chain_decomposition",
    "greedy_chain_decomposition",
    "SamplingPlan",
    "DeterministicPairProber",
    "FamilyEvaluation",
    "adversarial_input",
    "adversarial_family",
    "evaluate_on_family",
    "optimal_error_of_family_input",
    "theoretical_totalcost",
    "theoretical_nonoptcnt_lower_bound",
    "ThresholdErrorIndex",
    "OnlineThreshold1D",
    "ExceptionAugmentedClassifier",
    "with_exceptions",
    "exception_error",
    "AuditReport",
    "audit_passive_result",
    "audit_active_result",
    "conflict_matching_lower_bound",
    "save_classifier",
    "load_classifier",
    "BudgetedResult",
    "active_classify_budgeted",
    "choose_epsilon_for_budget",
    "explain_acceptance",
    "explain_rejection",
    "decision_boundary_1d",
    "boundary_staircase_2d",
    "train_test_split",
    "classification_metrics",
    "holdout_evaluation",
    "cross_validate",
    "CallbackOracle",
    "RepairReport",
    "repair_labels",
    "FaultSpec",
    "FaultyOracle",
    "ResilienceConfig",
    "ResilientOracle",
    "RetryPolicy",
    "RunReport",
]
