"""Experiment harness: one module per claim of the paper (see DESIGN.md).

Every experiment module exposes ``run(**params) -> list[dict]`` returning
table rows, plus a module-level ``TITLE``.  :mod:`.runner` registers them
all and prints the tables recorded in EXPERIMENTS.md; the pytest-benchmark
suite under ``benchmarks/`` wraps the same entry points.
"""

from . import (
    ablations,
    active_scaling,
    baseline_comparison,
    confidence,
    entity_matching_exp,
    figure1,
    flow_backends,
    lowerbound_exp,
    passive_scaling,
    poset_scaling,
    recursion_geometry,
    robustness,
    width_profile,
)
from .runner import EXPERIMENTS, run_experiment

__all__ = [
    "EXPERIMENTS",
    "run_experiment",
    "figure1",
    "passive_scaling",
    "active_scaling",
    "baseline_comparison",
    "lowerbound_exp",
    "poset_scaling",
    "flow_backends",
    "entity_matching_exp",
    "confidence",
    "robustness",
    "recursion_geometry",
    "width_profile",
    "ablations",
]
