"""Experiment E11: end-to-end entity matching under a label budget.

The paper's motivating scenario (Section 1.1): labeling a record pair costs
human effort, so the question is how good a monotone matcher one gets per
label spent.  We sweep the active algorithm's ``eps`` knob (which controls
its label appetite) on the simulated workload and report probes, error
ratio vs the full-information optimum, and match-F1 — alongside probe-all
and the Tao'18-style baseline.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..baselines.probe_all import probe_all_classify
from ..baselines.tao2018 import tao2018_classify
from ..core.active import active_classify
from ..core.classifier import MonotoneClassifier
from ..core.errors import error_count
from ..core.passive import solve_passive
from ..core.points import PointSet
from ..datasets.entity_matching import generate_entity_matching

TITLE = "E11 — entity matching: label budget vs accuracy (Section 1.1)"

__all__ = ["run", "match_f1", "TITLE"]


def match_f1(points: PointSet, classifier: MonotoneClassifier) -> float:
    """F1 of the match (label 1) class — the metric practitioners report."""
    predictions = classifier.classify_set(points)
    labels = points.labels
    tp = int(np.count_nonzero((predictions == 1) & (labels == 1)))
    fp = int(np.count_nonzero((predictions == 1) & (labels == 0)))
    fn = int(np.count_nonzero((predictions == 0) & (labels == 1)))
    if tp == 0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return 2 * precision * recall / (precision + recall)


def run(n_pairs: int = 8_000, dim: int = 2, label_noise: float = 0.05,
        quantize: int = 20, epsilons: Sequence[float] = (1.0, 0.5, 0.25),
        seed: int = 0) -> List[dict]:
    """Compare labeling strategies on one simulated matching workload.

    Scores are quantized by default (practical matchers discretize
    similarities), which keeps the dominance width — and therefore the
    Theorem 2 label bill — small; pass ``quantize=0`` for raw continuous
    scores, whose width grows like a random poset's and pushes the active
    algorithm toward probe-everything.
    """
    workload = generate_entity_matching(n_pairs, dim=dim,
                                        label_noise=label_noise,
                                        quantize=quantize, rng=seed)
    points = workload.points
    optimum = solve_passive(points).optimal_error
    hidden = workload.hidden()

    def ratio(err: float) -> float:
        return err / optimum if optimum > 0 else (1.0 if err == 0 else np.inf)

    rows: List[dict] = []
    for eps in epsilons:
        oracle = workload.oracle()
        result = active_classify(hidden, oracle, epsilon=eps, rng=seed)
        err = error_count(points, result.classifier)
        rows.append({
            "method": f"theorem2(eps={eps})",
            "labels_spent": result.probing_cost,
            "label_fraction": result.probing_cost / n_pairs,
            "error_ratio": ratio(err),
            "match_f1": match_f1(points, result.classifier),
            "width_w": result.num_chains,
        })

    oracle = workload.oracle()
    tao = tao2018_classify(hidden, oracle, rng=seed)
    rows.append({
        "method": "tao2018",
        "labels_spent": tao.probing_cost,
        "label_fraction": tao.probing_cost / n_pairs,
        "error_ratio": ratio(error_count(points, tao.classifier)),
        "match_f1": match_f1(points, tao.classifier),
        "width_w": tao.num_chains,
    })

    oracle = workload.oracle()
    full = probe_all_classify(hidden, oracle)
    rows.append({
        "method": "probe_all",
        "labels_spent": full.probing_cost,
        "label_fraction": 1.0,
        "error_ratio": ratio(error_count(points, full.classifier)),
        "match_f1": match_f1(points, full.classifier),
        "width_w": "n/a",
    })
    return rows
