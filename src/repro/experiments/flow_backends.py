"""Experiment E10: max-flow backend agreement and runtime (Lemmas 7-8).

Both from-scratch backends (Dinic, Goldberg–Tarjan push-relabel) must agree
with each other — and, when available, with networkx — on random layered
networks and on the passive-reduction networks actually produced by
Theorem 4.  Runtime is recorded per backend.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .._util import as_generator
from ..obs import Timer
from ..core.passive import solve_passive
from ..datasets.synthetic import planted_monotone
from ..flow import FLOW_BACKENDS, FlowNetwork, solve_max_flow

TITLE = "E10 — max-flow backends: agreement and runtime (Lemmas 7-8)"

__all__ = ["run", "random_flow_network", "TITLE"]


def random_flow_network(num_nodes: int, density: float, seed: int,
                        max_capacity: float = 10.0) -> FlowNetwork:
    """A random DAG-ish flow network with designated source 0 / sink last."""
    gen = as_generator(seed)
    network = FlowNetwork(num_nodes)
    source, sink = 0, num_nodes - 1
    for u in range(num_nodes - 1):
        for v in range(u + 1, num_nodes):
            if v == source or u == sink:
                continue
            if gen.random() < density:
                network.add_edge(u, v, float(gen.random() * max_capacity))
    return network


def _networkx_value(network: FlowNetwork, source: int, sink: int) -> Optional[float]:
    """Max-flow value via networkx, or ``None`` when unavailable."""
    try:
        import networkx as nx
    except ImportError:  # pragma: no cover - networkx ships in the test env
        return None
    graph = nx.DiGraph()
    graph.add_nodes_from(range(network.num_nodes))
    for _arc_id, arc in network.forward_arcs():
        if graph.has_edge(arc.tail, arc.head):
            graph[arc.tail][arc.head]["capacity"] += arc.capacity
        else:
            graph.add_edge(arc.tail, arc.head, capacity=arc.capacity)
    return float(nx.maximum_flow_value(graph, source, sink))


def run(sizes: Sequence[int] = (50, 100, 200, 400),
        density: float = 0.1, seed: int = 0,
        passive_ns: Sequence[int] = (500, 1_000)) -> List[dict]:
    """Cross-check every backend on random and passive-reduction networks."""
    rows: List[dict] = []
    for size in sizes:
        reference = random_flow_network(size, density, seed)
        values = {}
        times = {}
        for backend in FLOW_BACKENDS:
            network = random_flow_network(size, density, seed)
            with Timer() as timer:
                values[backend] = solve_max_flow(network, 0, size - 1,
                                                 backend=backend)
            times[backend] = timer.elapsed
        nx_value = _networkx_value(reference, 0, size - 1)
        agree = np.allclose(list(values.values()), values["dinic"], rtol=1e-9)
        if nx_value is not None:
            agree = agree and np.isclose(nx_value, values["dinic"], rtol=1e-9)
        rows.append({
            "network": f"random(V={size}, p={density})",
            "dinic_value": values["dinic"],
            "push_relabel_value": values["push_relabel"],
            "networkx_value": nx_value if nx_value is not None else "n/a",
            "agree": bool(agree),
            "dinic_time_s": times["dinic"],
            "push_relabel_time_s": times["push_relabel"],
        })
    for n in passive_ns:
        points = planted_monotone(n, 3, noise=0.1, rng=seed, weights="random")
        per_backend = {}
        times = {}
        for backend in FLOW_BACKENDS:
            with Timer() as timer:
                per_backend[backend] = solve_passive(
                    points, backend=backend).optimal_error
            times[backend] = timer.elapsed
        rows.append({
            "network": f"passive-reduction(n={n}, d=3)",
            "dinic_value": per_backend["dinic"],
            "push_relabel_value": per_backend["push_relabel"],
            "networkx_value": "n/a",
            "agree": bool(np.isclose(per_backend["dinic"],
                                     per_backend["push_relabel"], rtol=1e-9)),
            "dinic_time_s": times["dinic"],
            "push_relabel_time_s": times["push_relabel"],
        })
    return rows
