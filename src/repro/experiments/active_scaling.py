"""Experiments E4-E6: probing cost of the active algorithm (Theorem 2).

Theorem 2: ``O((w/eps^2) * log n * log(n/w))`` probes suffice for a
``(1+eps)``-approximation w.h.p.  Three sweeps expose the three factors:

* E4 — ``n`` grows with ``w`` and ``eps`` fixed: cost should grow
  polylogarithmically (i.e. the probed *fraction* should vanish);
* E5 — ``w`` grows with ``n`` and ``eps`` fixed: cost should grow about
  linearly in ``w``;
* E6 — ``eps`` shrinks with ``n`` and ``w`` fixed: cost should grow about
  ``1/eps^2``.

Every row also reports the achieved error ratio ``err / k*`` (with ``k*``
from the exact passive solver), which Theorem 2 bounds by ``1 + eps``
w.h.p.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..core.active import active_classify
from ..core.bounds import theorem2_probing_shape
from ..core.errors import error_count
from ..core.oracle import LabelOracle
from ..datasets.synthetic import width_controlled
from ._common import chainwise_optimum, map_configs

TITLE = "E4/E5/E6 — active probing cost vs n, w, eps (Theorem 2)"

__all__ = ["run", "run_n_sweep", "run_w_sweep", "run_eps_sweep", "TITLE"]


def _one_run_config(config: dict) -> dict:
    """Picklable adapter so sweeps can fan ``_one_run`` out across workers."""
    return _one_run(**config)


def _one_run(n: int, width: int, epsilon: float, noise: float, seed: int,
             trials: int) -> dict:
    """Average probing cost and error ratio over ``trials`` runs."""
    points = width_controlled(n, width, noise=noise, rng=seed)
    # width_controlled chains are pairwise incomparable, so the chainwise
    # optimum is the exact k* without an O(n^2) dominance matrix.
    optimum = chainwise_optimum(points)
    probes = []
    ratios = []
    for trial in range(trials):
        oracle = LabelOracle(points)
        result = active_classify(points.with_hidden_labels(), oracle,
                                 epsilon=epsilon, rng=seed + 1000 + trial)
        err = error_count(points, result.classifier)
        probes.append(result.probing_cost)
        ratios.append(err / optimum if optimum > 0 else (1.0 if err == 0 else np.inf))
    mean_probes = float(np.mean(probes))
    # Measured / theoretical-shape ratio: roughly constant across a sweep
    # when the implementation matches the Theorem 2 bound's shape.  Probes
    # are capped at n, so the ratio dips once the bound exceeds n.
    shape = theorem2_probing_shape(n, width, epsilon)
    return {
        "n": n,
        "w": width,
        "eps": epsilon,
        "k_star": optimum,
        "probes": mean_probes,
        "probe_fraction": mean_probes / n,
        "probes_over_bound_shape": mean_probes / shape,
        "error_ratio": float(np.mean(ratios)),
        "max_error_ratio": float(np.max(ratios)),
        "guarantee": 1.0 + epsilon,
    }


def run_n_sweep(ns: Sequence[int] = (2_000, 4_000, 8_000, 16_000, 32_000),
                width: int = 8, epsilon: float = 1.0, noise: float = 0.05,
                seed: int = 0, trials: int = 3, workers: int = 1) -> List[dict]:
    """E4: probing cost as ``n`` grows (fixed ``w``, ``eps``)."""
    configs = [dict(n=n, width=width, epsilon=epsilon, noise=noise,
                    seed=seed, trials=trials) for n in ns]
    return map_configs(_one_run_config, configs, workers=workers)


def run_w_sweep(widths: Sequence[int] = (2, 4, 8, 16, 32),
                n: int = 16_000, epsilon: float = 1.0, noise: float = 0.05,
                seed: int = 0, trials: int = 3, workers: int = 1) -> List[dict]:
    """E5: probing cost as ``w`` grows (fixed ``n``, ``eps``)."""
    configs = [dict(n=n, width=w, epsilon=epsilon, noise=noise,
                    seed=seed, trials=trials) for w in widths]
    return map_configs(_one_run_config, configs, workers=workers)


def run_eps_sweep(epsilons: Sequence[float] = (1.0, 0.7, 0.5, 0.35, 0.25),
                  n: int = 16_000, width: int = 8, noise: float = 0.05,
                  seed: int = 0, trials: int = 3, workers: int = 1) -> List[dict]:
    """E6: probing cost as ``eps`` shrinks (fixed ``n``, ``w``)."""
    configs = [dict(n=n, width=width, epsilon=eps, noise=noise,
                    seed=seed, trials=trials) for eps in epsilons]
    return map_configs(_one_run_config, configs, workers=workers)


def run(seed: int = 0, trials: int = 3, workers: int = 1) -> List[dict]:
    """All three sweeps, tagged by sweep name.

    ``workers`` fans each sweep's configs out across processes; every
    config is independently seeded, so the rows are identical to a serial
    run for any worker count.
    """
    rows: List[dict] = []
    for row in run_n_sweep(seed=seed, trials=trials, workers=workers):
        rows.append({"sweep": "E4:n", **row})
    for row in run_w_sweep(seed=seed, trials=trials, workers=workers):
        rows.append({"sweep": "E5:w", **row})
    for row in run_eps_sweep(seed=seed, trials=trials, workers=workers):
        rows.append({"sweep": "E6:eps", **row})
    return rows
