"""Experiment E8: the Ω(n) lower bound trade-off (Theorem 1, Lemma 19).

Runs deterministic pair-probers of every length ``ℓ`` over the full
adversarial family and checks the measured totals against the closed forms:
``totalcost = nℓ - ℓ² + ℓ`` (see the sign-slip note in
:func:`repro.core.lowerbound.theoretical_totalcost`) and
``nonoptcnt >= n/2 - ℓ``.  The punchline of Theorem 1 appears at the
``nonoptcnt <= n/3`` threshold: every prober accurate enough forces
``totalcost = Ω(n²)``, i.e. ``Ω(n)`` probes per input on average.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.classifier import ConstantClassifier
from ..core.lowerbound import (
    DeterministicPairProber,
    evaluate_on_family,
    theoretical_nonoptcnt_lower_bound,
    theoretical_totalcost,
)

TITLE = "E8 — lower-bound family: probes vs non-optimal inputs (Theorem 1)"

__all__ = ["run", "TITLE"]


def run(n: int = 64, lengths: Sequence[int] = None) -> List[dict]:
    """Sweep prober length ``ℓ`` from 0 to ``n/2`` over the family."""
    if lengths is None:
        half = n // 2
        lengths = sorted({0, half // 8, half // 4, half // 2,
                          3 * half // 4, half})
    rows: List[dict] = []
    for ell in lengths:
        prober = DeterministicPairProber(
            probe_sequence=tuple(range(1, ell + 1)),
            fallback=ConstantClassifier(0),
        )
        evaluation = evaluate_on_family(prober, n)
        predicted_cost = theoretical_totalcost(n, ell)
        predicted_nonopt = theoretical_nonoptcnt_lower_bound(n, ell)
        rows.append({
            "n": n,
            "ell": ell,
            "totalcost": evaluation.totalcost,
            "totalcost_formula": predicted_cost,
            "cost_match": evaluation.totalcost == predicted_cost,
            "nonoptcnt": evaluation.nonoptcnt,
            "nonoptcnt_lb": predicted_nonopt,
            "lb_holds": evaluation.nonoptcnt >= predicted_nonopt,
            "accurate(nonopt<=n/3)": evaluation.nonoptcnt <= n / 3,
            "avg_cost_per_input": evaluation.totalcost / n,
        })
    return rows
