"""Experiment E13: robustness of the active algorithm to the noise process.

Theorem 2's guarantee is agnostic — it holds for any labeling.  This
experiment checks the *practice* matches: at equal flip rates, uniform,
boundary-concentrated, and asymmetric noise all stay within the `(1+eps)`
guarantee, with probing cost varying by where the conflicts sit
(boundary-concentrated noise inflates the uncertainty windows the 1-D
recursion must keep splitting).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..core.active import active_classify
from ..core.errors import error_count
from ..core.oracle import LabelOracle
from ..datasets.noise import NOISE_MODELS
from ..datasets.synthetic import width_controlled
from ._common import chainwise_optimum

TITLE = "E13 — noise-model robustness of the active algorithm"

__all__ = ["run", "TITLE"]


def run(n: int = 12_000, width: int = 4, epsilon: float = 0.5,
        rate: float = 0.08, models: Sequence[str] = ("uniform", "boundary",
                                                     "asymmetric"),
        trials: int = 3, seed: int = 0) -> List[dict]:
    """Measure probes and error ratios under each registered noise model."""
    clean = width_controlled(n, width, noise=0.0, rng=seed)
    rows: List[dict] = []
    for model_name in models:
        transform = NOISE_MODELS[model_name]
        probes, ratios, optima = [], [], []
        for trial in range(trials):
            noisy = transform(clean, rate, rng=seed + 10 * trial)
            optimum = chainwise_optimum(noisy)
            oracle = LabelOracle(noisy)
            result = active_classify(noisy.with_hidden_labels(), oracle,
                                     epsilon=epsilon, rng=seed + trial)
            err = error_count(noisy, result.classifier)
            probes.append(result.probing_cost)
            ratios.append(err / optimum if optimum else 1.0)
            optima.append(optimum)
        rows.append({
            "noise_model": model_name,
            "rate": rate,
            "n": n,
            "w": width,
            "eps": epsilon,
            "mean_k_star": float(np.mean(optima)),
            "mean_probes": float(np.mean(probes)),
            "mean_error_ratio": float(np.mean(ratios)),
            "max_error_ratio": float(np.max(ratios)),
            "guarantee": 1 + epsilon,
        })
    return rows
