"""Experiment E14: the geometry of the Section 3 recursion.

Lemma 10 drives the whole 1-D cost analysis: every level's uncertainty
window ``P'`` holds at most ``(5/8)|P|`` points (w.h.p.), so the depth is
``O(log n)`` and the per-level sample sizes sum to the Lemma 9 bound.
This experiment aggregates :class:`~repro.core.active_1d.LevelTrace`
telemetry over many runs and reports, per level: populations, sample
sizes, shrink factors, and how runs terminate — the empirical picture of
the proof's mechanism rather than just its conclusion.
"""

from __future__ import annotations

from collections import Counter
from typing import List

import numpy as np

from ..core.active_1d import active_classify_1d
from ..core.oracle import LabelOracle
from ..datasets.synthetic import planted_threshold_1d

TITLE = "E14 — recursion geometry: shrink factors and depth (Lemma 10)"

__all__ = ["run", "TITLE"]


def run(n: int = 50_000, noise: float = 0.1, epsilon: float = 0.5,
        runs: int = 20, seed: int = 0) -> List[dict]:
    """Aggregate level traces across ``runs`` independent executions."""
    points = planted_threshold_1d(n, noise=noise, rng=seed)
    hidden = points.with_hidden_labels()

    per_depth_population: dict = {}
    per_depth_samples: dict = {}
    shrink_factors: List[float] = []
    terminal_kinds: Counter = Counter()
    depths: List[int] = []

    for run_id in range(runs):
        oracle = LabelOracle(points)
        result = active_classify_1d(hidden, oracle, epsilon=epsilon,
                                    rng=seed + 100 + run_id)
        depths.append(result.levels)
        for level in result.trace:
            per_depth_population.setdefault(level.depth, []).append(
                level.population)
            per_depth_samples.setdefault(level.depth, []).append(
                level.sample_size)
            if level.kind == "shrink":
                shrink_factors.append(level.shrink_factor)
        terminal_kinds[result.trace[-1].kind] += 1

    rows: List[dict] = []
    for depth in sorted(per_depth_population):
        populations = per_depth_population[depth]
        samples = per_depth_samples[depth]
        rows.append({
            "level": depth,
            "runs_reaching": len(populations),
            "mean_population": float(np.mean(populations)),
            "mean_sample": float(np.mean(samples)),
            "lemma10_bound": f"<= {(5 / 8) ** depth * n:.0f}",
        })
    shrink = np.asarray(shrink_factors)
    rows.append({
        "level": "summary",
        "runs_reaching": runs,
        "mean_population": float(np.mean(depths)),  # mean depth, relabeled
        "mean_sample": float(shrink.mean()) if len(shrink) else 0.0,
        "lemma10_bound": (
            f"shrink p95={np.percentile(shrink, 95):.3f} (<=0.625 whp); "
            f"terminal: {dict(terminal_kinds)}"
        ) if len(shrink) else "no shrink levels",
    })
    return rows
