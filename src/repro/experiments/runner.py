"""Registry and CLI driver for the experiment suite.

``python -m repro.experiments.runner [name ...]`` prints the table of every
requested experiment (all of them by default).  The same registry backs the
``repro-monotone experiment`` CLI subcommand and the benchmark suite.

Flags:

* ``--metrics`` wraps each experiment in its own
  :func:`repro.obs.metrics_session` and prints the instrumentation report
  (probe counters, span timings, flow telemetry) after its table — the
  cost side of every claim next to the claim itself;
* ``--workers N`` fans the requested experiments out across ``N`` worker
  processes (they are independent, seeded configs, so the tables are
  identical to a serial run);
* ``--out-dir DIR`` additionally writes each experiment's rows to
  ``DIR/<name>.json``, atomically and from inside the worker that
  produced them — a crashed or failing experiment can neither corrupt
  its own file nor take down results that already landed.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import nullcontext
from typing import Any, Callable, Dict, List, Optional, Sequence

from .. import obs
from .._util import format_table
from ..parallel.grid import GridConfig, run_grid

__all__ = ["EXPERIMENTS", "run_experiment", "main"]


def _registry() -> Dict[str, Callable[..., List[dict]]]:
    from . import (
        ablations,
        active_scaling,
        baseline_comparison,
        chaos,
        confidence,
        entity_matching_exp,
        figure1,
        flow_backends,
        lowerbound_exp,
        passive_scaling,
        poset_scaling,
        recursion_geometry,
        robustness,
        width_profile,
    )

    return {
        "figure1": figure1.run,
        "passive_scaling": passive_scaling.run,
        "active_scaling": active_scaling.run,
        "baseline_comparison": baseline_comparison.run,
        "lowerbound": lowerbound_exp.run,
        "poset_scaling": poset_scaling.run,
        "flow_backends": flow_backends.run,
        "entity_matching": entity_matching_exp.run,
        "confidence": confidence.run,
        "robustness": robustness.run,
        "recursion_geometry": recursion_geometry.run,
        "width_profile": width_profile.run,
        "ablations": ablations.run,
        "chaos": chaos.run,
    }


EXPERIMENTS: Dict[str, Callable[..., List[dict]]] = _registry()


def run_experiment(name: str, *,
                   registry: Optional["obs.MetricsRegistry"] = None,
                   **params) -> List[dict]:
    """Run a registered experiment by name, returning its table rows.

    When ``registry`` is given, the experiment runs inside a metrics
    session targeting it, so callers can inspect counters/spans alongside
    the returned rows.
    """
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    if registry is None:
        return runner(**params)
    with obs.metrics_session(registry):
        return runner(**params)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner",
        description="Run registered experiments and print their tables.",
    )
    parser.add_argument("names", nargs="*",
                        help="experiment names (default: all)")
    parser.add_argument("--metrics", action="store_true",
                        help="print an instrumentation report per experiment")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="write a Chrome trace-event timeline of the "
                             "whole run to FILE (open in Perfetto)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for experiment fan-out "
                             "(default 1 = serial; results are identical)")
    parser.add_argument("--out-dir", default=None, metavar="DIR",
                        help="write each experiment's rows to DIR/<name>.json "
                             "(atomic, crash-safe, per-experiment files)")
    parser.add_argument("--resume", action="store_true",
                        help="skip experiments whose output file in --out-dir "
                             "already exists from a previous (killed) run")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Print the tables of the requested experiments (default: all)."""
    argv = list(sys.argv[1:] if argv is None else argv)
    args = build_parser().parse_args(argv)
    names = args.names or list(EXPERIMENTS)
    for name in names:
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}")
            return 2

    if args.resume and args.out_dir is None:
        print("--resume requires --out-dir (prior results live there)")
        return 2
    configs = [GridConfig(name=name) for name in names]
    # With --trace-out the whole run happens inside a tracing session:
    # serial configs trace into it directly; worker-side sessions (grid
    # capture or pool capture) ride home in snapshots and are merged
    # below, so one coherent timeline covers every experiment.
    trace_registry: Optional[obs.MetricsRegistry] = None
    session: Any = nullcontext()
    if args.trace_out is not None:
        trace_registry = obs.MetricsRegistry("experiments", trace=True)
        session = obs.metrics_session(trace_registry)
    with session:
        results = run_grid(configs, workers=args.workers, out_dir=args.out_dir,
                           capture_metrics=args.metrics,
                           capture_trace=args.trace_out is not None,
                           resume=args.resume)
    failed = False
    for result in results:
        module = sys.modules[EXPERIMENTS[result.name].__module__]
        title = getattr(module, "TITLE", result.name)
        print(f"\n=== {title} ===")
        if result.resumed:
            print(f"(resumed from {result.out_path})")
        if not result.ok:
            print(f"FAILED: {result.error}")
            failed = True
            continue
        for group in group_rows_by_schema(result.rows or []):
            print(format_table(group))
            print()
        if result.out_path is not None:
            print(f"wrote rows to {result.out_path}")
        if result.metrics is not None and trace_registry is not None:
            trace_registry.merge_snapshot(result.metrics,
                                          span_prefix=result.label)
        if args.metrics and result.metrics is not None:
            registry = obs.MetricsRegistry(result.name)
            registry.merge_snapshot(result.metrics)
            print(f"--- instrumentation: {result.name} ---")
            print(obs.report(registry))
            print()
    if trace_registry is not None and args.trace_out is not None:
        obs.to_chrome_trace(trace_registry, args.trace_out)
        print(f"wrote trace to {args.trace_out}")
    return 1 if failed else 0


def group_rows_by_schema(rows: List[dict]) -> List[List[dict]]:
    """Split heterogeneous rows into runs sharing the same column set.

    Experiments like the ablations return rows with different schemas;
    printing them in one table would blank out the differing columns.
    """
    groups: List[List[dict]] = []
    for row in rows:
        if groups and set(groups[-1][0].keys()) == set(row.keys()):
            groups[-1].append(row)
        else:
            groups.append([row])
    return groups


if __name__ == "__main__":
    raise SystemExit(main())
