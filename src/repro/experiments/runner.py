"""Registry and CLI driver for the experiment suite.

``python -m repro.experiments.runner [name ...]`` prints the table of every
requested experiment (all of them by default).  The same registry backs the
``repro-monotone experiment`` CLI subcommand and the benchmark suite.

Pass ``--metrics`` to wrap each experiment in its own
:func:`repro.obs.metrics_session` and print the instrumentation report
(probe counters, span timings, flow telemetry) after its table — the cost
side of every claim next to the claim itself.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, List, Optional, Sequence

from .. import obs
from .._util import format_table

__all__ = ["EXPERIMENTS", "run_experiment", "main"]


def _registry() -> Dict[str, Callable[..., List[dict]]]:
    from . import (
        ablations,
        active_scaling,
        baseline_comparison,
        confidence,
        entity_matching_exp,
        figure1,
        flow_backends,
        lowerbound_exp,
        passive_scaling,
        poset_scaling,
        recursion_geometry,
        robustness,
        width_profile,
    )

    return {
        "figure1": figure1.run,
        "passive_scaling": passive_scaling.run,
        "active_scaling": active_scaling.run,
        "baseline_comparison": baseline_comparison.run,
        "lowerbound": lowerbound_exp.run,
        "poset_scaling": poset_scaling.run,
        "flow_backends": flow_backends.run,
        "entity_matching": entity_matching_exp.run,
        "confidence": confidence.run,
        "robustness": robustness.run,
        "recursion_geometry": recursion_geometry.run,
        "width_profile": width_profile.run,
        "ablations": ablations.run,
    }


EXPERIMENTS: Dict[str, Callable[..., List[dict]]] = _registry()


def run_experiment(name: str, *,
                   registry: Optional["obs.MetricsRegistry"] = None,
                   **params) -> List[dict]:
    """Run a registered experiment by name, returning its table rows.

    When ``registry`` is given, the experiment runs inside a metrics
    session targeting it, so callers can inspect counters/spans alongside
    the returned rows.
    """
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    if registry is None:
        return runner(**params)
    with obs.metrics_session(registry):
        return runner(**params)


def main(argv: Sequence[str] = None) -> int:
    """Print the tables of the requested experiments (default: all)."""
    argv = list(sys.argv[1:] if argv is None else argv)
    with_metrics = "--metrics" in argv
    if with_metrics:
        argv = [a for a in argv if a != "--metrics"]
    names = argv or list(EXPERIMENTS)
    for name in names:
        if name not in EXPERIMENTS:
            print(f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}")
            return 2
    for name in names:
        module = sys.modules[EXPERIMENTS[name].__module__]
        title = getattr(module, "TITLE", name)
        print(f"\n=== {title} ===")
        registry = obs.MetricsRegistry(name) if with_metrics else None
        rows = run_experiment(name, registry=registry)
        for group in group_rows_by_schema(rows):
            print(format_table(group))
            print()
        if registry is not None:
            print(f"--- instrumentation: {name} ---")
            print(obs.report(registry))
            print()
    return 0


def group_rows_by_schema(rows: List[dict]) -> List[List[dict]]:
    """Split heterogeneous rows into runs sharing the same column set.

    Experiments like the ablations return rows with different schemas;
    printing them in one table would blank out the differing columns.
    """
    groups: List[List[dict]] = []
    for row in rows:
        if groups and set(groups[-1][0].keys()) == set(row.keys()):
            groups[-1].append(row)
        else:
            groups.append([row])
    return groups


if __name__ == "__main__":
    raise SystemExit(main())
