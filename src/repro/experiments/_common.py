"""Shared helpers for the experiment modules."""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence

import numpy as np

from ..core.passive_1d import best_threshold
from ..core.points import PointSet
from ..parallel.pool import pool_map
from ..poset.chains import minimum_chain_decomposition

__all__ = ["chainwise_optimum", "map_configs"]


def map_configs(fn: Callable[[Dict[str, Any]], dict],
                configs: Sequence[Dict[str, Any]],
                workers: int = 1) -> List[dict]:
    """Run ``fn`` over a sweep's config dicts, optionally across processes.

    Experiment sweeps are grids of independent, fully-seeded configs, so
    fanning them out never changes the rows — ``workers=1`` (the default)
    is the plain serial loop, larger values dispatch configs to a process
    pool (``fn`` must be a module-level function so it pickles).  Rows
    come back in config order either way.
    """
    return pool_map(fn, list(configs), workers=workers)


def chainwise_optimum(points: PointSet) -> float:
    """Exact ``k*`` for point sets whose chains are pairwise incomparable.

    On such inputs (e.g. :func:`repro.datasets.synthetic.width_controlled`,
    whose chains are separated so that no cross-chain pair is comparable),
    a monotone classifier constrains each chain independently, so the
    global optimum is the sum of per-chain 1-D optima — computable in
    ``O(n log n)`` instead of the ``O(n^2)`` the min-cut solver needs.
    Tests verify agreement with :func:`repro.core.passive.solve_passive`
    on sizes where both are feasible.

    For general inputs this value is only a *lower bound* on ``k*``
    (cross-chain monotonicity constraints are ignored); do not use it
    outside decomposable workloads.
    """
    points.require_full_labels()
    decomposition = minimum_chain_decomposition(points)
    total = 0.0
    for chain in decomposition.chains:
        positions = np.arange(len(chain), dtype=float)
        labels = points.labels[np.asarray(chain, dtype=int)]
        _tau, err = best_threshold(positions, labels)
        total += err
    return float(total)
