"""Experiment E3: passive-solver CPU time and optimality (Theorem 4).

Theorem 4 claims Problem 2 is solvable in ``O(d n^2) + T_maxflow(n)``.  We
measure wall-clock time of the full pipeline (dominance matrix, contending
reduction, min-cut) as ``n`` and ``d`` grow, and certify optimality on every
instance: for ``d = 1`` against the exact prefix-sum solver, and for small
``n`` against exhaustive search.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from ..core.passive import brute_force_passive, solve_passive
from ..core.passive_1d import solve_passive_1d
from ..datasets.synthetic import planted_monotone, planted_threshold_1d

TITLE = "E3 — passive weighted classification: CPU time vs n, d (Theorem 4)"

__all__ = ["run", "TITLE"]


def run(ns: Sequence[int] = (100, 200, 400, 800, 1600),
        ds: Sequence[int] = (1, 2, 4, 8),
        noise: float = 0.1, backend: str = "dinic",
        seed: int = 0) -> List[dict]:
    """Time the Theorem 4 solver across input sizes and dimensionalities."""
    rows: List[dict] = []
    for d in ds:
        for n in ns:
            if d == 1:
                points = planted_threshold_1d(n, noise=noise, rng=seed,
                                              weights="random")
            else:
                points = planted_monotone(n, d, noise=noise, rng=seed,
                                          weights="random")
            start = time.perf_counter()
            result = solve_passive(points, backend=backend)
            elapsed = time.perf_counter() - start

            check: Optional[str] = None
            if d == 1:
                exact = solve_passive_1d(points).optimal_error
                check = "ok" if abs(exact - result.optimal_error) < 1e-9 else "MISMATCH"
            elif n <= 14:
                exact = brute_force_passive(points)
                check = "ok" if abs(exact - result.optimal_error) < 1e-9 else "MISMATCH"

            rows.append({
                "d": d,
                "n": n,
                "noise": noise,
                "contending": result.num_contending,
                "opt_weighted_error": result.optimal_error,
                "time_s": elapsed,
                "optimality_check": check or "n/a",
            })
    return rows
