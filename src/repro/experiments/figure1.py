"""Experiments E1 and E2: the Figure 1 / Figure 2 worked example.

Verifies, computationally, every number the paper publishes about its
running example: dominance width 6, optimal unweighted error ``k* = 3``,
optimal weighted error 104, the optimal weighted assignment mapping exactly
{p10, p12, p16} to 1, the contending sets of Figure 2(a), and the validity
of the paper's 6-chain decomposition.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.passive import contending_mask, solve_passive
from ..datasets.figures import (
    FIGURE1_ANTICHAIN,
    FIGURE1_CHAINS,
    FIGURE1_CONTENDING,
    FIGURE1_OPTIMAL_UNWEIGHTED_ERROR,
    FIGURE1_OPTIMAL_WEIGHTED_ERROR,
    FIGURE1_WIDTH,
    figure1_point_set,
    figure1_weighted_point_set,
)
from ..poset.chains import ChainDecomposition, is_valid_chain_decomposition
from ..poset.width import dominance_width, is_antichain

TITLE = "E1/E2 — Figure 1 worked example (k*, w, weighted optimum, min cut)"

__all__ = ["run", "TITLE"]


def run() -> List[dict]:
    """Reproduce every published quantity of the worked example."""
    points = figure1_point_set()
    weighted = figure1_weighted_point_set()
    name_to_index = {f"p{i + 1}": i for i in range(points.n)}

    rows: List[dict] = []

    width = dominance_width(points)
    rows.append({
        "quantity": "dominance width w",
        "paper": FIGURE1_WIDTH,
        "measured": width,
        "match": width == FIGURE1_WIDTH,
    })

    antichain_ok = is_antichain(points, [name_to_index[n] for n in FIGURE1_ANTICHAIN])
    rows.append({
        "quantity": "anti-chain {p10,p11,p12,p13,p14,p16}",
        "paper": "valid",
        "measured": "valid" if antichain_ok else "INVALID",
        "match": antichain_ok,
    })

    paper_chains = ChainDecomposition(
        [[name_to_index[n] for n in chain] for chain in FIGURE1_CHAINS],
        points.n, method="paper",
    )
    chains_ok = is_valid_chain_decomposition(points, paper_chains)
    rows.append({
        "quantity": "paper's 6-chain decomposition",
        "paper": "valid",
        "measured": "valid" if chains_ok else "INVALID",
        "match": chains_ok,
    })

    unweighted = solve_passive(points)
    rows.append({
        "quantity": "optimal unweighted error k*",
        "paper": FIGURE1_OPTIMAL_UNWEIGHTED_ERROR,
        "measured": unweighted.optimal_error,
        "match": unweighted.optimal_error == FIGURE1_OPTIMAL_UNWEIGHTED_ERROR,
    })

    mask = contending_mask(points)
    for label in (0, 1):
        got = sorted(
            f"p{i + 1}" for i in np.flatnonzero(mask & (points.labels == label))
        )
        expected = sorted(FIGURE1_CONTENDING[label])
        rows.append({
            "quantity": f"contending label-{label} points (Fig 2a)",
            "paper": ",".join(expected),
            "measured": ",".join(got),
            "match": got == expected,
        })

    weighted_result = solve_passive(weighted)
    rows.append({
        "quantity": "optimal weighted error (Fig 1b)",
        "paper": FIGURE1_OPTIMAL_WEIGHTED_ERROR,
        "measured": weighted_result.optimal_error,
        "match": weighted_result.optimal_error == FIGURE1_OPTIMAL_WEIGHTED_ERROR,
    })
    rows.append({
        "quantity": "min-cut value (Fig 2b)",
        "paper": FIGURE1_OPTIMAL_WEIGHTED_ERROR,
        "measured": weighted_result.flow_value,
        "match": abs(weighted_result.flow_value - FIGURE1_OPTIMAL_WEIGHTED_ERROR) < 1e-9,
    })

    ones = sorted(f"p{i + 1}" for i in np.flatnonzero(weighted_result.assignment == 1))
    rows.append({
        "quantity": "weighted-optimal 1-assigned points",
        "paper": "p10,p12,p16",
        "measured": ",".join(ones),
        "match": ones == ["p10", "p12", "p16"],
    })
    return rows
