"""Experiment E16: chaos — the active pipeline under injected oracle faults.

The resilience layer promises that a flaky oracle costs *wall-clock*, not
probes or accuracy: transient faults are decided before the inner oracle
charges, so retried probes reach the exact charge count of a fault-free
run, and the classifier is bit-identical.  This experiment sweeps the
transient-fault rate and reports probe counts, retry counts, and error
ratios at each level — the charge count and error ratio must stay flat
while retries grow with the fault rate.  A final row exercises graceful
degradation: with retries capped below what the fault rate needs, the run
degrades instead of raising, and the best-effort classifier's error ratio
is reported alongside how many chains completed.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.active import active_classify
from ..core.errors import error_count
from ..core.oracle import LabelOracle
from ..datasets.synthetic import width_controlled
from ..resilience import FaultSpec, ResilienceConfig, RetryPolicy
from ._common import chainwise_optimum

TITLE = "E16 — chaos: error ratio and probe overhead vs injected fault rate"

__all__ = ["run", "TITLE"]


def run(n: int = 8_000, width: int = 4, epsilon: float = 0.5,
        noise: float = 0.05,
        fault_rates: Sequence[float] = (0.0, 0.05, 0.1, 0.2),
        max_attempts: int = 12, seed: int = 0) -> List[dict]:
    """Sweep the transient-fault rate; charges and accuracy must not move."""
    points = width_controlled(n, width, noise=noise, rng=seed)
    optimum = chainwise_optimum(points)
    rows: List[dict] = []
    baseline_probes = None
    for rate in fault_rates:
        oracle = LabelOracle(points)
        config = ResilienceConfig(
            retry=RetryPolicy(max_attempts=max_attempts),
            faults=FaultSpec(transient_rate=rate, seed=seed + 1),
        )
        result = active_classify(points.with_hidden_labels(), oracle,
                                 epsilon=epsilon, rng=seed,
                                 resilience=config)
        if baseline_probes is None:
            baseline_probes = result.probing_cost
        err = error_count(points, result.classifier)
        report = result.report
        rows.append({
            "fault_rate": rate,
            "n": n,
            "eps": epsilon,
            "probes": result.probing_cost,
            "probe_overhead": result.probing_cost - baseline_probes,
            "faults": report.faults_injected,
            "retries": report.retries,
            "error_ratio": err / optimum if optimum else 1.0,
            "guarantee": 1 + epsilon,
            "completed": report.completed,
        })

    # Degradation row: too few attempts for a heavy fault rate — the run
    # must come back degraded (partial chains) rather than raise.
    oracle = LabelOracle(points)
    config = ResilienceConfig(
        retry=RetryPolicy(max_attempts=2),
        faults=FaultSpec(transient_rate=0.5, seed=seed + 1),
        degrade=True,
    )
    result = active_classify(points.with_hidden_labels(), oracle,
                             epsilon=epsilon, rng=seed, resilience=config)
    report = result.report
    err = error_count(points, result.classifier)
    rows.append({
        "fault_rate": 0.5,
        "n": n,
        "eps": epsilon,
        "probes": result.probing_cost,
        "probe_overhead": result.probing_cost - (baseline_probes or 0),
        "faults": report.faults_injected,
        "retries": report.retries,
        "error_ratio": err / optimum if optimum else 1.0,
        "guarantee": 1 + epsilon,
        "completed": report.completed,
    })
    return rows
