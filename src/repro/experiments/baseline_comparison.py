"""Experiment E7: the Theorem 2 algorithm vs its baselines (Section 1.2).

Compares, on the same noisy width-controlled workloads:

* ``theorem2`` — this paper's active algorithm;
* ``probe_all`` — n probes, exactly optimal (the Theorem 1 anchor);
* ``tao2018`` — reconstruction of [25]'s per-chain binary search
  (2-approximation in expectation, very few probes);
* ``a2`` — the disagreement-region learner (prior art for ``(1+eps)k*``);
* ``majority`` — the constant-classifier floor.

The paper's qualitative claims to verify (EXPERIMENTS.md): theorem2 should
achieve error ratio ``<= 1 + eps`` with far fewer probes than probe_all;
tao2018 should probe least but with a visibly worse (up to 2x) ratio on
noisy inputs; a2 should need more probes than theorem2 for comparable
accuracy.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..baselines.a2 import a2_classify
from ..baselines.probe_all import probe_all_classify
from ..baselines.tao2018 import tao2018_classify
from ..baselines.trivial import majority_classifier
from ..core.active import active_classify
from ..core.errors import error_count
from ..core.oracle import LabelOracle
from ..datasets.synthetic import width_controlled
from ._common import chainwise_optimum

TITLE = "E7 — Theorem 2 vs baselines: probes and error ratio"

__all__ = ["run", "TITLE"]


def run(n: int = 12_000, width: int = 4, epsilon: float = 0.5,
        noise: float = 0.08, seed: int = 0, trials: int = 3) -> List[dict]:
    """Compare all methods on the same workloads; averages over trials."""
    rows: List[dict] = []
    method_stats = {name: {"probes": [], "ratio": []} for name in
                    ("theorem2", "probe_all", "tao2018", "a2", "majority")}

    for trial in range(trials):
        points = width_controlled(n, width, noise=noise, rng=seed + trial)
        optimum = chainwise_optimum(points)
        hidden = points.with_hidden_labels()

        def ratio(err: float) -> float:
            return err / optimum if optimum > 0 else (1.0 if err == 0 else np.inf)

        oracle = LabelOracle(points)
        res = active_classify(hidden, oracle, epsilon=epsilon, rng=seed + trial)
        method_stats["theorem2"]["probes"].append(res.probing_cost)
        method_stats["theorem2"]["ratio"].append(
            ratio(error_count(points, res.classifier)))

        oracle = LabelOracle(points)
        pa = probe_all_classify(hidden, oracle)
        method_stats["probe_all"]["probes"].append(pa.probing_cost)
        method_stats["probe_all"]["ratio"].append(
            ratio(error_count(points, pa.classifier)))

        oracle = LabelOracle(points)
        tao = tao2018_classify(hidden, oracle, rng=seed + trial)
        method_stats["tao2018"]["probes"].append(tao.probing_cost)
        method_stats["tao2018"]["ratio"].append(
            ratio(error_count(points, tao.classifier)))

        oracle = LabelOracle(points)
        a2 = a2_classify(hidden, oracle, epsilon=epsilon, rng=seed + trial)
        method_stats["a2"]["probes"].append(a2.probing_cost)
        method_stats["a2"]["ratio"].append(
            ratio(error_count(points, a2.classifier)))

        oracle = LabelOracle(points)
        maj = majority_classifier(hidden, oracle, rng=seed + trial)
        method_stats["majority"]["probes"].append(oracle.cost)
        method_stats["majority"]["ratio"].append(
            ratio(error_count(points, maj)))

    guarantees = {
        "theorem2": f"<= {1 + epsilon:.2f} whp",
        "probe_all": "= 1 (n probes)",
        "tao2018": "<= 2 in expectation",
        "a2": f"<= {1 + epsilon:.2f} whp (Omega(w^2/eps^2) probes)",
        "majority": "none",
    }
    for name, stats in method_stats.items():
        rows.append({
            "method": name,
            "n": n,
            "w": width,
            "eps": epsilon,
            "mean_probes": float(np.mean(stats["probes"])),
            "probe_fraction": float(np.mean(stats["probes"])) / n,
            "mean_error_ratio": float(np.mean(stats["ratio"])),
            "max_error_ratio": float(np.max(stats["ratio"])),
            "paper_guarantee": guarantees[name],
        })
    return rows
