"""Experiment E15: structural profile of every workload generator.

The probing bounds are governed by the dominance width ``w``; depth (the
Mirsky height) describes the chain structure the active algorithm sweeps.
This experiment profiles each generator at a common size: width, height,
``w·h / n`` (1 would be a perfect grid), and ``k*`` — a practical guide
for predicting the active algorithm's label bill on a new workload.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..core.passive import solve_passive
from ..datasets.entity_matching import generate_entity_matching
from ..datasets.records import generate_record_linkage
from ..datasets.synthetic import (
    correlated_monotone,
    planted_monotone,
    staircase,
    width_controlled,
)
from ..poset.chains import minimum_chain_decomposition
from ..poset.mirsky import longest_chain_length

TITLE = "E15 — workload structure: width, height, and k* per generator"

__all__ = ["run", "TITLE"]


def _generators(n: int, seed: int) -> Dict[str, Callable[[], object]]:
    return {
        "width_controlled(w=8)": lambda: width_controlled(
            n, 8, noise=0.05, rng=seed),
        "planted_monotone(d=2)": lambda: planted_monotone(
            n, 2, noise=0.05, rng=seed),
        "planted_monotone(d=4)": lambda: planted_monotone(
            n, 4, noise=0.05, rng=seed),
        "staircase(steps=5)": lambda: staircase(n, 5, noise=0.05, rng=seed),
        "correlated(rho=0.9)": lambda: correlated_monotone(
            n, 2, correlation=0.9, noise=0.05, rng=seed),
        "entity(quantize=20)": lambda: generate_entity_matching(
            n, dim=2, quantize=20, rng=seed).points,
        "entity(continuous)": lambda: generate_entity_matching(
            n, dim=2, quantize=0, rng=seed).points,
        "records(namesakes)": lambda: generate_record_linkage(
            max(1, n // 4), rng=seed).points,
    }


def run(n: int = 2_000, seed: int = 0) -> List[dict]:
    """Profile every generator at a common target size ``n``."""
    rows: List[dict] = []
    for name, factory in _generators(n, seed).items():
        points = factory()
        decomposition = minimum_chain_decomposition(points)
        width = decomposition.num_chains
        height = longest_chain_length(points)
        optimum = solve_passive(points).optimal_error
        rows.append({
            "workload": name,
            "n": points.n,
            "d": points.dim,
            "width_w": width,
            "height": height,
            "wxh_over_n": round(width * height / points.n, 2),
            "k_star": optimum,
            "k_star_rate": round(optimum / points.n, 4),
        })
    return rows
