"""Experiment E12: empirical failure probability of the active algorithm.

Theorem 2 claims the ``(1+eps)``-approximation holds *with probability at
least 1 - 1/n^2* (strengthenable to ``1 - 1/n^c``).  This experiment
hammers the 1-D algorithm across many independent runs at several
``(eps, delta)`` settings and reports the empirical failure rate — the
fraction of runs whose achieved error exceeded ``(1 + eps) k*`` — which
the theorem requires to stay below ``delta``.

Runs use the practical sampling profile, so a clean pass additionally
certifies that the relaxed constants keep their margin on these
workloads (ablation A3 explores the constant explicitly).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..core.active_1d import active_classify_1d
from ..core.errors import error_count
from ..core.oracle import LabelOracle
from ..core.passive_1d import solve_passive_1d
from ..datasets.synthetic import planted_threshold_1d

TITLE = "E12 — empirical failure probability vs delta (Theorem 2 confidence)"

__all__ = ["run", "TITLE"]


def run(n: int = 20_000, noise: float = 0.1,
        settings: Sequence[tuple] = ((1.0, 0.1), (0.5, 0.1), (0.5, 0.01)),
        runs: int = 40, seed: int = 0) -> List[dict]:
    """Measure failure rates over ``runs`` independent executions.

    ``settings`` is a sequence of ``(epsilon, delta)`` pairs.
    """
    points = planted_threshold_1d(n, noise=noise, rng=seed)
    optimum = solve_passive_1d(points).optimal_error
    hidden = points.with_hidden_labels()

    rows: List[dict] = []
    for epsilon, delta in settings:
        failures = 0
        probes = []
        ratios = []
        for run_id in range(runs):
            oracle = LabelOracle(points)
            result = active_classify_1d(hidden, oracle, epsilon=epsilon,
                                        delta=delta, rng=seed + 1000 + run_id)
            err = error_count(points, result.classifier)
            ratio = err / optimum if optimum else 1.0
            ratios.append(ratio)
            probes.append(result.probing_cost)
            if err > (1 + epsilon) * optimum + 1e-9:
                failures += 1
        rows.append({
            "n": n,
            "eps": epsilon,
            "delta": delta,
            "runs": runs,
            "failures": failures,
            "empirical_failure_rate": failures / runs,
            "within_delta": failures / runs <= delta,
            "mean_probes": float(np.mean(probes)),
            "worst_ratio": float(np.max(ratios)),
        })
    return rows
