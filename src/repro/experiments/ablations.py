"""Ablations A1-A4: the design choices DESIGN.md calls out.

* A1 — the contending-point reduction (Lemma 15): solve the passive
  problem with and without restricting to ``P^con``; same optimum, very
  different flow-network sizes and runtimes;
* A2 — exact (matching) vs greedy chain decomposition inside the active
  algorithm: extra chains inflate the probing cost roughly proportionally;
* A3 — the sampling-plan constant: probes vs achieved error ratio as the
  per-level sample size scales;
* A4 — the Hasse reduction of the min-cut network: infinite edges from
  the covering pairs (transitive reduction) vs the full dominance closure;
  same optimum, counted via ``passive.hasse_edges_kept`` vs
  ``passive.dominance_pairs`` (see ``docs/poset.md``).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .. import obs
from ..obs import Timer
from ..core.active import active_classify
from ..core.errors import error_count
from ..core.oracle import LabelOracle
from ..core.passive import solve_passive
from ..datasets.synthetic import planted_monotone, width_controlled
from ..stats.estimation import SamplingPlan

TITLE = "A1-A4 — ablations: contending, decomposition, constants, Hasse reduction"

__all__ = ["run", "run_contending", "run_decomposition", "run_constants",
           "run_hasse", "TITLE"]


def run_contending(ns: Sequence[int] = (800, 1_600),
                   dim: int = 3, noises: Sequence[float] = (0.02, 0.15),
                   seed: int = 0) -> List[dict]:
    """A1: passive solve with vs without the Lemma 15 reduction.

    The reduction shrinks the flow instance to the contending points, so
    its payoff grows as noise falls (fewer conflicts): at 2% noise the
    instance is a small fraction of ``n``, at 15% most points contend and
    the mask computation is overhead.
    """
    rows: List[dict] = []
    for noise in noises:
        for n in ns:
            points = planted_monotone(n, dim, noise=noise, rng=seed,
                                      weights="random")
            with Timer() as with_timer:
                with_reduction = solve_passive(points,
                                               use_contending_reduction=True)
            with Timer() as without_timer:
                without_reduction = solve_passive(points,
                                                  use_contending_reduction=False)
            rows.append({
                "ablation": "A1:contending",
                "n": n,
                "noise": noise,
                "contending": with_reduction.num_contending,
                "opt_with": with_reduction.optimal_error,
                "opt_without": without_reduction.optimal_error,
                "same_optimum": bool(np.isclose(with_reduction.optimal_error,
                                                without_reduction.optimal_error)),
                "time_with_s": with_timer.elapsed,
                "time_without_s": without_timer.elapsed,
            })
    return rows


def run_decomposition(n: int = 8_000, width: int = 8, epsilon: float = 1.0,
                      noise: float = 0.05, seed: int = 0,
                      trials: int = 3) -> List[dict]:
    """A2: matching vs greedy chain decomposition in the active algorithm."""
    points = width_controlled(n, width, noise=noise, rng=seed)
    optimum = solve_passive(points).optimal_error
    rows: List[dict] = []
    for method in ("exact", "greedy"):
        probes, chains, ratios = [], [], []
        for trial in range(trials):
            oracle = LabelOracle(points)
            result = active_classify(points.with_hidden_labels(), oracle,
                                     epsilon=epsilon, decomposition=method,
                                     rng=seed + trial)
            probes.append(result.probing_cost)
            chains.append(result.num_chains)
            err = error_count(points, result.classifier)
            ratios.append(err / optimum if optimum > 0 else 1.0)
        rows.append({
            "ablation": "A2:decomposition",
            "method": method,
            "true_w": width,
            "chains_used": float(np.mean(chains)),
            "mean_probes": float(np.mean(probes)),
            "mean_error_ratio": float(np.mean(ratios)),
        })
    return rows


def run_constants(constants: Sequence[float] = (1.5, 3.0, 6.0, 12.0, 24.0),
                  n: int = 50_000, epsilon: float = 0.5, noise: float = 0.1,
                  seed: int = 0) -> List[dict]:
    """A3: per-level sample-size constant vs probes and error (1-D)."""
    from ..core.active_1d import active_classify_1d
    from ..core.passive_1d import solve_passive_1d
    from ..datasets.synthetic import planted_threshold_1d

    points = planted_threshold_1d(n, noise=noise, rng=seed)
    optimum = solve_passive_1d(points).optimal_error
    rows: List[dict] = []
    for constant in constants:
        plan = SamplingPlan(practical_constant=constant)
        oracle = LabelOracle(points)
        result = active_classify_1d(points.with_hidden_labels(), oracle,
                                    epsilon=epsilon, plan=plan, rng=seed)
        err = error_count(points, result.classifier)
        rows.append({
            "ablation": "A3:constant",
            "constant": constant,
            "probes": result.probing_cost,
            "probe_fraction": result.probing_cost / n,
            "error_ratio": err / optimum if optimum > 0 else 1.0,
            "guarantee": 1.0 + epsilon,
        })
    return rows


def run_hasse(ns: Sequence[int] = (800, 1_600),
              width: int = 4, noise: float = 0.1,
              seed: int = 0) -> List[dict]:
    """A4: closure vs Hasse-reduced infinite edges in the cut network.

    Chain-structured inputs are where the reduction pays: within a chain
    the closure holds a quadratic number of cross-label dominance pairs
    (growing with chain length and noise) while the covering relation
    keeps one edge per consecutive pair, so the crossover arrives quickly
    as ``n`` grows.  The optimum must be identical; the edge counts come
    from the ``passive.dominance_pairs`` / ``passive.hasse_edges_kept``
    counters.
    """
    rows: List[dict] = []
    for n in ns:
        points = width_controlled(n, width, noise=noise, rng=seed)
        with obs.metrics_session() as dense_reg:
            with Timer() as dense_timer:
                dense = solve_passive(points)
        with obs.metrics_session() as hasse_reg:
            with Timer() as hasse_timer:
                hasse = solve_passive(points, use_hasse_reduction=True)
        rows.append({
            "ablation": "A4:hasse",
            "n": n,
            "noise": noise,
            "closure_edges": dense_reg.counter_value("passive.dominance_pairs"),
            "hasse_edges": hasse_reg.counter_value("passive.hasse_edges_kept"),
            "same_optimum": bool(np.isclose(dense.optimal_error,
                                            hasse.optimal_error)),
            "time_closure_s": dense_timer.elapsed,
            "time_hasse_s": hasse_timer.elapsed,
        })
    return rows


def run(seed: int = 0) -> List[dict]:
    """All four ablations, concatenated."""
    rows = run_contending(seed=seed)
    rows.extend(run_decomposition(seed=seed))
    rows.extend(run_constants(seed=seed))
    rows.extend(run_hasse(seed=seed))
    return rows
