"""Experiment E9: chain decomposition exactness and cost (Lemma 6).

Lemma 6: a decomposition with exactly ``w`` chains is computable in
``O(d n^2 + n^{2.5})``.  We sweep width-controlled inputs (known true
width) and random inputs (width verified by the König anti-chain
certificate), timing the matching-based decomposition and recording chain
counts, plus the greedy heuristic for contrast.
"""

from __future__ import annotations

import time
from typing import List, Sequence

from ..datasets.synthetic import planted_monotone, width_controlled
from ..poset.chains import greedy_chain_decomposition, minimum_chain_decomposition
from ..poset.width import is_antichain, maximum_antichain

TITLE = "E9 — chain decomposition: exact width and runtime (Lemma 6)"

__all__ = ["run", "TITLE"]


def run(controlled: Sequence[tuple] = ((1_000, 4), (1_000, 16), (4_000, 4),
                                       (4_000, 16), (8_000, 8)),
        random_ns: Sequence[int] = (500, 1_000, 2_000),
        seed: int = 0) -> List[dict]:
    """Measure decompositions on width-controlled and random inputs."""
    rows: List[dict] = []
    for n, width in controlled:
        points = width_controlled(n, width, noise=0.05, rng=seed)
        start = time.perf_counter()
        exact = minimum_chain_decomposition(points)
        exact_time = time.perf_counter() - start
        greedy = greedy_chain_decomposition(points)
        rows.append({
            "workload": f"controlled(n={n})",
            "true_w": width,
            "matching_chains": exact.num_chains,
            "greedy_chains": greedy.num_chains,
            "matching_time_s": exact_time,
            "exact": exact.num_chains == width,
        })
    for n in random_ns:
        points = planted_monotone(n, 2, noise=0.05, rng=seed)
        start = time.perf_counter()
        exact = minimum_chain_decomposition(points)
        exact_time = time.perf_counter() - start
        greedy = greedy_chain_decomposition(points)
        antichain = maximum_antichain(points)
        certificate_ok = (len(antichain) == exact.num_chains
                          and is_antichain(points, antichain))
        rows.append({
            "workload": f"random2d(n={n})",
            "true_w": len(antichain),
            "matching_chains": exact.num_chains,
            "greedy_chains": greedy.num_chains,
            "matching_time_s": exact_time,
            "exact": certificate_ok,
        })
    return rows
