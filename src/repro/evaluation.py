"""Generalization evaluation of monotone classifiers.

Section 1.1 frames the problem as learning: the classifier trained on a
sample ``S`` "is expected to perform well on a general object pair drawn
from D".  This module provides the standard machinery to measure that:

* :func:`train_test_split` — deterministic, seeded splits of a
  :class:`~repro.core.points.PointSet`;
* :func:`confusion_matrix`, :func:`classification_metrics` — accuracy,
  precision, recall, F1, balanced accuracy over the match class;
* :func:`holdout_evaluation` — train passively on one split, report both
  in-sample and held-out metrics;
* :func:`cross_validate` — k-fold evaluation of the passive solver
  (Problem 2 has no hyper-parameters; the folds measure variance of the
  generalization error, not model selection).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ._util import RngLike, as_generator
from .core.classifier import MonotoneClassifier
from .core.passive import solve_passive
from .core.points import PointSet

__all__ = [
    "train_test_split",
    "confusion_matrix",
    "classification_metrics",
    "HoldoutReport",
    "holdout_evaluation",
    "cross_validate",
]


def train_test_split(points: PointSet, test_fraction: float = 0.25,
                     rng: RngLike = None) -> Tuple[PointSet, PointSet]:
    """Split into (train, test) by a uniform permutation.

    ``test_fraction`` of the points (rounded down, but at least one of
    each side when ``n >= 2``) go to the test split.
    """
    if not 0 < test_fraction < 1:
        raise ValueError(f"test_fraction must be in (0, 1); got {test_fraction}")
    n = points.n
    if n < 2:
        raise ValueError("need at least 2 points to split")
    gen = as_generator(rng)
    permutation = gen.permutation(n)
    test_size = min(n - 1, max(1, int(n * test_fraction)))
    test_idx = permutation[:test_size]
    train_idx = permutation[test_size:]
    return points.subset(sorted(train_idx)), points.subset(sorted(test_idx))


def confusion_matrix(points: PointSet,
                     classifier: MonotoneClassifier) -> Dict[str, int]:
    """Counts of true/false positives/negatives on a labeled set."""
    points.require_full_labels()
    predictions = classifier.classify_set(points)
    labels = points.labels
    return {
        "tp": int(np.count_nonzero((predictions == 1) & (labels == 1))),
        "fp": int(np.count_nonzero((predictions == 1) & (labels == 0))),
        "fn": int(np.count_nonzero((predictions == 0) & (labels == 1))),
        "tn": int(np.count_nonzero((predictions == 0) & (labels == 0))),
    }


def classification_metrics(points: PointSet,
                           classifier: MonotoneClassifier) -> Dict[str, float]:
    """Standard metrics of the match (label 1) class.

    Zero-denominator conventions: precision/recall/F1 are 0 when undefined
    (no predicted / no actual positives).
    """
    counts = confusion_matrix(points, classifier)
    tp, fp, fn, tn = counts["tp"], counts["fp"], counts["fn"], counts["tn"]
    total = tp + fp + fn + tn
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = (2 * precision * recall / (precision + recall)
          if precision + recall else 0.0)
    specificity = tn / (tn + fp) if tn + fp else 0.0
    return {
        "accuracy": (tp + tn) / total if total else 0.0,
        "precision": precision,
        "recall": recall,
        "f1": f1,
        "balanced_accuracy": (recall + specificity) / 2,
        "error_count": fp + fn,
    }


@dataclass(frozen=True)
class HoldoutReport:
    """Train-set and test-set metrics of one passive fit."""

    train_metrics: Dict[str, float]
    test_metrics: Dict[str, float]
    train_size: int
    test_size: int
    train_optimal_error: float

    @property
    def generalization_gap(self) -> float:
        """Test error-rate minus train error-rate (overfitting indicator)."""
        return ((1 - self.test_metrics["accuracy"])
                - (1 - self.train_metrics["accuracy"]))


def holdout_evaluation(points: PointSet, test_fraction: float = 0.25,
                       rng: RngLike = None,
                       flow_backend: str = "dinic") -> HoldoutReport:
    """Fit the exact passive solver on a train split, score both splits.

    The monotone extension (:class:`~repro.core.classifier.UpsetClassifier`)
    of the train-optimal assignment is what gets scored on the held-out
    points — exactly the deployment scenario of Section 1.1.
    """
    train, test = train_test_split(points, test_fraction, rng)
    result = solve_passive(train, backend=flow_backend)
    return HoldoutReport(
        train_metrics=classification_metrics(train, result.classifier),
        test_metrics=classification_metrics(test, result.classifier),
        train_size=train.n,
        test_size=test.n,
        train_optimal_error=result.optimal_error,
    )


def cross_validate(points: PointSet, folds: int = 5,
                   rng: RngLike = None,
                   flow_backend: str = "dinic") -> List[Dict[str, float]]:
    """k-fold evaluation: one row of held-out metrics per fold."""
    if folds < 2:
        raise ValueError(f"folds must be >= 2; got {folds}")
    n = points.n
    if n < folds:
        raise ValueError(f"need at least {folds} points for {folds} folds")
    gen = as_generator(rng)
    permutation = gen.permutation(n)
    boundaries = np.linspace(0, n, folds + 1).astype(int)
    rows: List[Dict[str, float]] = []
    for k in range(folds):
        test_idx = permutation[boundaries[k]:boundaries[k + 1]]
        train_idx = np.concatenate(
            [permutation[:boundaries[k]], permutation[boundaries[k + 1]:]])
        train = points.subset(sorted(train_idx))
        test = points.subset(sorted(test_idx))
        result = solve_passive(train, backend=flow_backend)
        metrics = classification_metrics(test, result.classifier)
        metrics["fold"] = float(k)
        metrics["train_optimal_error"] = result.optimal_error
        rows.append(metrics)
    return rows
