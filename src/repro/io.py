"""Serialization of point sets: CSV and JSON round trips.

CSV layout: one point per row with columns ``x0 .. x{d-1}, label, weight``
(label ``-1`` = hidden).  JSON layout mirrors the columnar structure of
:class:`~repro.core.points.PointSet`.  Both formats preserve labels,
weights, and (JSON only) point names exactly.

All writers are atomic (temp file + ``os.replace``): an interrupted run —
a killed worker, a crash mid-serialization, a full disk — leaves either
the previous file or no file, never a truncated one.  The primitives
:func:`atomic_write_text` / :func:`atomic_write_json` are re-exported for
any code that writes results.

Both loaders are a strict validation boundary: every structural problem in
a dataset file — truncation, wrong types, ragged rows, non-finite values,
bad labels — surfaces as a ``ValueError`` carrying the file path (and line
number for CSV), never as a raw ``TypeError``/``KeyError``/``IndexError``
traceback.  The CLI turns these into one-line exit-2 errors; the byte-level
mutation fuzzer (:mod:`repro.fuzz`) holds the loaders to exactly this
contract.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Union

import numpy as np

from ._util import atomic_write_json, atomic_write_text
from .core.points import PointSet

__all__ = [
    "save_csv",
    "load_csv",
    "save_json",
    "load_json",
    "atomic_write_text",
    "atomic_write_json",
]

PathLike = Union[str, Path]


def save_csv(points: PointSet, path: PathLike) -> None:
    """Write a point set to CSV with a header row (atomically)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    header = [f"x{i}" for i in range(points.dim)] + ["label", "weight"]
    writer.writerow(header)
    for i in range(points.n):
        row = [repr(float(c)) for c in points.coords[i]]
        row.append(int(points.labels[i]))
        row.append(repr(float(points.weights[i])))
        writer.writerow(row)
    atomic_write_text(path, buffer.getvalue())


def load_csv(path: PathLike) -> PointSet:
    """Read a point set previously written by :func:`save_csv`.

    Malformed content (missing header, ragged rows, non-numeric fields,
    out-of-range labels, non-finite coordinates) raises ``ValueError`` with
    the file path and offending line number.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path}: empty file (no header row)") from None
        except csv.Error as exc:
            raise ValueError(f"{path}: not parseable as CSV: {exc}") from None
        if len(header) < 3 or header[-2] != "label" or header[-1] != "weight":
            raise ValueError(
                f"{path}: expected columns 'x0..x{{d-1}}, label, weight'; got {header}"
            )
        dim = len(header) - 2
        coords, labels, weights = [], [], []
        try:
            for lineno, row in enumerate(reader, start=2):
                if not row:
                    continue
                if len(row) != dim + 2:
                    raise ValueError(
                        f"{path}:{lineno}: expected {dim + 2} fields, got {len(row)}")
                try:
                    coords.append([float(v) for v in row[:dim]])
                    labels.append(int(row[dim]))
                    weights.append(float(row[dim + 1]))
                except ValueError as exc:
                    raise ValueError(f"{path}:{lineno}: {exc}") from None
        except csv.Error as exc:
            raise ValueError(f"{path}: not parseable as CSV: {exc}") from None
    if not coords:
        return PointSet(np.empty((0, dim)), [], [])
    try:
        return PointSet(coords, labels, weights)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from None


def save_json(points: PointSet, path: PathLike) -> None:
    """Write a point set to JSON (coords/labels/weights/names, atomically)."""
    payload = {
        "dim": points.dim,
        "coords": points.coords.tolist(),
        "labels": points.labels.tolist(),
        "weights": points.weights.tolist(),
        "names": list(points.names) if points.names is not None else None,
    }
    atomic_write_text(path, json.dumps(payload, indent=1))


def load_json(path: PathLike) -> PointSet:
    """Read a point set previously written by :func:`save_json`.

    Schema-validates the payload before construction: the document must be
    an object with ``dim`` (positive int), list-valued ``coords``/``labels``/
    ``weights`` of one common length, and an optional ``names`` list.  Any
    violation — including truncated or byte-mutated files — raises
    ``ValueError`` naming the file, never a raw ``TypeError``/``KeyError``.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ValueError(f"{path}: not parseable as JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ValueError(
            f"{path}: expected a JSON object, got {type(payload).__name__}")
    required = {"dim", "coords", "labels", "weights"}
    missing = required - payload.keys()
    if missing:
        raise ValueError(f"{path}: missing keys {sorted(missing)}")
    dim = payload["dim"]
    if not isinstance(dim, int) or isinstance(dim, bool) or dim < 1:
        raise ValueError(f"{path}: 'dim' must be a positive integer; got {dim!r}")
    for key in ("coords", "labels", "weights"):
        if not isinstance(payload[key], list):
            raise ValueError(
                f"{path}: '{key}' must be a list; got {type(payload[key]).__name__}")
    n = len(payload["coords"])
    for key in ("labels", "weights"):
        if len(payload[key]) != n:
            raise ValueError(
                f"{path}: '{key}' has {len(payload[key])} entries for {n} points")
    names = payload.get("names")
    if names is not None:
        if not isinstance(names, list) or len(names) != n:
            raise ValueError(f"{path}: 'names' must be a list of {n} entries")
        if not all(v is None or isinstance(v, str) for v in names):
            raise ValueError(f"{path}: 'names' entries must be strings or null")
    for i, row in enumerate(payload["coords"]):
        if not isinstance(row, list) or len(row) != dim:
            raise ValueError(
                f"{path}: coords[{i}] is not a list of {dim} numbers")
    coords = payload["coords"]
    if n == 0:
        coords = np.empty((0, dim))
    try:
        return PointSet(coords, payload["labels"], payload["weights"],
                        names=names)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from None
