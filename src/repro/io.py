"""Serialization of point sets: CSV and JSON round trips.

CSV layout: one point per row with columns ``x0 .. x{d-1}, label, weight``
(label ``-1`` = hidden).  JSON layout mirrors the columnar structure of
:class:`~repro.core.points.PointSet`.  Both formats preserve labels,
weights, and (JSON only) point names exactly.

All writers are atomic (temp file + ``os.replace``): an interrupted run —
a killed worker, a crash mid-serialization, a full disk — leaves either
the previous file or no file, never a truncated one.  The primitives
:func:`atomic_write_text` / :func:`atomic_write_json` are re-exported for
any code that writes results.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Union

import numpy as np

from ._util import atomic_write_json, atomic_write_text
from .core.points import PointSet

__all__ = [
    "save_csv",
    "load_csv",
    "save_json",
    "load_json",
    "atomic_write_text",
    "atomic_write_json",
]

PathLike = Union[str, Path]


def save_csv(points: PointSet, path: PathLike) -> None:
    """Write a point set to CSV with a header row (atomically)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    header = [f"x{i}" for i in range(points.dim)] + ["label", "weight"]
    writer.writerow(header)
    for i in range(points.n):
        row = [repr(float(c)) for c in points.coords[i]]
        row.append(int(points.labels[i]))
        row.append(repr(float(points.weights[i])))
        writer.writerow(row)
    atomic_write_text(path, buffer.getvalue())


def load_csv(path: PathLike) -> PointSet:
    """Read a point set previously written by :func:`save_csv`."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if len(header) < 3 or header[-2] != "label" or header[-1] != "weight":
            raise ValueError(
                f"{path}: expected columns 'x0..x{{d-1}}, label, weight'; got {header}"
            )
        dim = len(header) - 2
        coords, labels, weights = [], [], []
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != dim + 2:
                raise ValueError(f"{path}:{lineno}: expected {dim + 2} fields, got {len(row)}")
            coords.append([float(v) for v in row[:dim]])
            labels.append(int(row[dim]))
            weights.append(float(row[dim + 1]))
    if not coords:
        return PointSet(np.empty((0, dim)), [], [])
    return PointSet(coords, labels, weights)


def save_json(points: PointSet, path: PathLike) -> None:
    """Write a point set to JSON (coords/labels/weights/names, atomically)."""
    payload = {
        "dim": points.dim,
        "coords": points.coords.tolist(),
        "labels": points.labels.tolist(),
        "weights": points.weights.tolist(),
        "names": list(points.names) if points.names is not None else None,
    }
    atomic_write_text(path, json.dumps(payload, indent=1))


def load_json(path: PathLike) -> PointSet:
    """Read a point set previously written by :func:`save_json`."""
    payload = json.loads(Path(path).read_text())
    required = {"dim", "coords", "labels", "weights"}
    missing = required - payload.keys()
    if missing:
        raise ValueError(f"{path}: missing keys {sorted(missing)}")
    coords = np.asarray(payload["coords"], dtype=float)
    if coords.size == 0:
        coords = coords.reshape(0, payload["dim"])
    return PointSet(coords, payload["labels"], payload["weights"],
                    names=payload.get("names"))
