"""Classifier serialization: save and load trained monotone classifiers.

A downstream system trains once (possibly paying for labels) and serves
the classifier elsewhere; this module round-trips every classifier family
in the package through a versioned JSON envelope:

* :class:`~repro.core.classifier.ThresholdClassifier`
* :class:`~repro.core.classifier.UpsetClassifier`
* :class:`~repro.core.classifier.ConstantClassifier`
* :class:`~repro.core.exceptions_variant.ExceptionAugmentedClassifier`

``+/-inf`` thresholds are encoded as strings ("inf"/"-inf") because JSON
has no infinities.

Writes are atomic (temp file + ``os.replace`` via
:func:`repro._util.atomic_write_text`), and :func:`load_classifier` is a
strict validation boundary matching :mod:`repro.io`: any structural
problem in a classifier file — truncation, byte corruption, wrong types,
missing keys — surfaces as a ``ValueError`` naming the file, never as a
raw ``TypeError``/``KeyError`` traceback.  The byte-mutation fuzzer
(:mod:`repro.fuzz`) holds the loader to exactly this contract.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Union

from ._util import atomic_write_text

from .core.classifier import (
    ConstantClassifier,
    MonotoneClassifier,
    ThresholdClassifier,
    UpsetClassifier,
)
from .core.exceptions_variant import ExceptionAugmentedClassifier

__all__ = ["classifier_to_dict", "classifier_from_dict",
           "save_classifier", "load_classifier"]

_FORMAT_VERSION = 1

PathLike = Union[str, Path]
AnyClassifier = Union[MonotoneClassifier, ExceptionAugmentedClassifier]


def _encode_float(value: float):
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def _decode_float(value) -> float:
    if value == "inf":
        return float("inf")
    if value == "-inf":
        return float("-inf")
    return float(value)


def classifier_to_dict(classifier: AnyClassifier) -> dict:
    """Encode a classifier as a JSON-safe dict."""
    if isinstance(classifier, ConstantClassifier):
        body = {"kind": "constant", "value": classifier.value}
    elif isinstance(classifier, ThresholdClassifier):
        body = {
            "kind": "threshold",
            "tau": _encode_float(classifier.tau),
            "dim": classifier.dim,
        }
    elif isinstance(classifier, UpsetClassifier):
        body = {
            "kind": "upset",
            "dim": int(classifier.anchors.shape[1]),
            "anchors": classifier.anchors.tolist(),
        }
    elif isinstance(classifier, ExceptionAugmentedClassifier):
        body = {
            "kind": "with_exceptions",
            "base": classifier_to_dict(classifier.base),
            "exceptions": [
                {"coords": list(coords), "label": label}
                for coords, label in sorted(classifier.exceptions.items())
            ],
        }
    else:
        raise TypeError(f"cannot serialize classifier of type {type(classifier)!r}")
    body["format_version"] = _FORMAT_VERSION
    return body


def classifier_from_dict(payload: dict) -> AnyClassifier:
    """Decode a classifier from :func:`classifier_to_dict` output.

    Every structural problem in the payload — wrong container types,
    missing keys, non-numeric fields — raises ``ValueError``, so callers
    (notably :func:`load_classifier` and the serve-artifact loader) can
    treat "hostile bytes" as a single exception type.
    """
    if not isinstance(payload, dict):
        raise ValueError(
            f"classifier payload must be an object, got {type(payload).__name__}")
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported classifier format version: {version!r}")
    kind = payload.get("kind")
    try:
        if kind == "constant":
            return ConstantClassifier(int(payload["value"]))
        if kind == "threshold":
            return ThresholdClassifier(_decode_float(payload["tau"]),
                                       dim=int(payload["dim"]))
        if kind == "upset":
            anchors = payload["anchors"]
            if not isinstance(anchors, list):
                raise ValueError("'anchors' must be a list")
            return UpsetClassifier(anchors, dim=int(payload["dim"]))
        if kind == "with_exceptions":
            base = classifier_from_dict(payload["base"])
            items = payload["exceptions"]
            if not isinstance(items, list):
                raise ValueError("'exceptions' must be a list")
            exceptions = {
                tuple(float(c) for c in item["coords"]): int(item["label"])
                for item in items
            }
            return ExceptionAugmentedClassifier(base, exceptions)
    except ValueError:
        raise
    except (KeyError, TypeError, IndexError) as exc:
        raise ValueError(
            f"malformed {kind!r} classifier payload: {exc!r}") from None
    raise ValueError(f"unknown classifier kind: {kind!r}")


def save_classifier(classifier: AnyClassifier, path: PathLike) -> None:
    """Write a classifier to a JSON file (atomically).

    An interrupted write — crash, kill, full disk — leaves the previous
    file or no file behind, never a truncated one.
    """
    atomic_write_text(path, json.dumps(classifier_to_dict(classifier), indent=1))


def load_classifier(path: PathLike) -> AnyClassifier:
    """Read a classifier previously written by :func:`save_classifier`.

    Malformed content — unparseable JSON, a non-object document, or any
    structural violation — raises ``ValueError`` naming the file.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ValueError(f"{path}: not parseable as JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ValueError(
            f"{path}: expected a JSON object, got {type(payload).__name__}")
    try:
        return classifier_from_dict(payload)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from None
