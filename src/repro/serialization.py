"""Classifier serialization: save and load trained monotone classifiers.

A downstream system trains once (possibly paying for labels) and serves
the classifier elsewhere; this module round-trips every classifier family
in the package through a versioned JSON envelope:

* :class:`~repro.core.classifier.ThresholdClassifier`
* :class:`~repro.core.classifier.UpsetClassifier`
* :class:`~repro.core.classifier.ConstantClassifier`
* :class:`~repro.core.exceptions_variant.ExceptionAugmentedClassifier`

``+/-inf`` thresholds are encoded as strings ("inf"/"-inf") because JSON
has no infinities.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Union

from .core.classifier import (
    ConstantClassifier,
    MonotoneClassifier,
    ThresholdClassifier,
    UpsetClassifier,
)
from .core.exceptions_variant import ExceptionAugmentedClassifier

__all__ = ["classifier_to_dict", "classifier_from_dict",
           "save_classifier", "load_classifier"]

_FORMAT_VERSION = 1

PathLike = Union[str, Path]
AnyClassifier = Union[MonotoneClassifier, ExceptionAugmentedClassifier]


def _encode_float(value: float):
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def _decode_float(value) -> float:
    if value == "inf":
        return float("inf")
    if value == "-inf":
        return float("-inf")
    return float(value)


def classifier_to_dict(classifier: AnyClassifier) -> dict:
    """Encode a classifier as a JSON-safe dict."""
    if isinstance(classifier, ConstantClassifier):
        body = {"kind": "constant", "value": classifier.value}
    elif isinstance(classifier, ThresholdClassifier):
        body = {
            "kind": "threshold",
            "tau": _encode_float(classifier.tau),
            "dim": classifier.dim,
        }
    elif isinstance(classifier, UpsetClassifier):
        body = {
            "kind": "upset",
            "dim": int(classifier.anchors.shape[1]),
            "anchors": classifier.anchors.tolist(),
        }
    elif isinstance(classifier, ExceptionAugmentedClassifier):
        body = {
            "kind": "with_exceptions",
            "base": classifier_to_dict(classifier.base),
            "exceptions": [
                {"coords": list(coords), "label": label}
                for coords, label in sorted(classifier.exceptions.items())
            ],
        }
    else:
        raise TypeError(f"cannot serialize classifier of type {type(classifier)!r}")
    body["format_version"] = _FORMAT_VERSION
    return body


def classifier_from_dict(payload: dict) -> AnyClassifier:
    """Decode a classifier from :func:`classifier_to_dict` output."""
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported classifier format version: {version!r}")
    kind = payload.get("kind")
    if kind == "constant":
        return ConstantClassifier(int(payload["value"]))
    if kind == "threshold":
        return ThresholdClassifier(_decode_float(payload["tau"]),
                                   dim=int(payload["dim"]))
    if kind == "upset":
        return UpsetClassifier(payload["anchors"], dim=int(payload["dim"]))
    if kind == "with_exceptions":
        base = classifier_from_dict(payload["base"])
        exceptions = {
            tuple(float(c) for c in item["coords"]): int(item["label"])
            for item in payload["exceptions"]
        }
        return ExceptionAugmentedClassifier(base, exceptions)
    raise ValueError(f"unknown classifier kind: {kind!r}")


def save_classifier(classifier: AnyClassifier, path: PathLike) -> None:
    """Write a classifier to a JSON file."""
    Path(path).write_text(json.dumps(classifier_to_dict(classifier), indent=1))


def load_classifier(path: PathLike) -> AnyClassifier:
    """Read a classifier previously written by :func:`save_classifier`."""
    return classifier_from_dict(json.loads(Path(path).read_text()))
