"""Goldberg–Tarjan push-relabel max-flow (FIFO rule + gap heuristic).

This is the ``O(V^3)`` algorithm the paper cites as [14] when instantiating
``T_maxflow(n)`` in Theorem 4.  The implementation maintains:

* per-node *excess* (inflow minus outflow) and *height* labels;
* a FIFO queue of active (positive-excess, non-terminal) nodes;
* the *gap heuristic*: when some height ``h < V`` becomes empty, every node
  with height in ``(h, V)`` can never reach the sink again and is lifted
  straight above ``V``, which prunes large amounts of useless work.
"""

from __future__ import annotations

from collections import deque

from ..obs import recorder
from .graph import RESIDUAL_EPS, FlowNetwork

__all__ = ["push_relabel_max_flow"]

_EPS = RESIDUAL_EPS


def push_relabel_max_flow(network: FlowNetwork, source: int, sink: int) -> float:
    """Compute a maximum flow from ``source`` to ``sink`` in place."""
    network._check_node(source)
    network._check_node(sink)
    if source == sink:
        raise ValueError("source and sink must differ")

    n = network.num_nodes
    heads = network.heads
    caps = network.caps
    flows = network.flows
    adjacency = network.adjacency

    height = [0] * n
    excess = [0.0] * n
    count_at_height = [0] * (2 * n + 1)  # nodes per height, for the gap heuristic
    pointer = [0] * n  # current-arc pointers
    active: deque = deque()
    in_queue = [False] * n

    height[source] = n
    count_at_height[0] = n - 1
    count_at_height[n] += 1

    num_pushes = 0
    num_relabels = 0
    num_gap_lifts = 0

    def push(arc: int) -> None:
        nonlocal num_pushes
        u, v = heads[arc ^ 1], heads[arc]
        amount = min(excess[u], caps[arc] - flows[arc])
        if amount <= _EPS:
            # A sub-epsilon push moves no usable flow: it would deposit
            # excess at v without ever activating it (activation requires
            # amount > _EPS), stranding invisible excess at interior
            # nodes, and it would inflate the push counter.  Reachable on
            # warm-started networks whose source arcs carry sub-epsilon
            # residuals; skip the push entirely.
            return
        network.push(arc, amount)
        num_pushes += 1
        excess[u] -= amount
        excess[v] += amount
        if v not in (source, sink) and not in_queue[v]:
            active.append(v)
            in_queue[v] = True

    # Saturate all source arcs.
    for arc in adjacency[source]:
        if caps[arc] > _EPS:
            excess[source] += caps[arc]
            push(arc)

    def relabel(u: int) -> None:
        nonlocal num_relabels, num_gap_lifts
        old = height[u]
        best = 2 * n
        for arc in adjacency[u]:
            if caps[arc] - flows[arc] > _EPS:
                best = min(best, height[heads[arc]] + 1)
        count_at_height[old] -= 1
        height[u] = best
        count_at_height[best] += 1
        pointer[u] = 0
        num_relabels += 1
        # Gap heuristic: height `old` emptied below n => everything strictly
        # between old and n is disconnected from the sink; lift it to n + 1.
        if count_at_height[old] == 0 and old < n:
            for v in range(n):
                if old < height[v] < n and v != source:
                    count_at_height[height[v]] -= 1
                    height[v] = n + 1
                    count_at_height[n + 1] += 1
                    num_gap_lifts += 1

    while active:
        u = active.popleft()
        in_queue[u] = False
        # Discharge u completely.
        while excess[u] > _EPS:
            if pointer[u] == len(adjacency[u]):
                relabel(u)
                if height[u] >= 2 * n:
                    break
                continue
            arc = adjacency[u][pointer[u]]
            v = heads[arc]
            if caps[arc] - flows[arc] > _EPS and height[u] == height[v] + 1:
                push(arc)
            else:
                pointer[u] += 1

    rec = recorder()
    if rec.enabled:
        rec.incr("flow.push_relabel.calls")
        rec.incr("flow.push_relabel.pushes", num_pushes)
        rec.incr("flow.push_relabel.relabels", num_relabels)
        rec.incr("flow.push_relabel.gap_lifts", num_gap_lifts)
        rec.observe("flow.push_relabel.pushes_per_call", num_pushes)
    # Measure the delivered flow at the sink.  The strict push/discharge
    # guards may strand sub-epsilon excess at interior nodes; the
    # source-side sum counts that stranded excess as if it had reached
    # the sink (e.g. reporting ~1e-12 on a network whose sink is
    # unreachable), while the sink-side sum is exactly the flow the
    # preflow actually delivered — matching the path-based backends.
    return -network.flow_value(sink)
