"""Dinic's max-flow algorithm (blocking flows over BFS level graphs).

Worst case ``O(V^2 E)``, but on the shallow three-layer networks produced by
the passive reduction (source -> label-0 -> label-1 -> sink) it behaves like
bipartite matching, ``O(E sqrt(V))`` — which is why it is the default
backend.  The blocking-flow DFS is iterative to avoid recursion limits.
"""

from __future__ import annotations

from collections import deque
from typing import List

from ..obs import recorder
from .graph import RESIDUAL_EPS, FlowNetwork

__all__ = ["dinic_max_flow"]

_EPS = RESIDUAL_EPS


def dinic_max_flow(network: FlowNetwork, source: int, sink: int) -> float:
    """Compute a maximum flow from ``source`` to ``sink`` in place."""
    network._check_node(source)
    network._check_node(sink)
    if source == sink:
        raise ValueError("source and sink must differ")

    n = network.num_nodes
    heads = network.heads
    caps = network.caps
    flows = network.flows
    adjacency = network.adjacency

    total = 0.0
    level: List[int] = [-1] * n
    phases = 0
    paths = 0
    pushes = 0

    while True:
        # --- BFS: build the level graph over residual arcs.
        for i in range(n):
            level[i] = -1
        level[source] = 0
        queue: deque = deque([source])
        while queue:
            u = queue.popleft()
            for arc in adjacency[u]:
                v = heads[arc]
                if level[v] == -1 and caps[arc] - flows[arc] > _EPS:
                    level[v] = level[u] + 1
                    queue.append(v)
        if level[sink] == -1:
            break
        phases += 1

        # --- Blocking flow: iterative DFS with per-node arc pointers.
        pointer = [0] * n
        while True:
            # Walk a path of admissible arcs from source to sink.
            path: List[int] = []  # arc ids along the current path
            u = source
            while u != sink:
                advanced = False
                adj = adjacency[u]
                while pointer[u] < len(adj):
                    arc = adj[pointer[u]]
                    v = heads[arc]
                    if caps[arc] - flows[arc] > _EPS and level[v] == level[u] + 1:
                        path.append(arc)
                        u = v
                        advanced = True
                        break
                    pointer[u] += 1
                if not advanced:
                    if u == source:
                        break
                    # Retreat: the arc into u is saturated-for-this-phase.
                    level[u] = -1  # prune u from the level graph
                    last_arc = path.pop()
                    u = heads[last_arc ^ 1]
                    pointer[u] += 1
            if u != sink:
                break  # no more augmenting paths in this phase
            bottleneck = min(caps[arc] - flows[arc] for arc in path)
            for arc in path:
                network.push(arc, bottleneck)
            total += bottleneck
            paths += 1
            pushes += len(path)

    rec = recorder()
    if rec.enabled:
        rec.incr("flow.dinic.calls")
        rec.incr("flow.dinic.phases", phases)
        rec.incr("flow.dinic.augmenting_paths", paths)
        rec.incr("flow.dinic.pushes", pushes)
        rec.observe("flow.dinic.paths_per_call", paths)
    return total
