"""Residual flow-network representation shared by all max-flow backends.

Arcs are stored in a flat arc list where each arc and its reverse arc occupy
adjacent slots (``arc ^ 1`` is the reverse), the classic competitive-
programming layout that keeps residual updates O(1) and cache-friendly.
Capacities are floats because Problem 2 weights are positive reals.
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple, Optional, Tuple, Union

import numpy as np

__all__ = ["FlowNetwork", "Arc", "RESIDUAL_EPS", "has_residual"]

#: Shared residual tolerance for every max-flow backend.  A residual
#: capacity is *usable* iff it strictly exceeds this value; anything at or
#: below it is treated as saturated.  All backends (and the min-cut
#: extraction) must route their admissibility decisions through this one
#: constant/predicate pair: a backend that admits residual exactly
#: ``RESIDUAL_EPS`` while another rejects it makes the two disagree on
#: boundary-capacity arcs, which the differential fuzzer flags as a
#: finding (historically: capacity-scaling's exactness pass used ``>=``
#: where the other backends used ``>``).
RESIDUAL_EPS = 1e-12


def has_residual(value: float) -> bool:
    """True iff ``value`` is usable residual capacity (strictly above eps).

    The single admissibility predicate shared by every backend.  Hot loops
    inline the equivalent ``value > RESIDUAL_EPS`` comparison against the
    imported constant; this function is the readable form for the
    non-critical call sites and the documentation anchor for the contract.
    """
    return value > RESIDUAL_EPS


class Arc(NamedTuple):
    """A directed arc materialized for inspection (not the storage format)."""

    tail: int
    head: int
    capacity: float
    flow: float


class FlowNetwork:
    """A directed graph with capacities, supporting residual operations.

    Parameters
    ----------
    num_nodes:
        Number of vertices, identified as ``0 .. num_nodes - 1``.

    Notes
    -----
    ``add_edge(u, v, cap)`` creates a forward arc with capacity ``cap`` and a
    reverse arc with capacity 0.  Backends mutate ``flow`` in place through
    :meth:`push`; :meth:`reset_flow` restores the zero flow so one network
    can be solved by several backends (used by the cross-check tests).
    """

    __slots__ = ("num_nodes", "heads", "caps", "flows", "adjacency", "_tails",
                 "_csr_cache")

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 0:
            raise ValueError("num_nodes must be non-negative")
        self.num_nodes = num_nodes
        self.heads: List[int] = []
        self.caps: List[float] = []
        self.flows: List[float] = []
        self._tails: List[int] = []
        self.adjacency: List[List[int]] = [[] for _ in range(num_nodes)]
        # Topology/capacity arrays memoized by CSRFlowSnapshot.  Arcs are
        # append-only, so the (num_nodes, num_arcs) key fully identifies
        # the frozen structure; flows are never cached here.
        self._csr_cache: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_node(self) -> int:
        """Append a new vertex and return its id."""
        self.adjacency.append([])
        self.num_nodes += 1
        return self.num_nodes - 1

    def add_edge(self, u: int, v: int, capacity: float) -> int:
        """Add a directed edge ``u -> v``; returns the forward arc id."""
        self._check_node(u)
        self._check_node(v)
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative; got {capacity}")
        arc_id = len(self.heads)
        # Forward arc.
        self.heads.append(v)
        self.caps.append(float(capacity))
        self.flows.append(0.0)
        self._tails.append(u)
        self.adjacency[u].append(arc_id)
        # Reverse arc.
        self.heads.append(u)
        self.caps.append(0.0)
        self.flows.append(0.0)
        self._tails.append(v)
        self.adjacency[v].append(arc_id + 1)
        return arc_id

    def add_edges(self, tails: "np.ndarray", heads: "np.ndarray",
                  capacities: Union[float, "np.ndarray"]) -> "np.ndarray":
        """Bulk :meth:`add_edge`: append ``m`` edges in one vectorized call.

        Parameters
        ----------
        tails, heads:
            Integer arrays of length ``m`` (tail/head vertex per edge).
        capacities:
            Scalar (broadcast to every edge) or float array of length ``m``.

        Returns the ``m`` forward arc ids.  The arc list, capacities, and
        per-vertex adjacency end up **exactly** as if :meth:`add_edge` had
        been called once per edge in array order — adjacency grouping uses
        a stable sort on the interleaved forward/reverse tails — so flow
        backends (whose traversal order follows adjacency) produce
        bit-identical results either way.  This is the construction path
        the Theorem 4 solver uses for its infinity edges; per-pair Python
        appends were the dominant cost of building dense instances.
        """
        tails_arr = np.ascontiguousarray(tails, dtype=np.int64).ravel()
        heads_arr = np.ascontiguousarray(heads, dtype=np.int64).ravel()
        m = len(tails_arr)
        if len(heads_arr) != m:
            raise ValueError(
                f"tails and heads disagree on edge count: {m} vs {len(heads_arr)}"
            )
        caps_arr = np.broadcast_to(
            np.asarray(capacities, dtype=float), (m,)
        )
        if m == 0:
            return np.empty(0, dtype=np.int64)
        for endpoint in (tails_arr, heads_arr):
            bad = (endpoint < 0) | (endpoint >= self.num_nodes)
            if bad.any():
                raise ValueError(
                    f"vertex {int(endpoint[bad][0])} outside "
                    f"[0, {self.num_nodes})"
                )
        if (caps_arr < 0).any() or np.isnan(caps_arr).any():
            offender = caps_arr[(caps_arr < 0) | np.isnan(caps_arr)][0]
            raise ValueError(f"capacity must be non-negative; got {offender}")

        base = len(self.heads)
        # Interleave forward/reverse arcs exactly as sequential add_edge
        # would: even slots forward (tail -> head, cap), odd slots reverse
        # (head -> tail, 0).  The interleaves are done with list slice
        # assignment so each endpoint array crosses into Python objects
        # once, not once per storage column.
        tails_list = tails_arr.tolist()
        heads_list = heads_arr.tolist()
        arc_heads = [0] * (2 * m)
        arc_heads[0::2] = heads_list
        arc_heads[1::2] = tails_list
        arc_tails = [0] * (2 * m)
        arc_tails[0::2] = tails_list
        arc_tails[1::2] = heads_list
        arc_caps = [0.0] * (2 * m)
        arc_caps[0::2] = caps_arr.tolist()

        self.heads.extend(arc_heads)
        self.caps.extend(arc_caps)
        self.flows.extend([0.0] * (2 * m))
        self._tails.extend(arc_tails)

        # Group arc ids by tail vertex with a *stable* sort so each
        # vertex's adjacency receives its new arcs in arc-id order — the
        # same order sequential add_edge appends produce.  Narrow vertex
        # ids sort with uint16 keys (numpy's stable sort is radix there,
        # ~10x the int64 mergesort); group boundaries come from
        # adjacent-difference on the sorted keys (np.unique would argsort
        # a second time).  Since the new arc ids are consecutive, the
        # argsort permutation *is* the grouped id order (offset by base).
        key_dtype = np.uint16 if self.num_nodes <= 0xFFFF else np.int64
        sort_keys = np.empty(2 * m, dtype=key_dtype)
        sort_keys[0::2] = tails_arr
        sort_keys[1::2] = heads_arr
        grouping = np.argsort(sort_keys, kind="stable")
        sorted_tails = sort_keys[grouping]
        if base:
            grouping += base
        sorted_arcs = grouping.tolist()
        boundary = np.empty(2 * m, dtype=bool)
        boundary[0] = True
        np.not_equal(sorted_tails[1:], sorted_tails[:-1], out=boundary[1:])
        starts = np.flatnonzero(boundary)
        bounds = starts.tolist() + [2 * m]
        vertices = sorted_tails[starts].tolist()
        adjacency = self.adjacency
        for pos, vertex in enumerate(vertices):
            adjacency[vertex].extend(sorted_arcs[bounds[pos]:bounds[pos + 1]])
        return base + 2 * np.arange(m, dtype=np.int64)

    def _check_node(self, u: int) -> None:
        if not 0 <= u < self.num_nodes:
            raise ValueError(f"vertex {u} outside [0, {self.num_nodes})")

    # ------------------------------------------------------------------
    # Residual operations
    # ------------------------------------------------------------------

    def residual(self, arc: int) -> float:
        """Residual capacity of an arc (forward or reverse)."""
        return self.caps[arc] - self.flows[arc]

    def push(self, arc: int, amount: float) -> None:
        """Push ``amount`` units along ``arc``, updating the reverse arc."""
        self.flows[arc] += amount
        self.flows[arc ^ 1] -= amount

    def reset_flow(self) -> None:
        """Zero out all flows (keeps topology and capacities)."""
        self.flows = [0.0] * len(self.flows)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def num_edges(self) -> int:
        """Number of original (forward) edges."""
        return len(self.heads) // 2

    def tail(self, arc: int) -> int:
        """Tail vertex of an arc (forward or reverse).

        Public counterpart of ``heads[arc]`` for the arc's origin, so
        consumers (e.g. :meth:`repro.flow.mincut.MinCut.cut_edges`) need
        not reach into the storage layout — alternative network
        implementations only have to provide this accessor.
        """
        return self._tails[arc]

    @property
    def tails(self) -> Tuple[int, ...]:
        """Tail vertices of all arcs, indexed like ``heads``."""
        return tuple(self._tails)

    def forward_arcs(self) -> Iterator[Tuple[int, Arc]]:
        """Iterate ``(arc_id, Arc)`` over the original forward edges."""
        for arc_id in range(0, len(self.heads), 2):
            yield arc_id, Arc(
                tail=self._tails[arc_id],
                head=self.heads[arc_id],
                capacity=self.caps[arc_id],
                flow=self.flows[arc_id],
            )

    def flow_value(self, source: int) -> float:
        """Net flow leaving ``source`` (the value of the current flow)."""
        total = 0.0
        for arc_id in self.adjacency[source]:
            total += self.flows[arc_id]
        return total

    def check_flow_conservation(self, source: int, sink: int,
                                tol: float = 1e-9) -> bool:
        """Verify capacity and conservation constraints of the current flow.

        Used by property tests: every flow a backend produces must be
        feasible regardless of its value.
        """
        for arc_id in range(0, len(self.heads), 2):
            if self.flows[arc_id] < -tol or self.flows[arc_id] > self.caps[arc_id] + tol:
                return False
        excess = [0.0] * self.num_nodes
        for arc_id in range(0, len(self.heads), 2):
            tail, head = self._tails[arc_id], self.heads[arc_id]
            excess[tail] -= self.flows[arc_id]
            excess[head] += self.flows[arc_id]
        for node in range(self.num_nodes):
            if node in (source, sink):
                continue
            if abs(excess[node]) > tol:
                return False
        return True

    def __repr__(self) -> str:
        return f"FlowNetwork(num_nodes={self.num_nodes}, num_edges={self.num_edges})"
