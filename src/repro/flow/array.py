"""Array-native max-flow solvers over a frozen CSR snapshot.

The loop engines (:mod:`.dinic`, :mod:`.push_relabel`) spend almost all of
their time iterating Python adjacency lists arc by arc; above a few
thousand vertices that per-arc interpreter cost dominates the whole
passive solve (ROADMAP item 1).  This module rebuilds the two production
backends on top of :class:`CSRFlowSnapshot`, a frozen CSR view of
:class:`~repro.flow.graph.FlowNetwork`:

* :func:`dinic_array_max_flow` — Dinic with a *vectorized frontier BFS*
  (one ``np.flatnonzero`` admissibility pass over the frontier's CSR slice
  per level) and a scaled-down Python DFS that walks only the level-graph
  *survivors* (arcs admissible at BFS time), not the full adjacency.  The
  survivor DFS replays the loop engine's traversal exactly — same levels,
  same per-node candidate order, same pointer/retreat semantics — and the
  per-push writeback applies the identical ``+b`` / ``-b`` sequences with
  ``np.ufunc.at`` (unbuffered, in index order), so values *and* final
  flows are bit-identical to :func:`~repro.flow.dinic.dinic_max_flow`.

* :func:`push_relabel_array_max_flow` — FIFO push-relabel with the gap
  heuristic of the loop engine plus the *global-relabeling* heuristic: a
  periodic backward BFS from the sink, run as a vectorized distance sweep
  over the CSR arrays, replaces height labels with exact residual
  distances.  Heights are updated monotonically (``max`` of old label and
  BFS distance; sink-disconnected nodes lift to ``n + 1``), which keeps
  the distance-labeling valid, so correctness is untouched while useless
  relabel chains collapse.

Both solvers share the epsilon-boundary contract of
:data:`~repro.flow.graph.RESIDUAL_EPS` with the loop engines and write
their results back into the mutable network, so
:func:`~repro.flow.mincut.min_cut_from_residual` reads the residual graph
exactly as it would after a loop-engine run.

``solve_passive`` auto-selects the array engines above
:data:`FLOW_ARRAY_CUTOFF` network vertices (mirroring
``repro.poset.bitset.BITSET_CUTOFF``); see ``docs/algorithms.md`` for the
measured crossover.
"""

from __future__ import annotations

from itertools import chain
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..obs import recorder
from .graph import RESIDUAL_EPS, FlowNetwork

__all__ = [
    "CSRFlowSnapshot",
    "dinic_array_max_flow",
    "push_relabel_array_max_flow",
    "FLOW_ARRAY_CUTOFF",
    "ARRAY_UPGRADES",
    "array_backend_for",
]

_EPS = RESIDUAL_EPS

#: Network-vertex count above which ``solve_passive`` upgrades a loop
#: backend to its array sibling.  Measured on passive-reduction networks
#: (min_cut span, best of 3): the array engines are neutral at ~176
#: vertices (0.94x/1.04x for dinic/push-relabel) and win from ~355
#: (1.4x/2.4x), with the gap growing with size (2.1x/1.9x at ~1860,
#: 3.8x/5.7x flow-span at ~15k); see BENCH_flow_solvers.json.
FLOW_ARRAY_CUTOFF = 256

#: Loop backend -> array sibling used by the ``solve_passive`` auto-upgrade.
ARRAY_UPGRADES: Dict[str, str] = {
    "dinic": "dinic_array",
    "push_relabel": "push_relabel_array",
}

#: Relabels between global-relabeling sweeps in ``push_relabel_array``,
#: as a fraction of the vertex count.  The vectorized backward BFS makes
#: a sweep so cheap (~0.015 s on an 8192-vertex passive network) that
#: the optimum sits far below the classic one-sweep-per-n-relabels
#: cadence: measured on passive networks at n = 8192, the min-cut span
#: falls monotonically from scale 1.0 (2.20 s, 23.5 k relabels) to
#: 1/32 (1.36 s, 2.4 k relabels) and climbs again by 1/128 (1.72 s,
#: 24 sweeps) as sweep cost overtakes the relabels saved.
GLOBAL_RELABEL_INTERVAL_SCALE = 0.03125


def array_backend_for(backend: str) -> Optional[str]:
    """Array sibling of a loop backend, or ``None`` when there is none."""
    return ARRAY_UPGRADES.get(backend)


class CSRFlowSnapshot:
    """Frozen CSR view of a :class:`FlowNetwork`.

    Layout
    ------
    ``indptr`` (int64, ``num_nodes + 1``) and ``csr_arcs`` (int64) encode
    the per-vertex adjacency: ``csr_arcs[indptr[u]:indptr[u + 1]]`` are the
    arc ids leaving ``u`` in the network's adjacency order (the order the
    loop engines traverse).  ``arc_heads`` (int64), ``caps`` and ``flows``
    (float64) are indexed by *arc id*, so the ``arc ^ 1`` reverse-arc
    pairing of the storage format is preserved and residual pushes stay
    O(1) (``flows[a] += x; flows[a ^ 1] -= x``).  ``csr_tails`` /
    ``csr_heads`` mirror tail and head per CSR *position* for vectorized
    admissibility passes.

    The snapshot is frozen: topology and capacities never change after
    construction, and solvers that mutate ``flows`` must call
    :meth:`writeback` so the owning network's residual state (used by
    ``min_cut_from_residual``) reflects the solve.
    """

    __slots__ = (
        "num_nodes",
        "num_arcs",
        "indptr",
        "csr_arcs",
        "csr_tails",
        "csr_heads",
        "arc_heads",
        "caps",
        "flows",
    )

    def __init__(self, network: FlowNetwork) -> None:
        n = network.num_nodes
        adjacency = network.adjacency
        self.num_nodes = n
        self.num_arcs = len(network.heads)
        self.flows = np.asarray(network.flows, dtype=np.float64)
        # Topology and capacities are append-only on FlowNetwork, so the
        # (num_nodes, num_arcs) key fully identifies them; memoize the
        # frozen arrays on the network so repeated snapshots (solver, then
        # cut extraction) pay the list-to-array conversion only once.
        cache = network._csr_cache
        if cache is not None and cache[0] == (n, self.num_arcs):
            (self.arc_heads, self.caps, self.indptr, self.csr_arcs,
             self.csr_tails, self.csr_heads) = cache[1]
            return
        self.arc_heads = np.asarray(network.heads, dtype=np.int64)
        self.caps = np.asarray(network.caps, dtype=np.float64)
        degrees = np.fromiter(
            (len(arcs) for arcs in adjacency), dtype=np.int64, count=n
        )
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        self.indptr = indptr
        self.csr_arcs = np.fromiter(
            chain.from_iterable(adjacency), dtype=np.int64, count=self.num_arcs
        )
        self.csr_tails = np.repeat(np.arange(n, dtype=np.int64), degrees)
        self.csr_heads = (
            self.arc_heads[self.csr_arcs]
            if self.num_arcs
            else np.empty(0, dtype=np.int64)
        )
        network._csr_cache = (
            (n, self.num_arcs),
            (self.arc_heads, self.caps, self.indptr, self.csr_arcs,
             self.csr_tails, self.csr_heads),
        )

    def writeback(self, network: FlowNetwork) -> None:
        """Copy the snapshot's flow state back into the mutable network."""
        network.flows = self.flows.tolist()


def _frontier_positions(
    indptr: np.ndarray, frontier: np.ndarray
) -> np.ndarray:
    """CSR positions of every arc leaving a frontier vertex (ragged gather)."""
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    inclusive = np.cumsum(counts)
    offsets = np.repeat(starts - (inclusive - counts), counts)
    return np.arange(total, dtype=np.int64) + offsets


def _level_bfs(
    snap: CSRFlowSnapshot, residual: np.ndarray, source: int
) -> np.ndarray:
    """Vectorized BFS level assignment over usable residual arcs.

    Levels are exact shortest residual distances from ``source`` — the
    same values the loop engine's scalar BFS computes, independent of
    visit order.
    """
    level = np.full(snap.num_nodes, -1, dtype=np.int64)
    level[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    while frontier.size:
        positions = _frontier_positions(snap.indptr, frontier)
        if positions.size == 0:
            break
        admissible = positions[residual[snap.csr_arcs[positions]] > _EPS]
        candidates = snap.csr_heads[admissible]
        candidates = candidates[level[candidates] < 0]
        if candidates.size == 0:
            break
        frontier = np.unique(candidates)
        depth += 1
        level[frontier] = depth
    return level


def dinic_array_max_flow(network: FlowNetwork, source: int, sink: int) -> float:
    """Array-native Dinic; bit-identical flows/value to the loop engine.

    Per phase: one vectorized residual/level pass builds the level graph,
    one ``np.flatnonzero`` admissibility pass compacts the *survivor* arcs
    (usable residual, ``level[head] == level[tail] + 1``), and the
    blocking-flow DFS runs over compacted ndarray mirrors of just those
    survivors.  Within a phase no reverse arc of a survivor can become
    admissible (its level points backwards), so the survivor set is
    exactly the arc set the loop DFS could ever use — the augmenting
    sequence, and hence every float operation, is identical.
    """
    network._check_node(source)
    network._check_node(sink)
    if source == sink:
        raise ValueError("source and sink must differ")

    rec = recorder()
    with rec.span("csr_snapshot"):
        snap = CSRFlowSnapshot(network)
    if rec.enabled:
        rec.incr("flow.array.snapshots")
        rec.gauge("flow.array.snapshot_arcs", snap.num_arcs)

    n = snap.num_nodes
    caps = snap.caps
    flows = snap.flows
    arc_heads = snap.arc_heads

    total = 0.0
    phases = 0
    paths = 0
    pushes = 0

    while True:
        residual = caps - flows
        level = _level_bfs(snap, residual, source)
        if level[sink] < 0:
            break
        phases += 1

        # Survivor compaction: admissible level-graph arcs, in (vertex,
        # adjacency-order) position order — the loop DFS candidate order.
        keep = np.flatnonzero(
            (residual[snap.csr_arcs] > _EPS)
            & (level[snap.csr_tails] >= 0)
            & (level[snap.csr_heads] == level[snap.csr_tails] + 1)
        )
        kept_arcs = snap.csr_arcs[keep]
        sub_bounds = np.searchsorted(
            snap.csr_tails[keep], np.arange(n + 1, dtype=np.int64)
        ).tolist()
        # Survivor mirrors stay ndarrays: the DFS touches only the arcs on
        # attempted paths plus one pointer pass per saturated/pruned arc —
        # a tiny fraction of the survivors on large networks — so scalar
        # ndarray reads beat converting millions of entries to lists.
        # np.float64 arithmetic is IEEE double, identical to the loop
        # engine's floats, so bit-identity is unaffected.
        sub_heads = arc_heads[kept_arcs]
        sub_caps = caps[kept_arcs]
        sub_flow = flows[kept_arcs]
        ptr: List[int] = sub_bounds[:n]
        lv: List[int] = level.tolist()

        push_seq: List[int] = []  # survivor indices, in push order
        amount_seq: List[float] = []

        while True:
            # Walk a path of admissible survivor arcs from source to sink,
            # tracking the vertex stack so retreats need no tail lookup.
            path: List[int] = []
            nodes: List[int] = [source]
            u = source
            while u != sink:
                advanced = False
                bound = sub_bounds[u + 1]
                while ptr[u] < bound:
                    p = ptr[u]
                    v = sub_heads[p]
                    if sub_caps[p] - sub_flow[p] > _EPS and lv[v] == lv[u] + 1:
                        path.append(p)
                        nodes.append(v)
                        u = v
                        advanced = True
                        break
                    ptr[u] += 1
                if not advanced:
                    if u == source:
                        break
                    # Retreat: prune u from the level graph for this phase.
                    lv[u] = -1
                    path.pop()
                    nodes.pop()
                    u = nodes[-1]
                    ptr[u] += 1
            if u != sink:
                break  # no more augmenting paths in this phase
            bottleneck = min(sub_caps[p] - sub_flow[p] for p in path)
            for p in path:
                sub_flow[p] += bottleneck
                push_seq.append(p)
                amount_seq.append(bottleneck)
            total += bottleneck
            paths += 1
            pushes += len(path)

        if not push_seq:
            break  # defensive: a leveled sink guarantees >= 1 path
        # Replay the phase's pushes on the master arrays in order.
        # ufunc.at is unbuffered and applies repeated indices in sequence,
        # so each arc receives the identical rounding sequence the loop
        # engine's per-push updates produce.
        arcs_seq = kept_arcs[np.asarray(push_seq, dtype=np.int64)]
        amounts = np.asarray(amount_seq, dtype=np.float64)
        np.add.at(flows, arcs_seq, amounts)
        np.subtract.at(flows, arcs_seq ^ 1, amounts)

    snap.writeback(network)
    if rec.enabled:
        rec.incr("flow.dinic_array.calls")
        rec.incr("flow.dinic_array.phases", phases)
        rec.incr("flow.dinic_array.augmenting_paths", paths)
        rec.incr("flow.dinic_array.pushes", pushes)
        rec.observe("flow.dinic_array.paths_per_call", paths)
    return float(total)


def _distances_to_sink(
    snap: CSRFlowSnapshot, residual: np.ndarray, source: int, sink: int
) -> np.ndarray:
    """Backward BFS from the sink over usable residual arcs (vectorized).

    ``dist[v]`` is the length of a shortest residual path ``v -> sink``,
    or ``-1`` when none exists.  A vertex ``u`` can take a step to a
    frontier vertex ``v`` iff the arc ``u -> v`` has usable residual —
    which is the residual of the *pair* (``arc ^ 1``) of each arc ``v ->
    u`` in ``v``'s CSR slice, so the sweep never needs a reverse-adjacency
    structure.  The source is pinned at height ``n`` and is never expanded.
    """
    dist = np.full(snap.num_nodes, -1, dtype=np.int64)
    dist[sink] = 0
    frontier = np.array([sink], dtype=np.int64)
    depth = 0
    while frontier.size:
        positions = _frontier_positions(snap.indptr, frontier)
        if positions.size == 0:
            break
        arcs = snap.csr_arcs[positions]
        admissible = positions[residual[arcs ^ 1] > _EPS]
        candidates = snap.csr_heads[admissible]
        candidates = candidates[dist[candidates] < 0]
        candidates = candidates[candidates != source]
        if candidates.size == 0:
            break
        frontier = np.unique(candidates)
        depth += 1
        dist[frontier] = depth
    return dist


def push_relabel_array_max_flow(
    network: FlowNetwork, source: int, sink: int
) -> float:
    """FIFO push-relabel with gap heuristic plus global relabeling.

    The discharge loop matches the loop engine; every
    ``max(GLOBAL_RELABEL_INTERVAL_SCALE * n, 16)`` relabels a
    vectorized backward BFS from the sink recomputes exact residual
    distances and lifts heights to ``max(height, distance)`` (sink-
    disconnected vertices to at least ``n + 1``).  Exact distances are an
    upper bound for any valid labeling and ``max`` keeps updates
    monotone, so the relabeling is always sound; in exchange, stair-step
    relabel chains (the dominant cost on deep networks) collapse into one
    O(E) sweep.
    """
    network._check_node(source)
    network._check_node(sink)
    if source == sink:
        raise ValueError("source and sink must differ")

    rec = recorder()
    with rec.span("csr_snapshot"):
        snap = CSRFlowSnapshot(network)
    if rec.enabled:
        rec.incr("flow.array.snapshots")
        rec.gauge("flow.array.snapshot_arcs", snap.num_arcs)

    n = network.num_nodes
    heads = network.heads
    caps = network.caps
    flows = network.flows
    adjacency = network.adjacency

    from collections import deque

    height = [0] * n
    excess = [0.0] * n
    count_at_height = [0] * (2 * n + 1)
    pointer = [0] * n
    active: "deque[int]" = deque()
    in_queue = [False] * n

    height[source] = n
    count_at_height[0] = n - 1
    count_at_height[n] += 1

    num_pushes = 0
    num_relabels = 0
    num_gap_lifts = 0
    num_global_relabels = 0
    relabels_since_sweep = 0
    sweep_interval = max(int(GLOBAL_RELABEL_INTERVAL_SCALE * n), 16)

    def push(arc: int) -> None:
        nonlocal num_pushes
        u, v = heads[arc ^ 1], heads[arc]
        amount = min(excess[u], caps[arc] - flows[arc])
        if amount <= _EPS:
            # Shared with the loop engine: sub-epsilon pushes move no
            # usable flow and would strand invisible excess at v.
            return
        network.push(arc, amount)
        num_pushes += 1
        excess[u] -= amount
        excess[v] += amount
        if v not in (source, sink) and not in_queue[v]:
            active.append(v)
            in_queue[v] = True

    def global_relabel() -> None:
        nonlocal height, count_at_height, pointer
        nonlocal num_global_relabels, relabels_since_sweep
        residual = snap.caps - np.asarray(flows, dtype=np.float64)
        dist = _distances_to_sink(snap, residual, source, sink)
        lifted = np.where(dist >= 0, dist, n + 1)
        new_heights = np.maximum(np.asarray(height, dtype=np.int64), lifted)
        new_heights[source] = n
        height = new_heights.tolist()
        count_at_height = np.bincount(
            new_heights.clip(max=2 * n), minlength=2 * n + 1
        ).tolist()
        pointer = [0] * n
        num_global_relabels += 1
        relabels_since_sweep = 0

    def relabel(u: int) -> None:
        nonlocal num_relabels, num_gap_lifts, relabels_since_sweep
        old = height[u]
        best = 2 * n
        for arc in adjacency[u]:
            if caps[arc] - flows[arc] > _EPS:
                candidate = height[heads[arc]] + 1
                if candidate < best:
                    best = candidate
        count_at_height[old] -= 1
        height[u] = best
        count_at_height[best] += 1
        pointer[u] = 0
        num_relabels += 1
        relabels_since_sweep += 1
        # Gap heuristic (as in the loop engine).
        if count_at_height[old] == 0 and old < n:
            for v in range(n):
                if old < height[v] < n and v != source:
                    count_at_height[height[v]] -= 1
                    height[v] = n + 1
                    count_at_height[n + 1] += 1
                    num_gap_lifts += 1

    # Saturate all source arcs, then start from exact distance labels.
    for arc in adjacency[source]:
        if caps[arc] > _EPS:
            excess[source] += caps[arc]
            push(arc)
    if active:
        global_relabel()

    while active:
        u = active.popleft()
        in_queue[u] = False
        adj_u = adjacency[u]
        deg_u = len(adj_u)
        while excess[u] > _EPS:
            if height[u] >= 2 * n:
                break
            if pointer[u] == deg_u:
                relabel(u)
                if height[u] >= 2 * n:
                    break
                continue
            arc = adj_u[pointer[u]]
            v = heads[arc]
            if caps[arc] - flows[arc] > _EPS and height[u] == height[v] + 1:
                push(arc)
            else:
                pointer[u] += 1
        if relabels_since_sweep >= sweep_interval and active:
            global_relabel()

    if rec.enabled:
        rec.incr("flow.push_relabel_array.calls")
        rec.incr("flow.push_relabel_array.pushes", num_pushes)
        rec.incr("flow.push_relabel_array.relabels", num_relabels)
        rec.incr("flow.push_relabel_array.gap_lifts", num_gap_lifts)
        rec.incr(
            "flow.push_relabel_array.global_relabels", num_global_relabels
        )
        rec.observe("flow.push_relabel_array.pushes_per_call", num_pushes)
    # Sink-side measurement, as in the loop engine: stranded sub-epsilon
    # excess never counts toward the delivered flow value.
    return -network.flow_value(sink)
