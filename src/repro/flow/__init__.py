"""Max-flow / min-cut substrate (paper Section 2).

The passive solver (Theorem 4) needs a max-flow algorithm and a minimum
cut-edge set (Lemmas 7 and 8).  Everything is implemented from scratch:

* :class:`.graph.FlowNetwork` — mutable residual-graph representation,
  plus the shared epsilon-boundary contract (``RESIDUAL_EPS`` /
  ``has_residual``) every backend routes admissibility through;
* :mod:`.dinic` — Dinic's algorithm (``O(V^2 E)``, fast in practice);
* :mod:`.push_relabel` — Goldberg–Tarjan FIFO push-relabel with the gap
  heuristic, the ``O(V^3)`` algorithm the paper cites [14];
* :mod:`.array` — array-native siblings of both production backends over
  a frozen CSR snapshot (vectorized frontier BFS for Dinic; global
  relabeling for push-relabel), auto-selected by ``solve_passive`` above
  :data:`~repro.flow.array.FLOW_ARRAY_CUTOFF` vertices;
* :mod:`.mincut` — source-side cut extraction and cut-edge sets (Lemma 8).

A ``networkx`` backend is available for cross-checking in tests.
"""

from .array import (
    ARRAY_UPGRADES,
    FLOW_ARRAY_CUTOFF,
    CSRFlowSnapshot,
    array_backend_for,
    dinic_array_max_flow,
    push_relabel_array_max_flow,
)
from .dinic import dinic_max_flow
from .edmonds_karp import edmonds_karp_max_flow
from .graph import RESIDUAL_EPS, FlowNetwork, has_residual
from .mincut import MinCut, min_cut_from_residual, solve_min_cut
from .push_relabel import push_relabel_max_flow
from .scaling import capacity_scaling_max_flow

__all__ = [
    "FlowNetwork",
    "RESIDUAL_EPS",
    "has_residual",
    "dinic_max_flow",
    "push_relabel_max_flow",
    "edmonds_karp_max_flow",
    "capacity_scaling_max_flow",
    "CSRFlowSnapshot",
    "dinic_array_max_flow",
    "push_relabel_array_max_flow",
    "FLOW_ARRAY_CUTOFF",
    "ARRAY_UPGRADES",
    "array_backend_for",
    "MinCut",
    "min_cut_from_residual",
    "solve_min_cut",
    "solve_max_flow",
    "FLOW_BACKENDS",
]


def solve_max_flow(network: FlowNetwork, source: int, sink: int,
                   backend: str = "dinic") -> float:
    """Run the selected max-flow backend on ``network`` in place.

    Returns the maximum flow value; the network's internal flow state is
    updated so a minimum cut can be read off the residual graph.
    """
    try:
        solver = FLOW_BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; available: {sorted(FLOW_BACKENDS)}"
        ) from None
    return solver(network, source, sink)


FLOW_BACKENDS = {
    "dinic": dinic_max_flow,
    "push_relabel": push_relabel_max_flow,
    "edmonds_karp": edmonds_karp_max_flow,
    "capacity_scaling": capacity_scaling_max_flow,
    "dinic_array": dinic_array_max_flow,
    "push_relabel_array": push_relabel_array_max_flow,
}
