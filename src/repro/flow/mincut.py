"""Minimum cuts and cut-edge sets (paper Lemmas 7 and 8).

After a max-flow computation, the source side of a minimum cut is the set of
vertices reachable from the source in the residual graph; the cut-edge set
is exactly the saturated forward arcs crossing to the sink side.  Lemma 8
(and the max-flow min-cut theorem) guarantee its weight equals the max-flow
value, which :func:`solve_min_cut` asserts numerically.
"""

from __future__ import annotations

from collections import deque
from typing import List, Set, Tuple

import numpy as np

from ..obs import recorder
from .graph import RESIDUAL_EPS, FlowNetwork, has_residual

__all__ = ["MinCut", "min_cut_from_residual", "solve_min_cut"]


class MinCut:
    """A minimum source-sink cut.

    Attributes
    ----------
    value:
        Max-flow value = minimum cut capacity (Lemma 7).
    source_side:
        Vertices reachable from the source in the residual graph.
    cut_arcs:
        Forward arc ids crossing from the source side to the sink side —
        a minimum-weight cut-edge set in the sense of Lemma 8.
    """

    __slots__ = ("value", "source_side", "cut_arcs")

    def __init__(self, value: float, source_side: Set[int], cut_arcs: List[int]) -> None:
        self.value = value
        self.source_side = source_side
        self.cut_arcs = cut_arcs

    def cut_edges(self, network: FlowNetwork) -> List[Tuple[int, int, float]]:
        """Materialize the cut-edge set as ``(tail, head, capacity)`` triples."""
        return [
            (network.tail(arc), network.heads[arc], network.caps[arc])
            for arc in self.cut_arcs
        ]

    def weight(self, network: FlowNetwork) -> float:
        """Total capacity of the cut-edge set (eq. (5) of the paper)."""
        return float(sum(network.caps[arc] for arc in self.cut_arcs))

    def __repr__(self) -> str:
        return (f"MinCut(value={self.value:g}, source_side={len(self.source_side)}, "
                f"cut_arcs={len(self.cut_arcs)})")


def _min_cut_from_residual_array(network: FlowNetwork, source: int,
                                 sink: int, flow_value: float) -> MinCut:
    """Array fast path of :func:`min_cut_from_residual`.

    Runs the residual reachability BFS as vectorized frontier sweeps over
    a CSR snapshot and extracts the certificate with one mask over the
    forward arcs.  Admissibility uses the same exact float comparison as
    the scalar path and BFS reachability is order-independent, so the
    result (source side *and* cut-arc list) is identical.
    """
    from .array import CSRFlowSnapshot, _frontier_positions

    snap = CSRFlowSnapshot(network)
    residual = snap.caps - snap.flows
    usable = residual > RESIDUAL_EPS
    seen = np.zeros(snap.num_nodes, dtype=bool)
    seen[source] = True
    frontier = np.array([source], dtype=np.int64)
    while frontier.size:
        positions = _frontier_positions(snap.indptr, frontier)
        if positions.size == 0:
            break
        admissible = positions[usable[snap.csr_arcs[positions]]]
        candidates = snap.csr_heads[admissible]
        candidates = candidates[~seen[candidates]]
        if candidates.size == 0:
            break
        frontier = np.unique(candidates)
        seen[frontier] = True
    if seen[sink]:
        raise AssertionError("sink reachable in residual graph: flow is not maximum")
    forward = np.arange(0, snap.num_arcs, 2, dtype=np.int64)
    tails = snap.arc_heads[forward + 1]  # reverse arc's head == forward tail
    heads = snap.arc_heads[forward]
    crossing = (
        seen[tails]
        & ~seen[heads]
        & (snap.caps[forward] > 0.0)
        & ~usable[forward]
    )
    cut_arcs = forward[crossing].tolist()
    source_side = set(np.flatnonzero(seen).tolist())
    return MinCut(flow_value, source_side, cut_arcs)


def min_cut_from_residual(network: FlowNetwork, source: int, sink: int,
                          flow_value: float) -> MinCut:
    """Extract a minimum cut from a network holding a maximum flow."""
    from .array import FLOW_ARRAY_CUTOFF

    if network.num_nodes >= FLOW_ARRAY_CUTOFF:
        return _min_cut_from_residual_array(network, source, sink, flow_value)
    reachable: Set[int] = {source}
    queue: deque = deque([source])
    while queue:
        u = queue.popleft()
        for arc in network.adjacency[u]:
            v = network.heads[arc]
            if v not in reachable and has_residual(network.residual(arc)):
                reachable.add(v)
                queue.append(v)
    if sink in reachable:
        raise AssertionError("sink reachable in residual graph: flow is not maximum")
    # The Lemma 8 certificate lists only *saturated, positive-capacity*
    # forward arcs crossing the cut.  Zero-capacity crossing arcs carry no
    # weight but are not edges of the instance in any meaningful sense —
    # including them hands downstream consumers (e.g. the Theorem 4
    # label-flip readout) arcs that exist only as storage artifacts.  The
    # saturation conjunct is implied by the residual BFS above for any
    # positive-capacity crossing arc; it is asserted here so the
    # certificate is self-evidently sound.
    cut_arcs = [
        arc_id
        for arc_id, arc in network.forward_arcs()
        if arc.tail in reachable and arc.head not in reachable
        and arc.capacity > 0.0
        and not has_residual(arc.capacity - arc.flow)
    ]
    return MinCut(flow_value, reachable, cut_arcs)


def solve_min_cut(network: FlowNetwork, source: int, sink: int,
                  backend: str = "dinic", check: bool = True) -> MinCut:
    """Run max-flow and return a minimum cut, verifying Lemma 7/8 numerically.

    ``check=True`` asserts that the cut-edge weight matches the flow value up
    to floating-point tolerance — a cheap certificate of optimality.
    """
    from . import solve_max_flow  # local import to avoid a cycle

    rec = recorder()
    if rec.enabled:
        rec.gauge("flow.network.nodes", network.num_nodes)
        rec.gauge("flow.network.edges", network.num_edges)
    with rec.span("max_flow"):
        value = solve_max_flow(network, source, sink, backend=backend)
    with rec.span("extract_cut"):
        cut = min_cut_from_residual(network, source, sink, value)
    if rec.enabled:
        rec.gauge("flow.cut_edges", len(cut.cut_arcs))
        rec.gauge("flow.value", value)
    if check:
        weight = cut.weight(network)
        scale = max(1.0, abs(value))
        if abs(weight - value) > 1e-6 * scale:
            raise AssertionError(
                f"min-cut weight {weight!r} != max-flow value {value!r}"
            )
    return cut
