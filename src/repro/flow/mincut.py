"""Minimum cuts and cut-edge sets (paper Lemmas 7 and 8).

After a max-flow computation, the source side of a minimum cut is the set of
vertices reachable from the source in the residual graph; the cut-edge set
is exactly the saturated forward arcs crossing to the sink side.  Lemma 8
(and the max-flow min-cut theorem) guarantee its weight equals the max-flow
value, which :func:`solve_min_cut` asserts numerically.
"""

from __future__ import annotations

from collections import deque
from typing import List, Set, Tuple

from ..obs import recorder
from .graph import FlowNetwork

__all__ = ["MinCut", "min_cut_from_residual", "solve_min_cut"]

_EPS = 1e-12


class MinCut:
    """A minimum source-sink cut.

    Attributes
    ----------
    value:
        Max-flow value = minimum cut capacity (Lemma 7).
    source_side:
        Vertices reachable from the source in the residual graph.
    cut_arcs:
        Forward arc ids crossing from the source side to the sink side —
        a minimum-weight cut-edge set in the sense of Lemma 8.
    """

    __slots__ = ("value", "source_side", "cut_arcs")

    def __init__(self, value: float, source_side: Set[int], cut_arcs: List[int]) -> None:
        self.value = value
        self.source_side = source_side
        self.cut_arcs = cut_arcs

    def cut_edges(self, network: FlowNetwork) -> List[Tuple[int, int, float]]:
        """Materialize the cut-edge set as ``(tail, head, capacity)`` triples."""
        return [
            (network.tail(arc), network.heads[arc], network.caps[arc])
            for arc in self.cut_arcs
        ]

    def weight(self, network: FlowNetwork) -> float:
        """Total capacity of the cut-edge set (eq. (5) of the paper)."""
        return float(sum(network.caps[arc] for arc in self.cut_arcs))

    def __repr__(self) -> str:
        return (f"MinCut(value={self.value:g}, source_side={len(self.source_side)}, "
                f"cut_arcs={len(self.cut_arcs)})")


def min_cut_from_residual(network: FlowNetwork, source: int, sink: int,
                          flow_value: float) -> MinCut:
    """Extract a minimum cut from a network holding a maximum flow."""
    reachable: Set[int] = {source}
    queue: deque = deque([source])
    while queue:
        u = queue.popleft()
        for arc in network.adjacency[u]:
            v = network.heads[arc]
            if v not in reachable and network.residual(arc) > _EPS:
                reachable.add(v)
                queue.append(v)
    if sink in reachable:
        raise AssertionError("sink reachable in residual graph: flow is not maximum")
    cut_arcs = [
        arc_id
        for arc_id, arc in network.forward_arcs()
        if arc.tail in reachable and arc.head not in reachable
    ]
    return MinCut(flow_value, reachable, cut_arcs)


def solve_min_cut(network: FlowNetwork, source: int, sink: int,
                  backend: str = "dinic", check: bool = True) -> MinCut:
    """Run max-flow and return a minimum cut, verifying Lemma 7/8 numerically.

    ``check=True`` asserts that the cut-edge weight matches the flow value up
    to floating-point tolerance — a cheap certificate of optimality.
    """
    from . import solve_max_flow  # local import to avoid a cycle

    rec = recorder()
    if rec.enabled:
        rec.gauge("flow.network.nodes", network.num_nodes)
        rec.gauge("flow.network.edges", network.num_edges)
    with rec.span("max_flow"):
        value = solve_max_flow(network, source, sink, backend=backend)
    with rec.span("extract_cut"):
        cut = min_cut_from_residual(network, source, sink, value)
    if rec.enabled:
        rec.gauge("flow.cut_edges", len(cut.cut_arcs))
        rec.gauge("flow.value", value)
    if check:
        weight = cut.weight(network)
        scale = max(1.0, abs(value))
        if abs(weight - value) > 1e-6 * scale:
            raise AssertionError(
                f"min-cut weight {weight!r} != max-flow value {value!r}"
            )
    return cut
