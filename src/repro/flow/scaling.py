"""Capacity-scaling max-flow (``O(E^2 log U)``), the fourth backend.

Ford–Fulkerson with a scaling parameter Δ: only augment along paths whose
residual bottleneck is at least Δ, halving Δ when no such path remains.
For the real-valued capacities of the passive reduction we scale from the
largest capacity down to a relative epsilon, then finish with plain
augmentation to exactness — so the final flow is maximum, not
approximate, and agrees with the other three backends to machine
precision (property-tested).
"""

from __future__ import annotations

from collections import deque
from typing import List

from ..obs import recorder
from .graph import RESIDUAL_EPS, FlowNetwork

__all__ = ["capacity_scaling_max_flow"]

_EPS = RESIDUAL_EPS


def _augment_once(network: FlowNetwork, source: int, sink: int,
                  delta: float) -> float:
    """One BFS augmentation over usable residual arcs >= delta; 0 if none.

    Admissibility is the conjunction of the scaling filter (``residual >=
    delta``) and the shared residual predicate (``residual > RESIDUAL_EPS``,
    see :mod:`.graph`).  The conjunction matters at the epsilon boundary:
    a bare ``>= delta`` admits residual exactly ``RESIDUAL_EPS`` during the
    exactness pass, which every other backend rejects — the backends would
    disagree on boundary-capacity arcs.
    """
    heads = network.heads
    caps = network.caps
    flows = network.flows
    adjacency = network.adjacency
    n = network.num_nodes

    parent_arc: List[int] = [-1] * n
    parent_arc[source] = -2
    queue: deque = deque([source])
    while queue:
        u = queue.popleft()
        if u == sink:
            break
        for arc in adjacency[u]:
            v = heads[arc]
            residual = caps[arc] - flows[arc]
            if parent_arc[v] == -1 and residual >= delta and residual > _EPS:
                parent_arc[v] = arc
                queue.append(v)
    if parent_arc[sink] == -1:
        return 0.0

    bottleneck = float("inf")
    v = sink
    while v != source:
        arc = parent_arc[v]
        bottleneck = min(bottleneck, caps[arc] - flows[arc])
        v = heads[arc ^ 1]
    v = sink
    while v != source:
        arc = parent_arc[v]
        network.push(arc, bottleneck)
        v = heads[arc ^ 1]
    return bottleneck


def capacity_scaling_max_flow(network: FlowNetwork, source: int,
                              sink: int) -> float:
    """Compute a maximum flow from ``source`` to ``sink`` in place."""
    network._check_node(source)
    network._check_node(sink)
    if source == sink:
        raise ValueError("source and sink must differ")

    max_capacity = max((c for c in network.caps if c > 0), default=0.0)
    if max_capacity <= 0:
        return 0.0

    total = 0.0
    delta = max_capacity
    floor = max(max_capacity * 1e-12, _EPS)
    phases = 0
    paths = 0
    while delta >= floor:
        phases += 1
        while True:
            pushed = _augment_once(network, source, sink, delta)
            if pushed <= 0:
                break
            total += pushed
            paths += 1
        delta /= 2.0
    # Exactness pass: plain augmentation over any usable residual (the
    # shared strict-epsilon predicate inside _augment_once is the filter).
    while True:
        pushed = _augment_once(network, source, sink, 0.0)
        if pushed <= 0:
            break
        total += pushed
        paths += 1

    rec = recorder()
    if rec.enabled:
        rec.incr("flow.capacity_scaling.calls")
        rec.incr("flow.capacity_scaling.phases", phases)
        rec.incr("flow.capacity_scaling.augmenting_paths", paths)
        rec.observe("flow.capacity_scaling.paths_per_call", paths)
    return total
