"""Edmonds–Karp max-flow: BFS augmenting paths (``O(V E^2)``).

The third backend.  Asymptotically the weakest, but its simplicity makes
it a valuable cross-check: three independent implementations agreeing to
machine precision on random networks is strong evidence none of them is
subtly wrong, which matters because Theorem 4's *exactness* rides on the
flow solver.
"""

from __future__ import annotations

from collections import deque
from typing import List

from ..obs import recorder
from .graph import RESIDUAL_EPS, FlowNetwork

__all__ = ["edmonds_karp_max_flow"]

_EPS = RESIDUAL_EPS


def edmonds_karp_max_flow(network: FlowNetwork, source: int, sink: int) -> float:
    """Compute a maximum flow from ``source`` to ``sink`` in place."""
    network._check_node(source)
    network._check_node(sink)
    if source == sink:
        raise ValueError("source and sink must differ")

    heads = network.heads
    caps = network.caps
    flows = network.flows
    adjacency = network.adjacency
    n = network.num_nodes

    total = 0.0
    parent_arc: List[int] = [-1] * n
    paths = 0
    pushes = 0

    while True:
        # BFS for the shortest augmenting path.
        for i in range(n):
            parent_arc[i] = -1
        parent_arc[source] = -2  # sentinel: visited, no incoming arc
        queue: deque = deque([source])
        found = False
        while queue and not found:
            u = queue.popleft()
            for arc in adjacency[u]:
                v = heads[arc]
                if parent_arc[v] == -1 and caps[arc] - flows[arc] > _EPS:
                    parent_arc[v] = arc
                    if v == sink:
                        found = True
                        break
                    queue.append(v)
        if not found:
            break

        # Bottleneck along the path, then augment.
        bottleneck = float("inf")
        v = sink
        while v != source:
            arc = parent_arc[v]
            bottleneck = min(bottleneck, caps[arc] - flows[arc])
            v = heads[arc ^ 1]
        v = sink
        while v != source:
            arc = parent_arc[v]
            network.push(arc, bottleneck)
            pushes += 1
            v = heads[arc ^ 1]
        total += bottleneck
        paths += 1

    rec = recorder()
    if rec.enabled:
        rec.incr("flow.edmonds_karp.calls")
        rec.incr("flow.edmonds_karp.augmenting_paths", paths)
        rec.incr("flow.edmonds_karp.pushes", pushes)
        rec.observe("flow.edmonds_karp.paths_per_call", paths)
    return total
