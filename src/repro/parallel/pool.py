"""Process-pool ``map`` with per-worker metrics capture.

``pool_map(fn, tasks, workers=N)`` is the package's one fan-out primitive:

* ``workers <= 1`` runs every task inline, in submission order, in the
  caller's process — the exact serial code path, with instrumentation
  flowing straight into the ambient metrics registry;
* ``workers > 1`` dispatches tasks to a ``ProcessPoolExecutor``.  When the
  caller has an active metrics session, each worker task runs inside its
  own :func:`repro.obs.metrics_session`; the resulting snapshots travel
  back with the results and are merged into the caller's registry *in
  task-submission order*, so counter totals, histogram summaries, and
  high-water gauges match the serial run exactly (wall-clock timers and
  span durations are, of course, machine-dependent either way).

Results always come back in submission order, never completion order —
callers rely on that for deterministic downstream merging.

``fn`` and every task must be picklable (module-level functions and plain
dataclasses).  The ``fork`` start method is preferred when the platform
offers it (cheap, inherits ``sys.path``); otherwise ``spawn`` is used and
tasks must be importable from the child.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from ..obs import MetricsRegistry, metrics_session, recorder

__all__ = ["pool_map"]

T = TypeVar("T")
R = TypeVar("R")

#: Snapshot documents are plain dicts so they cross process boundaries.
Snapshot = Dict[str, Any]


def _preferred_context() -> multiprocessing.context.BaseContext:
    """The cheapest safe start method available (fork on POSIX)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _run_captured(
    fn: Callable[[T], R], task: T, capture: bool
) -> Tuple[R, Optional[Snapshot]]:
    """Worker-side shim: run one task, optionally under a metrics session."""
    if not capture:
        return fn(task), None
    with metrics_session(name="worker") as registry:
        result = fn(task)
    return result, registry.snapshot()


def pool_map(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    *,
    workers: int = 1,
    gauge_merge: str = "last",
    return_exceptions: bool = False,
) -> List[Any]:
    """Apply ``fn`` to every task, fanning out across ``workers`` processes.

    Parameters
    ----------
    fn:
        Module-level callable applied to each task.  Must be picklable for
        ``workers > 1``.
    tasks:
        The work items, all submitted up front.
    workers:
        ``<= 1`` runs inline (the bit-for-bit serial path); larger values
        dispatch to that many processes (capped at ``len(tasks)``).
    gauge_merge:
        Gauge policy when merging worker metric snapshots back into the
        caller's registry — see
        :meth:`repro.obs.MetricsRegistry.merge_snapshot`.
    return_exceptions:
        When true, a task that raises contributes its exception object to
        the result list instead of aborting the whole map (mirroring
        ``asyncio.gather``); metrics of failed tasks are lost.  When false
        (default), the first failure — in submission order — re-raises
        after all submitted work has settled.

    Returns results in submission order.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    if workers <= 1:
        return _serial_map(fn, tasks, return_exceptions)

    parent = recorder()
    capture = bool(parent.enabled)
    span_prefix = parent.span_path if isinstance(parent, MetricsRegistry) else ""
    outcomes: List[Any] = []
    with ProcessPoolExecutor(
        max_workers=min(workers, len(tasks)), mp_context=_preferred_context()
    ) as executor:
        futures: List[Future] = [
            executor.submit(_run_captured, fn, task, capture) for task in tasks
        ]
        for future in futures:  # submission order, not completion order
            try:
                outcomes.append(future.result())
            except Exception as exc:  # noqa: BLE001 - surfaced to caller
                outcomes.append(exc)

    results: List[Any] = []
    first_error: Optional[Exception] = None
    for outcome in outcomes:
        if isinstance(outcome, Exception):
            if first_error is None:
                first_error = outcome
            results.append(outcome)
            continue
        result, snapshot = outcome
        if snapshot is not None and parent.enabled:
            parent.merge_snapshot(
                snapshot, span_prefix=span_prefix, gauge_merge=gauge_merge
            )
        results.append(result)
    if first_error is not None and not return_exceptions:
        raise first_error
    return results


def _serial_map(
    fn: Callable[[T], R], tasks: Sequence[T], return_exceptions: bool
) -> List[Any]:
    """The inline path: identical semantics, no processes, no snapshots."""
    results: List[Any] = []
    for task in tasks:
        if not return_exceptions:
            results.append(fn(task))
            continue
        try:
            results.append(fn(task))
        except Exception as exc:  # noqa: BLE001 - surfaced to caller
            results.append(exc)
    return results
