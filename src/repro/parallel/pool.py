"""Process-pool ``map`` with per-worker metrics capture and crash recovery.

``pool_map(fn, tasks, workers=N)`` is the package's one fan-out primitive:

* ``workers <= 1`` runs every task inline, in submission order, in the
  caller's process — the exact serial code path, with instrumentation
  flowing straight into the ambient metrics registry;
* ``workers > 1`` dispatches tasks to a ``ProcessPoolExecutor``.  When the
  caller has an active metrics session, a :class:`repro.obs.TraceContext`
  ships with every task and each worker runs inside its own
  :func:`repro.obs.metrics_session` (tracing enabled iff the dispatcher
  traces); the resulting snapshots travel back with the results and are
  merged into the caller's registry *in task-submission order*, so counter
  totals, histogram distributions (quantile-exact merge), and high-water
  gauges match the serial run exactly (wall-clock timers and span
  durations are, of course, machine-dependent either way).  Worker span
  *trees* come home too: their trace events keep their wall-aligned
  timestamps and worker pid, their paths are re-rooted under the
  dispatching span, so a ``--workers 8`` run yields one coherent timeline
  (see ``docs/observability.md``).

Results always come back in submission order, never completion order —
callers rely on that for deterministic downstream merging.

Failure handling (the resilience layer, see ``docs/resilience.md``):

* a task that *raises* is captured per ``return_exceptions`` and retried
  up to ``task_retries`` times;
* a task that exceeds ``task_timeout`` seconds yields a ``TimeoutError``
  result (the straggling worker is abandoned, not joined);
* a *worker that dies* (SIGKILL, OOM, segfault) breaks the whole pool —
  every unfinished task is resubmitted on a fresh pool, persistent
  offenders are isolated one-per-pool to pin the culprit, and a task that
  kills its own private pool is reported as :class:`WorkerCrashError`
  instead of poisoning its siblings;
* if no process pool can be created at all (``OSError``), remaining tasks
  fall back to serial in-process execution.

``fn`` and every task must be picklable (module-level functions and plain
dataclasses).  The ``fork`` start method is preferred when the platform
offers it (cheap, inherits ``sys.path``); otherwise ``spawn`` is used and
tasks must be importable from the child.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from ..obs import MetricsRegistry, TraceContext, metrics_session, recorder

__all__ = ["pool_map", "WorkerCrashError"]

T = TypeVar("T")
R = TypeVar("R")

#: Snapshot documents are plain dicts so they cross process boundaries.
Snapshot = Dict[str, Any]


class WorkerCrashError(RuntimeError):
    """A worker process died (SIGKILL, OOM, segfault) executing a task.

    Raised — or returned, under ``return_exceptions=True`` — for the task
    that repeatedly broke its pools, after recovery attempts on fresh
    pools have been exhausted.
    """


def _preferred_context() -> multiprocessing.context.BaseContext:
    """The cheapest safe start method available (fork on POSIX)."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _run_captured(
    fn: Callable[[T], R], task: T, ctx: TraceContext
) -> Tuple[R, Optional[Snapshot]]:
    """Worker-side shim: run one task, optionally under a metrics session.

    ``ctx`` is the dispatching session's trace context: no capture means
    run bare; capture opens a worker session whose tracing mirrors the
    dispatcher's, so worker span trees ride home inside the snapshot.
    """
    if not ctx.capture:
        return fn(task), None
    with metrics_session(name="worker", trace=ctx.trace) as registry:
        result = fn(task)
    return result, registry.snapshot()


def _incr(name: str, amount: int = 1) -> None:
    rec = recorder()
    if rec.enabled:
        rec.incr(name, amount)


def _dispatch(
    fn: Callable[[T], Any],
    tasks: Sequence[T],
    indices: Sequence[int],
    outcomes: Dict[int, Any],
    workers: int,
    ctx: TraceContext,
    task_timeout: Optional[float],
) -> List[int]:
    """Run ``tasks[i]`` for each index on one fresh pool, filling ``outcomes``.

    Returns the indices whose futures died with the pool (crash suspects).
    Raises ``OSError`` only if the pool itself could not be created.
    """
    executor = ProcessPoolExecutor(
        max_workers=min(workers, len(indices)), mp_context=_preferred_context()
    )
    crashed: List[int] = []
    timed_out = False
    try:
        futures: Dict[int, Future] = {}
        unsubmitted: List[int] = []
        for i in indices:
            try:
                futures[i] = executor.submit(_run_captured, fn, tasks[i], ctx)
            except BrokenProcessPool:
                unsubmitted.append(i)
        for i in indices:
            if i in futures:
                try:
                    outcomes[i] = futures[i].result(timeout=task_timeout)
                except BrokenProcessPool:
                    crashed.append(i)
                # On 3.10 futures.TimeoutError is not the builtin alias yet.
                except (TimeoutError, _FutureTimeout):
                    timed_out = True
                    futures[i].cancel()
                    outcomes[i] = TimeoutError(
                        f"task {i} exceeded task_timeout={task_timeout}s"
                    )
                except Exception as exc:  # noqa: BLE001 - surfaced to caller
                    outcomes[i] = exc
        crashed.extend(unsubmitted)
    finally:
        # A timed-out task is still hogging its worker: abandon the pool
        # instead of joining it, or the timeout would buy nothing.
        executor.shutdown(wait=not timed_out, cancel_futures=timed_out)
    return crashed


def _run_inline(
    fn: Callable[[T], Any],
    tasks: Sequence[T],
    indices: Sequence[int],
    outcomes: Dict[int, Any],
    ctx: TraceContext,
) -> None:
    """Serial fallback: run the given tasks in the caller's process."""
    for i in indices:
        try:
            outcomes[i] = _run_captured(fn, tasks[i], ctx)
        except Exception as exc:  # noqa: BLE001 - surfaced to caller
            outcomes[i] = exc


def _fanout(
    fn: Callable[[T], Any],
    tasks: Sequence[T],
    indices: List[int],
    outcomes: Dict[int, Any],
    workers: int,
    ctx: TraceContext,
    task_timeout: Optional[float],
) -> None:
    """One full dispatch round with broken-pool recovery.

    Pool attempt 1 runs the whole batch; unfinished tasks get a fresh
    shared pool (attempt 2); tasks that break that one too are isolated
    one-per-pool (attempt 3) so a single killer task is pinned and
    reported as :class:`WorkerCrashError` without taking siblings down.
    """
    try:
        crashed = _dispatch(fn, tasks, indices, outcomes, workers, ctx,
                            task_timeout)
    except OSError:
        _incr("resilience.pool_serial_fallbacks")
        _run_inline(fn, tasks, indices, outcomes, ctx)
        return
    if not crashed:
        return
    _incr("resilience.pool_breaks")
    _incr("resilience.pool_task_resubmits", len(crashed))
    try:
        still_crashed = _dispatch(fn, tasks, crashed, outcomes,
                                  min(workers, len(crashed)), ctx,
                                  task_timeout)
    except OSError:
        _incr("resilience.pool_serial_fallbacks")
        _run_inline(fn, tasks, crashed, outcomes, ctx)
        return
    for i in still_crashed:
        try:
            isolated = _dispatch(fn, tasks, [i], outcomes, 1, ctx,
                                 task_timeout)
        except OSError:
            _incr("resilience.pool_serial_fallbacks")
            _run_inline(fn, tasks, [i], outcomes, ctx)
            continue
        if isolated:
            _incr("resilience.worker_crashes")
            outcomes[i] = WorkerCrashError(
                f"worker process died executing task {i} "
                "(killed its pool on repeated attempts)"
            )


def pool_map(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    *,
    workers: int = 1,
    gauge_merge: str = "last",
    return_exceptions: bool = False,
    task_retries: int = 0,
    task_timeout: Optional[float] = None,
) -> List[Any]:
    """Apply ``fn`` to every task, fanning out across ``workers`` processes.

    Parameters
    ----------
    fn:
        Module-level callable applied to each task.  Must be picklable for
        ``workers > 1``.
    tasks:
        The work items, all submitted up front.
    workers:
        ``<= 1`` runs inline (the bit-for-bit serial path); larger values
        dispatch to that many processes (capped at ``len(tasks)``).
    gauge_merge:
        Gauge policy when merging worker metric snapshots back into the
        caller's registry — see
        :meth:`repro.obs.MetricsRegistry.merge_snapshot`.
    return_exceptions:
        When true, a task that raises (or whose worker crashes, or that
        times out) contributes its exception object to the result list
        instead of aborting the whole map (mirroring ``asyncio.gather``);
        metrics of failed tasks are lost.  When false (default), the first
        failure — in submission order — re-raises after all submitted work
        has settled.
    task_retries:
        Extra attempts for tasks that fail with an ordinary exception or a
        timeout (crashed workers already get their own pool-level recovery
        and are not retried here).  ``fn`` must be safe to re-run.
    task_timeout:
        Per-task deadline in seconds for the multi-process path (the
        serial path cannot preempt a running task).  A task over deadline
        yields a ``TimeoutError`` result; its worker is abandoned.

    Returns results in submission order.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    if workers <= 1:
        return _serial_map(fn, tasks, return_exceptions, task_retries)

    parent = recorder()
    ctx = TraceContext.current()
    span_prefix = parent.span_path if isinstance(parent, MetricsRegistry) else ""
    outcomes: Dict[int, Any] = {}
    indices = list(range(len(tasks)))
    _fanout(fn, tasks, indices, outcomes, workers, ctx, task_timeout)
    for _ in range(max(0, task_retries)):
        failed = [
            i for i in indices
            if isinstance(outcomes.get(i), Exception)
            and not isinstance(outcomes.get(i), WorkerCrashError)
        ]
        if not failed:
            break
        _incr("resilience.task_retries", len(failed))
        retry_outcomes: Dict[int, Any] = {}
        _fanout(fn, tasks, failed, retry_outcomes, workers, ctx,
                task_timeout)
        outcomes.update(retry_outcomes)

    results: List[Any] = []
    first_error: Optional[Exception] = None
    for i in indices:
        outcome = outcomes.get(i)
        if isinstance(outcome, Exception):
            if first_error is None:
                first_error = outcome
            results.append(outcome)
            continue
        result, snapshot = outcome
        if snapshot is not None and parent.enabled:
            parent.merge_snapshot(
                snapshot, span_prefix=span_prefix, gauge_merge=gauge_merge
            )
        results.append(result)
    if first_error is not None and not return_exceptions:
        raise first_error
    return results


def _serial_map(
    fn: Callable[[T], R],
    tasks: Sequence[T],
    return_exceptions: bool,
    task_retries: int = 0,
) -> List[Any]:
    """The inline path: identical semantics, no processes, no snapshots."""
    results: List[Any] = []
    for i, task in enumerate(tasks):
        attempts = 1 + max(0, task_retries)
        outcome: Any = None
        for attempt in range(attempts):
            try:
                outcome = fn(task)
                break
            except Exception as exc:  # noqa: BLE001 - surfaced to caller
                outcome = exc
                if attempt + 1 < attempts:
                    _incr("resilience.task_retries")
        if isinstance(outcome, Exception) and not return_exceptions:
            raise outcome
        results.append(outcome)
    return results
