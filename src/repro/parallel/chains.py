"""Chain-level parallel tasks for the active algorithm (Theorems 2-3).

The Section 4 algorithm decomposes ``P`` into ``w`` chains whose 1-D
recursive sampling runs are independent: chains partition the point set,
so their probe sets are disjoint and their randomness comes from spawned
per-chain seeds.  That makes each chain a self-contained, picklable task:

* :class:`ChainTask` bundles a chain's indices, an
  :class:`~repro.core.oracle.OracleShard` restricted to them, the
  ``(epsilon, delta)`` budget, the sampling plan, and the chain's spawned
  :class:`~numpy.random.SeedSequence`;
* :func:`run_chain_task` executes the Section 3 recursion on one task and
  returns the chain's weighted sample ``Σ_i`` together with the shard's
  probe log, ready for the parent to merge (in chain order) and
  ``absorb`` into the real oracle.

The serial path (``workers=1``) runs the same recursion inline against
the live oracle with the same spawned per-chain seed, which is what makes
worker count invisible in the output: same chain order, same randomness,
same probes — only the executing process differs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..core.active_1d import LevelTrace, WeightedSample, build_weighted_sample_1d
from ..obs import recorder
from ..stats.estimation import SamplingPlan

__all__ = ["ChainTask", "ChainResult", "run_chain_task"]


@dataclass(frozen=True)
class ChainTask:
    """One chain's worth of 1-D recursive sampling, fully self-contained.

    ``shard`` is an :class:`~repro.core.oracle.OracleShard` — possibly
    wrapped in resilience decorators (fault injection, retries), which
    forward the shard surface (``log``, ``new_revealed``) unchanged.
    ``degrade`` makes a halting oracle failure return the chain's partial
    ``Σ_i`` (with ``ChainResult.halted`` set) instead of raising.
    """

    chain_id: int
    global_indices: Tuple[int, ...]
    shard: Any
    epsilon: float
    delta: float
    plan: SamplingPlan
    seed: np.random.SeedSequence
    degrade: bool = False


@dataclass(frozen=True)
class ChainResult:
    """What comes back from a chain task (all picklable).

    ``probe_log`` and ``revealed`` feed the parent oracle's ``absorb`` so
    budget/cost accounting stays exact; ``sigma`` is the chain's ``Σ_i``
    contribution (eq. (29)); ``trace`` carries the per-level telemetry;
    ``halted`` is ``None`` for a completed chain, else the halt reason of
    a degraded partial run.
    """

    chain_id: int
    sigma: WeightedSample
    probe_log: List[int]
    revealed: Dict[int, int]
    levels: int
    trace: Tuple[LevelTrace, ...]
    halted: Optional[str] = None


def run_chain_task(task: ChainTask) -> ChainResult:
    """Run the Section 3 recursion for one chain against its shard.

    Positions along the chain act as the 1-D values: index 0 is the most
    dominated point, so every monotone classifier is a threshold on the
    position.  The chain's generator is rebuilt from its spawned seed, so
    the draws are identical no matter which process (or order) runs it.
    """
    rec = recorder()
    positions = np.arange(len(task.global_indices), dtype=float)
    rng = np.random.default_rng(task.seed)
    # The span gives each chain its own timeline row; the timer folds all
    # chains into ONE quantile histogram (p50/p99 chain solve time), which
    # is what the profiler and OpenMetrics exporter report on.
    with rec.span(f"chain[{task.chain_id}]"), rec.timer("active.chain_seconds"):
        sigma, levels, trace = build_weighted_sample_1d(
            positions,
            np.asarray(task.global_indices, dtype=int),
            task.shard,
            task.epsilon,
            task.delta,
            task.plan,
            rng,
            degrade=task.degrade,
        )
    halted = None
    if trace and trace[-1].kind == "halted":
        halted = trace[-1].note or "halted"
    return ChainResult(
        chain_id=task.chain_id,
        sigma=sigma,
        probe_log=task.shard.log,
        revealed=task.shard.new_revealed,
        levels=levels,
        trace=trace,
        halted=halted,
    )
