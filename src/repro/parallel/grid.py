"""Experiment config-grid fan-out with crash-safe per-config results.

The experiment runner sweeps a grid of configurations (by default one per
registered experiment).  Each configuration is independent and seeded, so
the grid is embarrassingly parallel — and each config's result is written
to its *own* file, atomically, from inside the worker that produced it.
Two failure properties follow:

* a worker that crashes mid-write can never corrupt its output file (the
  write is temp-file + ``os.replace``);
* a config that raises loses only itself — results of configs that
  already completed are on disk and intact, and the parent still receives
  every other config's rows.

When the parent has metrics enabled, every config runs inside its own
:func:`repro.obs.metrics_session`; the snapshot rides home in the
:class:`GridResult` so the runner can print per-experiment
instrumentation no matter which process did the work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .._util import atomic_write_json
from ..obs import metrics_session
from .pool import pool_map

__all__ = ["GridConfig", "GridResult", "run_grid"]


@dataclass(frozen=True)
class GridConfig:
    """One cell of an experiment grid.

    ``name`` is looked up in the experiment registry
    (:data:`repro.experiments.runner.EXPERIMENTS`) unless ``func`` supplies
    an explicit callable (must be picklable for multi-process runs).
    ``label`` names the output file and defaults to ``name``.
    """

    name: str
    params: Dict[str, Any] = field(default_factory=dict)
    func: Optional[Callable[..., List[dict]]] = None
    label: Optional[str] = None

    @property
    def out_name(self) -> str:
        return self.label or self.name


@dataclass(frozen=True)
class GridResult:
    """Outcome of one grid cell: rows on success, an error string on failure."""

    name: str
    label: str
    params: Dict[str, Any]
    rows: Optional[List[dict]] = None
    error: Optional[str] = None
    out_path: Optional[str] = None
    metrics: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _resolve(config: GridConfig) -> Callable[..., List[dict]]:
    if config.func is not None:
        return config.func
    from ..experiments.runner import EXPERIMENTS

    try:
        return EXPERIMENTS[config.name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {config.name!r}; available: {sorted(EXPERIMENTS)}"
        ) from None


def _run_config(task: Tuple[GridConfig, Optional[str], bool]) -> GridResult:
    """Worker-side: run one config, write its result file, return the rows."""
    config, out_dir, capture = task
    runner = _resolve(config)
    if capture:
        with metrics_session(name=config.out_name) as registry:
            rows = runner(**config.params)
        metrics: Optional[Dict[str, Any]] = registry.snapshot()
    else:
        rows = runner(**config.params)
        metrics = None
    out_path: Optional[str] = None
    if out_dir is not None:
        path = Path(out_dir) / f"{config.out_name}.json"
        payload = {
            "experiment": config.name,
            "params": config.params,
            "rows": rows,
        }
        if metrics is not None:
            payload["metrics"] = metrics
        atomic_write_json(path, payload)
        out_path = str(path)
    return GridResult(
        name=config.name,
        label=config.out_name,
        params=dict(config.params),
        rows=rows,
        out_path=out_path,
        metrics=metrics,
    )


def run_grid(
    configs: Sequence[GridConfig],
    *,
    workers: int = 1,
    out_dir: Optional[str] = None,
    capture_metrics: bool = False,
) -> List[GridResult]:
    """Run every config, fanning out across ``workers`` processes.

    Results come back in config order.  A config that raises is reported
    as a failed :class:`GridResult` (``ok`` false, ``error`` set) rather
    than aborting the grid; configs that finished earlier keep their rows
    and their already-written result files.
    """
    configs = list(configs)
    if out_dir is not None:
        Path(out_dir).mkdir(parents=True, exist_ok=True)
    tasks = [(config, out_dir, capture_metrics) for config in configs]
    outcomes = pool_map(_run_config, tasks, workers=workers, return_exceptions=True)
    results: List[GridResult] = []
    for config, outcome in zip(configs, outcomes):
        if isinstance(outcome, Exception):
            results.append(
                GridResult(
                    name=config.name,
                    label=config.out_name,
                    params=dict(config.params),
                    error=f"{type(outcome).__name__}: {outcome}",
                )
            )
        else:
            results.append(outcome)
    return results
