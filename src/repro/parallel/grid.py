"""Experiment config-grid fan-out with crash-safe per-config results.

The experiment runner sweeps a grid of configurations (by default one per
registered experiment).  Each configuration is independent and seeded, so
the grid is embarrassingly parallel — and each config's result is written
to its *own* file, atomically, from inside the worker that produced it.
Two failure properties follow:

* a worker that crashes mid-write can never corrupt its output file (the
  write is temp-file + ``os.replace``);
* a config that raises loses only itself — results of configs that
  already completed are on disk and intact, and the parent still receives
  every other config's rows.

When the parent has metrics enabled, every config runs inside its own
:func:`repro.obs.metrics_session`; the snapshot rides home in the
:class:`GridResult` so the runner can print per-experiment
instrumentation no matter which process did the work.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .._util import atomic_write_json
from ..obs import metrics_session, recorder
from .pool import pool_map

__all__ = ["GridConfig", "GridResult", "run_grid"]


@dataclass(frozen=True)
class GridConfig:
    """One cell of an experiment grid.

    ``name`` is looked up in the experiment registry
    (:data:`repro.experiments.runner.EXPERIMENTS`) unless ``func`` supplies
    an explicit callable (must be picklable for multi-process runs).
    ``label`` names the output file and defaults to ``name``.
    """

    name: str
    params: Dict[str, Any] = field(default_factory=dict)
    func: Optional[Callable[..., List[dict]]] = None
    label: Optional[str] = None

    @property
    def out_name(self) -> str:
        return self.label or self.name


@dataclass(frozen=True)
class GridResult:
    """Outcome of one grid cell: rows on success, an error string on failure."""

    name: str
    label: str
    params: Dict[str, Any]
    rows: Optional[List[dict]] = None
    error: Optional[str] = None
    out_path: Optional[str] = None
    metrics: Optional[Dict[str, Any]] = None
    resumed: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


def _resolve(config: GridConfig) -> Callable[..., List[dict]]:
    if config.func is not None:
        return config.func
    from ..experiments.runner import EXPERIMENTS

    try:
        return EXPERIMENTS[config.name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {config.name!r}; available: {sorted(EXPERIMENTS)}"
        ) from None


def _run_config(task: Tuple[GridConfig, Optional[str], bool, bool]) -> GridResult:
    """Worker-side: run one config, write its result file, return the rows."""
    config, out_dir, capture, trace = task
    runner = _resolve(config)
    if capture or trace:
        with metrics_session(name=config.out_name, trace=trace) as registry:
            rows = runner(**config.params)
        metrics: Optional[Dict[str, Any]] = registry.snapshot()
    else:
        rows = runner(**config.params)
        metrics = None
    out_path: Optional[str] = None
    if out_dir is not None:
        path = Path(out_dir) / f"{config.out_name}.json"
        payload = {
            "experiment": config.name,
            "params": config.params,
            "rows": rows,
        }
        if capture and metrics is not None:
            payload["metrics"] = metrics
        atomic_write_json(path, payload)
        out_path = str(path)
    return GridResult(
        name=config.name,
        label=config.out_name,
        params=dict(config.params),
        rows=rows,
        out_path=out_path,
        metrics=metrics,
    )


def _load_completed(config: GridConfig, out_dir: str) -> Optional[GridResult]:
    """A :class:`GridResult` rebuilt from a prior run's output file, if valid.

    Returns ``None`` when the file is absent, unreadable, or belongs to a
    different experiment/params — those configs re-run.  Atomic writes
    guarantee a file that exists is complete, but a changed grid must not
    silently reuse stale rows.
    """
    path = Path(out_dir) / f"{config.out_name}.json"
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if (payload.get("experiment") != config.name
            or payload.get("params") != config.params
            or "rows" not in payload):
        return None
    return GridResult(
        name=config.name,
        label=config.out_name,
        params=dict(config.params),
        rows=payload["rows"],
        out_path=str(path),
        metrics=payload.get("metrics"),
        resumed=True,
    )


def run_grid(
    configs: Sequence[GridConfig],
    *,
    workers: int = 1,
    out_dir: Optional[str] = None,
    capture_metrics: bool = False,
    capture_trace: bool = False,
    resume: bool = False,
    task_retries: int = 0,
) -> List[GridResult]:
    """Run every config, fanning out across ``workers`` processes.

    Results come back in config order.  A config that raises is reported
    as a failed :class:`GridResult` (``ok`` false, ``error`` set) rather
    than aborting the grid; configs that finished earlier keep their rows
    and their already-written result files.

    ``capture_metrics`` runs each config inside its own metrics session
    and ships the snapshot home in the :class:`GridResult`;
    ``capture_trace`` additionally enables timeline tracing on those
    sessions, so the snapshots carry trace events the caller can merge
    and export (``repro.obs.to_chrome_trace``).

    With ``resume`` (requires ``out_dir``), configs whose output file from
    a previous run exists and matches (same experiment, same params) are
    skipped and returned with ``resumed=True`` — restarting a killed grid
    re-pays only the configs that had not finished.  ``task_retries``
    re-runs failing configs that many extra times before reporting them.
    """
    configs = list(configs)
    if out_dir is not None:
        Path(out_dir).mkdir(parents=True, exist_ok=True)
    completed: Dict[int, GridResult] = {}
    if resume and out_dir is not None:
        rec = recorder()
        for i, config in enumerate(configs):
            prior = _load_completed(config, out_dir)
            if prior is not None:
                completed[i] = prior
                if rec.enabled:
                    rec.incr("resilience.grid_skips")
    tasks = [
        (config, out_dir, capture_metrics, capture_trace)
        for i, config in enumerate(configs) if i not in completed
    ]
    outcomes = pool_map(_run_config, tasks, workers=workers,
                        return_exceptions=True, task_retries=task_retries)
    results: List[GridResult] = []
    fresh = iter(outcomes)
    for i, config in enumerate(configs):
        if i in completed:
            results.append(completed[i])
            continue
        outcome = next(fresh)
        if isinstance(outcome, Exception):
            results.append(
                GridResult(
                    name=config.name,
                    label=config.out_name,
                    params=dict(config.params),
                    error=f"{type(outcome).__name__}: {outcome}",
                )
            )
        else:
            results.append(outcome)
    return results
