"""Deterministic seed spawning for worker fan-out.

Parallel runs must be bit-for-bit identical to serial runs regardless of
worker count, which rules out sharing one RNG stream across tasks (the
stream position would depend on scheduling).  Instead every task gets its
own child of the caller's root seed via ``np.random.SeedSequence.spawn``:
children are independent, high-quality streams and — crucially — a pure
function of the root seed and the spawn index, so task ``i`` draws the
same randomness whether it runs inline, first, last, or on another
process.

``spawn_seed_sequences`` is the primitive (``SeedSequence`` objects are
picklable and cheap to ship to workers); ``spawn_generators`` is the
in-process convenience.
"""

from __future__ import annotations

from typing import List

import numpy as np

from .._util import RngLike, as_generator

__all__ = ["spawn_seed_sequences", "spawn_generators"]


def spawn_seed_sequences(rng: RngLike, n: int) -> List[np.random.SeedSequence]:
    """Spawn ``n`` independent child seeds from ``rng``, deterministically.

    ``rng`` may be ``None``, an integer seed, or a ``Generator`` — the same
    forms every randomized routine in the package accepts.  Repeated calls
    on the *same* ``Generator`` object yield fresh, non-overlapping
    children (the spawn counter advances), while re-creating the generator
    from the same seed replays the same children — exactly the
    reproducibility contract the rest of the package follows.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} seed sequences")
    gen = as_generator(rng)
    bit_generator = gen.bit_generator
    seed_seq = getattr(bit_generator, "seed_seq", None)
    if seed_seq is None:  # pragma: no cover - very old numpy
        seed_seq = getattr(bit_generator, "_seed_seq", None)
    if not isinstance(seed_seq, np.random.SeedSequence):
        # Exotic bit generators without a SeedSequence: derive a root from
        # the stream itself (still deterministic given the generator state).
        entropy = [int(x) for x in gen.integers(0, 2**63, size=4)]
        seed_seq = np.random.SeedSequence(entropy)
    return list(seed_seq.spawn(n))


def spawn_generators(rng: RngLike, n: int) -> List[np.random.Generator]:
    """Spawn ``n`` independent child generators (see ``spawn_seed_sequences``)."""
    return [np.random.default_rng(seq) for seq in spawn_seed_sequences(rng, n)]
