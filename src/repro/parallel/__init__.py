"""repro.parallel — process-pool execution with deterministic fan-out.

The paper's active algorithm decomposes ``P`` into ``w`` independent
chains (Theorems 2-3) and the experiment harness sweeps config grids —
both embarrassingly parallel.  This package is the scale-out layer the
ROADMAP asks for, built on three invariants:

* **Determinism** — every task draws randomness from its own spawned
  ``np.random.SeedSequence`` child (:mod:`.seeds`), so outputs are
  bit-for-bit identical for any worker count, including ``workers=1``;
* **Exact accounting** — workers probe picklable
  :class:`~repro.core.oracle.OracleShard` objects; the parent ``absorb``\\ s
  the probe logs back in task order, so probing cost, probe logs, and
  budgets match a serial run exactly (:mod:`.chains`);
* **Observable merge** — each worker runs under its own
  :class:`~repro.obs.MetricsRegistry`; snapshots merge back into the
  parent registry in task order (:mod:`.pool`), so counters, histograms,
  and high-water gauges of a parallel run equal the serial run's.

See docs/parallelism.md for the worker model and merge semantics.
"""

from .chains import ChainResult, ChainTask, run_chain_task
from .grid import GridConfig, GridResult, run_grid
from .pool import pool_map
from .seeds import spawn_generators, spawn_seed_sequences

__all__ = [
    "ChainResult",
    "ChainTask",
    "run_chain_task",
    "GridConfig",
    "GridResult",
    "run_grid",
    "pool_map",
    "spawn_generators",
    "spawn_seed_sequences",
]
