"""Label oracles for the active setting (Problem 1).

In the paper's model every label starts hidden and an algorithm pays one
unit of *probing cost* per point whose label it asks the oracle to reveal.
:class:`LabelOracle` implements exactly this accounting:

* a probe of a point charges one unit the *first* time that point is probed
  and is free afterwards (the label is already known — re-asking gains
  nothing, so the paper's with-replacement sampling never pays more than
  ``n`` in total);
* an optional hard budget turns over-spending into an exception, which the
  lower-bound experiments use to certify probe counts;
* the full probe log is kept for auditing and for the experiment harness.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from ..obs import recorder
from .points import HIDDEN, PointSet

__all__ = ["LabelOracle", "ProbeBudgetExceeded"]


class ProbeBudgetExceeded(RuntimeError):
    """Raised when an algorithm attempts to exceed its probe budget."""


class LabelOracle:
    """Reveals hidden labels of a ground-truth point set, charging per point.

    Parameters
    ----------
    ground_truth:
        Fully labeled point set.  Algorithms under test must only see it
        through :meth:`probe`.
    budget:
        Optional maximum number of *distinct* points that may be probed.
    """

    def __init__(self, ground_truth: PointSet, budget: Optional[int] = None) -> None:
        ground_truth.require_full_labels()
        self._labels = ground_truth.labels
        self.budget = budget
        self._revealed: Dict[int, int] = {}
        self._log: List[int] = []

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------

    def probe(self, index: int) -> int:
        """Reveal and return the label of point ``index``.

        Charges one unit of probing cost on the first call for ``index``.
        """
        index = int(index)
        if not 0 <= index < len(self._labels):
            raise IndexError(f"point index {index} out of range")
        self._log.append(index)
        rec = recorder()
        if rec.enabled:
            rec.incr("oracle.requests")
        if index in self._revealed:
            if rec.enabled:
                rec.incr("oracle.dedup_hits")
            return self._revealed[index]
        if self.budget is not None and len(self._revealed) >= self.budget:
            if rec.enabled:
                rec.incr("oracle.budget_exceeded")
            raise ProbeBudgetExceeded(
                f"probe budget of {self.budget} distinct points exhausted"
            )
        label = int(self._labels[index])
        self._revealed[index] = label
        if rec.enabled:
            rec.incr("oracle.probes")
            if self.budget is not None:
                rec.gauge("oracle.budget_remaining",
                          self.budget - len(self._revealed))
        return label

    def probe_many(self, indices: Iterable[int]) -> List[int]:
        """Probe a sequence of points, returning their labels in order."""
        return [self.probe(i) for i in indices]

    def peek(self, index: int) -> Optional[int]:
        """Return the label of ``index`` if already revealed, else ``None``.

        Never charges cost; algorithms use this to avoid double-probing.
        """
        return self._revealed.get(int(index))

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def cost(self) -> int:
        """Probing cost so far: number of distinct points revealed."""
        return len(self._revealed)

    @property
    def probes_used(self) -> int:
        """Alias of :attr:`cost` — distinct points charged so far.

        The ``oracle.probes`` counter in a metrics session equals this
        exactly; ``tests/test_obs.py`` pins the invariant.
        """
        return len(self._revealed)

    @property
    def total_requests(self) -> int:
        """Number of probe calls including free repeats."""
        return len(self._log)

    @property
    def revealed_indices(self) -> List[int]:
        """Indices of all points revealed so far (insertion order)."""
        return list(self._revealed.keys())

    @property
    def log(self) -> List[int]:
        """The full probe log (every call, including repeats)."""
        return list(self._log)

    def revealed_labels(self, n: int) -> np.ndarray:
        """Label vector of length ``n`` with un-probed entries = ``HIDDEN``."""
        out = np.full(n, HIDDEN, dtype=np.int8)
        for idx, label in self._revealed.items():
            out[idx] = label
        return out

    def remaining_budget(self) -> Optional[int]:
        """Distinct probes still allowed, or ``None`` if unbudgeted."""
        if self.budget is None:
            return None
        return max(0, self.budget - self.cost)

    def reset(self) -> None:
        """Forget all revealed labels and reset the cost to zero."""
        self._revealed.clear()
        self._log.clear()

    def __repr__(self) -> str:
        return (f"LabelOracle(n={len(self._labels)}, cost={self.cost}, "
                f"budget={self.budget})")
