"""Label oracles for the active setting (Problem 1).

In the paper's model every label starts hidden and an algorithm pays one
unit of *probing cost* per point whose label it asks the oracle to reveal.
:class:`LabelOracle` implements exactly this accounting:

* a probe of a point charges one unit the *first* time that point is probed
  and is free afterwards (the label is already known — re-asking gains
  nothing, so the paper's with-replacement sampling never pays more than
  ``n`` in total);
* an optional hard budget turns over-spending into an exception, which the
  lower-bound experiments use to certify probe counts;
* the full probe log is kept for auditing and for the experiment harness.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, Iterable, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from ..obs import recorder
from .points import HIDDEN, PointSet

__all__ = ["LabelOracle", "OracleShard", "ProbeOracle", "ProbeBudgetExceeded"]


class ProbeOracle(Protocol):
    """Structural type of everything the active algorithms probe against.

    Satisfied by :class:`LabelOracle`,
    :class:`~repro.core.callback_oracle.CallbackOracle`, and
    :class:`OracleShard` — the 1-D recursion only ever calls :meth:`probe`.
    """

    def probe(self, index: int) -> int:
        """Reveal and return the label of point ``index``."""
        ...

    @property
    def cost(self) -> int:
        """Distinct points charged so far."""
        ...


class ProbeBudgetExceeded(RuntimeError):
    """Raised when an algorithm attempts to exceed its probe budget."""


class OracleShard:
    """Picklable worker-side oracle restricted to a subset of point indices.

    A shard is what a parallel worker probes against: it carries either the
    ground-truth labels of its indices (sharded from a
    :class:`LabelOracle`) or a labeling callable plus the relevant
    coordinates (sharded from a
    :class:`~repro.core.callback_oracle.CallbackOracle`).  It mirrors the
    parent oracle's accounting exactly — one charge per distinct probe,
    repeats free, the same ``oracle.*`` instrumentation counters.

    By default budgets are *not* enforced shard-side: the parent enforces
    its budget when the shard's probes are absorbed back
    (:meth:`LabelOracle.absorb`), keeping the global distinct-probe count
    exact even when chains run in separate processes.  Passing ``budget=``
    adds a shard-local cap on *newly charged* probes on top of that, so a
    runaway worker fails fast inside its own process (with
    :class:`ProbeBudgetExceeded`) instead of over-spending and only being
    caught at absorb time.

    Labels already revealed by the parent before sharding are pre-seeded,
    so re-probing them is free shard-side just as it would have been in the
    parent (they count as dedup hits, not charges, and never against the
    shard budget).
    """

    __slots__ = ("_labels", "_labeler", "_coords", "_preknown", "_revealed",
                 "_log", "budget")

    def __init__(
        self,
        labels: Optional[Dict[int, int]] = None,
        labeler: Optional[Callable[[Sequence[float]], int]] = None,
        coords: Optional[Dict[int, Tuple[float, ...]]] = None,
        preknown: Optional[Dict[int, int]] = None,
        budget: Optional[int] = None,
    ) -> None:
        if (labels is None) == (labeler is None):
            raise ValueError("provide exactly one of labels= or labeler=")
        if labeler is not None and coords is None:
            raise ValueError("labeler= requires coords=")
        if budget is not None and budget < 0:
            raise ValueError(f"shard budget must be >= 0; got {budget}")
        self._labels = labels
        self._labeler = labeler
        self._coords = coords
        self._preknown = dict(preknown or {})
        self._revealed: Dict[int, int] = dict(self._preknown)
        self._log: List[int] = []
        self.budget = budget

    def probe(self, index: int) -> int:
        """Reveal the label of ``index``; first reveal charges one unit."""
        index = int(index)
        self._log.append(index)
        rec = recorder()
        if rec.enabled:
            rec.incr("oracle.requests")
        if index in self._revealed:
            if rec.enabled:
                rec.incr("oracle.dedup_hits")
            return self._revealed[index]
        if self.budget is not None and self.cost >= self.budget:
            if rec.enabled:
                rec.incr("oracle.budget_exceeded")
            raise ProbeBudgetExceeded(
                f"shard probe budget of {self.budget} distinct points exhausted"
            )
        # Only *charged* probes are timed: dedup hits are dictionary reads
        # and timing them would drown the latency distribution in noise.
        start = perf_counter() if rec.enabled else 0.0
        if self._labels is not None:
            if index not in self._labels:
                raise IndexError(f"point index {index} is not in this shard")
            label = int(self._labels[index])
        else:
            assert self._labeler is not None and self._coords is not None
            if index not in self._coords:
                raise IndexError(f"point index {index} is not in this shard")
            label = int(self._labeler(self._coords[index]))
            if label not in (0, 1):
                raise ValueError(
                    f"labeler returned {label!r} for point {index}; expected 0 or 1"
                )
        self._revealed[index] = label
        if rec.enabled:
            rec.incr("oracle.probes")
            rec.record_time("oracle.probe_seconds", perf_counter() - start)
        return label

    def probe_many(self, indices: Iterable[int]) -> List[int]:
        """Probe a sequence of points, returning their labels in order."""
        return [self.probe(i) for i in indices]

    def peek(self, index: int) -> Optional[int]:
        """Return the label of ``index`` if already revealed, else ``None``."""
        return self._revealed.get(int(index))

    @property
    def cost(self) -> int:
        """Distinct points newly charged by this shard."""
        return len(self._revealed) - len(self._preknown)

    @property
    def log(self) -> List[int]:
        """Every probe call issued against this shard, in order."""
        return list(self._log)

    @property
    def new_revealed(self) -> Dict[int, int]:
        """Labels first revealed by this shard (insertion order), for absorb."""
        return {
            index: label
            for index, label in self._revealed.items()
            if index not in self._preknown
        }

    def remaining_budget(self) -> Optional[int]:
        """Shard-local charges still allowed, or ``None`` if uncapped."""
        if self.budget is None:
            return None
        return max(0, self.budget - self.cost)

    def __repr__(self) -> str:
        universe = self._labels if self._labels is not None else self._coords
        size = len(universe) if universe is not None else 0
        return f"OracleShard(size={size}, cost={self.cost}, budget={self.budget})"


def _absorb_probes(
    revealed: Dict[int, int],
    log: List[int],
    budget: Optional[int],
    shard_log: Sequence[int],
    shard_revealed: Dict[int, int],
    verify: Optional[Callable[[int, int], None]] = None,
) -> None:
    """Fold a shard's probe log and reveals into a parent oracle's state.

    Deliberately does *not* touch the metrics recorder: the worker already
    recorded ``oracle.requests`` / ``oracle.probes`` / ``oracle.dedup_hits``
    into its own registry, which the pool merges back separately —
    incrementing here would double-count.  Budget is enforced entry by
    entry so an overflow raises with the budget exactly exhausted, the same
    terminal state a serial run reaches.
    """
    log.extend(int(i) for i in shard_log)
    for index, label in shard_revealed.items():
        index = int(index)
        if index in revealed:
            continue
        if budget is not None and len(revealed) >= budget:
            rec = recorder()
            if rec.enabled:
                rec.incr("oracle.budget_exceeded")
            raise ProbeBudgetExceeded(
                f"probe budget of {budget} distinct points exhausted"
            )
        if verify is not None:
            verify(index, int(label))
        revealed[index] = int(label)


class LabelOracle:
    """Reveals hidden labels of a ground-truth point set, charging per point.

    Parameters
    ----------
    ground_truth:
        Fully labeled point set.  Algorithms under test must only see it
        through :meth:`probe`.
    budget:
        Optional maximum number of *distinct* points that may be probed.
    """

    def __init__(self, ground_truth: PointSet, budget: Optional[int] = None) -> None:
        ground_truth.require_full_labels()
        self._labels = ground_truth.labels
        self.budget = budget
        self._revealed: Dict[int, int] = {}
        self._log: List[int] = []

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------

    def probe(self, index: int) -> int:
        """Reveal and return the label of point ``index``.

        Charges one unit of probing cost on the first call for ``index``.
        """
        index = int(index)
        if not 0 <= index < len(self._labels):
            raise IndexError(f"point index {index} out of range")
        self._log.append(index)
        rec = recorder()
        if rec.enabled:
            rec.incr("oracle.requests")
        if index in self._revealed:
            if rec.enabled:
                rec.incr("oracle.dedup_hits")
            return self._revealed[index]
        if self.budget is not None and len(self._revealed) >= self.budget:
            if rec.enabled:
                rec.incr("oracle.budget_exceeded")
            raise ProbeBudgetExceeded(
                f"probe budget of {self.budget} distinct points exhausted"
            )
        label = int(self._labels[index])
        self._revealed[index] = label
        if rec.enabled:
            rec.incr("oracle.probes")
            if self.budget is not None:
                rec.gauge("oracle.budget_remaining",
                          self.budget - len(self._revealed))
        return label

    def probe_many(self, indices: Iterable[int]) -> List[int]:
        """Probe a sequence of points, returning their labels in order."""
        return [self.probe(i) for i in indices]

    def peek(self, index: int) -> Optional[int]:
        """Return the label of ``index`` if already revealed, else ``None``.

        Never charges cost; algorithms use this to avoid double-probing.
        """
        return self._revealed.get(int(index))

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def cost(self) -> int:
        """Probing cost so far: number of distinct points revealed."""
        return len(self._revealed)

    @property
    def probes_used(self) -> int:
        """Alias of :attr:`cost` — distinct points charged so far.

        The ``oracle.probes`` counter in a metrics session equals this
        exactly; ``tests/test_obs.py`` pins the invariant.
        """
        return len(self._revealed)

    @property
    def total_requests(self) -> int:
        """Number of probe calls including free repeats."""
        return len(self._log)

    @property
    def revealed_indices(self) -> List[int]:
        """Indices of all points revealed so far (insertion order)."""
        return list(self._revealed.keys())

    @property
    def log(self) -> List[int]:
        """The full probe log (every call, including repeats)."""
        return list(self._log)

    def revealed_labels(self, n: int) -> np.ndarray:
        """Label vector of length ``n`` with un-probed entries = ``HIDDEN``."""
        out = np.full(n, HIDDEN, dtype=np.int8)
        for idx, label in self._revealed.items():
            out[idx] = label
        return out

    def remaining_budget(self) -> Optional[int]:
        """Distinct probes still allowed, or ``None`` if unbudgeted."""
        if self.budget is None:
            return None
        return max(0, self.budget - self.cost)

    def reset(self) -> None:
        """Forget all revealed labels and reset the cost to zero."""
        self._revealed.clear()
        self._log.clear()

    def restore(self, revealed: Dict[int, int]) -> int:
        """Re-seed already-paid reveals from a crash-safe probe journal.

        Each entry is validated against the ground truth and inserted as a
        revealed (charged) label *without* appending to the probe log —
        the probes were issued and logged by the interrupted run; the
        resumed run merely inherits their labels so re-asking is free.
        Entries already revealed are skipped.  Returns the number of
        labels newly restored.
        """
        restored = 0
        for index, label in revealed.items():
            index, label = int(index), int(label)
            if not 0 <= index < len(self._labels):
                raise IndexError(f"point index {index} out of range")
            truth = int(self._labels[index])
            if label != truth:
                raise ValueError(
                    f"journaled label {label} for point {index} contradicts "
                    f"ground truth {truth}"
                )
            if index in self._revealed:
                continue
            self._revealed[index] = label
            restored += 1
        return restored

    # ------------------------------------------------------------------
    # Parallel sharding
    # ------------------------------------------------------------------

    def shard(self, indices: Sequence[int],
              budget: Optional[int] = None) -> OracleShard:
        """A picklable shard serving only ``indices`` (for worker processes).

        The shard carries the ground-truth labels of its indices plus any
        already-revealed labels among them (re-probing those stays free in
        the worker).  By default no budget travels with the shard; the
        parent enforces its budget when the shard's probes come back via
        :meth:`absorb`.  Pass ``budget=`` (typically the parent's remaining
        budget) to additionally cap the shard's own new charges in-process.
        """
        labels: Dict[int, int] = {}
        preknown: Dict[int, int] = {}
        for index in indices:
            index = int(index)
            if not 0 <= index < len(self._labels):
                raise IndexError(f"point index {index} out of range")
            labels[index] = int(self._labels[index])
            if index in self._revealed:
                preknown[index] = self._revealed[index]
        return OracleShard(labels=labels, preknown=preknown, budget=budget)

    def absorb(self, shard_log: Sequence[int], shard_revealed: Dict[int, int]) -> None:
        """Merge a shard's probes back, keeping accounting exact.

        Extends the probe log, charges each newly revealed point against
        the budget (raising :class:`ProbeBudgetExceeded` with the budget
        exactly exhausted on overflow), and validates every label against
        the ground truth.  Metrics counters are *not* incremented here —
        the worker's registry already holds them.
        """

        def verify(index: int, label: int) -> None:
            truth = int(self._labels[index])
            if label != truth:
                raise ValueError(
                    f"shard label {label} for point {index} contradicts "
                    f"ground truth {truth}"
                )

        _absorb_probes(self._revealed, self._log, self.budget,
                       shard_log, shard_revealed, verify)
        rec = recorder()
        if rec.enabled and self.budget is not None:
            rec.gauge("oracle.budget_remaining",
                      self.budget - len(self._revealed))

    def __repr__(self) -> str:
        return (f"LabelOracle(n={len(self._labels)}, cost={self.cost}, "
                f"budget={self.budget})")
