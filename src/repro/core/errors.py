"""Error functionals: ``err_P(h)`` and ``w-err_P(h)`` (paper eqs. (1), (3)).

``err_P(h)`` counts the points of ``P`` whose label differs from ``h``'s
prediction; ``w-err_P(h)`` sums their weights.  The unweighted error is the
special case of unit weights, exactly as the paper notes after eq. (3).
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from .classifier import MonotoneClassifier
from .points import HIDDEN, PointSet

__all__ = [
    "error_count",
    "weighted_error",
    "misclassified_mask",
    "prediction_error_count",
    "prediction_weighted_error",
]

PredictionsLike = Union[MonotoneClassifier, Sequence[int], np.ndarray]


def _predictions_for(points: PointSet, h: PredictionsLike) -> np.ndarray:
    """Normalize a classifier or a raw prediction vector into an int8 array."""
    if isinstance(h, MonotoneClassifier):
        pred = h.classify_set(points)
    else:
        pred = np.asarray(h, dtype=np.int8)
        if pred.shape != (points.n,):
            raise ValueError(f"expected {points.n} predictions, got shape {pred.shape}")
    return pred


def misclassified_mask(points: PointSet, h: PredictionsLike) -> np.ndarray:
    """Boolean mask of points misclassified by ``h``.

    All labels must be revealed; computing an error against hidden labels
    would silently produce garbage, so we raise instead.
    """
    points.require_full_labels()
    pred = _predictions_for(points, h)
    return pred != points.labels


def error_count(points: PointSet, h: PredictionsLike) -> int:
    """The paper's ``err_P(h)``: number of misclassified points (eq. (1))."""
    return int(np.count_nonzero(misclassified_mask(points, h)))


def weighted_error(points: PointSet, h: PredictionsLike) -> float:
    """The paper's ``w-err_P(h)``: total weight of misclassified points (eq. (3))."""
    mask = misclassified_mask(points, h)
    return float(points.weights[mask].sum())


def prediction_error_count(labels: np.ndarray, predictions: np.ndarray) -> int:
    """Unweighted error between two raw label vectors (ignoring hidden labels)."""
    labels = np.asarray(labels)
    predictions = np.asarray(predictions)
    known = labels != HIDDEN
    return int(np.count_nonzero(labels[known] != predictions[known]))


def prediction_weighted_error(labels: np.ndarray, predictions: np.ndarray,
                              weights: np.ndarray) -> float:
    """Weighted error between raw label vectors (ignoring hidden labels)."""
    labels = np.asarray(labels)
    predictions = np.asarray(predictions)
    weights = np.asarray(weights, dtype=float)
    known = labels != HIDDEN
    wrong = known & (labels != predictions)
    return float(weights[wrong].sum())
