"""Incremental threshold-error index (the paper's footnote 2, Section 3.4).

The 1-D algorithm repeatedly evaluates the empirical error of every
effective threshold over a growing multiset of labeled samples.  The paper
notes this is done with "augmented binary search trees on the sample
points"; this module provides that structure:

* a labeled point ``(v, 1, w)`` is misclassified by ``h^tau`` iff
  ``v <= tau`` — a *suffix* range-add of ``w`` over candidate thresholds
  ``tau >= v``;
* a labeled point ``(v, 0, w)`` is misclassified iff ``v > tau`` — a
  *prefix* range-add over ``tau < v``.

:class:`ThresholdErrorIndex` maintains these with a lazy min-segment tree
over ``{-inf} ∪ candidates``: ``O(log n)`` insertion, ``O(log n)`` point
query of any candidate's weighted error, and ``O(1)`` global minimum.

:class:`OnlineThreshold1D` wraps it into a user-facing incremental 1-D
learner: stream labeled values, read off the currently-optimal monotone
threshold at any time — the streaming counterpart of
:func:`repro.core.passive_1d.solve_passive_1d`.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .classifier import ThresholdClassifier

__all__ = ["ThresholdErrorIndex", "OnlineThreshold1D"]

NEG_INF = float("-inf")


class _LazyMinTree:
    """Segment tree over ``size`` slots: range add, range/global min+argmin."""

    __slots__ = ("size", "_mins", "_lazy", "_argmin")

    def __init__(self, size: int) -> None:
        self.size = size
        self._mins = [0.0] * (4 * size)
        self._lazy = [0.0] * (4 * size)
        self._argmin = [0] * (4 * size)
        self._build(1, 0, size - 1)

    def _build(self, node: int, lo: int, hi: int) -> None:
        self._argmin[node] = lo
        if lo == hi:
            return
        mid = (lo + hi) // 2
        self._build(2 * node, lo, mid)
        self._build(2 * node + 1, mid + 1, hi)

    def _push(self, node: int) -> None:
        pending = self._lazy[node]
        if pending:
            for child in (2 * node, 2 * node + 1):
                self._mins[child] += pending
                self._lazy[child] += pending
            self._lazy[node] = 0.0

    def _pull(self, node: int) -> None:
        left, right = 2 * node, 2 * node + 1
        if self._mins[left] <= self._mins[right]:
            self._mins[node] = self._mins[left]
            self._argmin[node] = self._argmin[left]
        else:
            self._mins[node] = self._mins[right]
            self._argmin[node] = self._argmin[right]

    def add(self, lo: int, hi: int, amount: float) -> None:
        """Add ``amount`` to every slot in ``[lo, hi]``."""
        if lo > hi:
            return
        self._add(1, 0, self.size - 1, lo, hi, amount)

    def _add(self, node: int, node_lo: int, node_hi: int,
             lo: int, hi: int, amount: float) -> None:
        if hi < node_lo or node_hi < lo:
            return
        if lo <= node_lo and node_hi <= hi:
            self._mins[node] += amount
            self._lazy[node] += amount
            return
        self._push(node)
        mid = (node_lo + node_hi) // 2
        self._add(2 * node, node_lo, mid, lo, hi, amount)
        self._add(2 * node + 1, mid + 1, node_hi, lo, hi, amount)
        self._pull(node)

    def global_min(self) -> Tuple[float, int]:
        """``(minimum value, its leftmost slot)``."""
        return self._mins[1], self._argmin[1]

    def value_at(self, index: int) -> float:
        """Current value of a single slot."""
        node, lo, hi = 1, 0, self.size - 1
        total = 0.0
        while lo != hi:
            total += self._lazy[node]
            mid = (lo + hi) // 2
            if index <= mid:
                node, hi = 2 * node, mid
            else:
                node, lo = 2 * node + 1, mid + 1
        return total + self._mins[node]


class ThresholdErrorIndex:
    """Weighted threshold-error bookkeeping over a fixed candidate set.

    Parameters
    ----------
    candidates:
        The values at which thresholds are effective — for the paper's
        setting, the (distinct) point values of the current subproblem.
        ``-inf`` (the all-1 classifier) is always included implicitly.
    """

    def __init__(self, candidates: Sequence[float]) -> None:
        distinct = sorted(set(float(c) for c in candidates))
        if any(math.isnan(c) or math.isinf(c) for c in distinct):
            raise ValueError("candidates must be finite")
        #: Slot 0 is tau = -inf; slot k >= 1 is the k-th distinct candidate.
        self.taus: List[float] = [NEG_INF] + distinct
        self._tree = _LazyMinTree(len(self.taus))
        self._inserted = 0
        self._total_weight = 0.0

    # ------------------------------------------------------------------

    def _suffix_start(self, value: float) -> int:
        """Smallest slot whose tau >= value (for label-1 suffix updates)."""
        # taus[1:] is sorted; find leftmost >= value, offset by the -inf slot.
        lo, hi = 1, len(self.taus)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.taus[mid] >= value:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def insert(self, value: float, label: int, weight: float = 1.0) -> None:
        """Account one labeled sample in ``O(log n)``.

        A label-1 sample at ``v`` penalizes every ``tau >= v``; a label-0
        sample penalizes every ``tau < v``.
        """
        if label not in (0, 1):
            raise ValueError(f"label must be 0 or 1; got {label}")
        if weight <= 0:
            raise ValueError(f"weight must be positive; got {weight}")
        split = self._suffix_start(float(value))
        if label == 1:
            self._tree.add(split, len(self.taus) - 1, weight)
        else:
            self._tree.add(0, split - 1, weight)
        self._inserted += 1
        self._total_weight += weight

    def extend(self, values: Sequence[float], labels: Sequence[int],
               weights: Optional[Sequence[float]] = None) -> None:
        """Insert a batch of samples."""
        values = np.asarray(values, dtype=float)
        labels = np.asarray(labels)
        if weights is None:
            weights = np.ones(len(values))
        for v, l, w in zip(values, labels, np.asarray(weights, dtype=float)):
            self.insert(float(v), int(l), float(w))

    # ------------------------------------------------------------------

    def error_at(self, tau: float) -> float:
        """Weighted error of ``h^tau`` on everything inserted so far.

        ``tau`` need not be a candidate: the error is constant between
        consecutive candidates, so the query resolves to the slot of the
        largest candidate ``<= tau``.
        """
        slot = self._suffix_start(tau)
        if slot < len(self.taus) and self.taus[slot] == tau:
            pass  # exact candidate
        else:
            slot -= 1  # largest candidate strictly below tau
        return self._tree.value_at(slot)

    def best(self) -> Tuple[float, float]:
        """``(tau, weighted error)`` of the current optimal threshold."""
        value, slot = self._tree.global_min()
        return self.taus[slot], value

    @property
    def num_inserted(self) -> int:
        """Number of samples accounted."""
        return self._inserted

    @property
    def total_weight(self) -> float:
        """Total weight accounted."""
        return self._total_weight

    def __repr__(self) -> str:
        return (f"ThresholdErrorIndex(candidates={len(self.taus) - 1}, "
                f"inserted={self._inserted})")


class OnlineThreshold1D:
    """Streaming exact 1-D monotone classification over known value support.

    Give it the candidate value support up front (or any superset — e.g.
    a discretization grid), then feed labeled observations one at a time;
    :meth:`classifier` always returns a threshold classifier optimal for
    everything seen so far, in ``O(log n)`` per update.
    """

    def __init__(self, candidates: Sequence[float]) -> None:
        self._index = ThresholdErrorIndex(candidates)

    def observe(self, value: float, label: int, weight: float = 1.0) -> None:
        """Account one labeled observation."""
        self._index.insert(value, label, weight)

    def classifier(self) -> ThresholdClassifier:
        """The currently optimal threshold classifier."""
        tau, _err = self._index.best()
        return ThresholdClassifier(tau)

    @property
    def current_error(self) -> float:
        """Weighted error of the current optimum on all observations."""
        return self._index.best()[1]

    @property
    def num_observations(self) -> int:
        """Observations accounted so far."""
        return self._index.num_inserted
