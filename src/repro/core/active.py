"""Active monotone classification in ``R^d`` (paper Section 4, Theorems 2-3).

Pipeline:

1. Compute a chain decomposition of ``P`` with exactly ``w`` chains
   (Lemma 6; ``O(d n^2 + n^{2.5})``).
2. For each chain ``C_i``, sort it by dominance and treat it as a 1-D
   instance: every monotone classifier maps a prefix of the sorted chain to
   0 and the remaining suffix to 1, so it behaves like a threshold on the
   position.  Run the Section 3 recursion with per-chain failure budget
   ``delta / w``, producing a fully-labeled weighted sample ``Σ_i``
   (eq. (29)).
3. Let ``Σ = ∪_i Σ_i`` (eq. (30)).  Lemma 14 guarantees that for any two
   monotone classifiers, ``w-err_Σ(h) <= w-err_Σ(h')`` implies
   ``err_P(h) <= (1+eps) err_P(h')``.
4. Find the classifier minimizing ``w-err_Σ`` — an instance of Problem 2 on
   ``Σ`` solved exactly by the Theorem 4 min-cut solver (Theorem 3's
   connection), then extend monotonically to all of ``R^d``.

Passing a :class:`~repro.resilience.runtime.ResilienceConfig` threads the
resilience layer through the run: the oracle is wrapped in the configured
stack (fault injection / retries / crash-safe journal), completed chains
are checkpointed so an interrupted run resumes without re-paying probes,
and — with ``degrade`` — halting oracle failures yield a best-effort
classifier plus a :class:`~repro.resilience.runtime.RunReport` instead of
an exception.  See ``docs/resilience.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional

import numpy as np

from .._util import RngLike, as_generator
from ..obs import recorder
from ..parallel.chains import ChainTask, run_chain_task
from ..parallel.pool import pool_map
from ..parallel.seeds import spawn_seed_sequences
from ..poset.chains import greedy_chain_decomposition, minimum_chain_decomposition
from ..stats.estimation import SamplingPlan
from .active_1d import WeightedSample, build_weighted_sample_1d
from .classifier import MonotoneClassifier
from .oracle import LabelOracle
from .passive import solve_passive
from .points import PointSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (resilience -> core)
    from ..resilience.runtime import ResilienceConfig, RunReport

__all__ = ["ActiveResult", "active_classify"]


@dataclass(frozen=True)
class ActiveResult:
    """Output of the Theorem 2/3 active algorithm.

    Attributes
    ----------
    classifier:
        The ``(1+eps)``-approximate monotone classifier over ``R^d``.
    sigma:
        The combined weighted sample ``Σ`` (probed points with weights).
    sigma_points:
        ``Σ`` materialized as a fully-labeled weighted :class:`PointSet`.
    probing_cost:
        Distinct points probed (newly charged) by this run; probes
        restored from a resume journal are not re-counted.
    sigma_error:
        Minimum ``w-err_Σ`` achieved (the optimized surrogate objective).
    num_chains:
        Number of chains used (equals the width ``w`` for the exact
        decomposition method).
    chain_sizes:
        Sizes of the chains, descending.
    decomposition_method:
        ``"matching"`` (exact, Lemma 6) or ``"greedy"`` (heuristic ablation).
    epsilon, delta:
        The parameters the run was configured with.
    report:
        The resilience :class:`~repro.resilience.runtime.RunReport` when a
        :class:`~repro.resilience.runtime.ResilienceConfig` was passed;
        ``None`` otherwise.  A degraded run is signaled here
        (``report.degraded``), not by an exception.
    """

    classifier: MonotoneClassifier
    sigma: WeightedSample
    sigma_points: PointSet
    probing_cost: int
    sigma_error: float
    num_chains: int
    chain_sizes: List[int]
    decomposition_method: str
    epsilon: float
    delta: float
    report: Optional["RunReport"] = None


def active_classify(points: PointSet, oracle: LabelOracle, epsilon: float,
                    delta: Optional[float] = None,
                    decomposition: str = "exact",
                    plan: Optional[SamplingPlan] = None,
                    rng: RngLike = None,
                    flow_backend: str = "dinic",
                    workers: int = 1,
                    resilience: Optional["ResilienceConfig"] = None
                    ) -> ActiveResult:
    """Solve Problem 1: probe few labels, return a ``(1+eps)``-approximation.

    Parameters
    ----------
    points:
        Input point set; labels may (and normally should) be hidden.  Only
        coordinates are read directly — labels flow through ``oracle``.
    oracle:
        Label oracle sharing the index space of ``points``.
    epsilon:
        Approximation slack in ``(0, 1]`` (Theorem 2).
    delta:
        Failure probability; defaults to ``1/n^2``.
    decomposition:
        ``"exact"`` (default) picks the best exact method for the
        dimensionality (patience for ``d <= 2``, the Lemma 6 matching
        reduction otherwise); ``"matching"`` / ``"patience"`` force a
        specific exact method; ``"greedy"`` uses the fast heuristic that
        may exceed ``w`` chains (ablation A2).
    plan:
        Sampling plan controlling per-level sample sizes.
    flow_backend:
        Max-flow backend used for the final passive solve on ``Σ``.
    workers:
        Number of processes for the chain-sampling phase.  Each chain's
        1-D recursion is independent (disjoint probes, its own spawned
        seed), so any value produces bit-for-bit identical output —
        ``workers=1`` (default) runs inline, larger values dispatch chains
        to a process pool.  Requires an oracle that supports sharding
        (:class:`LabelOracle` or
        :class:`~repro.core.callback_oracle.CallbackOracle` with a
        picklable labeler) when greater than 1.
    resilience:
        Optional :class:`~repro.resilience.runtime.ResilienceConfig`
        enabling fault injection, retries, checkpoint/resume, and graceful
        degradation for this run.  ``None`` (default) runs the plain
        pipeline with zero overhead.
    """
    if not 0 < epsilon <= 1:
        raise ValueError(f"epsilon must be in (0, 1]; got {epsilon}")
    n = points.n
    if n == 0:
        raise ValueError("cannot classify an empty point set")
    if delta is None:
        delta = 1.0 / max(4, n * n)
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1); got {delta}")
    rng = as_generator(rng)
    plan = plan or SamplingPlan()
    rec = recorder()

    with rec.span("active") as active_span:
        with rec.span("chain_decompose"):
            if decomposition in ("exact", "auto"):
                decomp = minimum_chain_decomposition(points)
            elif decomposition in ("matching", "patience"):
                decomp = minimum_chain_decomposition(points, method=decomposition)
            elif decomposition == "greedy":
                decomp = greedy_chain_decomposition(points)
            else:
                raise ValueError(
                    "decomposition must be one of 'exact', 'matching', "
                    f"'patience', 'greedy'; got {decomposition!r}"
                )

        w = decomp.num_chains
        per_chain_delta = delta / max(1, w)
        if rec.enabled:
            rec.gauge("active.n", n)
            rec.gauge("active.epsilon", epsilon)
            rec.gauge("active.chain_width", w)
            for size in decomp.sizes():
                rec.observe("active.chain_size", size)
            active_span.set_attr("n", n)
            active_span.set_attr("epsilon", epsilon)
            active_span.set_attr("width", w)

        state = _ResilienceState.build(
            oracle, resilience, n=n, epsilon=epsilon, delta=delta,
            num_chains=w, method=decomp.method,
        )
        effective = state.effective
        # Taken after journal replay, so restored probes are not re-counted.
        cost_before = effective.cost

        # Every chain draws from its own spawned seed, so the sampling is a
        # pure function of (rng, chain index) — the same randomness flows
        # whether chains run inline or on a process pool, which is what
        # makes `workers` invisible in the output.
        chain_seeds = spawn_seed_sequences(rng, w)
        sigma = WeightedSample()
        try:
            with rec.span("sample_chains"):
                if workers <= 1 or w <= 1:
                    for i, chain in enumerate(decomp.chains):
                        resumed = state.merge_resumed(i, sigma)
                        if resumed:
                            continue
                        # Positions along the chain act as the 1-D values:
                        # index 0 is the most dominated point, so every
                        # monotone classifier is a threshold on the position.
                        positions = np.arange(len(chain), dtype=float)
                        with rec.span(f"chain[{i}]") as chain_span, \
                                rec.timer("active.chain_seconds"):
                            chain_span.set_attr("size", len(chain))
                            chain_sigma, _levels, trace = build_weighted_sample_1d(
                                positions, np.asarray(chain, dtype=int),
                                effective, epsilon, per_chain_delta, plan,
                                np.random.default_rng(chain_seeds[i]),
                                degrade=state.degrade,
                            )
                        sigma.merge(chain_sigma)
                        halted = None
                        if trace and trace[-1].kind == "halted":
                            halted = trace[-1].note or "halted"
                        state.finish_chain(i, chain_sigma, halted)
                else:
                    if not hasattr(oracle, "shard") or not hasattr(oracle, "absorb"):
                        raise ValueError(
                            f"workers={workers} requires an oracle supporting "
                            "shard()/absorb() (LabelOracle or CallbackOracle); "
                            f"got {type(oracle).__name__} — use workers=1"
                        )
                    tasks = []
                    for i, chain in enumerate(decomp.chains):
                        if state.merge_resumed(i, sigma):
                            continue
                        tasks.append(ChainTask(
                            chain_id=i,
                            global_indices=tuple(int(p) for p in chain),
                            shard=effective.shard(chain,
                                                  budget=state.shard_budget())
                            if state.active
                            else oracle.shard(chain),
                            epsilon=epsilon,
                            delta=per_chain_delta,
                            plan=plan,
                            seed=chain_seeds[i],
                            degrade=state.degrade,
                        ))
                    results = pool_map(
                        run_chain_task, tasks, workers=workers,
                        gauge_merge="max",
                        return_exceptions=state.degrade,
                    )
                    # Chains partition P, so their probe sets are disjoint:
                    # absorbing in chain order reproduces the serial probe
                    # log and cost exactly.
                    for task, result in zip(tasks, results):
                        if isinstance(result, Exception):
                            state.chain_failed(task.chain_id, result)
                            continue
                        sigma.merge(result.sigma)
                        try:
                            effective.absorb(result.probe_log, result.revealed)
                        except Exception as exc:  # noqa: BLE001
                            # Re-raises unless configured to degrade and the
                            # failure is a legitimate halt (budget overflow).
                            state.chain_failed(task.chain_id, exc)
                            continue
                        state.finish_chain(task.chain_id, result.sigma,
                                           result.halted)

            indices, weights, labels = sigma.arrays()
            sigma_points = PointSet(points.coords[indices], labels, weights)
            if rec.enabled:
                rec.gauge("active.sigma_size", sigma.size)
                rec.gauge("active.sigma_weight", sigma.total_weight)
            with rec.span("passive_solve"):
                passive = solve_passive(sigma_points, backend=flow_backend)

            probing_cost = effective.cost - cost_before
            report = state.report(w, probing_cost)
        finally:
            state.close()

    return ActiveResult(
        classifier=passive.classifier,
        sigma=sigma,
        sigma_points=sigma_points,
        probing_cost=probing_cost,
        sigma_error=passive.optimal_error,
        num_chains=w,
        chain_sizes=decomp.sizes(),
        decomposition_method=decomp.method,
        epsilon=epsilon,
        delta=delta,
        report=report,
    )


class _ResilienceState:
    """Per-run resilience bookkeeping for :func:`active_classify`.

    Inert when built without a config (``active`` is false): every hook is
    a cheap no-op and the run is byte-for-byte the plain pipeline.  All
    resilience modules are imported lazily here, keeping ``repro.core``
    importable without ``repro.resilience`` (which imports it back).
    """

    def __init__(self, oracle: Any) -> None:
        self.active = False
        self.degrade = False
        self.effective = oracle
        self.config: Optional["ResilienceConfig"] = None
        self.stack: Any = None
        self.meta: Dict[str, Any] = {}
        self.done: Dict[int, WeightedSample] = {}
        self.completed: List[int] = []
        self.incomplete: List[int] = []
        self.resumed: List[int] = []
        self.halt_reason: Optional[str] = None
        self.checkpoints_written = 0

    @classmethod
    def build(cls, oracle: Any, config: Optional["ResilienceConfig"],
              **meta: Any) -> "_ResilienceState":
        state = cls(oracle)
        if config is None:
            return state
        from ..resilience.checkpoint import load_active_checkpoint
        from ..resilience.runtime import build_oracle_stack, sample_from_doc

        state.active = True
        state.config = config
        state.degrade = config.degrade
        state.meta = dict(meta)
        # Validate compatibility BEFORE the journal replays into the
        # oracle: a checkpoint from a different run must fail cleanly,
        # not as a label contradiction halfway through the replay.
        checkpoint = None
        if config.resume and config.checkpoint is not None:
            checkpoint = load_active_checkpoint(config.checkpoint)
            if checkpoint is not None and not checkpoint.compatible_with(
                    state.meta):
                raise ValueError(
                    f"checkpoint {config.checkpoint} belongs to a "
                    f"different run: {checkpoint.meta} vs {state.meta}"
                )
        state.stack = build_oracle_stack(oracle, config, journal_meta=state.meta)
        state.effective = state.stack.oracle
        if checkpoint is not None:
            state.done = {
                chain_id: sample_from_doc(doc)
                for chain_id, doc in checkpoint.done_chains.items()
            }
        return state

    # ------------------------------------------------------------------

    def merge_resumed(self, chain_id: int, sigma: WeightedSample) -> bool:
        """Merge a checkpointed chain's ``Σ_i``; true if it was resumed."""
        chain_sigma = self.done.get(chain_id)
        if chain_sigma is None:
            return False
        sigma.merge(chain_sigma)
        self.resumed.append(chain_id)
        self.completed.append(chain_id)
        rec = recorder()
        if rec.enabled:
            rec.incr("resilience.chains_resumed")
        return True

    def shard_budget(self) -> Optional[int]:
        """The shard-local cap to ship with worker shards, if configured."""
        if self.config is None or not self.config.shard_budgets:
            return None
        return self.effective.remaining_budget()

    def finish_chain(self, chain_id: int, chain_sigma: WeightedSample,
                     halted: Optional[str]) -> None:
        """Record one chain's outcome; checkpoint it when configured."""
        if halted is not None:
            self.incomplete.append(chain_id)
            if self.halt_reason is None:
                self.halt_reason = halted
            return
        self.completed.append(chain_id)
        if not self.active or self.config.checkpoint is None:
            return
        from ..resilience.checkpoint import save_active_checkpoint
        from ..resilience.runtime import sample_to_doc

        self.done[chain_id] = chain_sigma
        save_active_checkpoint(
            self.config.checkpoint, self.meta,
            {cid: sample_to_doc(s) for cid, s in self.done.items()},
        )
        self.checkpoints_written += 1

    def chain_failed(self, chain_id: int, error: Exception) -> None:
        """Handle a chain task that came back as an exception."""
        from ..resilience.errors import HALT_ERRORS

        if not self.degrade or not isinstance(error, HALT_ERRORS):
            raise error
        self.incomplete.append(chain_id)
        if self.halt_reason is None:
            self.halt_reason = f"{type(error).__name__}: {error}"

    def report(self, num_chains: int,
               probing_cost: int) -> Optional["RunReport"]:
        if not self.active:
            return None
        from ..resilience.runtime import RunReport

        stack = self.stack
        breaker = stack.resilient.breaker if stack.resilient else None
        return RunReport(
            completed=not self.incomplete,
            degraded=bool(self.incomplete),
            halt_reason=self.halt_reason,
            probes_charged=probing_cost,
            restored_probes=stack.restored,
            faults_injected=(stack.faulty.faults_injected
                             if stack.faulty else 0),
            retries=stack.resilient.retries if stack.resilient else 0,
            reconciliations=(stack.resilient.reconciliations
                             if stack.resilient else 0),
            breaker_trips=breaker.trips if breaker else 0,
            checkpoints_written=self.checkpoints_written,
            journal_appends=stack.journal.appends if stack.journal else 0,
            chains_total=num_chains,
            chains_completed=sorted(self.completed),
            chains_incomplete=sorted(self.incomplete),
            chains_resumed=sorted(self.resumed),
        )

    def close(self) -> None:
        if self.stack is not None:
            self.stack.close()
