"""Active monotone classification in ``R^d`` (paper Section 4, Theorems 2-3).

Pipeline:

1. Compute a chain decomposition of ``P`` with exactly ``w`` chains
   (Lemma 6; ``O(d n^2 + n^{2.5})``).
2. For each chain ``C_i``, sort it by dominance and treat it as a 1-D
   instance: every monotone classifier maps a prefix of the sorted chain to
   0 and the remaining suffix to 1, so it behaves like a threshold on the
   position.  Run the Section 3 recursion with per-chain failure budget
   ``delta / w``, producing a fully-labeled weighted sample ``Σ_i``
   (eq. (29)).
3. Let ``Σ = ∪_i Σ_i`` (eq. (30)).  Lemma 14 guarantees that for any two
   monotone classifiers, ``w-err_Σ(h) <= w-err_Σ(h')`` implies
   ``err_P(h) <= (1+eps) err_P(h')``.
4. Find the classifier minimizing ``w-err_Σ`` — an instance of Problem 2 on
   ``Σ`` solved exactly by the Theorem 4 min-cut solver (Theorem 3's
   connection), then extend monotonically to all of ``R^d``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .._util import RngLike, as_generator
from ..obs import recorder
from ..parallel.chains import ChainTask, run_chain_task
from ..parallel.pool import pool_map
from ..parallel.seeds import spawn_seed_sequences
from ..poset.chains import greedy_chain_decomposition, minimum_chain_decomposition
from ..stats.estimation import SamplingPlan
from .active_1d import WeightedSample, build_weighted_sample_1d
from .classifier import MonotoneClassifier
from .oracle import LabelOracle
from .passive import solve_passive
from .points import PointSet

__all__ = ["ActiveResult", "active_classify"]


@dataclass(frozen=True)
class ActiveResult:
    """Output of the Theorem 2/3 active algorithm.

    Attributes
    ----------
    classifier:
        The ``(1+eps)``-approximate monotone classifier over ``R^d``.
    sigma:
        The combined weighted sample ``Σ`` (probed points with weights).
    sigma_points:
        ``Σ`` materialized as a fully-labeled weighted :class:`PointSet`.
    probing_cost:
        Distinct points probed by this run.
    sigma_error:
        Minimum ``w-err_Σ`` achieved (the optimized surrogate objective).
    num_chains:
        Number of chains used (equals the width ``w`` for the exact
        decomposition method).
    chain_sizes:
        Sizes of the chains, descending.
    decomposition_method:
        ``"matching"`` (exact, Lemma 6) or ``"greedy"`` (heuristic ablation).
    epsilon, delta:
        The parameters the run was configured with.
    """

    classifier: MonotoneClassifier
    sigma: WeightedSample
    sigma_points: PointSet
    probing_cost: int
    sigma_error: float
    num_chains: int
    chain_sizes: List[int]
    decomposition_method: str
    epsilon: float
    delta: float


def active_classify(points: PointSet, oracle: LabelOracle, epsilon: float,
                    delta: Optional[float] = None,
                    decomposition: str = "exact",
                    plan: Optional[SamplingPlan] = None,
                    rng: RngLike = None,
                    flow_backend: str = "dinic",
                    workers: int = 1) -> ActiveResult:
    """Solve Problem 1: probe few labels, return a ``(1+eps)``-approximation.

    Parameters
    ----------
    points:
        Input point set; labels may (and normally should) be hidden.  Only
        coordinates are read directly — labels flow through ``oracle``.
    oracle:
        Label oracle sharing the index space of ``points``.
    epsilon:
        Approximation slack in ``(0, 1]`` (Theorem 2).
    delta:
        Failure probability; defaults to ``1/n^2``.
    decomposition:
        ``"exact"`` (default) picks the best exact method for the
        dimensionality (patience for ``d <= 2``, the Lemma 6 matching
        reduction otherwise); ``"matching"`` / ``"patience"`` force a
        specific exact method; ``"greedy"`` uses the fast heuristic that
        may exceed ``w`` chains (ablation A2).
    plan:
        Sampling plan controlling per-level sample sizes.
    flow_backend:
        Max-flow backend used for the final passive solve on ``Σ``.
    workers:
        Number of processes for the chain-sampling phase.  Each chain's
        1-D recursion is independent (disjoint probes, its own spawned
        seed), so any value produces bit-for-bit identical output —
        ``workers=1`` (default) runs inline, larger values dispatch chains
        to a process pool.  Requires an oracle that supports sharding
        (:class:`LabelOracle` or
        :class:`~repro.core.callback_oracle.CallbackOracle` with a
        picklable labeler) when greater than 1.
    """
    if not 0 < epsilon <= 1:
        raise ValueError(f"epsilon must be in (0, 1]; got {epsilon}")
    n = points.n
    if n == 0:
        raise ValueError("cannot classify an empty point set")
    if delta is None:
        delta = 1.0 / max(4, n * n)
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1); got {delta}")
    rng = as_generator(rng)
    plan = plan or SamplingPlan()
    rec = recorder()

    with rec.span("active"):
        with rec.span("chain_decompose"):
            if decomposition in ("exact", "auto"):
                decomp = minimum_chain_decomposition(points)
            elif decomposition in ("matching", "patience"):
                decomp = minimum_chain_decomposition(points, method=decomposition)
            elif decomposition == "greedy":
                decomp = greedy_chain_decomposition(points)
            else:
                raise ValueError(
                    "decomposition must be one of 'exact', 'matching', "
                    f"'patience', 'greedy'; got {decomposition!r}"
                )

        cost_before = oracle.cost
        w = decomp.num_chains
        per_chain_delta = delta / max(1, w)
        if rec.enabled:
            rec.gauge("active.n", n)
            rec.gauge("active.epsilon", epsilon)
            rec.gauge("active.chain_width", w)
            for size in decomp.sizes():
                rec.observe("active.chain_size", size)

        # Every chain draws from its own spawned seed, so the sampling is a
        # pure function of (rng, chain index) — the same randomness flows
        # whether chains run inline or on a process pool, which is what
        # makes `workers` invisible in the output.
        chain_seeds = spawn_seed_sequences(rng, w)
        sigma = WeightedSample()
        with rec.span("sample_chains"):
            if workers <= 1 or w <= 1:
                for i, chain in enumerate(decomp.chains):
                    # Positions along the chain act as the 1-D values:
                    # index 0 is the most dominated point, so every
                    # monotone classifier is a threshold on the position.
                    positions = np.arange(len(chain), dtype=float)
                    with rec.span(f"chain[{i}]"):
                        chain_sigma, _levels, _trace = build_weighted_sample_1d(
                            positions, np.asarray(chain, dtype=int), oracle,
                            epsilon, per_chain_delta, plan,
                            np.random.default_rng(chain_seeds[i]),
                        )
                    sigma.merge(chain_sigma)
            else:
                if not hasattr(oracle, "shard") or not hasattr(oracle, "absorb"):
                    raise ValueError(
                        f"workers={workers} requires an oracle supporting "
                        "shard()/absorb() (LabelOracle or CallbackOracle); "
                        f"got {type(oracle).__name__} — use workers=1"
                    )
                tasks = [
                    ChainTask(
                        chain_id=i,
                        global_indices=tuple(int(p) for p in chain),
                        shard=oracle.shard(chain),
                        epsilon=epsilon,
                        delta=per_chain_delta,
                        plan=plan,
                        seed=chain_seeds[i],
                    )
                    for i, chain in enumerate(decomp.chains)
                ]
                results = pool_map(run_chain_task, tasks, workers=workers,
                                   gauge_merge="max")
                # Chains partition P, so their probe sets are disjoint:
                # absorbing in chain order reproduces the serial probe log
                # and cost exactly.
                for result in results:
                    sigma.merge(result.sigma)
                    oracle.absorb(result.probe_log, result.revealed)

        indices, weights, labels = sigma.arrays()
        sigma_points = PointSet(points.coords[indices], labels, weights)
        if rec.enabled:
            rec.gauge("active.sigma_size", sigma.size)
            rec.gauge("active.sigma_weight", sigma.total_weight)
        with rec.span("passive_solve"):
            passive = solve_passive(sigma_points, backend=flow_backend)

    return ActiveResult(
        classifier=passive.classifier,
        sigma=sigma,
        sigma_points=sigma_points,
        probing_cost=oracle.cost - cost_before,
        sigma_error=passive.optimal_error,
        num_chains=w,
        chain_sizes=decomp.sizes(),
        decomposition_method=decomp.method,
        epsilon=epsilon,
        delta=delta,
    )
