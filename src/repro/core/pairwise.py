"""Blockwise pairwise dominance computations for large inputs.

The Theorem 4 pipeline needs three ``O(d n^2)``-time pairwise facts:

* which points are *contending* (Section 5.1);
* the dominance edges between contending label-0 and label-1 points;
* whether a final assignment is monotone (Lemma 16's certificate).

The cached ``PointSet.weak_dominance_matrix`` materializes all ``n^2``
booleans at once — fine up to ``n`` around 15k, prohibitive beyond.  The
functions here compute the same facts in row blocks of configurable size,
keeping memory at ``O(n * block_size)`` while preserving the time bound.
``solve_passive`` switches to them automatically above a size threshold.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from .points import PointSet

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "pairwise_weak_dominance",
    "blocked_contending_mask",
    "blocked_dominance_pairs",
    "blocked_dominance_pair_arrays",
    "blocked_is_monotone_assignment",
]

#: Rows per block: 2048 rows x n columns of booleans stays in tens of MB
#: for n up to a few hundred thousand.
DEFAULT_BLOCK_SIZE = 2048


def _blocks(n: int, block_size: int) -> Iterator[Tuple[int, int]]:
    for start in range(0, n, block_size):
        yield start, min(n, start + block_size)


def pairwise_weak_dominance(rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Boolean ``(len(rows), len(cols))`` matrix of weak dominance.

    ``out[i, j]`` is true iff ``rows[i]`` weakly dominates ``cols[j]``.
    Accumulates one dimension at a time, so peak scratch memory is one
    ``rows x cols`` boolean matrix — never the ``(rows, cols, d)``
    broadcast intermediate that a single ``np.all(..., axis=2)`` call
    would materialize.
    """
    r = rows.shape[0]
    c = cols.shape[0]
    out = np.ones((r, c), dtype=bool)
    for k in range(rows.shape[1]):
        np.logical_and(out, rows[:, k, None] >= cols[None, :, k], out=out)
    return out


def blocked_contending_mask(points: PointSet,
                            block_size: int = DEFAULT_BLOCK_SIZE) -> np.ndarray:
    """Contending mask (Section 5.1) without the full dominance matrix.

    A label-0 point contends iff it weakly dominates some label-1 point;
    a label-1 point contends iff some label-0 point weakly dominates it.
    Computed per block of label-0 rows against all label-1 columns.
    """
    points.require_full_labels()
    n = points.n
    mask = np.zeros(n, dtype=bool)
    if n == 0:
        return mask
    zero_idx = np.flatnonzero(points.labels == 0)
    one_idx = np.flatnonzero(points.labels == 1)
    if len(zero_idx) == 0 or len(one_idx) == 0:
        return mask
    one_coords = points.coords[one_idx]
    one_hit = np.zeros(len(one_idx), dtype=bool)
    for start, stop in _blocks(len(zero_idx), block_size):
        rows = points.coords[zero_idx[start:stop]]
        # dom[i, j]: zero-row i weakly dominates one-col j.
        dom = pairwise_weak_dominance(rows, one_coords)
        mask[zero_idx[start:stop]] = dom.any(axis=1)
        one_hit |= dom.any(axis=0)
    mask[one_idx] = one_hit
    return mask


def blocked_dominance_pairs(points: PointSet, sources: np.ndarray,
                            targets: np.ndarray,
                            block_size: int = DEFAULT_BLOCK_SIZE
                            ) -> Iterator[Tuple[int, List[int]]]:
    """Yield ``(source index, [target indices it weakly dominates])``.

    Iterates blockwise over ``sources`` x ``targets`` (both arrays of point
    indices), yielding one entry per source that dominates at least one
    target.  This is the edge stream for the type-3 edges of the Theorem 4
    flow network.
    """
    sources = np.asarray(sources, dtype=int)
    targets = np.asarray(targets, dtype=int)
    if len(sources) == 0 or len(targets) == 0:
        return
    target_coords = points.coords[targets]
    for start, stop in _blocks(len(sources), block_size):
        rows = points.coords[sources[start:stop]]
        dom = pairwise_weak_dominance(rows, target_coords)
        for local, src in enumerate(sources[start:stop]):
            hits = np.flatnonzero(dom[local])
            if len(hits):
                yield int(src), targets[hits].tolist()


def blocked_dominance_pair_arrays(points: PointSet, sources: np.ndarray,
                                  targets: np.ndarray,
                                  block_size: int = DEFAULT_BLOCK_SIZE
                                  ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield ``(source_ids, target_ids)`` dominance-pair arrays per block.

    The bulk counterpart of :func:`blocked_dominance_pairs`: instead of one
    Python ``(source, [targets])`` entry per dominating source, each block
    yields two aligned integer arrays listing every dominating pair in
    row-major order (sources ascending as given, targets ascending within a
    source) — exactly the order the per-pair generator walks, ready for
    :meth:`repro.flow.graph.FlowNetwork.add_edges`.
    """
    sources = np.asarray(sources, dtype=int)
    targets = np.asarray(targets, dtype=int)
    if len(sources) == 0 or len(targets) == 0:
        return
    target_coords = points.coords[targets]
    for start, stop in _blocks(len(sources), block_size):
        rows = points.coords[sources[start:stop]]
        dom = pairwise_weak_dominance(rows, target_coords)
        row_pos, col_pos = np.nonzero(dom)
        if len(row_pos):
            yield sources[start:stop][row_pos], targets[col_pos]


def blocked_is_monotone_assignment(points: PointSet, predictions: np.ndarray,
                                   block_size: int = DEFAULT_BLOCK_SIZE) -> bool:
    """Monotonicity check of an assignment without the full matrix.

    Violated iff some 0-assigned point weakly dominates a 1-assigned point.
    """
    pred = np.asarray(predictions, dtype=np.int8)
    if pred.shape != (points.n,):
        raise ValueError(f"expected {points.n} predictions, got {pred.shape}")
    zero_idx = np.flatnonzero(pred == 0)
    one_idx = np.flatnonzero(pred == 1)
    if len(zero_idx) == 0 or len(one_idx) == 0:
        return True
    one_coords = points.coords[one_idx]
    for start, stop in _blocks(len(zero_idx), block_size):
        rows = points.coords[zero_idx[start:stop]]
        if np.any(pairwise_weak_dominance(rows, one_coords)):
            return False
    return True
