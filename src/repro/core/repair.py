"""Monotone label repair: Problem 2 as a data-cleaning primitive.

A fully-labeled set whose labels violate monotonicity is, from a data
quality standpoint, *dirty*: some verdicts are inconsistent with the
similarity evidence.  The minimum-weight repair — flip the cheapest set
of labels so the result is monotone — is exactly the optimal assignment
of the Theorem 4 solver.  This module exposes it as a cleaning API with
repair statistics, so data engineers can use the solver without thinking
in classifier terms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .passive import solve_passive
from .points import PointSet

__all__ = ["RepairReport", "repair_labels"]


@dataclass(frozen=True)
class RepairReport:
    """Outcome of a monotone label repair.

    Attributes
    ----------
    repaired:
        The cleaned point set (same coordinates and weights, monotone
        labels).
    flipped_indices:
        Indices whose label changed, ascending.
    flips_0_to_1 / flips_1_to_0:
        Directional flip counts.
    repair_weight:
        Total weight of flipped points — the minimum possible (Theorem 4).
    """

    repaired: PointSet
    flipped_indices: List[int]
    flips_0_to_1: int
    flips_1_to_0: int
    repair_weight: float

    @property
    def num_flips(self) -> int:
        """Total number of labels changed."""
        return len(self.flipped_indices)


def repair_labels(points: PointSet, backend: str = "dinic",
                  block_size: Optional[int] = None) -> RepairReport:
    """Minimum-weight repair of a labeling into a monotone one.

    Guarantees (inherited from Theorem 4 and asserted by the solver):
    the output labeling is monotone, and no monotone labeling differs
    from the input by a smaller total weight.
    """
    points.require_full_labels()
    result = solve_passive(points, backend=backend, block_size=block_size)
    changed = np.flatnonzero(result.assignment != points.labels)
    flips_0_to_1 = int(np.count_nonzero(
        (points.labels[changed] == 0) if len(changed) else np.array([], bool)))
    flips_1_to_0 = len(changed) - flips_0_to_1
    repaired = points.replace(labels=result.assignment)
    return RepairReport(
        repaired=repaired,
        flipped_indices=[int(i) for i in changed],
        flips_0_to_1=flips_0_to_1,
        flips_1_to_0=flips_1_to_0,
        repair_weight=float(result.optimal_error),
    )
