"""Active monotone classification in 1-D (paper Section 3, Lemma 9).

The algorithm estimates the error landscape of threshold classifiers using
two sampled estimators per recursion level:

* ``g1`` approximates ``err_P`` up to an additive ``eps|P|/256`` from a
  with-replacement sample ``S1`` (Section 3.4);
* it then identifies the *uncertainty window* ``[alpha, beta]`` — the span
  of thresholds whose estimated error drops below ``|P| (1/4 - eps/256)`` —
  and recurses on ``P' = P ∩ [alpha, beta]``, which Lemma 10 shows holds at
  most ``(5/8)|P|`` points;
* ``g2`` approximates ``err_{P \\ P'}`` from a second sample ``S2`` that, by
  construction, contains no point in ``[alpha, beta]`` and is therefore
  constant over the window (the second requirement of Section 3.2).

Rather than materializing the function ``f``, we exploit the *weighted
view* of Section 3.5 (Lemma 13): the union ``Σ`` of the per-level weighted
samples satisfies ``f(h) = w-err_Σ(h)``, so minimizing ``w-err_Σ`` over
effective thresholds yields the ``(1+eps)``-approximate classifier.

Ties in values are handled exactly: thresholds are evaluated only at sample
values (plus ``-inf``), so equal values always land on the same side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .._util import RngLike, as_generator, log_levels
from ..obs import recorder
from ..stats.estimation import SamplingPlan, sample_with_replacement
from .classifier import ThresholdClassifier
from .oracle import ProbeOracle
from .passive_1d import best_threshold
from .points import PointSet

__all__ = [
    "WeightedSample",
    "Active1DResult",
    "LevelTrace",
    "SigmaErrorFunction",
    "build_weighted_sample_1d",
    "active_classify_1d",
]

NEG_INF = float("-inf")
POS_INF = float("inf")

#: Recursion base case: probe everything below this size.  The paper uses 7;
#: a slightly larger base absorbs the closed-interval handling of [alpha,
#: beta] (see DESIGN.md) and only strengthens the guarantee.
BASE_CASE_SIZE = 15


@dataclass
class WeightedSample:
    """The fully-labeled weighted sample ``Σ`` of Section 3.5.

    Maps each probed point (by its global index) to an accumulated weight;
    ``w-err_Σ`` equals the framework's estimator ``f`` (Lemma 13).
    """

    weights: Dict[int, float] = field(default_factory=dict)
    labels: Dict[int, int] = field(default_factory=dict)

    def add(self, index: int, weight: float, label: int) -> None:
        """Accumulate ``weight`` onto point ``index`` carrying ``label``."""
        self.weights[index] = self.weights.get(index, 0.0) + weight
        self.labels[index] = label

    def merge(self, other: "WeightedSample") -> None:
        """Fold another weighted sample into this one."""
        for index, weight in other.weights.items():
            self.add(index, weight, other.labels[index])

    @property
    def size(self) -> int:
        """Number of distinct points in ``Σ``."""
        return len(self.weights)

    @property
    def total_weight(self) -> float:
        """Total accumulated weight."""
        return float(sum(self.weights.values()))

    def arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(indices, weights, labels)`` arrays sorted by index."""
        indices = np.asarray(sorted(self.weights.keys()), dtype=int)
        weights = np.asarray([self.weights[i] for i in indices], dtype=float)
        labels = np.asarray([self.labels[i] for i in indices], dtype=np.int8)
        return indices, weights, labels


@dataclass(frozen=True)
class LevelTrace:
    """Telemetry of one recursion level (Section 3.2 instrumentation).

    ``kind`` is ``"base"`` (probed exhaustively), ``"no-window"`` (alpha
    and beta did not exist), ``"shrink"`` (recursed on ``P'``),
    ``"degenerate"`` (window covered everything; probed exhaustively), or
    ``"halted"`` (a degraded run stopped here on a halting failure —
    budget exhausted, retries exhausted, breaker open, dead point).
    """

    depth: int
    population: int
    sample_size: int
    kind: str
    alpha: Optional[float] = None
    beta: Optional[float] = None
    shrunk_to: Optional[int] = None
    note: Optional[str] = None

    @property
    def shrink_factor(self) -> Optional[float]:
        """``|P'| / |P|`` for shrink levels (Lemma 10 bounds it by 5/8 whp)."""
        if self.kind != "shrink" or self.population == 0:
            return None
        return self.shrunk_to / self.population


@dataclass(frozen=True)
class Active1DResult:
    """Result of the 1-D active algorithm.

    Attributes
    ----------
    classifier:
        The returned threshold classifier ``h^tau``.
    sigma:
        The weighted sample ``Σ`` (side product, Lemma 13).
    probing_cost:
        Distinct points probed by this run.
    levels:
        Number of recursion levels executed.
    sigma_error:
        ``w-err_Σ`` of the returned classifier (the minimized objective).
    """

    classifier: ThresholdClassifier
    sigma: WeightedSample
    probing_cost: int
    levels: int
    sigma_error: float
    trace: Tuple[LevelTrace, ...] = ()


class SigmaErrorFunction:
    """The framework's comparison function ``f`` made explicit (Lemma 13).

    Section 3 constructs ``f : H_mono -> [0, inf)`` with the
    ε-comparison property — ``f(h^x) <= f(h^y)`` implies
    ``err_P(h^x) <= (1 + eps) err_P(h^y)`` — and Lemma 13 shows
    ``f(h^tau) = w-err_Σ(h^tau)``.  This class evaluates exactly that,
    vectorized over arbitrary thresholds, so tests and experiments can
    check the property *directly* instead of only through the final
    classifier.
    """

    def __init__(self, values: np.ndarray, sigma: WeightedSample) -> None:
        indices, weights, labels = sigma.arrays()
        sample_values = np.asarray(values, dtype=float)[indices]
        order = np.argsort(sample_values, kind="stable")
        self._values = sample_values[order]
        self._weights = weights[order]
        self._labels = labels[order]
        ones = np.where(self._labels == 1, self._weights, 0.0)
        zeros = np.where(self._labels == 0, self._weights, 0.0)
        self._ones_prefix = np.concatenate(([0.0], np.cumsum(ones)))
        self._zeros_suffix = np.concatenate(
            (np.cumsum(zeros[::-1])[::-1], [0.0]))

    def __call__(self, tau: float) -> float:
        """``f(h^tau) = w-err_Σ(h^tau)`` for any real (or ±inf) threshold."""
        # Points with value <= tau are predicted 0 (err if label 1);
        # points above tau predicted 1 (err if label 0).
        k = int(np.searchsorted(self._values, tau, side="right"))
        return float(self._ones_prefix[k] + self._zeros_suffix[k])

    def evaluate_many(self, taus: Sequence[float]) -> np.ndarray:
        """Vectorized evaluation over an array of thresholds."""
        ks = np.searchsorted(self._values, np.asarray(taus, dtype=float),
                             side="right")
        return self._ones_prefix[ks] + self._zeros_suffix[ks]


def _empirical_threshold_errors(sample_values: np.ndarray,
                                sample_labels: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Error of each candidate threshold on a multiset sample.

    Returns ``(candidate_taus, error_counts)`` where ``candidate_taus[0]``
    is ``-inf`` followed by the distinct sorted sample values; entry ``k``
    counts sample draws misclassified by ``h^{tau_k}``.
    """
    order = np.argsort(sample_values, kind="stable")
    vals = sample_values[order]
    labs = sample_labels[order]
    t = len(vals)
    ones_prefix = np.concatenate(([0.0], np.cumsum(labs == 1)))
    zeros_suffix = np.concatenate((np.cumsum((labs == 0)[::-1])[::-1], [0.0]))
    distinct_end = np.flatnonzero(
        np.concatenate((vals[1:] != vals[:-1], [True]))
    ) + 1
    ks = np.concatenate(([0], distinct_end)).astype(int)
    errors = ones_prefix[ks] + zeros_suffix[ks]
    taus = np.concatenate(([NEG_INF], vals[ks[1:] - 1]))
    return taus, errors


class _Recursion1D:
    """Stateful driver for the Section 3 recursion over one value array."""

    def __init__(self, values: np.ndarray, global_indices: np.ndarray,
                 oracle: ProbeOracle, epsilon: float, delta: float,
                 plan: SamplingPlan, rng: np.random.Generator,
                 degrade: bool = False) -> None:
        self.values = values
        self.global_indices = global_indices
        self.oracle = oracle
        self.epsilon = epsilon
        self.delta = delta
        self.plan = plan
        self.rng = rng
        self.degrade = degrade
        self.halted: Optional[str] = None
        self.levels_bound = log_levels(len(values))
        self.levels_used = 0
        self.sigma = WeightedSample()
        self.trace: List[LevelTrace] = []
        self.rec = recorder()

    def _record_level(self, level: LevelTrace) -> None:
        """Append a trace entry and mirror it into the metrics session."""
        self.trace.append(level)
        rec = self.rec
        if not rec.enabled:
            return
        rec.incr("active1d.levels")
        rec.incr(f"active1d.levels.{level.kind.replace('-', '_')}")
        rec.gauge_max("active.recursion_depth", level.depth + 1)
        rec.observe("active1d.level_population", level.population)
        rec.observe("active1d.level_sample_size", level.sample_size)
        shrink = level.shrink_factor
        if shrink is not None:
            rec.observe("active1d.shrink_factor", shrink)

    # ------------------------------------------------------------------

    def run(self) -> WeightedSample:
        """Execute the recursion over all points; returns ``Σ``.

        With ``degrade`` set, a halting failure (see
        ``repro.resilience.errors.HALT_ERRORS``) stops the recursion where
        it stands and returns the partial ``Σ`` accumulated so far, with a
        ``"halted"`` trace entry marking the cut; anything else — a bug —
        keeps propagating.
        """
        initial = np.argsort(self.values, kind="stable")
        if not self.degrade:
            self._recurse(initial, depth=0)
            return self.sigma
        from ..resilience.errors import HALT_ERRORS

        try:
            self._recurse(initial, depth=0)
        except HALT_ERRORS as exc:
            self.halted = f"{type(exc).__name__}: {exc}"
            self._record_level(LevelTrace(
                depth=self.levels_used, population=len(self.values),
                sample_size=0, kind="halted", note=self.halted,
            ))
            if self.rec.enabled:
                self.rec.incr("resilience.degraded_halts")
        return self.sigma

    def _probe_all(self, local: np.ndarray) -> None:
        """Base case: probe every point, contributing weight 1 each."""
        for loc in local:
            label = self.oracle.probe(int(self.global_indices[loc]))
            self.sigma.add(int(self.global_indices[loc]), 1.0, label)

    def _probe_sample(self, local_pool: np.ndarray, size: int) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ``size`` points of ``local_pool`` with replacement and probe them."""
        draws = sample_with_replacement(local_pool, size, self.rng)
        labels = np.asarray(
            [self.oracle.probe(int(self.global_indices[loc])) for loc in draws],
            dtype=np.int8,
        )
        return draws, labels

    def _add_scaled(self, draws: np.ndarray, labels: np.ndarray, scale: float) -> None:
        """Add a with-replacement sample to ``Σ`` with per-draw weight ``scale``."""
        for loc, label in zip(draws, labels):
            self.sigma.add(int(self.global_indices[loc]), scale, int(label))

    # ------------------------------------------------------------------

    def _recurse(self, local: np.ndarray, depth: int) -> None:
        """One level of the Section 3.2 framework on sorted local positions."""
        m = len(local)
        self.levels_used = max(self.levels_used, depth + 1)
        if m == 0:
            return
        if m <= BASE_CASE_SIZE or depth >= self.levels_bound:
            self._record_level(LevelTrace(depth, m, m, "base"))
            self._probe_all(local)
            return

        # --- Estimator g1 from sample S1.
        t1 = min(self.plan.level_sample_size(self.epsilon, self.delta, m,
                                             self.levels_bound),
                 max(1, m))
        if t1 >= m:
            # A sample as large as the population cannot beat probing it.
            self._record_level(LevelTrace(depth, m, m, "base"))
            self._probe_all(local)
            return
        draws1, labels1 = self._probe_sample(local, t1)
        sample_values = self.values[draws1]
        taus, errors = _empirical_threshold_errors(sample_values, labels1)
        g1 = (m / t1) * errors
        cutoff = m * (0.25 - self.epsilon / 256.0)
        qualifying = np.flatnonzero(g1 < cutoff)

        if len(qualifying) == 0:
            # alpha, beta do not exist: f = g1, Σ-level = S1 scaled.
            self._record_level(LevelTrace(depth, m, t1, "no-window"))
            self._add_scaled(draws1, labels1, m / t1)
            return

        first, last = int(qualifying[0]), int(qualifying[-1])
        alpha = float(taus[first])  # -inf when the leftmost interval qualifies
        if last == len(taus) - 1:
            beta = POS_INF
        else:
            beta = float(taus[last + 1])  # supremum of the qualifying set

        vals_local = self.values[local]
        inside = (vals_local >= alpha) & (vals_local <= beta)
        p_prime = local[inside]
        rest = local[~inside]

        if len(p_prime) >= m or len(rest) == 0:
            # Degenerate window covering everything — cannot shrink; the
            # cheapest correct fallback is to probe the level exhaustively.
            self._record_level(LevelTrace(depth, m, t1, "degenerate",
                                         alpha=alpha, beta=beta))
            self._probe_all(local)
            return

        # --- Estimator g2 from sample S2 ⊆ P \ P'.
        t2 = min(self.plan.level_sample_size(self.epsilon, self.delta, len(rest),
                                             self.levels_bound),
                 len(rest))
        draws2, labels2 = self._probe_sample(rest, t2)
        self._add_scaled(draws2, labels2, len(rest) / t2)

        self._record_level(LevelTrace(depth, m, t1 + t2, "shrink",
                                     alpha=alpha, beta=beta,
                                     shrunk_to=len(p_prime)))
        # --- Recurse on the uncertainty window.
        self._recurse(p_prime, depth + 1)


def build_weighted_sample_1d(values: Sequence[float], global_indices: Sequence[int],
                             oracle: ProbeOracle, epsilon: float, delta: float,
                             plan: Optional[SamplingPlan] = None,
                             rng: RngLike = None,
                             degrade: bool = False
                             ) -> Tuple[WeightedSample, int, Tuple[LevelTrace, ...]]:
    """Run the Section 3 recursion, returning ``(Σ, levels_used, trace)``.

    ``values[i]`` is the 1-D value (or chain position) of the point whose
    global index is ``global_indices[i]``; probes are issued against global
    indices so a shared oracle can serve many chains.  ``trace`` records
    one :class:`LevelTrace` per recursion level for instrumentation.

    With ``degrade`` set, a halting failure from the oracle (budget or
    retries exhausted, breaker open, dead point) returns the partial ``Σ``
    instead of raising; the final trace entry then has ``kind ==
    "halted"`` with the reason in its ``note``.
    """
    vals = np.asarray(values, dtype=float)
    gidx = np.asarray(global_indices, dtype=int)
    if vals.shape != gidx.shape:
        raise ValueError("values and global_indices must have equal length")
    if not 0 < epsilon <= 1:
        raise ValueError(f"epsilon must be in (0, 1]; got {epsilon}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1); got {delta}")
    driver = _Recursion1D(vals, gidx, oracle, epsilon, delta,
                          plan or SamplingPlan(), as_generator(rng),
                          degrade=degrade)
    sigma = driver.run()
    return sigma, driver.levels_used, tuple(driver.trace)


def active_classify_1d(points: PointSet, oracle: ProbeOracle, epsilon: float,
                       delta: Optional[float] = None,
                       plan: Optional[SamplingPlan] = None,
                       rng: RngLike = None) -> Active1DResult:
    """Solve Problem 1 in 1-D (Lemma 9): ``(1+eps)``-approximate threshold.

    Parameters
    ----------
    points:
        1-D point set; labels may be hidden (they are accessed only through
        ``oracle``).
    oracle:
        Label oracle over the same index space as ``points``.
    epsilon:
        Approximation slack in ``(0, 1]``.
    delta:
        Failure probability; defaults to ``1/n^2`` as in Theorem 2.
    """
    if points.dim != 1:
        raise ValueError(f"active_classify_1d requires d = 1; got d = {points.dim}")
    n = points.n
    if n == 0:
        return Active1DResult(ThresholdClassifier(POS_INF), WeightedSample(), 0, 0, 0.0)
    if delta is None:
        delta = 1.0 / max(4, n * n)
    cost_before = oracle.cost
    values = points.coords[:, 0]
    sigma, levels, trace = build_weighted_sample_1d(
        values, np.arange(n), oracle, epsilon, delta, plan, rng
    )
    indices, weights, labels = sigma.arrays()
    tau, sigma_error = best_threshold(values[indices], labels, weights)
    return Active1DResult(
        classifier=ThresholdClassifier(tau),
        sigma=sigma,
        probing_cost=oracle.cost - cost_before,
        levels=levels,
        sigma_error=float(sigma_error),
        trace=trace,
    )
