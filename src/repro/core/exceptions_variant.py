"""Active monotone classification *with exceptions* (the [25] variant).

Section 1.2 notes that Tao (PODS'18) also studied a variant of Problem 1
where the returned classifier may *memorize* the labels it probed: the
output is a monotone classifier ``h`` plus an exception list over probed
points, and the error is charged as if each probed point were classified
by its recorded label.  Intuitively, labels the algorithm paid for should
not count against it.

This module implements that evaluation model on top of any active run:

* :class:`ExceptionAugmentedClassifier` — a monotone base classifier with
  a finite exception table (no longer monotone as a function, by design);
* :func:`with_exceptions` — wrap a finished active run, memorizing every
  probed label;
* :func:`exception_error` — the variant's error functional: standard
  ``err``/``w-err`` with probed points scored by their memorized labels
  (always exactly correct, since the oracle revealed them).

The variant can only help: its error equals the standard error minus the
base classifier's mistakes on probed points, which experiment users can
read off :func:`error_decomposition`.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from .classifier import MonotoneClassifier
from .oracle import LabelOracle
from .points import PointSet

__all__ = [
    "ExceptionAugmentedClassifier",
    "with_exceptions",
    "exception_error",
    "error_decomposition",
]


class ExceptionAugmentedClassifier:
    """A monotone classifier with a finite table of memorized points.

    Prediction: if the queried coordinates exactly match a memorized
    point, return its memorized label; otherwise defer to the monotone
    base classifier.  Matching is by coordinate tuple, so duplicated
    memorized coordinates must agree (enforced at construction).
    """

    def __init__(self, base: MonotoneClassifier,
                 exceptions: Dict[Tuple[float, ...], int]) -> None:
        self.base = base
        for coords, label in exceptions.items():
            if label not in (0, 1):
                raise ValueError(f"memorized label must be 0/1; got {label}")
        self.exceptions = dict(exceptions)

    @property
    def num_exceptions(self) -> int:
        """Size of the exception table."""
        return len(self.exceptions)

    def classify(self, point) -> int:
        """Classify one point, exceptions first."""
        key = tuple(float(c) for c in point)
        if key in self.exceptions:
            return self.exceptions[key]
        return self.base.classify(key)

    def classify_matrix(self, coords: np.ndarray) -> np.ndarray:
        """Classify rows of a coordinate matrix, exceptions first."""
        out = self.base.classify_matrix(coords)
        if self.exceptions:
            for i in range(coords.shape[0]):
                key = tuple(float(c) for c in coords[i])
                if key in self.exceptions:
                    out[i] = self.exceptions[key]
        return out

    def classify_set(self, points: PointSet) -> np.ndarray:
        """Classify a :class:`PointSet`."""
        return self.classify_matrix(points.coords)

    def __repr__(self) -> str:
        return (f"ExceptionAugmentedClassifier(base={self.base!r}, "
                f"num_exceptions={self.num_exceptions})")


def with_exceptions(base: MonotoneClassifier, points: PointSet,
                    oracle: LabelOracle) -> ExceptionAugmentedClassifier:
    """Memorize every label the oracle has revealed.

    Note the duplicate-coordinates caveat: if two probed points share
    coordinates but carry different labels, the later probe wins in the
    table — exactly one of them then scores as an exception, matching the
    fact that a function of coordinates cannot separate them.
    """
    exceptions: Dict[Tuple[float, ...], int] = {}
    for index in oracle.revealed_indices:
        key = tuple(float(c) for c in points.coords[index])
        exceptions[key] = int(oracle.peek(index))
    return ExceptionAugmentedClassifier(base, exceptions)


def exception_error(points: PointSet,
                    classifier: ExceptionAugmentedClassifier,
                    weighted: bool = False) -> float:
    """The variant's error of an exception-augmented classifier on ``P``."""
    points.require_full_labels()
    predictions = classifier.classify_set(points)
    wrong = predictions != points.labels
    if weighted:
        return float(points.weights[wrong].sum())
    return float(np.count_nonzero(wrong))


def error_decomposition(points: PointSet, base: MonotoneClassifier,
                        oracle: LabelOracle) -> Dict[str, float]:
    """Standard vs exceptions error of one active run, decomposed.

    Returns a dict with the standard error of ``base``, the error under
    the exceptions model, and the saving — the base classifier's mistakes
    on probed points that memorization erases.
    """
    points.require_full_labels()
    augmented = with_exceptions(base, points, oracle)
    base_predictions = base.classify_set(points)
    standard = float(np.count_nonzero(base_predictions != points.labels))
    variant = exception_error(points, augmented)
    return {
        "standard_error": standard,
        "exceptions_error": variant,
        "saving": standard - variant,
        "num_exceptions": float(augmented.num_exceptions),
    }
