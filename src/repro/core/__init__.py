"""Core library: the paper's data model, algorithms, and error functionals."""

from .active import ActiveResult, active_classify
from .active_1d import (
    Active1DResult,
    LevelTrace,
    WeightedSample,
    active_classify_1d,
    build_weighted_sample_1d,
)
from .classifier import (
    ConstantClassifier,
    MonotoneClassifier,
    ThresholdClassifier,
    UpsetClassifier,
    is_monotone_assignment,
    monotone_extension,
)
from .errors import error_count, misclassified_mask, weighted_error
from .lowerbound import (
    DeterministicPairProber,
    FamilyEvaluation,
    adversarial_family,
    adversarial_input,
    evaluate_on_family,
    optimal_error_of_family_input,
    theoretical_nonoptcnt_lower_bound,
    theoretical_totalcost,
)
from .oracle import LabelOracle, ProbeBudgetExceeded
from .passive import PassiveResult, brute_force_passive, contending_mask, solve_passive
from .passive_1d import Passive1DResult, best_threshold, solve_passive_1d
from .points import HIDDEN, LabeledPoint, PointSet

__all__ = [
    "PointSet",
    "LabeledPoint",
    "HIDDEN",
    "MonotoneClassifier",
    "ThresholdClassifier",
    "UpsetClassifier",
    "ConstantClassifier",
    "is_monotone_assignment",
    "monotone_extension",
    "error_count",
    "weighted_error",
    "misclassified_mask",
    "LabelOracle",
    "ProbeBudgetExceeded",
    "PassiveResult",
    "solve_passive",
    "contending_mask",
    "brute_force_passive",
    "Passive1DResult",
    "solve_passive_1d",
    "best_threshold",
    "Active1DResult",
    "LevelTrace",
    "WeightedSample",
    "active_classify_1d",
    "build_weighted_sample_1d",
    "ActiveResult",
    "active_classify",
    "adversarial_input",
    "adversarial_family",
    "optimal_error_of_family_input",
    "DeterministicPairProber",
    "FamilyEvaluation",
    "evaluate_on_family",
    "theoretical_totalcost",
    "theoretical_nonoptcnt_lower_bound",
]
