"""The hypothesis space of monotone classifiers over a finite point set.

Section 3 of the paper works with the *effective* 1-D classifiers
``H_mono(P) = { h^tau : tau in P or tau = -inf }`` (eq. (7)): every other
threshold classifies ``P`` identically to one of these.  This module
materializes that notion and its multi-dimensional analogue:

* :func:`effective_thresholds` — the eq. (7) candidate set;
* :func:`enumerate_monotone_assignments` — every distinct monotone 0/1
  assignment on a finite point set, generated as the upsets of the
  dominance poset (exponential in general — intended for exact
  verification on small inputs, mirroring the naive algorithm sketched in
  Section 1.2);
* :func:`count_monotone_assignments` — the number of such assignments
  (the poset's Dedekind problem), via memoized recursion.

Tests use these as independent oracles for the passive solvers.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence

import numpy as np

from .points import PointSet

__all__ = [
    "effective_thresholds",
    "enumerate_monotone_assignments",
    "count_monotone_assignments",
]

_ENUMERATION_LIMIT = 20


def effective_thresholds(values: Sequence[float]) -> List[float]:
    """The eq. (7) candidate set: ``{-inf}`` plus the distinct values.

    Any threshold classifier agrees on ``values`` with ``h^tau`` for one of
    these ``tau`` (take the largest candidate not exceeding it).
    """
    return [float("-inf")] + sorted(set(float(v) for v in values))


def _check_size(points: PointSet) -> None:
    if points.n > _ENUMERATION_LIMIT:
        raise ValueError(
            f"enumeration limited to n <= {_ENUMERATION_LIMIT}; got {points.n}"
        )


def enumerate_monotone_assignments(points: PointSet) -> Iterator[np.ndarray]:
    """Yield every monotone 0/1 assignment on ``points`` exactly once.

    A monotone assignment is the indicator of an *upset*: a subset closed
    upward under weak dominance.  We enumerate by processing points in a
    topological order (most-dominated first) and branching on each point's
    value, pruning branches that violate a constraint against an already-
    assigned comparable point.  Duplicated coordinate vectors are mutually
    comparable both ways, forcing equal values — handled by the same
    pruning.
    """
    _check_size(points)
    n = points.n
    if n == 0:
        yield np.zeros(0, dtype=np.int8)
        return
    weak = points.weak_dominance_matrix()
    sums = points.coords.sum(axis=1)
    order = list(np.lexsort((np.arange(n), sums)))  # dominated first

    assignment = np.full(n, -1, dtype=np.int8)

    def feasible(idx: int, value: int) -> bool:
        for other in order:
            if assignment[other] == -1 or other == idx:
                continue
            # weak[a, b]: a dominates b  =>  assignment[a] >= assignment[b].
            if weak[idx, other] and value < assignment[other]:
                return False
            if weak[other, idx] and assignment[other] < value:
                return False
        return True

    def backtrack(pos: int) -> Iterator[np.ndarray]:
        if pos == n:
            yield assignment.copy()
            return
        idx = order[pos]
        for value in (0, 1):
            if feasible(idx, value):
                assignment[idx] = value
                yield from backtrack(pos + 1)
                assignment[idx] = -1

    yield from backtrack(0)


def count_monotone_assignments(points: PointSet) -> int:
    """Number of distinct monotone assignments (upsets of the poset).

    Counted by the same pruned backtracking as the enumerator; for an
    anti-chain of size ``n`` this is ``2^n``, for a chain ``n + 1`` —
    both useful sanity anchors in tests.
    """
    _check_size(points)
    return sum(1 for _ in enumerate_monotone_assignments(points))
