"""Closed-form theoretical bounds from the paper, as computable functions.

Used by the experiment harness to print *measured / predicted* ratios: if
an implementation matches a bound's shape, that ratio stays roughly
constant across a parameter sweep even though both sides vary by orders
of magnitude.

* :func:`theorem2_probing_shape` — the Theorem 2 probe bound
  ``(w/eps^2) * log2(n) * log2(n/w)`` (constants dropped; this paper);
* :func:`lemma9_probing_shape` — the 1-D Lemma 9 bound
  ``(1/eps^2) * log2(n) * log2(n/delta)``;
* :func:`tao2018_probing_shape` — the prior work's expected probe bound
  ``w * log2(n/w)`` [25];
* :func:`tao2018_lower_bound_shape` — the [25] lower bound
  ``w * log2(n / ((1 + k*) w))`` any constant-factor algorithm must pay;
* :func:`a2_probing_shape` — the best-case ``A^2`` cost ``w^2/eps^2``
  (Section 1.2 notes its coefficient is ``Omega(w^2)``).

All use the paper's convention ``log x := 1 + log2 x`` (Section 1.1) so
the shapes stay positive for every valid input.
"""

from __future__ import annotations

import math

__all__ = [
    "paper_log2",
    "theorem2_probing_shape",
    "lemma9_probing_shape",
    "tao2018_probing_shape",
    "tao2018_lower_bound_shape",
    "a2_probing_shape",
]


def paper_log2(x: float) -> float:
    """The paper's ``log x`` convention: ``1 + log2(x)`` for ``x > 0``."""
    if x <= 0:
        raise ValueError(f"log argument must be positive; got {x}")
    return 1.0 + math.log2(x)


def _check_common(n: int, w: int) -> None:
    if n < 1:
        raise ValueError("n must be >= 1")
    if not 1 <= w <= n:
        raise ValueError(f"w must be in [1, n]; got w={w}, n={n}")


def theorem2_probing_shape(n: int, w: int, epsilon: float) -> float:
    """Shape of Theorem 2's probe bound: ``(w/eps^2) log n log(n/w)``."""
    _check_common(n, w)
    if not 0 < epsilon <= 1:
        raise ValueError(f"epsilon must be in (0, 1]; got {epsilon}")
    return (w / (epsilon * epsilon)) * paper_log2(n) * paper_log2(n / w)


def lemma9_probing_shape(n: int, epsilon: float, delta: float) -> float:
    """Shape of Lemma 9's 1-D bound: ``(1/eps^2) log n log(n/delta)``."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if not 0 < epsilon <= 1:
        raise ValueError(f"epsilon must be in (0, 1]; got {epsilon}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1); got {delta}")
    return (1.0 / (epsilon * epsilon)) * paper_log2(n) * paper_log2(n / delta)


def tao2018_probing_shape(n: int, w: int) -> float:
    """Shape of [25]'s expected probe bound: ``w log(n/w)``."""
    _check_common(n, w)
    return w * paper_log2(n / w)


def tao2018_lower_bound_shape(n: int, w: int, k_star: float) -> float:
    """Shape of [25]'s lower bound: ``w log(n / ((1 + k*) w))``.

    Clamped at zero when the argument drops below 1 (large ``k*`` makes
    the bound vacuous, as the paper notes it is tight for small ``k*``).
    """
    _check_common(n, w)
    if k_star < 0:
        raise ValueError("k_star must be non-negative")
    argument = n / ((1.0 + k_star) * w)
    if argument <= 1:
        return 0.0
    return w * paper_log2(argument)


def a2_probing_shape(w: int, epsilon: float) -> float:
    """Best-case shape of the ``A^2`` cost: ``w^2 / eps^2`` (Section 1.2)."""
    if w < 1:
        raise ValueError("w must be >= 1")
    if not 0 < epsilon <= 1:
        raise ValueError(f"epsilon must be in (0, 1]; got {epsilon}")
    return (w * w) / (epsilon * epsilon)
