"""Budgeted active classification: spend at most B probes, do your best.

Practitioners rarely think in terms of ``epsilon``; they have a labeling
*budget*.  This wrapper inverts Theorem 2's cost shape
``(w/eps^2)·log n·log(n/w)`` to pick the tightest ``epsilon`` whose
predicted cost fits the budget (scaled by an empirical calibration
constant), enforces the budget through the oracle, and degrades
gracefully:

* budget ``>= n``: probe everything — exact answer;
* workable budget: run Theorem 2 at the chosen ``epsilon``; if the run
  overshoots the enforced budget (the bound is only a shape), fall back
  to solving passively on whatever was probed;
* tiny budget: probe a uniform sample of the budget size and solve
  passively on it — no guarantee, but never an error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .._util import RngLike, as_generator
from ..stats.estimation import SamplingPlan, sample_with_replacement
from .active import ActiveResult, active_classify
from .bounds import theorem2_probing_shape
from .classifier import MonotoneClassifier
from .oracle import LabelOracle, ProbeBudgetExceeded
from .passive import solve_passive
from .points import PointSet
from ..poset.chains import minimum_chain_decomposition

__all__ = ["BudgetedResult", "active_classify_budgeted", "choose_epsilon_for_budget"]

#: Calibration constant mapping the Theorem 2 bound *shape* to expected
#: practical-profile probes.  The E4-E6 sweeps measure probes/shape
#: ratios between ~2 (near saturation) and ~7 (small w); 6 errs toward
#: over-budgeting, and the truncation fallback covers the remainder.
_SHAPE_TO_PROBES = 6.0

#: The epsilon grid the budget search scans (finest first).
_EPSILON_GRID = (0.1, 0.15, 0.2, 0.25, 0.35, 0.5, 0.7, 1.0)


def choose_epsilon_for_budget(n: int, w: int, budget: int,
                              calibration: float = _SHAPE_TO_PROBES
                              ) -> Optional[float]:
    """The smallest grid epsilon whose predicted probe cost fits ``budget``.

    Returns ``None`` when even ``epsilon = 1`` is predicted to overshoot —
    the caller should fall back to uniform sampling.
    """
    if budget <= 0:
        raise ValueError("budget must be positive")
    for epsilon in _EPSILON_GRID:
        predicted = calibration * theorem2_probing_shape(n, w, epsilon)
        if predicted <= budget:
            return epsilon
    return None


@dataclass(frozen=True)
class BudgetedResult:
    """Outcome of a budgeted run.

    ``mode`` records which path executed: ``"exact"`` (budget covered n),
    ``"theorem2"`` (the guaranteed path, with its effective epsilon),
    ``"theorem2-truncated"`` (the run hit the enforced budget and fell
    back to the probed prefix), or ``"uniform"`` (tiny-budget sampling).
    """

    classifier: MonotoneClassifier
    probing_cost: int
    budget: int
    mode: str
    epsilon: Optional[float] = None


def _solve_on_probed(points: PointSet, oracle: LabelOracle) -> MonotoneClassifier:
    """Best-effort classifier from whatever the oracle has revealed."""
    probed = oracle.revealed_indices
    if not probed:
        from .classifier import ConstantClassifier

        return ConstantClassifier(0)
    labels = np.asarray([oracle.peek(i) for i in probed], dtype=np.int8)
    revealed = PointSet(points.coords[np.asarray(probed)], labels)
    return solve_passive(revealed).classifier


def active_classify_budgeted(points: PointSet, oracle: LabelOracle,
                             budget: int,
                             rng: RngLike = None,
                             plan: Optional[SamplingPlan] = None,
                             flow_backend: str = "dinic") -> BudgetedResult:
    """Learn the best monotone classifier obtainable within ``budget`` probes.

    The oracle's own budget (if any) must be at least ``budget``; this
    function installs no permanent state on it and never exceeds
    ``budget`` distinct probes.
    """
    n = points.n
    if n == 0:
        raise ValueError("cannot classify an empty point set")
    if budget <= 0:
        raise ValueError(f"budget must be positive; got {budget}")
    if oracle.budget is not None and oracle.budget < budget:
        raise ValueError("oracle budget is smaller than the requested budget")
    gen = as_generator(rng)
    cost_before = oracle.cost

    # Plenty of budget: the exact answer is the best possible outcome.
    if budget >= n:
        labels = np.asarray(oracle.probe_many(range(n)), dtype=np.int8)
        revealed = points.replace(labels=labels)
        result = solve_passive(revealed, backend=flow_backend)
        return BudgetedResult(result.classifier, oracle.cost - cost_before,
                              budget, mode="exact")

    w = minimum_chain_decomposition(points).num_chains
    epsilon = choose_epsilon_for_budget(n, w, budget)

    if epsilon is not None:
        # Guard the budget with a capped view of the oracle.
        remaining = budget - (oracle.cost - cost_before)
        capped = _CappedOracle(oracle, remaining)
        try:
            result: ActiveResult = active_classify(
                points, capped, epsilon=epsilon, plan=plan, rng=gen,
                flow_backend=flow_backend)
            return BudgetedResult(result.classifier,
                                  oracle.cost - cost_before, budget,
                                  mode="theorem2", epsilon=epsilon)
        except ProbeBudgetExceeded:
            classifier = _solve_on_probed(points, oracle)
            return BudgetedResult(classifier, oracle.cost - cost_before,
                                  budget, mode="theorem2-truncated",
                                  epsilon=epsilon)

    # Tiny budget: uniform sample, passive solve, no guarantee.
    picks = np.unique(sample_with_replacement(range(n), budget * 2, gen))[:budget]
    for index in picks:
        oracle.probe(int(index))
    classifier = _solve_on_probed(points, oracle)
    return BudgetedResult(classifier, oracle.cost - cost_before, budget,
                          mode="uniform")


class _CappedOracle:
    """A view of an oracle that enforces an additional local budget.

    Delegates probing (and its accounting) to the wrapped oracle but
    raises :class:`ProbeBudgetExceeded` once this view has spent its own
    allowance of distinct new probes.
    """

    def __init__(self, inner: LabelOracle, allowance: int) -> None:
        self._inner = inner
        self._allowance = allowance
        self._spent_baseline = inner.cost

    @property
    def cost(self) -> int:
        return self._inner.cost

    @property
    def budget(self):
        return self._allowance

    def probe(self, index: int) -> int:
        already_known = self._inner.peek(index) is not None
        if not already_known and \
                self._inner.cost - self._spent_baseline >= self._allowance:
            raise ProbeBudgetExceeded(
                f"budgeted run exhausted its allowance of {self._allowance}")
        return self._inner.probe(index)

    def probe_many(self, indices):
        return [self.probe(i) for i in indices]

    def peek(self, index: int):
        return self._inner.peek(index)

    @property
    def revealed_indices(self):
        return self._inner.revealed_indices
