"""Exact passive weighted monotone classification in 1-D.

In one dimension every monotone classifier has the threshold form
``h(p) = 1 iff p > tau`` (paper eq. (6)), and only the *effective*
thresholds ``tau in P ∪ {-inf}`` matter (eq. (7)).  Scanning the sorted
points with prefix sums finds the optimal threshold in ``O(n log n)``,
giving both a fast path for 1-D inputs and an independent oracle to
cross-check the max-flow solver.

This module also powers the active algorithms: the final classifier over a
weighted sample ``Σ`` on a chain is exactly a weighted 1-D optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from .classifier import ThresholdClassifier
from .points import PointSet

__all__ = [
    "Passive1DResult",
    "solve_passive_1d",
    "best_threshold",
    "threshold_errors",
]

NEG_INF = float("-inf")


@dataclass(frozen=True)
class Passive1DResult:
    """Optimal 1-D threshold classifier and its weighted error."""

    classifier: ThresholdClassifier
    optimal_error: float

    @property
    def tau(self) -> float:
        """The optimal threshold (``-inf`` means the all-1 classifier)."""
        return self.classifier.tau


def best_threshold(values: Sequence[float], labels: Sequence[int],
                   weights: Optional[Sequence[float]] = None) -> Tuple[float, float]:
    """Optimal threshold and its weighted error for raw 1-D data.

    Evaluates every effective classifier ``h^tau`` with
    ``tau in {-inf} ∪ values``.  For ``h^tau``, a label-1 point errs iff its
    value is ``<= tau`` and a label-0 point errs iff its value is ``> tau``.
    Equal values are handled correctly because candidate thresholds are the
    values themselves: all copies of a value land on the same side.

    Returns ``(tau, weighted_error)``; among optimal thresholds the smallest
    is returned (deterministic tie-break).
    """
    vals = np.asarray(values, dtype=float)
    labs = np.asarray(labels, dtype=np.int8)
    n = len(vals)
    if labs.shape != (n,):
        raise ValueError("values and labels must have equal length")
    if weights is None:
        wts = np.ones(n, dtype=float)
    else:
        wts = np.asarray(weights, dtype=float)
        if wts.shape != (n,):
            raise ValueError("weights must match values in length")
    if n == 0:
        return NEG_INF, 0.0

    order = np.argsort(vals, kind="stable")
    sorted_vals = vals[order]
    sorted_labels = labs[order]
    sorted_weights = wts[order]

    weight_of_ones = np.where(sorted_labels == 1, sorted_weights, 0.0)
    weight_of_zeros = np.where(sorted_labels == 0, sorted_weights, 0.0)

    # err(tau) for tau just covering the first k sorted points:
    #   sum of label-1 weights among them  (they fall at or below tau -> predicted 0)
    # + sum of label-0 weights among the rest (strictly above tau -> predicted 1).
    ones_prefix = np.concatenate(([0.0], np.cumsum(weight_of_ones)))
    zeros_suffix = np.concatenate((np.cumsum(weight_of_zeros[::-1])[::-1], [0.0]))

    # Candidate k values: 0 (tau = -inf) and, for each distinct value, the
    # position after its last occurrence (tau = that value).
    distinct_end = np.flatnonzero(
        np.concatenate((sorted_vals[1:] != sorted_vals[:-1], [True]))
    ) + 1
    candidate_ks = np.concatenate(([0], distinct_end))
    errors = ones_prefix[candidate_ks] + zeros_suffix[candidate_ks]

    best_pos = int(np.argmin(errors))
    best_k = int(candidate_ks[best_pos])
    tau = NEG_INF if best_k == 0 else float(sorted_vals[best_k - 1])
    return tau, float(errors[best_pos])


def threshold_errors(values: Sequence[float], labels: Sequence[int],
                     weights: Optional[Sequence[float]] = None) -> Tuple[np.ndarray, np.ndarray]:
    """Weighted error of every effective threshold, for analysis and tests.

    Returns ``(taus, errors)`` where ``taus[0] = -inf`` followed by the
    distinct sorted values.
    """
    vals = np.asarray(values, dtype=float)
    labs = np.asarray(labels, dtype=np.int8)
    n = len(vals)
    wts = np.ones(n) if weights is None else np.asarray(weights, dtype=float)
    order = np.argsort(vals, kind="stable")
    sorted_vals = vals[order]
    sorted_labels = labs[order]
    sorted_weights = wts[order]
    ones_prefix = np.concatenate(([0.0],
                                  np.cumsum(np.where(sorted_labels == 1, sorted_weights, 0.0))))
    zeros_suffix = np.concatenate(
        (np.cumsum(np.where(sorted_labels == 0, sorted_weights, 0.0)[::-1])[::-1], [0.0]))
    distinct_end = np.flatnonzero(
        np.concatenate((sorted_vals[1:] != sorted_vals[:-1], [True]))
    ) + 1 if n else np.array([], dtype=int)
    candidate_ks = np.concatenate(([0], distinct_end)).astype(int)
    errors = ones_prefix[candidate_ks] + zeros_suffix[candidate_ks]
    taus = np.concatenate(([NEG_INF], sorted_vals[candidate_ks[1:] - 1])) if n else \
        np.array([NEG_INF])
    return taus, errors


def solve_passive_1d(points: PointSet) -> Passive1DResult:
    """Solve Problem 2 exactly for a fully-labeled weighted 1-D point set."""
    points.require_full_labels()
    if points.dim != 1:
        raise ValueError(f"solve_passive_1d requires d = 1; got d = {points.dim}")
    tau, err = best_threshold(points.coords[:, 0], points.labels, points.weights)
    return Passive1DResult(ThresholdClassifier(tau), err)
