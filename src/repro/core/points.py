"""Point sets, labels, weights, and dominance — the paper's data model.

The paper (Section 1.1) works with a set ``P`` of ``n`` points in ``R^d``,
each carrying a binary label and (for Problem 2) a positive weight.  A point
``p`` *dominates* ``q`` when ``p[i] >= q[i]`` for every dimension ``i`` and
``p != q``.

Classifiers are functions of coordinates, so two points with identical
coordinate vectors must always receive the same prediction.  We therefore
expose *weak* dominance (componentwise ``>=``, including equality) as the
primitive used by every classifier constraint in this package; strict
dominance (the paper's ``p ≻ q`` for distinct points) is available separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Optional, Sequence, Tuple

import numpy as np

from .._util import as_float_matrix, validate_labels, validate_weights
from ..obs import recorder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (poset imports core)
    from ..poset.bitset import PackedOrder

__all__ = [
    "LabeledPoint",
    "PointSet",
    "HIDDEN",
    "weakly_dominates",
    "strictly_dominates",
]

#: Sentinel label value marking a hidden label (active setting).
HIDDEN: int = -1


@dataclass(frozen=True)
class LabeledPoint:
    """A single point with an optional label and a positive weight.

    This is the convenience record for user-facing construction and
    iteration; the hot paths inside the algorithms operate on the columnar
    arrays held by :class:`PointSet`.
    """

    coords: Tuple[float, ...]
    label: int = HIDDEN
    weight: float = 1.0
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.label not in (HIDDEN, 0, 1):
            raise ValueError(f"label must be 0, 1, or HIDDEN(-1); got {self.label}")
        if not (self.weight > 0 and np.isfinite(self.weight)):
            raise ValueError(f"weight must be a positive finite real; got {self.weight}")
        if not all(np.isfinite(c) for c in self.coords):
            # NaN coordinates silently break dominance trichotomy (NaN >= x
            # is always False), so a "monotone" answer over them is bogus.
            raise ValueError(
                f"coordinates must be finite real numbers; got {self.coords}"
            )

    @property
    def dim(self) -> int:
        """Dimensionality of the point."""
        return len(self.coords)

    def weakly_dominates(self, other: "LabeledPoint") -> bool:
        """``self[i] >= other[i]`` on every dimension (equality allowed)."""
        return weakly_dominates(np.asarray(self.coords), np.asarray(other.coords))

    def strictly_dominates(self, other: "LabeledPoint") -> bool:
        """Weak dominance between distinct coordinate vectors (the paper's ⪰)."""
        return strictly_dominates(np.asarray(self.coords), np.asarray(other.coords))


def weakly_dominates(p: np.ndarray, q: np.ndarray) -> bool:
    """Return whether ``p[i] >= q[i]`` for every dimension ``i``."""
    return bool(np.all(np.asarray(p, dtype=float) >= np.asarray(q, dtype=float)))


def strictly_dominates(p: np.ndarray, q: np.ndarray) -> bool:
    """The paper's dominance: weak dominance between distinct vectors."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    return bool(np.all(p >= q) and np.any(p > q))


class PointSet:
    """An immutable columnar set of labeled, weighted points in ``R^d``.

    Attributes
    ----------
    coords:
        ``(n, d)`` float array of coordinates.
    labels:
        ``(n,)`` int8 array with values in {0, 1} or :data:`HIDDEN`.
    weights:
        ``(n,)`` positive float array.

    Coordinates must be finite reals: a NaN coordinate makes dominance
    non-trichotomous (``NaN >= x`` is always false), so every monotonicity
    check downstream silently passes on garbage.  Construction therefore
    raises ``ValueError`` on non-finite coordinates unless ``validate=False``
    is passed explicitly (callers doing their own ±inf handling).

    The dominance matrix is computed lazily and cached; it costs
    ``O(d n^2)`` time and ``O(n^2)`` space, matching the bound the paper
    charges for graph construction (Theorem 4, Lemma 6).
    """

    __slots__ = ("coords", "labels", "weights", "names", "_weak_dom",
                 "_strict_dom", "_order", "_packed_order")

    def __init__(self, coords: Iterable[Sequence[float]],
                 labels: Optional[Iterable[int]] = None,
                 weights: Optional[Iterable[float]] = None,
                 names: Optional[Sequence[Optional[str]]] = None,
                 validate: bool = True) -> None:
        matrix = as_float_matrix(coords, require_finite=validate)
        n = matrix.shape[0]
        if labels is None:
            label_arr = np.full(n, HIDDEN, dtype=np.int8)
        else:
            label_arr = validate_labels(labels, n, allow_hidden=True)
        weight_arr = validate_weights(weights, n)
        matrix.setflags(write=False)
        label_arr.setflags(write=False)
        weight_arr.setflags(write=False)
        self.coords: np.ndarray = matrix
        self.labels: np.ndarray = label_arr
        self.weights: np.ndarray = weight_arr
        self.names: Optional[Tuple[Optional[str], ...]] = (
            tuple(names) if names is not None else None
        )
        if self.names is not None and len(self.names) != n:
            raise ValueError(f"expected {n} names, got {len(self.names)}")
        self._weak_dom: Optional[np.ndarray] = None
        self._strict_dom: Optional[np.ndarray] = None
        self._order: Optional[np.ndarray] = None
        # Packed-bitset order cache (repro.poset.bitset.packed_order): the
        # 8x-smaller sibling of _order, populated only by the bitset engine
        # so large inputs never force the dense O(n^2) boolean caches.
        self._packed_order: Optional["PackedOrder"] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_points(cls, points: Iterable[LabeledPoint]) -> "PointSet":
        """Build a :class:`PointSet` from :class:`LabeledPoint` records."""
        pts = list(points)
        if not pts:
            return cls(np.empty((0, 1)), [], [])
        dim = pts[0].dim
        for p in pts:
            if p.dim != dim:
                raise ValueError("all points must share the same dimensionality")
        return cls(
            coords=[p.coords for p in pts],
            labels=[p.label for p in pts],
            weights=[p.weight for p in pts],
            names=[p.name for p in pts],
        )

    def replace(self, labels: Optional[Iterable[int]] = None,
                weights: Optional[Iterable[float]] = None) -> "PointSet":
        """Return a copy with labels and/or weights swapped out."""
        return PointSet(
            self.coords,
            labels=self.labels if labels is None else labels,
            weights=self.weights if weights is None else weights,
            names=self.names,
            validate=False,
        )

    def subset(self, indices: Sequence[int]) -> "PointSet":
        """Return the sub-:class:`PointSet` induced by ``indices`` (in order)."""
        idx = np.asarray(indices, dtype=int)
        names = None
        if self.names is not None:
            names = [self.names[i] for i in idx]
        return PointSet(self.coords[idx], self.labels[idx], self.weights[idx],
                        names, validate=False)

    def with_hidden_labels(self) -> "PointSet":
        """Return a copy whose labels are all hidden (active-setting input)."""
        return PointSet(self.coords, None, self.weights, self.names,
                        validate=False)

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.coords.shape[0]

    @property
    def n(self) -> int:
        """Number of points (the paper's ``n``)."""
        return self.coords.shape[0]

    @property
    def dim(self) -> int:
        """Dimensionality (the paper's ``d``)."""
        return self.coords.shape[1]

    @property
    def total_weight(self) -> float:
        """Sum of all point weights."""
        return float(self.weights.sum())

    def __iter__(self) -> Iterator[LabeledPoint]:
        for i in range(self.n):
            yield self.point(i)

    def point(self, index: int) -> LabeledPoint:
        """Materialize point ``index`` as a :class:`LabeledPoint`."""
        name = self.names[index] if self.names is not None else None
        return LabeledPoint(
            coords=tuple(float(c) for c in self.coords[index]),
            label=int(self.labels[index]),
            weight=float(self.weights[index]),
            name=name,
        )

    def __repr__(self) -> str:
        hidden = int(np.count_nonzero(self.labels == HIDDEN))
        return (f"PointSet(n={self.n}, d={self.dim}, hidden_labels={hidden}, "
                f"total_weight={self.total_weight:g})")

    # ------------------------------------------------------------------
    # Label bookkeeping
    # ------------------------------------------------------------------

    @property
    def has_hidden_labels(self) -> bool:
        """Whether any label is hidden."""
        return bool(np.any(self.labels == HIDDEN))

    def require_full_labels(self) -> None:
        """Raise ``ValueError`` if any label is hidden.

        Passive algorithms call this up front: Problem 2 assumes a
        fully-labeled input.
        """
        if self.has_hidden_labels:
            raise ValueError("operation requires a fully-labeled point set")

    # ------------------------------------------------------------------
    # Dominance
    # ------------------------------------------------------------------

    def weak_dominance_matrix(self) -> np.ndarray:
        """Boolean matrix ``M[i, j]`` = point ``i`` weakly dominates point ``j``.

        Weak dominance includes equality of coordinate vectors, so the
        diagonal is always ``True``.  Computed once in ``O(d n^2)`` and cached.
        """
        if self._weak_dom is None:
            if self.n == 0:
                self._weak_dom = np.zeros((0, 0), dtype=bool)
            else:
                # Accumulate one dimension at a time: peak scratch memory is
                # one (n, n) boolean matrix, not the (n, n, d) broadcast
                # intermediate.
                weak = np.ones((self.n, self.n), dtype=bool)
                for k in range(self.dim):
                    col = self.coords[:, k]
                    np.logical_and(weak, col[:, None] >= col[None, :], out=weak)
                self._weak_dom = weak
            self._weak_dom.setflags(write=False)
        return self._weak_dom

    def order_matrix(self) -> np.ndarray:
        """Boolean matrix of the tie-broken strict order shared by the poset code.

        ``M[i, j]`` is true iff point ``i`` is *above* point ``j``: either
        ``i`` strictly dominates ``j``, or the coordinate vectors are
        identical and ``i > j`` (index tie-break), making the relation a
        strict partial order whose digraph is a DAG.  Computed once and
        cached; every poset helper (adjacency, minimal/maximal points,
        chains, width, Mirsky heights, Hasse diagrams) reads this shared
        copy instead of rebuilding it per call.  Cache hits are counted in
        the ``poset.order_cache_hits`` metric.
        """
        if self._order is None:
            weak = self.weak_dominance_matrix()
            equal = weak & weak.T
            order = weak & ~equal
            if self.n:
                idx = np.arange(self.n)
                order |= equal & (idx[:, None] > idx[None, :])
            order.setflags(write=False)
            self._order = order
        else:
            rec = recorder()
            if rec.enabled:
                rec.incr("poset.order_cache_hits")
        return self._order

    def strict_dominance_matrix(self) -> np.ndarray:
        """Boolean matrix of the paper's dominance (distinct vectors only)."""
        if self._strict_dom is None:
            weak = self.weak_dominance_matrix()
            # p strictly dominates q iff p >= q componentwise and p != q as
            # vectors, i.e. not (q >= p as well).
            self._strict_dom = weak & ~weak.T
            self._strict_dom.setflags(write=False)
        return self._strict_dom

    def weakly_dominates(self, i: int, j: int) -> bool:
        """Whether point ``i`` weakly dominates point ``j``."""
        return bool(np.all(self.coords[i] >= self.coords[j]))

    def strictly_dominates(self, i: int, j: int) -> bool:
        """Whether point ``i`` dominates ``j`` in the paper's (strict) sense."""
        return (bool(np.all(self.coords[i] >= self.coords[j]))
                and bool(np.any(self.coords[i] > self.coords[j])))

    def comparable(self, i: int, j: int) -> bool:
        """Whether points ``i`` and ``j`` are comparable under weak dominance."""
        return self.weakly_dominates(i, j) or self.weakly_dominates(j, i)

    def is_monotone_labeling(self) -> bool:
        """Whether the (full) labeling itself is monotone, i.e. ``k* = 0``.

        True iff no label-0 point weakly dominates a label-1 point.
        """
        self.require_full_labels()
        if self.n == 0:
            return True
        weak = self.weak_dominance_matrix()
        zeros = self.labels == 0
        ones = self.labels == 1
        return not bool(np.any(weak[np.ix_(zeros, ones)]))
