"""Decision boundaries and explanations of monotone classifiers.

The selling point of monotone classification in entity matching is
*explainability* (Section 1.1): a pair is accepted only if it is at least
as similar as some accepted reference on every metric.  This module turns
that into an API:

* :func:`explain_acceptance` — for an accepted point, a minimal anchor it
  dominates ("accepted because it is at least as similar as THIS on every
  metric");
* :func:`explain_rejection` — for a rejected point, the per-anchor
  deficit vector ("rejected because it falls short of every accepted
  reference; closest miss shown");
* :func:`decision_boundary_1d` — the exact threshold of a monotone
  classifier along one axis (the other coordinates fixed), found by
  bisection, valid for *any* monotone classifier;
* :func:`boundary_staircase_2d` — the 2-D boundary polyline of an
  :class:`~repro.core.classifier.UpsetClassifier`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .classifier import MonotoneClassifier, UpsetClassifier

__all__ = [
    "explain_acceptance",
    "explain_rejection",
    "decision_boundary_1d",
    "boundary_staircase_2d",
]


def explain_acceptance(classifier: UpsetClassifier,
                       point: Sequence[float]) -> Optional[np.ndarray]:
    """A witness anchor the accepted point weakly dominates, or ``None``.

    The returned anchor is the explanation: the point scores at least as
    high on every dimension, so by monotonicity it must be accepted.
    Among qualifying anchors the one with the largest coordinate sum (the
    tightest witness) is returned.
    """
    coords = np.asarray(point, dtype=float)
    if classifier.classify(coords) != 1:
        return None
    anchors = classifier.anchors
    dominated = np.all(coords[None, :] >= anchors, axis=1)
    candidates = anchors[dominated]
    best = int(np.argmax(candidates.sum(axis=1)))
    return candidates[best].copy()


def explain_rejection(classifier: UpsetClassifier,
                      point: Sequence[float]) -> Optional[Dict[str, np.ndarray]]:
    """Why a point is rejected: its closest anchor and the deficit vector.

    Returns ``None`` for accepted points.  For rejected points, picks the
    anchor minimizing the total shortfall ``sum(max(0, anchor - point))``
    and reports both the anchor and the per-dimension deficits — "raise
    these similarities by this much and the pair gets accepted".
    """
    coords = np.asarray(point, dtype=float)
    if classifier.classify(coords) == 1:
        return None
    anchors = classifier.anchors
    if anchors.shape[0] == 0:
        return {"anchor": None, "deficit": None}
    shortfalls = np.maximum(0.0, anchors - coords[None, :])
    totals = shortfalls.sum(axis=1)
    best = int(np.argmin(totals))
    return {"anchor": anchors[best].copy(), "deficit": shortfalls[best].copy()}


def decision_boundary_1d(classifier: MonotoneClassifier, dim: int,
                         fixed: Sequence[float],
                         lo: float, hi: float,
                         tolerance: float = 1e-9) -> float:
    """The classifier's threshold along axis ``dim`` with others fixed.

    By monotonicity the restriction of ``h`` to the axis is a step
    function; bisection finds the step.  Returns ``hi`` if the classifier
    is 0 on the whole segment and ``lo`` if it is 1 everywhere (i.e. the
    returned value ``t`` satisfies: classified 1 iff coordinate > t,
    within the segment and tolerance).
    """
    if lo > hi:
        raise ValueError("need lo <= hi")
    fixed = list(fixed)

    def at(value: float) -> int:
        probe = list(fixed)
        probe.insert(dim, value)
        return classifier.classify(tuple(probe))

    if at(hi) == 0:
        return hi
    if at(lo) == 1:
        return lo
    low, high = lo, hi  # at(low) = 0, at(high) = 1
    while high - low > tolerance:
        mid = (low + high) / 2
        if at(mid) == 1:
            high = mid
        else:
            low = mid
    return (low + high) / 2


def boundary_staircase_2d(classifier: UpsetClassifier) -> List[Tuple[float, float]]:
    """The corner points of a 2-D upset classifier's staircase boundary.

    Returns the classifier's (minimal) anchors sorted by x ascending —
    equivalently y descending, since minimal anchors of a 2-D upset form
    an anti-chain.  Consecutive corners delimit the vertical/horizontal
    boundary segments.
    """
    anchors = classifier.anchors
    if anchors.shape[1] != 2:
        raise ValueError(
            f"boundary_staircase_2d requires d = 2; got d = {anchors.shape[1]}")
    order = np.argsort(anchors[:, 0], kind="stable")
    return [(float(x), float(y)) for x, y in anchors[order]]
