"""Monotone classifiers over ``R^d``.

A monotone classifier ``h`` maps every point of ``R^d`` to {0, 1} such that
``h(p) >= h(q)`` whenever ``p`` weakly dominates ``q``.  The classes here are
the concrete classifier families the paper manipulates:

* :class:`ThresholdClassifier` — the 1-D form ``h(p) = 1 iff p > tau``
  (equation (6) of the paper);
* :class:`UpsetClassifier` — ``h(p) = 1`` iff ``p`` weakly dominates one of a
  finite set of *anchor* points.  Every monotone classifier restricted to a
  finite point set can be represented this way (take the minimal 1-labeled
  points as anchors), which is how the multi-dimensional algorithms return
  their answers;
* :class:`ConstantClassifier` — the two trivial monotone classifiers.

All classifiers are immutable and vectorized over :class:`PointSet`.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

import numpy as np

from .._util import as_float_matrix
from .points import PointSet

__all__ = [
    "MonotoneClassifier",
    "ThresholdClassifier",
    "UpsetClassifier",
    "ConstantClassifier",
    "IntersectionClassifier",
    "UnionClassifier",
    "is_monotone_assignment",
    "monotone_extension",
]


class MonotoneClassifier:
    """Abstract base for monotone classifiers.

    Subclasses implement :meth:`classify_matrix`; everything else is derived.
    """

    def classify_matrix(self, coords: np.ndarray) -> np.ndarray:
        """Classify each row of an ``(m, d)`` coordinate matrix; returns int8."""
        raise NotImplementedError

    def classify(self, point: Sequence[float]) -> int:
        """Classify a single point given as a coordinate sequence."""
        matrix = as_float_matrix([tuple(point)])
        return int(self.classify_matrix(matrix)[0])

    def classify_set(self, points: PointSet) -> np.ndarray:
        """Classify every point of a :class:`PointSet`."""
        return self.classify_matrix(points.coords)

    def __call__(self, point: Sequence[float]) -> int:
        return self.classify(point)


class ConstantClassifier(MonotoneClassifier):
    """The all-0 or all-1 classifier (trivially monotone)."""

    def __init__(self, value: int) -> None:
        if value not in (0, 1):
            raise ValueError(f"constant classifier value must be 0 or 1; got {value}")
        self.value = int(value)

    def classify_matrix(self, coords: np.ndarray) -> np.ndarray:
        return np.full(coords.shape[0], self.value, dtype=np.int8)

    def __repr__(self) -> str:
        return f"ConstantClassifier({self.value})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ConstantClassifier) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("const", self.value))


class ThresholdClassifier(MonotoneClassifier):
    """The 1-D monotone classifier ``h(p) = 1 iff p > tau`` (paper eq. (6)).

    ``tau = -inf`` yields the all-1 classifier; ``tau = +inf`` the all-0 one.
    For multi-dimensional inputs the threshold applies to a chosen coordinate
    ``dim`` (default 0), which is still monotone.
    """

    def __init__(self, tau: float, dim: int = 0) -> None:
        if math.isnan(tau):
            raise ValueError("threshold must not be NaN")
        self.tau = float(tau)
        self.dim = int(dim)

    def classify_matrix(self, coords: np.ndarray) -> np.ndarray:
        if coords.shape[1] <= self.dim:
            raise ValueError(
                f"threshold on dim {self.dim} applied to {coords.shape[1]}-dim points"
            )
        return (coords[:, self.dim] > self.tau).astype(np.int8)

    def __repr__(self) -> str:
        return f"ThresholdClassifier(tau={self.tau!r}, dim={self.dim})"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ThresholdClassifier)
                and other.tau == self.tau and other.dim == self.dim)

    def __hash__(self) -> int:
        return hash(("thresh", self.tau, self.dim))


class UpsetClassifier(MonotoneClassifier):
    """``h(p) = 1`` iff ``p`` weakly dominates at least one anchor point.

    The 1-region is the *upward closure* (upset) of the anchors, hence the
    classifier is monotone by construction.  With zero anchors this is the
    all-0 classifier.

    Anchors that dominate another anchor are redundant and pruned at
    construction, so ``anchors`` always stores a minimal antichain.
    """

    def __init__(self, anchors: Iterable[Sequence[float]], dim: Optional[int] = None) -> None:
        rows = [tuple(a) for a in anchors]
        if rows:
            matrix = as_float_matrix(rows)
        else:
            if dim is None:
                raise ValueError("dim is required when constructing with no anchors")
            matrix = np.empty((0, dim), dtype=float)
        self.anchors = _prune_dominated_anchors(matrix)
        self.anchors.setflags(write=False)

    @classmethod
    def from_positive_points(cls, points: PointSet,
                             predictions: Sequence[int]) -> "UpsetClassifier":
        """Build the upset classifier generated by the 1-predicted points.

        This is the canonical monotone extension of a monotone assignment on
        a finite set: it agrees with ``predictions`` on ``points`` whenever
        the assignment is monotone, and generalizes to all of ``R^d``.
        """
        pred = np.asarray(predictions, dtype=np.int8)
        if pred.shape != (points.n,):
            raise ValueError(f"expected {points.n} predictions, got {pred.shape}")
        ones = points.coords[pred == 1]
        return cls(ones, dim=points.dim)

    def classify_matrix(self, coords: np.ndarray) -> np.ndarray:
        if self.anchors.shape[0] == 0:
            return np.zeros(coords.shape[0], dtype=np.int8)
        if coords.shape[1] != self.anchors.shape[1]:
            raise ValueError(
                f"dimension mismatch: points have d={coords.shape[1]}, "
                f"anchors have d={self.anchors.shape[1]}"
            )
        dominated = np.all(coords[:, None, :] >= self.anchors[None, :, :], axis=2)
        return np.any(dominated, axis=1).astype(np.int8)

    @property
    def num_anchors(self) -> int:
        """Number of (minimal) anchor points defining the 1-region."""
        return int(self.anchors.shape[0])

    def __repr__(self) -> str:
        return f"UpsetClassifier(num_anchors={self.num_anchors}, dim={self.anchors.shape[1]})"


class _CompositeClassifier(MonotoneClassifier):
    """Shared machinery for AND/OR compositions.

    Monotone classifiers are closed under pointwise minimum (AND) and
    maximum (OR): if each member satisfies ``h(p) >= h(q)`` for ``p ⪰ q``,
    so do their min and max.  Compositions let users express policies like
    "accept only if both the name-model and the address-model accept".
    """

    def __init__(self, members: Iterable[MonotoneClassifier]) -> None:
        self.members = tuple(members)
        if not self.members:
            raise ValueError("composition requires at least one member")
        for member in self.members:
            if not isinstance(member, MonotoneClassifier):
                raise TypeError(
                    f"members must be MonotoneClassifier; got {type(member)!r}")

    def __repr__(self) -> str:
        return f"{type(self).__name__}(members={len(self.members)})"


class IntersectionClassifier(_CompositeClassifier):
    """Accept iff *every* member accepts (pointwise AND; monotone)."""

    def classify_matrix(self, coords: np.ndarray) -> np.ndarray:
        out = self.members[0].classify_matrix(coords)
        for member in self.members[1:]:
            out = np.minimum(out, member.classify_matrix(coords))
        return out


class UnionClassifier(_CompositeClassifier):
    """Accept iff *some* member accepts (pointwise OR; monotone)."""

    def classify_matrix(self, coords: np.ndarray) -> np.ndarray:
        out = self.members[0].classify_matrix(coords)
        for member in self.members[1:]:
            out = np.maximum(out, member.classify_matrix(coords))
        return out


def _prune_dominated_anchors(matrix: np.ndarray) -> np.ndarray:
    """Keep only minimal anchors (drop any anchor that dominates another).

    If anchor ``a`` weakly dominates anchor ``b`` then the upset of ``b``
    contains the upset of ``a``, so ``a`` is redundant.  Duplicate rows are
    collapsed to a single representative.
    """
    m = matrix.shape[0]
    if m <= 1:
        return matrix.copy()
    unique = np.unique(matrix, axis=0)
    m = unique.shape[0]
    weak = np.all(unique[:, None, :] >= unique[None, :, :], axis=2)
    np.fill_diagonal(weak, False)
    # Row i is redundant if it weakly dominates some other (distinct) row.
    redundant = np.any(weak, axis=1)
    return unique[~redundant].copy()


def is_monotone_assignment(points: PointSet, predictions: Sequence[int]) -> bool:
    """Whether an assignment on a finite point set respects monotonicity.

    The assignment violates monotonicity iff some point assigned 0 weakly
    dominates a point assigned 1.
    """
    pred = np.asarray(predictions, dtype=np.int8)
    if pred.shape != (points.n,):
        raise ValueError(f"expected {points.n} predictions, got {pred.shape}")
    if points.n == 0:
        return True
    weak = points.weak_dominance_matrix()
    zeros = pred == 0
    ones = pred == 1
    return not bool(np.any(weak[np.ix_(zeros, ones)]))


def monotone_extension(points: PointSet, predictions: Sequence[int]) -> UpsetClassifier:
    """Extend a monotone assignment on ``points`` to all of ``R^d``.

    Raises ``ValueError`` if the assignment is not monotone, since no
    extension could then exist.
    """
    if not is_monotone_assignment(points, predictions):
        raise ValueError("assignment violates monotonicity; no monotone extension exists")
    return UpsetClassifier.from_positive_points(points, predictions)
