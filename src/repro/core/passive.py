"""Passive weighted monotone classification via min-cut (paper Theorem 4).

Problem 2: given a fully-labeled weighted set ``P``, find the monotone
classifier of minimum weighted error.  Section 5 solves it exactly:

1. Restrict to the *contending* points ``P^con`` (Lemma 15): a label-0 point
   is contending if it weakly dominates some label-1 point, and vice versa.
   Non-contending points can always keep their own labels.
2. Build a flow network: source → each contending label-0 point with
   capacity = its weight; each contending label-1 point → sink with capacity
   = its weight; an effectively-infinite edge ``p → q`` for every contending
   pair with label-0 ``p`` weakly dominating label-1 ``q``.
3. A minimum cut-edge set (Lemma 8) *is* an optimal classifier: cut source
   edges flip their label-0 point to 1; cut sink edges flip their label-1
   point to 0 (Lemmas 16, 17).

Total cost ``O(d n^2) + T_maxflow(n)``.

``solve_passive(use_hasse_reduction=True)`` swaps step 2's closure edges
for the covering pairs of the dominance order (transitive reduction), with
every point as a pass-through vertex — same optimum, far fewer infinite
edges for the max-flow backend to chew through (see ``docs/poset.md``).

This module also carries :func:`brute_force_passive`, the exponential test
oracle the paper sketches in Section 1.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Optional

import numpy as np

from ..flow import FLOW_ARRAY_CUTOFF, FlowNetwork, array_backend_for, solve_min_cut
from ..obs import recorder
from .classifier import (
    MonotoneClassifier,
    UpsetClassifier,
    is_monotone_assignment,
)
from .errors import prediction_weighted_error
from .pairwise import (
    DEFAULT_BLOCK_SIZE,
    blocked_dominance_pair_arrays,
    blocked_is_monotone_assignment,
)
from .points import PointSet

__all__ = [
    "PassiveResult",
    "solve_passive",
    "contending_mask",
    "brute_force_passive",
    "LARGE_INPUT_THRESHOLD",
]

#: Above this size, solve_passive switches from the cached O(n^2)-memory
#: dominance matrix to blockwise pairwise computation (same time bound,
#: O(n * block) memory).
LARGE_INPUT_THRESHOLD = 8_192


def _effective_infinity(total_weight: float, min_weight: float) -> float:
    """Capacity that can never sit in a minimum cut, for a given weight scale.

    Every finite cut (source/sink edges only) weighs at most ``total_weight``,
    so any capacity strictly greater works.  ``total + 1.0`` is the natural
    choice but loses meaning at extreme scales: above ~1e16 the ``+ 1.0`` is
    absorbed by rounding (the "infinite" edges become exactly as cheap as
    cutting everything finite), and near 1e308 doubling overflows to ``inf``
    (which breaks residual arithmetic in the backends).  Detect both and use
    ``2 * total`` — a margin rounding cannot erase — or raise a clean
    ``ValueError`` telling the caller to rescale.

    The flow backends themselves also carry absolute rounding error on the
    order of ``ulp(total_weight)`` (e.g. push-relabel briefly saturates the
    whole source side, so a tiny final flow is a difference of huge
    intermediates).  The optimal error can be as small as ``min_weight``
    (the lightest contending point), so when ``ulp(total)`` approaches that
    scale the min-cut certificate check would trip on pure noise.  Reject
    such ill-conditioned weight mixes up front with a clean ``ValueError``
    instead of failing deep inside a backend-dependent assertion.
    """
    if not np.isfinite(total_weight):
        raise ValueError(
            "total contending weight overflows float64; rescale the weights "
            "(only ratios matter for the optimal classifier)"
        )
    # Conditioning guard: absolute flow noise ~ulp(total) must stay well
    # below both the 1e-6 absolute floor of the min-cut certificate check
    # and the smallest weight that could form the optimal cut.
    if float(np.spacing(total_weight)) > 1e-7 * max(1.0, min_weight):
        raise ValueError(
            f"contending weights are too ill-conditioned for float64 min-cut "
            f"arithmetic (total {total_weight:.6g}, lightest {min_weight:.6g}"
            f"): flow rounding noise could exceed the optimal error; rescale "
            "the weights (only ratios matter for the optimal classifier)"
        )
    cap = total_weight + 1.0
    if cap > total_weight:
        return cap
    cap = 2.0 * total_weight
    if np.isfinite(cap):
        return cap
    raise ValueError(
        f"weight scale {total_weight!r} is too close to the float64 limit to "
        "represent an uncuttable capacity; rescale the weights"
    )


@dataclass(frozen=True)
class PassiveResult:
    """Output of the Theorem 4 solver.

    Attributes
    ----------
    classifier:
        An optimal monotone classifier over all of ``R^d`` (the monotone
        extension of the optimal assignment on ``P``).
    assignment:
        Per-point predictions on ``P`` (int8 array).
    optimal_error:
        Minimum weighted error ``w-err_P`` achieved.
    num_contending:
        Size of ``P^con`` (the min-cut instance actually solved).
    flow_value:
        Max-flow value = min-cut weight = optimal weighted error on
        ``P^con``.
    backend:
        Max-flow backend actually used.  Above
        :data:`repro.flow.FLOW_ARRAY_CUTOFF` network vertices a loop
        backend is auto-upgraded to its array-native sibling (e.g.
        ``"dinic"`` → ``"dinic_array"``), and the upgraded name is
        reported here.
    """

    classifier: MonotoneClassifier
    assignment: np.ndarray
    optimal_error: float
    num_contending: int
    flow_value: float
    backend: str


def contending_mask(points: PointSet) -> np.ndarray:
    """Boolean mask of contending points (Section 5.1).

    A label-0 point contends if it weakly dominates some label-1 point; a
    label-1 point contends if some label-0 point weakly dominates it.  We
    use weak dominance so duplicate coordinate vectors with opposing labels
    contend with each other (a classifier cannot separate them).
    """
    points.require_full_labels()
    n = points.n
    if n == 0:
        return np.zeros(0, dtype=bool)
    weak = points.weak_dominance_matrix()
    zeros = points.labels == 0
    ones = points.labels == 1
    mask = np.zeros(n, dtype=bool)
    if zeros.any() and ones.any():
        # weak[i, j]: i dominates j.  A label-0 point i contends iff it
        # dominates some label-1 j; a label-1 j contends iff dominated by
        # some label-0 i.
        zero_dominates_one = weak[np.ix_(zeros, ones)]
        mask[np.flatnonzero(zeros)] = zero_dominates_one.any(axis=1)
        mask[np.flatnonzero(ones)] = zero_dominates_one.any(axis=0)
    return mask


def _hasse_reduced_order(points: PointSet) -> np.ndarray:
    """Label-aware tie-broken order for the Hasse-reduced cut network.

    Strict dominance plus a tie-break on identical coordinate vectors that
    ranks every label-0 point *above* every label-1 point (index order
    within a label).  The label-aware direction matters: the reduced
    network encodes only one direction of a symmetric weak-dominance pair,
    and the direction that forbids the zero-flip assignment of an
    oppositely-labeled duplicate pair is 0-above-1.  (Between same-label
    duplicates either direction is harmless: any constraint between points
    with identical coordinates only removes assignments no coordinate
    classifier could realize.)
    """
    weak = points.weak_dominance_matrix()
    equal = weak & weak.T
    n = points.n
    rank = np.where(points.labels == 0, np.arange(n) + n, np.arange(n))
    order = weak & ~equal
    order |= equal & (rank[:, None] > rank[None, :])
    return order


def solve_passive(points: PointSet, backend: str = "dinic",
                  use_contending_reduction: bool = True,
                  block_size: Optional[int] = None,
                  use_hasse_reduction: bool = False) -> PassiveResult:
    """Solve Problem 2 exactly (Theorem 4).

    Parameters
    ----------
    points:
        Fully-labeled weighted point set.
    backend:
        Max-flow backend (any key of :data:`repro.flow.FLOW_BACKENDS`).
        Loop backends with an array-native sibling (``"dinic"``,
        ``"push_relabel"``) are auto-upgraded to it when the min-cut
        network reaches :data:`repro.flow.FLOW_ARRAY_CUTOFF` vertices;
        pass the array name explicitly to force it, or a loop-only name
        (``"edmonds_karp"``, ``"capacity_scaling"``) to avoid it.
    use_contending_reduction:
        When False, the min-cut instance is built over *all* points instead
        of just ``P^con`` (still correct, since non-contending points have
        no infinite edges forcing them; used by the A1 ablation).
    block_size:
        Force blockwise pairwise computation with this row-block size.
        Defaults to the cached dominance matrix for small inputs and to
        blockwise mode above :data:`LARGE_INPUT_THRESHOLD` points.
    use_hasse_reduction:
        Build the network's infinite edges from the *transitive reduction*
        (Hasse covering pairs) of the dominance order over all points,
        with every point as a pass-through vertex, instead of one edge per
        dominating ``(label-0, label-1)`` pair of the full closure.
        Reachability along covering edges reproduces the order exactly, so
        a finite-capacity cut is still exactly a monotone assignment and
        the optimum is unchanged — but the max-flow backend processes
        ``|Hasse|`` infinite edges instead of up to ``O(n^2)``.  Requires
        the dense ``O(n^2)``-bit order matrix (the blockwise pair stream
        is bypassed); see ``docs/poset.md`` for the correctness argument.
    """
    points.require_full_labels()
    n = points.n
    labels = points.labels
    weights = points.weights
    assignment = labels.astype(np.int8).copy()

    if n == 0:
        classifier = UpsetClassifier([], dim=max(1, points.dim))
        return PassiveResult(classifier, assignment, 0.0, 0, 0.0, backend)

    blockwise = block_size is not None or n > LARGE_INPUT_THRESHOLD
    rows_per_block = block_size or DEFAULT_BLOCK_SIZE
    rec = recorder()

    with rec.span("passive") as passive_span:
        with rec.span("contending"):
            if use_contending_reduction:
                if points.dim <= 2:
                    # O(n log n) sweepline fast path (weak dominance
                    # preserved).
                    from ..poset.dominance2d import contending_mask_low_dim

                    mask = contending_mask_low_dim(points)
                elif blockwise:
                    # Packed-bitset accumulator: same blockwise streaming,
                    # but the per-block evidence is OR-ed as bitset rows.
                    from ..poset.bitset import contending_mask_bitset

                    mask = contending_mask_bitset(points, rows_per_block)
                else:
                    mask = contending_mask(points)
                active = np.flatnonzero(mask)
            else:
                active = np.arange(n)
        if rec.enabled:
            rec.gauge("passive.n", n)
            rec.gauge("passive.num_contending", len(active))
            passive_span.set_attr("n", n)
            passive_span.set_attr("num_contending", len(active))
            passive_span.set_attr("backend", backend)

        if len(active) == 0:
            # Labeling already monotone: zero error, keep every label.
            classifier = UpsetClassifier.from_positive_points(points, assignment)
            return PassiveResult(classifier, assignment, 0.0, 0, 0.0, backend)

        with rec.span("build_network"):
            zeros_arr = active[labels[active] == 0]
            ones_arr = active[labels[active] == 1]

            # vid[point index] -> network vertex id (-1 for inactive).
            vid = np.full(n, -1, dtype=np.int64)
            if use_hasse_reduction:
                # Vertex ids: 0 = source, 1 = sink, then one per *point* —
                # non-terminal points serve as pass-through intermediates
                # of covering paths.
                network = FlowNetwork(2 + n)
                vid[active] = 2 + active
            else:
                # Vertex ids: 0 = source, 1 = sink, then one per active point.
                network = FlowNetwork(2 + len(active))
                vid[active] = 2 + np.arange(len(active))
            source, sink = 0, 1

            # Effective infinity: strictly larger than any finite cut,
            # numerically safe even at extreme weight scales.  An
            # overflowing sum is deliberate input to the guard, not a
            # numpy warning condition.
            with np.errstate(over="ignore"):
                infinite_cap = _effective_infinity(
                    float(weights[active].sum()),
                    float(weights[active].min()))

            network.add_edges(np.full(len(zeros_arr), source), vid[zeros_arr],
                              weights[zeros_arr].astype(float))
            network.add_edges(vid[ones_arr], np.full(len(ones_arr), sink),
                              weights[ones_arr].astype(float))
            if use_hasse_reduction:
                from ..poset.sparse import transitive_reduction

                covering = transitive_reduction(_hasse_reduced_order(points))
                uppers, lowers = np.nonzero(covering)
                network.add_edges(2 + uppers, 2 + lowers, infinite_cap)
                if rec.enabled:
                    rec.incr("passive.hasse_edges_kept", len(uppers))
            elif blockwise:
                for srcs, tgts in blocked_dominance_pair_arrays(
                        points, zeros_arr, ones_arr, rows_per_block):
                    network.add_edges(vid[srcs], vid[tgts], infinite_cap)
            else:
                weak = points.weak_dominance_matrix()
                row_pos, col_pos = np.nonzero(
                    weak[np.ix_(zeros_arr, ones_arr)])
                network.add_edges(vid[zeros_arr[row_pos]],
                                  vid[ones_arr[col_pos]], infinite_cap)
        if rec.enabled:
            rec.incr("passive.dominance_pairs",
                     network.num_edges - len(active))

        with rec.span("min_cut"):
            # Above the measured crossover, upgrade a loop backend to its
            # array-native sibling (mirrors the BITSET_CUTOFF auto-select
            # in repro.poset): same flow values, vectorized BFS sweeps.
            effective_backend = backend
            upgrade = array_backend_for(backend)
            if upgrade is not None and network.num_nodes >= FLOW_ARRAY_CUTOFF:
                effective_backend = upgrade
                if rec.enabled:
                    rec.incr("passive.array_backend_upgrades")
            cut = solve_min_cut(network, source, sink,
                                backend=effective_backend)

        with rec.span("verify"):
            # Cut source edges flip label-0 points to 1; a source edge
            # (s, p) is cut iff p is NOT reachable from the source in the
            # residual graph.
            for p in zeros_arr.tolist():
                if int(vid[p]) not in cut.source_side:
                    assignment[p] = 1
            # Cut sink edges flip label-1 points to 0; a sink edge (q, t)
            # is cut iff q IS reachable (t never is).
            for q in ones_arr.tolist():
                if int(vid[q]) in cut.source_side:
                    assignment[q] = 0

            if blockwise:
                assignment_monotone = blocked_is_monotone_assignment(
                    points, assignment, rows_per_block)
            else:
                assignment_monotone = is_monotone_assignment(points, assignment)
            if not assignment_monotone:
                raise AssertionError(
                    "min-cut produced a non-monotone assignment (Lemma 16 "
                    "violated); this indicates a solver bug"
                )
            optimal_error = prediction_weighted_error(labels, assignment,
                                                      weights)
            if abs(optimal_error - cut.value) > 1e-6 * max(1.0, abs(cut.value)):
                raise AssertionError(
                    f"classifier error {optimal_error!r} != min-cut value "
                    f"{cut.value!r} (Lemma 17 violated); this indicates a "
                    "solver bug"
                )

        if rec.enabled:
            rec.gauge("passive.flow_value", float(cut.value))
            rec.gauge("passive.optimal_error", float(optimal_error))

        classifier = UpsetClassifier.from_positive_points(points, assignment)
        return PassiveResult(
            classifier=classifier,
            assignment=assignment,
            optimal_error=float(optimal_error),
            num_contending=len(active),
            flow_value=float(cut.value),
            backend=effective_backend,
        )


def brute_force_passive(points: PointSet, max_n: int = 16) -> float:
    """Minimum weighted error by exhaustive search (test oracle, Section 1.2).

    Enumerates all ``2^n`` assignments, keeps the monotone ones, and returns
    the best weighted error.  Exponential by design — guard with ``max_n``.
    """
    points.require_full_labels()
    n = points.n
    if n > max_n:
        raise ValueError(f"brute_force_passive limited to n <= {max_n}; got {n}")
    if n == 0:
        return 0.0
    weak = points.weak_dominance_matrix()
    labels = points.labels
    weights = points.weights
    best = float("inf")
    for bits in product((0, 1), repeat=n):
        pred = np.asarray(bits, dtype=np.int8)
        zeros = pred == 0
        ones = pred == 1
        if np.any(weak[np.ix_(zeros, ones)]):
            continue  # not monotone
        err = float(weights[pred != labels].sum())
        if err < best:
            best = err
    return best
