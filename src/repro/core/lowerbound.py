"""The Ω(n) lower bound for exact active classification (paper Section 6).

Theorem 1 is proved through an explicit adversarial family ``𝒫`` of 1-D
inputs over the points ``{1, .., n}`` (n even):

* default labels alternate — odd points get 1, even points get 0 — forming
  ``n/2`` *normal pairs* ``(2i-1, 2i)`` with labels (1, 0);
* input ``P_00(i)`` flips point ``2i-1`` to 0 (anomaly pair labeled 0,0);
* input ``P_11(i)`` flips point ``2i`` to 1 (anomaly pair labeled 1,1).

Every input's optimal error is exactly ``n/2 - 1``, and no single threshold
classifier is optimal for both ``P_00(i)`` and ``P_11(i)`` (Lemma 21).  A
deterministic pair-probing algorithm is modeled by a probe sequence of
pairs plus a fallback classifier; Lemma 19 shows the exact totals

    nonoptcnt >= n/2 - ℓ        totalcost = nℓ - ℓ² - ℓ

over the whole family when ``ℓ`` pairs are probed.  This module implements
the family, the algorithm model, and the accounting — the E8 experiment
compares the measured totals to these closed forms and evaluates real
algorithms on the family.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .classifier import MonotoneClassifier
from .errors import error_count
from .points import PointSet

__all__ = [
    "adversarial_input",
    "adversarial_family",
    "optimal_error_of_family_input",
    "DeterministicPairProber",
    "RandomizedPairProber",
    "FamilyEvaluation",
    "evaluate_on_family",
    "theoretical_totalcost",
    "theoretical_nonoptcnt_lower_bound",
]


def _check_even(n: int) -> None:
    if n < 4 or n % 2 != 0:
        raise ValueError(f"the adversarial family requires even n >= 4; got {n}")


def adversarial_input(n: int, anomaly_pair: int, kind: str) -> PointSet:
    """Construct ``P_00(i)`` or ``P_11(i)`` over the points ``1..n``.

    Parameters
    ----------
    n:
        Even input size.
    anomaly_pair:
        The pair index ``i`` in ``[1, n/2]``.
    kind:
        ``"00"`` (both points of pair ``i`` labeled 0) or ``"11"``.
    """
    _check_even(n)
    if not 1 <= anomaly_pair <= n // 2:
        raise ValueError(f"anomaly_pair must be in [1, {n // 2}]; got {anomaly_pair}")
    if kind not in ("00", "11"):
        raise ValueError(f"kind must be '00' or '11'; got {kind!r}")
    values = np.arange(1, n + 1, dtype=float).reshape(-1, 1)
    labels = np.where(np.arange(1, n + 1) % 2 == 1, 1, 0).astype(np.int8)
    if kind == "00":
        labels[2 * anomaly_pair - 2] = 0  # point 2i-1 (0-indexed)
    else:
        labels[2 * anomaly_pair - 1] = 1  # point 2i
    return PointSet(values, labels)


def adversarial_family(n: int) -> List[Tuple[str, int, PointSet]]:
    """The full family ``𝒫`` as ``(kind, pair index, input)`` triples."""
    _check_even(n)
    family = []
    for i in range(1, n // 2 + 1):
        family.append(("00", i, adversarial_input(n, i, "00")))
    for i in range(1, n // 2 + 1):
        family.append(("11", i, adversarial_input(n, i, "11")))
    return family


def optimal_error_of_family_input(n: int) -> int:
    """Optimal error of every input in the family: ``n/2 - 1`` (Section 6.1).

    Each normal pair forces at least one mistake on any monotone classifier,
    while all-0 (for a 00-input) or all-1 (for a 11-input) achieves exactly
    ``n/2 - 1``.
    """
    _check_even(n)
    return n // 2 - 1


@dataclass(frozen=True)
class DeterministicPairProber:
    """The Section 6.2 model of an (empowered) deterministic algorithm.

    Probes pairs in a predetermined order.  Probing pair ``i`` reveals both
    labels of ``(2i-1, 2i)`` — the proof's free-label empowerment — at a
    cost equal to the number of pairs probed so far.  The run stops the
    moment an anomaly pair is caught (the algorithm then knows the input
    exactly and answers optimally); if the sequence is exhausted without an
    anomaly, a fixed fallback classifier is returned.
    """

    probe_sequence: Tuple[int, ...]
    fallback: MonotoneClassifier

    def __post_init__(self) -> None:
        if len(set(self.probe_sequence)) != len(self.probe_sequence):
            raise ValueError("probe sequence must not repeat pairs")

    def run(self, n: int, kind: str, anomaly_pair: int) -> Tuple[int, bool]:
        """Execute on one family input.

        Returns ``(probes, errs)`` where ``probes`` counts probed *pairs*
        and ``errs`` is True when the returned classifier is non-optimal.
        """
        _check_even(n)
        for position, pair in enumerate(self.probe_sequence, start=1):
            if not 1 <= pair <= n // 2:
                raise ValueError(f"probe sequence references invalid pair {pair}")
            if pair == anomaly_pair:
                # Anomaly caught: the algorithm can answer optimally.
                return position, False
        # Sequence exhausted: the fixed fallback must serve this input.
        points = adversarial_input(n, anomaly_pair, kind)
        errs = error_count(points, self.fallback) > optimal_error_of_family_input(n)
        return len(self.probe_sequence), errs


@dataclass(frozen=True)
class FamilyEvaluation:
    """Aggregated performance of an algorithm over the whole family ``𝒫``."""

    n: int
    nonoptcnt: int
    totalcost: int
    per_input: Tuple[Tuple[str, int, int, bool], ...]  # (kind, pair, cost, errs)


def evaluate_on_family(prober: DeterministicPairProber, n: int) -> FamilyEvaluation:
    """Run a deterministic pair-prober on every input of ``𝒫``.

    ``totalcost`` counts *point* probes: probing a pair reveals two labels
    but, as in the proof, is charged as the number of pairs inspected —
    multiplied by 2 to express it in point probes.  We keep the proof's
    pair-granularity accounting (cost = pairs probed) because Lemma 19's
    closed form ``nℓ - ℓ² - ℓ`` is stated in those units (it already sums
    the factor-2 over the two inputs sharing each anomaly pair).
    """
    _check_even(n)
    nonoptcnt = 0
    totalcost = 0
    records = []
    for kind, pair, _points in adversarial_family(n):
        cost, errs = prober.run(n, kind, pair)
        nonoptcnt += int(errs)
        totalcost += cost
        records.append((kind, pair, cost, errs))
    return FamilyEvaluation(n, nonoptcnt, totalcost, tuple(records))


@dataclass(frozen=True)
class RandomizedPairProber:
    """A randomized algorithm as a distribution over deterministic probers.

    Corollary 20 (proof in Appendix D) treats a randomized algorithm as a
    random variable over deterministic algorithms and averages.  This
    class implements that view: a finite mixture of
    :class:`DeterministicPairProber` with given probabilities, whose
    expected ``nonoptcnt`` / ``totalcost`` over the family are exact
    mixture averages (no sampling noise).
    """

    probers: Tuple[DeterministicPairProber, ...]
    probabilities: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.probers) != len(self.probabilities):
            raise ValueError("probers and probabilities must align")
        if not self.probers:
            raise ValueError("mixture must be non-empty")
        if any(p < 0 for p in self.probabilities):
            raise ValueError("probabilities must be non-negative")
        total = sum(self.probabilities)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"probabilities must sum to 1; got {total}")

    def expected_performance(self, n: int) -> Tuple[float, float]:
        """``(E[nonoptcnt], E[totalcost])`` over the family ``P``."""
        expected_nonopt = 0.0
        expected_cost = 0.0
        for prober, probability in zip(self.probers, self.probabilities):
            evaluation = evaluate_on_family(prober, n)
            expected_nonopt += probability * evaluation.nonoptcnt
            expected_cost += probability * evaluation.totalcost
        return expected_nonopt, expected_cost

    def verify_corollary20(self, n: int) -> bool:
        """Check Corollary 20's implication on this mixture.

        If ``E[nonoptcnt] <= n/3`` then ``E[totalcost]`` must be
        ``Omega(n^2)``; we check the concrete constant from the proof
        chain (probability >= 1/6 of an accurate prober, each paying at
        least the Lemma 19 floor ``n^2 (1 - c^2) / 8`` with c = 4/5).
        """
        expected_nonopt, expected_cost = self.expected_performance(n)
        if expected_nonopt > n / 3:
            return True  # hypothesis not met; nothing to check
        floor = (1.0 / 6.0) * (n * n * (1 - (4 / 5) ** 2) / 8.0)
        return expected_cost >= floor


def theoretical_totalcost(n: int, num_probed_pairs: int) -> int:
    """Lemma 19's closed-form total cost for a prober of length ``ℓ``.

    Derivation (Section 6.2): the prober pays ``ℓ`` on both inputs of every
    un-probed pair — ``2ℓ(n/2 - ℓ)`` total — and ``j`` on both inputs of the
    ``j``-th probed pair — ``2 Σ j = ℓ(ℓ+1)``.  Summing gives
    ``nℓ - ℓ² + ℓ``; the paper prints ``nℓ - ℓ² - ℓ`` in eq. (34), an
    apparent sign slip in the last term that does not affect the Ω(n²)
    conclusion.  We return the exact sum so the simulation matches it to
    the unit (verified by tests and experiment E8).
    """
    _check_even(n)
    ell = num_probed_pairs
    if not 0 <= ell <= n // 2:
        raise ValueError(f"num_probed_pairs must be in [0, {n // 2}]; got {ell}")
    return n * ell - ell * ell + ell


def theoretical_nonoptcnt_lower_bound(n: int, num_probed_pairs: int) -> int:
    """Eq. (33): a prober of length ``ℓ`` errs on at least ``n/2 - ℓ`` inputs."""
    _check_even(n)
    return max(0, n // 2 - num_probed_pairs)
