"""Result validation and optimality certificates.

Production deployments of an optimizer want machine-checkable evidence,
not trust.  This module audits the outputs of the paper's algorithms:

* :func:`audit_passive_result` — checks a Theorem 4 result end to end:
  the assignment is monotone (Lemma 16), achieves the reported weighted
  error (Lemma 17 equality with the min-cut value), the classifier's
  monotone extension agrees with the assignment, and LP-duality-style
  lower bounds certify optimality via vertex-disjoint conflicting pairs;
* :func:`audit_active_result` — checks a Theorem 2/3 result: probes were
  charged correctly, Σ labels match the oracle cache, the classifier is
  the Σ-optimal one, and its true error respects ``(1 + eps) k*`` when
  the exact optimum is supplied;
* :func:`conflict_matching_lower_bound` — a *certificate of near-
  optimality* anyone can verify in polynomial time: a maximum matching of
  conflicting (label-0 dominates label-1) pairs; every monotone classifier
  must misclassify at least one point of each matched pair, so the sum of
  per-pair minimum weights lower-bounds ``k*``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..poset.matching import hopcroft_karp
from .active import ActiveResult
from .classifier import is_monotone_assignment
from .errors import prediction_weighted_error, weighted_error
from .oracle import LabelOracle
from .passive import PassiveResult
from .points import PointSet

__all__ = [
    "AuditReport",
    "audit_passive_result",
    "audit_active_result",
    "conflict_matching_lower_bound",
]


@dataclass
class AuditReport:
    """Outcome of an audit: a list of named checks with pass/fail."""

    checks: List[str] = field(default_factory=list)
    failures: List[str] = field(default_factory=list)

    def record(self, name: str, passed: bool) -> None:
        """Record one check result."""
        self.checks.append(name)
        if not passed:
            self.failures.append(name)

    @property
    def ok(self) -> bool:
        """True when every check passed."""
        return not self.failures

    def raise_on_failure(self) -> None:
        """Raise ``AssertionError`` listing the failed checks, if any."""
        if self.failures:
            raise AssertionError(f"audit failed: {', '.join(self.failures)}")

    def __repr__(self) -> str:
        return (f"AuditReport(checks={len(self.checks)}, "
                f"failures={self.failures or 'none'})")


def conflict_matching_lower_bound(points: PointSet) -> float:
    """A verifiable lower bound on the optimal weighted error ``k*``.

    Build the bipartite conflict graph (label-0 point -> label-1 point it
    weakly dominates) and take a maximum matching.  The matched pairs are
    vertex-disjoint, and any monotone classifier must misclassify at least
    one endpoint of each; summing each pair's lighter endpoint therefore
    lower-bounds ``w-err`` of every monotone classifier.

    For unit weights this bound is *tight* (König: max matching equals the
    min vertex cover of the conflict graph, which is exactly the min-cut
    optimum when all type-1/2 capacities are 1).  With general weights it
    may be loose but is always sound.
    """
    points.require_full_labels()
    zeros = np.flatnonzero(points.labels == 0)
    ones = np.flatnonzero(points.labels == 1)
    if len(zeros) == 0 or len(ones) == 0:
        return 0.0
    weak = points.weak_dominance_matrix()
    conflict = weak[np.ix_(zeros, ones)]
    adjacency = [np.flatnonzero(conflict[i]).tolist() for i in range(len(zeros))]
    matching = hopcroft_karp(adjacency, len(ones))
    total = 0.0
    for left, right in matching.pairs():
        total += min(float(points.weights[zeros[left]]),
                     float(points.weights[ones[right]]))
    return total


def audit_passive_result(points: PointSet, result: PassiveResult) -> AuditReport:
    """Machine-check a Theorem 4 result against the paper's lemmas."""
    report = AuditReport()
    report.record(
        "assignment is monotone (Lemma 16)",
        is_monotone_assignment(points, result.assignment),
    )
    achieved = prediction_weighted_error(points.labels, result.assignment,
                                         points.weights)
    report.record(
        "assignment achieves reported error",
        abs(achieved - result.optimal_error) <= 1e-6 * max(1.0, achieved),
    )
    report.record(
        "reported error equals min-cut value (Lemma 17)",
        abs(result.optimal_error - result.flow_value)
        <= 1e-6 * max(1.0, result.flow_value),
    )
    extension = result.classifier.classify_set(points)
    report.record(
        "classifier extension agrees with assignment",
        bool((extension == result.assignment).all()),
    )
    lower = conflict_matching_lower_bound(points)
    report.record(
        "matching lower bound <= reported optimum",
        lower <= result.optimal_error + 1e-6 * max(1.0, lower),
    )
    if points.n > 0 and bool(np.all(points.weights == points.weights[0])):
        # Unit(-like) weights: the matching bound is tight (König duality).
        unit = points.weights[0]
        report.record(
            "matching bound tight under uniform weights (König)",
            abs(lower - result.optimal_error) <= 1e-6 * max(1.0, unit),
        )
    return report


def audit_active_result(points: PointSet, result: ActiveResult,
                        oracle: LabelOracle,
                        true_optimum: Optional[float] = None) -> AuditReport:
    """Machine-check a Theorem 2/3 result and its accounting."""
    report = AuditReport()
    indices, weights, labels = result.sigma.arrays()
    report.record(
        "probing cost covers every Sigma point",
        result.probing_cost >= len(indices),
    )
    report.record(
        "Sigma labels match the oracle's revealed labels",
        all(oracle.peek(int(i)) == int(label)
            for i, label in zip(indices, labels)),
    )
    report.record(
        "Sigma weights are positive",
        bool((weights > 0).all()),
    )
    sigma_err = weighted_error(result.sigma_points, result.classifier)
    report.record(
        "classifier achieves reported Sigma error",
        abs(sigma_err - result.sigma_error) <= 1e-6 * max(1.0, sigma_err),
    )
    report.record(
        "chain count covers all points",
        sum(result.chain_sizes) == points.n,
    )
    # Section 3.5 telescoping: each level of the 1-D recursion contributes
    # weight |P \ P'| (or |P| at the base / no-window levels), so the total
    # Sigma weight per chain equals the chain length, and overall equals n.
    report.record(
        "Sigma total weight telescopes to n (Lemma 13 accounting)",
        abs(result.sigma.total_weight - points.n) <= 1e-6 * max(1.0, points.n),
    )
    if true_optimum is not None and not points.has_hidden_labels:
        from .errors import error_count

        achieved = error_count(points, result.classifier)
        report.record(
            f"error within (1 + eps) of optimum "
            f"({achieved} vs {(1 + result.epsilon) * true_optimum:.1f})",
            achieved <= (1 + result.epsilon) * true_optimum + 1e-9,
        )
    return report
