"""Oracles backed by user-supplied labeling functions.

:class:`~repro.core.oracle.LabelOracle` needs the full ground truth up
front, which suits experiments.  Real deployments get labels from a
*labeling function* — a human queue, a costly model, an external service.
:class:`CallbackOracle` adapts any ``coords -> label`` callable to the
probing interface the active algorithms use (probe / peek / cost /
budget), with the same charge-per-distinct-point accounting.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..obs import recorder
from .oracle import OracleShard, ProbeBudgetExceeded, _absorb_probes
from .points import HIDDEN, PointSet

__all__ = ["CallbackOracle"]


class CallbackOracle:
    """Adapts a labeling callable to the probing-oracle interface.

    Parameters
    ----------
    points:
        The (hidden-label) point set the indices refer to; the callback
        receives the *coordinates* of the probed point.
    labeler:
        ``callable(coords) -> int`` returning 0 or 1.  Called at most once
        per distinct index; results are cached.
    budget:
        Optional cap on distinct labeled points.
    """

    def __init__(self, points: PointSet,
                 labeler: Callable[[Sequence[float]], int],
                 budget: Optional[int] = None) -> None:
        self._points = points
        self._labeler = labeler
        self.budget = budget
        self._revealed: Dict[int, int] = {}
        self._log: List[int] = []

    def probe(self, index: int) -> int:
        """Label point ``index`` via the callback (cached, budgeted)."""
        index = int(index)
        if not 0 <= index < self._points.n:
            raise IndexError(f"point index {index} out of range")
        self._log.append(index)
        rec = recorder()
        if rec.enabled:
            rec.incr("oracle.requests")
        if index in self._revealed:
            if rec.enabled:
                rec.incr("oracle.dedup_hits")
            return self._revealed[index]
        if self.budget is not None and len(self._revealed) >= self.budget:
            if rec.enabled:
                rec.incr("oracle.budget_exceeded")
            raise ProbeBudgetExceeded(
                f"labeling budget of {self.budget} distinct points exhausted")
        label = int(self._labeler(tuple(float(c) for c in self._points.coords[index])))
        if label not in (0, 1):
            raise ValueError(
                f"labeler returned {label!r} for point {index}; expected 0 or 1")
        self._revealed[index] = label
        if rec.enabled:
            rec.incr("oracle.probes")
            if self.budget is not None:
                rec.gauge("oracle.budget_remaining",
                          self.budget - len(self._revealed))
        return label

    def probe_many(self, indices: Iterable[int]) -> List[int]:
        """Probe a sequence of points, returning their labels in order."""
        return [self.probe(i) for i in indices]

    def peek(self, index: int) -> Optional[int]:
        """Return a cached label without charging, or ``None``."""
        return self._revealed.get(int(index))

    @property
    def cost(self) -> int:
        """Distinct points labeled so far."""
        return len(self._revealed)

    @property
    def probes_used(self) -> int:
        """Alias of :attr:`cost`, mirroring :class:`LabelOracle`."""
        return len(self._revealed)

    @property
    def total_requests(self) -> int:
        """All probe calls, including cached repeats."""
        return len(self._log)

    @property
    def revealed_indices(self) -> List[int]:
        """Indices labeled so far (insertion order)."""
        return list(self._revealed.keys())

    def revealed_labels(self, n: int) -> np.ndarray:
        """Label vector with un-labeled entries = ``HIDDEN``."""
        out = np.full(n, HIDDEN, dtype=np.int8)
        for idx, label in self._revealed.items():
            out[idx] = label
        return out

    def remaining_budget(self) -> Optional[int]:
        """Distinct labelings still allowed, or ``None`` if unbudgeted."""
        if self.budget is None:
            return None
        return max(0, self.budget - self.cost)

    def restore(self, revealed: Dict[int, int]) -> int:
        """Re-seed already-paid labels from a crash-safe probe journal.

        Unlike :meth:`repro.core.oracle.LabelOracle.restore` there is no
        ground truth to validate against — the journal *is* the record of
        what the labeler answered, and re-invoking the labeler to check
        would re-pay the very cost resuming exists to avoid.  Entries
        already cached are skipped; returns the number newly restored.
        """
        restored = 0
        for index, label in revealed.items():
            index, label = int(index), int(label)
            if not 0 <= index < self._points.n:
                raise IndexError(f"point index {index} out of range")
            if label not in (0, 1):
                raise ValueError(
                    f"journaled label {label!r} for point {index}; expected 0 or 1")
            if index in self._revealed:
                continue
            self._revealed[index] = label
            restored += 1
        return restored

    # ------------------------------------------------------------------
    # Parallel sharding
    # ------------------------------------------------------------------

    def shard(self, indices: Sequence[int],
              budget: Optional[int] = None) -> OracleShard:
        """A picklable shard serving only ``indices`` (for worker processes).

        The shard ships the labeling callable together with the coordinates
        of its indices, so the callable itself must be picklable (a
        module-level function or a picklable callable object; lambdas and
        closures are not).  Labels the parent already cached travel along
        and stay free shard-side.  Budgets are enforced by the parent at
        :meth:`absorb` time, not in the worker, unless ``budget=`` adds a
        shard-local cap on new charges.
        """
        coords: Dict[int, tuple] = {}
        preknown: Dict[int, int] = {}
        for index in indices:
            index = int(index)
            if not 0 <= index < self._points.n:
                raise IndexError(f"point index {index} out of range")
            coords[index] = tuple(float(c) for c in self._points.coords[index])
            if index in self._revealed:
                preknown[index] = self._revealed[index]
        return OracleShard(labeler=self._labeler, coords=coords,
                           preknown=preknown, budget=budget)

    def absorb(self, shard_log: Sequence[int], shard_revealed: Dict[int, int]) -> None:
        """Merge a shard's probes back without re-invoking the labeler.

        The shard already paid the labeling calls; absorbing only records
        the results, extends the log, and charges the budget (raising
        :class:`~repro.core.oracle.ProbeBudgetExceeded` on overflow with
        the budget exactly exhausted).
        """
        _absorb_probes(self._revealed, self._log, self.budget,
                       shard_log, shard_revealed)
        rec = recorder()
        if rec.enabled and self.budget is not None:
            rec.gauge("oracle.budget_remaining",
                      self.budget - len(self._revealed))

    def __repr__(self) -> str:
        return (f"CallbackOracle(n={self._points.n}, cost={self.cost}, "
                f"budget={self.budget})")
