"""Retry policies, circuit breaking, and label reconciliation.

:class:`ResilientOracle` is the recovery half of the resilience layer: it
wraps a (possibly faulty) probing oracle and turns transient failures into
successful probes via bounded retries with exponential backoff, trips a
:class:`CircuitBreaker` into degraded mode when the oracle looks down, and
reconciles disagreeing re-probes by majority vote.

Determinism: backoff jitter is derived from ``(seed, index, attempt)`` —
never from wall-clock or a shared RNG stream — and by default delays are
*recorded but not slept* (``RetryPolicy.sleep=False``), so tests and chaos
experiments run at full speed and reproduce exactly.  The breaker counts
events, not seconds, for the same reason.
"""

from __future__ import annotations

from collections import Counter as _Counter
from dataclasses import dataclass
from time import sleep as _sleep
from typing import Any, Optional, Sequence

import numpy as np

from ..obs import recorder
from .errors import (
    CircuitOpenError,
    OraclePermanentError,
    OracleTransientError,
    ProbeRetriesExhausted,
)
from .wrappers import OracleWrapper

__all__ = ["RetryPolicy", "CircuitBreaker", "ResilientOracle"]

_JITTER_TAG = 0xB0FF


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try before declaring a probe failed.

    Parameters
    ----------
    max_attempts:
        Total attempts per probe (first try included); must be >= 1.
    base_delay, multiplier, max_delay:
        Exponential backoff: attempt ``k`` (1-based) waits
        ``min(base_delay * multiplier**(k-1), max_delay)`` scaled by
        deterministic jitter.
    jitter:
        Fraction of the delay randomized away, in ``[0, 1]``: the waited
        delay is ``delay * (1 - jitter * u)`` with ``u`` drawn from a
        stream keyed on ``(seed, index, attempt)``.
    timeout:
        Per-probe deadline in seconds, enforced by the fault model (and by
        real oracles that support deadlines); ``None`` disables it.
    votes:
        Re-probes per successful read for majority-vote reconciliation of
        flip-prone oracles; must be odd.  1 (default) disables it.
    sleep:
        Whether backoff delays are actually slept.  Off by default:
        delays are always *recorded* (``resilience.backoff_seconds``) but
        only a production deployment should pay them in wall-clock.
    seed:
        Roots the jitter stream.
    """

    max_attempts: int = 3
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.5
    timeout: Optional[float] = None
    votes: int = 1
    sleep: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1; got {self.max_attempts}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1]; got {self.jitter}")
        if self.votes < 1 or self.votes % 2 == 0:
            raise ValueError(f"votes must be odd and >= 1; got {self.votes}")
        if self.base_delay < 0 or self.max_delay < 0 or self.multiplier < 1.0:
            raise ValueError("backoff parameters must be non-negative "
                             "(multiplier >= 1)")

    def delay_for(self, index: int, attempt: int) -> float:
        """Deterministic backoff delay before retry ``attempt`` (1-based)."""
        raw = min(self.base_delay * self.multiplier ** (attempt - 1),
                  self.max_delay)
        if raw <= 0.0 or self.jitter == 0.0:
            return raw
        seq = np.random.SeedSequence(
            [self.seed & 0xFFFFFFFF, int(index), int(attempt), _JITTER_TAG]
        )
        u = float(np.random.default_rng(seq).random())
        return raw * (1.0 - self.jitter * u)


class CircuitBreaker:
    """Consecutive-failure circuit breaker with event-counted recovery.

    States: *closed* (probes flow), *open* (probes rejected with
    :class:`CircuitOpenError`), *half-open* (one trial probe allowed).
    The breaker opens after ``threshold`` consecutive failures; after
    ``cooldown`` rejected probes it lets one trial through — success
    closes it, failure re-opens it.  Cooldown counts *events*, not
    seconds, so breaker behavior is reproducible in tests.

    The breaker is process-local: parallel workers each get a fresh one
    (shipped inside their shard), so a worker tripping cannot poison its
    siblings.
    """

    def __init__(self, threshold: int = 5, cooldown: int = 8) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1; got {threshold}")
        if cooldown < 1:
            raise ValueError(f"cooldown must be >= 1; got {cooldown}")
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = "closed"
        self.trips = 0
        self._consecutive_failures = 0
        self._rejected_since_open = 0

    def clone_fresh(self) -> "CircuitBreaker":
        """A new breaker with the same configuration and pristine state."""
        return CircuitBreaker(self.threshold, self.cooldown)

    def before_call(self) -> None:
        """Gate an attempt; raises :class:`CircuitOpenError` while open."""
        if self.state == "open":
            self._rejected_since_open += 1
            if self._rejected_since_open >= self.cooldown:
                self.state = "half-open"
                return  # let this trial attempt through
            raise CircuitOpenError(
                f"circuit breaker open after {self.trips} trip(s); "
                f"{self.cooldown - self._rejected_since_open} rejection(s) "
                "until half-open trial"
            )

    def record_success(self) -> None:
        self._consecutive_failures = 0
        if self.state != "closed":
            self.state = "closed"

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        if self.state == "half-open" or (
            self.state == "closed"
            and self._consecutive_failures >= self.threshold
        ):
            self.state = "open"
            self._rejected_since_open = 0
            self.trips += 1
            rec = recorder()
            if rec.enabled:
                rec.incr("resilience.breaker_trips")

    def __repr__(self) -> str:
        return (f"CircuitBreaker(state={self.state!r}, trips={self.trips}, "
                f"threshold={self.threshold}, cooldown={self.cooldown})")


class ResilientOracle(OracleWrapper):
    """Retry / breaker / reconciliation wrapper over a probing oracle.

    ``probe`` retries transient failures per the policy (permanent errors
    and budget overruns propagate immediately), records every retry and
    backoff delay, and — when ``policy.votes > 1`` — reads each label
    ``votes`` times and returns the majority, reconciling flip-prone
    oracles.  When retries are exhausted,
    :class:`~repro.resilience.errors.ProbeRetriesExhausted` is raised with
    the final failure chained.
    """

    def __init__(self, inner: Any, policy: RetryPolicy,
                 breaker: Optional[CircuitBreaker] = None) -> None:
        super().__init__(inner)
        self.policy = policy
        self.breaker = breaker
        self.retries = 0
        self.reconciliations = 0

    # ------------------------------------------------------------------

    def _probe_once(self, index: int) -> int:
        policy = self.policy
        breaker = self.breaker
        rec = recorder()
        last_error: Optional[Exception] = None
        for attempt in range(1, policy.max_attempts + 1):
            if breaker is not None:
                breaker.before_call()
            try:
                if attempt > 1 and rec.enabled:
                    # Retries appear as *sibling* spans on the timeline —
                    # retry[2], retry[3], ... under the phase that probed —
                    # so a trace shows exactly where wall-clock went to
                    # fault recovery.  First attempts stay span-free: the
                    # hot path must not pay tracing for healthy probes.
                    with rec.span(f"retry[{attempt}]") as span:
                        span.set_attr("index", index)
                        span.set_attr("attempt", attempt)
                        label = self._inner.probe(index)
                else:
                    label = self._inner.probe(index)
            except OraclePermanentError:
                if breaker is not None:
                    breaker.record_failure()
                raise
            except OracleTransientError as exc:
                if breaker is not None:
                    breaker.record_failure()
                last_error = exc
                if attempt >= policy.max_attempts:
                    break
                delay = policy.delay_for(index, attempt)
                self.retries += 1
                if rec.enabled:
                    rec.incr("resilience.retries")
                    rec.record_time("resilience.backoff_seconds", delay)
                if policy.sleep and delay > 0.0:
                    _sleep(delay)
                continue
            if breaker is not None:
                breaker.record_success()
            return label
        raise ProbeRetriesExhausted(
            index, policy.max_attempts, str(last_error or "")
        ) from last_error

    def probe(self, index: int) -> int:
        """Probe with retries; majority vote when ``votes > 1``."""
        index = int(index)
        votes = self.policy.votes
        if votes == 1:
            return self._probe_once(index)
        readings = [self._probe_once(index) for _ in range(votes)]
        tally = _Counter(readings)
        if len(tally) > 1:
            self.reconciliations += 1
            rec = recorder()
            if rec.enabled:
                rec.incr("resilience.reconciliations")
        return tally.most_common(1)[0][0]

    # ------------------------------------------------------------------

    def shard(self, indices: Sequence[int],
              budget: Optional[int] = None) -> "ResilientOracle":
        """A worker-side shard with the policy re-applied (fresh breaker)."""
        breaker = self.breaker.clone_fresh() if self.breaker is not None else None
        return ResilientOracle(
            self._inner.shard(indices, budget=budget), self.policy, breaker
        )

    def __repr__(self) -> str:
        return (f"ResilientOracle({self._inner!r}, retries={self.retries}, "
                f"breaker={self.breaker!r})")
