"""Forwarding base class for oracle decorators.

Every resilience feature is an *oracle wrapper*: it sits in front of any
:class:`~repro.core.oracle.ProbeOracle` (including another wrapper) and
intercepts :meth:`probe` while forwarding the rest of the surface the
pipeline relies on — accounting (``cost``, ``log``), cached reads
(``peek``), parallel sharding (``shard`` / ``absorb`` / ``new_revealed``),
and checkpoint restore.  Wrappers therefore compose freely::

    JournaledOracle(ResilientOracle(FaultyOracle(LabelOracle(truth))))

and the whole stack still satisfies the probing protocol, shards for
worker processes, and keeps the inner oracle's charge accounting exact.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

__all__ = ["OracleWrapper"]


class OracleWrapper:
    """Transparent decorator around a probing oracle.

    Subclasses override :meth:`probe` (and usually :meth:`shard`, so the
    wrapper re-applies itself around worker-side shards).  Everything else
    forwards to the wrapped oracle; attributes the inner oracle does not
    provide raise ``AttributeError`` exactly as they would have unwrapped.
    """

    def __init__(self, inner: Any) -> None:
        self._inner = inner

    # ------------------------------------------------------------------
    # Probing surface
    # ------------------------------------------------------------------

    @property
    def inner(self) -> Any:
        """The wrapped oracle (possibly itself a wrapper)."""
        return self._inner

    def probe(self, index: int) -> int:
        """Reveal the label of ``index`` (subclasses intercept here)."""
        return self._inner.probe(index)

    def probe_many(self, indices: Iterable[int]) -> List[int]:
        """Probe a sequence of points through this wrapper's :meth:`probe`."""
        return [self.probe(i) for i in indices]

    def peek(self, index: int) -> Optional[int]:
        """Return an already-revealed label without probing (never faulted)."""
        return self._inner.peek(index)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def cost(self) -> int:
        """Distinct points charged by the wrapped oracle."""
        return self._inner.cost

    @property
    def total_requests(self) -> int:
        return self._inner.total_requests

    @property
    def log(self) -> List[int]:
        return self._inner.log

    @property
    def new_revealed(self) -> Dict[int, int]:
        """Shard-side: labels first revealed here (for ``absorb``)."""
        return self._inner.new_revealed

    @property
    def budget(self) -> Optional[int]:
        return getattr(self._inner, "budget", None)

    def remaining_budget(self) -> Optional[int]:
        return self._inner.remaining_budget()

    # ------------------------------------------------------------------
    # Sharding and checkpoint restore
    # ------------------------------------------------------------------

    def shard(self, indices: Sequence[int], budget: Optional[int] = None) -> Any:
        """A worker-side shard (subclasses re-wrap to keep their behavior)."""
        return self._inner.shard(indices, budget=budget)

    def absorb(self, shard_log: Sequence[int], shard_revealed: Dict[int, int]) -> None:
        self._inner.absorb(shard_log, shard_revealed)

    def restore(self, revealed: Dict[int, int]) -> int:
        """Re-seed already-paid reveals (checkpoint resume); see oracles."""
        return self._inner.restore(revealed)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self._inner!r})"
