"""Crash-safe probe journaling and active-run checkpoints.

Probes are the *paid* resource of the active setting, so the crash-safety
invariant is "never re-pay a probe".  Two artifacts deliver it:

* **Probe journal** — an append-only JSONL file recording every *newly
  charged* reveal ``{"i": index, "l": label}`` as it happens (flushed and
  fsynced per line).  :class:`JournaledOracle` writes it transparently in
  front of any oracle; :func:`replay_journal` re-seeds a fresh oracle
  from it, making already-paid probes free dedup hits on resume.  A
  truncated final line (crash mid-write) is tolerated on load.
* **Checkpoint snapshot** — a JSON document (written with
  :func:`repro._util.atomic_write_json`, so it is never observed
  half-written) holding the run's identity metadata plus the ``Σ_i``
  weighted samples of completed chains, letting a resumed
  ``active_classify`` skip their recomputation entirely.

A resumed run replays the journal, restores completed chains from the
snapshot, and re-executes only the remainder with the same spawned seeds
— total charged probes across crash + resume equal a single uninterrupted
run, which ``tests/test_chaos_pipeline.py`` pins.

The crash window is one probe wide: a process killed *between* the inner
oracle charging and the journal append re-pays exactly that probe on
resume.  Closing it would need the oracle itself to be transactional.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Tuple

from .._util import PathLike, atomic_write_json
from ..obs import recorder
from .wrappers import OracleWrapper

__all__ = [
    "JournaledOracle",
    "ActiveCheckpoint",
    "journal_path",
    "read_journal",
    "replay_journal",
    "save_active_checkpoint",
    "load_active_checkpoint",
]


def journal_path(checkpoint: PathLike) -> Path:
    """The probe-journal path paired with a checkpoint file."""
    checkpoint = Path(checkpoint)
    return checkpoint.with_name(checkpoint.name + ".journal")


class JournaledOracle(OracleWrapper):
    """Appends every newly charged reveal to a crash-safe journal.

    Wrap the *outermost* oracle of a stack: a reveal is journaled exactly
    when the wrapped oracle's ``cost`` increases, so retries, dedup hits,
    and failed attempts never write spurious entries.  Worker-side shards
    are served by the inner oracle unchanged — their probes are journaled
    when the parent absorbs them (in deterministic chain order).
    """

    def __init__(self, inner: Any, path: PathLike,
                 meta: Optional[Dict[str, Any]] = None) -> None:
        super().__init__(inner)
        self._path = Path(path)
        self.appends = 0
        fresh = not self._path.exists() or self._path.stat().st_size == 0
        self._handle = open(self._path, "a", encoding="utf-8")
        if fresh and meta is not None:
            self._write_line({"meta": meta})

    # ------------------------------------------------------------------

    def _write_line(self, payload: Dict[str, Any]) -> None:
        self._handle.write(json.dumps(payload, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def _journal(self, index: int, label: int) -> None:
        self._write_line({"i": int(index), "l": int(label)})
        self.appends += 1
        rec = recorder()
        if rec.enabled:
            rec.incr("resilience.journal_appends")

    def probe(self, index: int) -> int:
        before = self._inner.cost
        label = self._inner.probe(index)
        if self._inner.cost > before:
            self._journal(index, label)
        return label

    def absorb(self, shard_log: Sequence[int],
               shard_revealed: Dict[int, int]) -> None:
        """Absorb a shard, journaling the reveals that were newly charged."""
        fresh = {
            int(i): int(label)
            for i, label in shard_revealed.items()
            if self._inner.peek(int(i)) is None
        }
        self._inner.absorb(shard_log, shard_revealed)
        for index, label in fresh.items():
            self._journal(index, label)

    def close(self) -> None:
        """Close the journal file handle (idempotent)."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "JournaledOracle":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"JournaledOracle({self._inner!r}, path={str(self._path)!r}, "
                f"appends={self.appends})")


def read_journal(path: PathLike) -> Tuple[Optional[Dict[str, Any]], Dict[int, int]]:
    """Load ``(meta, revealed)`` from a probe journal.

    Malformed trailing lines (a crash mid-append) are skipped; malformed
    lines in the middle of the file are an error, because they mean the
    journal was edited or corrupted rather than merely truncated.
    """
    path = Path(path)
    meta: Optional[Dict[str, Any]] = None
    revealed: Dict[int, int] = {}
    if not path.exists():
        return meta, revealed
    lines = path.read_text(encoding="utf-8").splitlines()
    for lineno, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            if lineno == len(lines) - 1:
                break  # torn final append — expected crash artifact
            raise ValueError(
                f"corrupt probe journal {path}: bad line {lineno + 1}"
            ) from None
        if "meta" in entry:
            meta = entry["meta"]
        else:
            revealed[int(entry["i"])] = int(entry["l"])
    return meta, revealed


def replay_journal(path: PathLike, oracle: Any,
                   expect_meta: Optional[Dict[str, Any]] = None) -> int:
    """Re-seed ``oracle`` with a journal's reveals; returns the count restored.

    The oracle must expose ``restore`` (both
    :class:`~repro.core.oracle.LabelOracle` and
    :class:`~repro.core.callback_oracle.CallbackOracle` do); restored
    labels become free dedup hits, so the resumed run never re-pays them.
    ``expect_meta`` guards against resuming the wrong run: when both it
    and the journal's recorded meta are present, any disagreeing key is a
    :class:`ValueError` *before* a single label is restored.
    """
    meta, revealed = read_journal(path)
    if expect_meta is not None and meta is not None:
        clashes = {key: (meta.get(key), value)
                   for key, value in expect_meta.items()
                   if meta.get(key) != value}
        if clashes:
            raise ValueError(
                f"probe journal {Path(path)} belongs to a different "
                f"checkpointed run: {clashes}"
            )
    if not revealed:
        return 0
    restored = int(oracle.restore(revealed))
    rec = recorder()
    if rec.enabled and restored:
        rec.incr("resilience.restored_probes", restored)
    return restored


# ----------------------------------------------------------------------
# Active-run checkpoints
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ActiveCheckpoint:
    """Snapshot of an interrupted ``active_classify`` run.

    ``meta`` identifies the run (``n``, ``epsilon``, ``num_chains``, ...)
    so a resume against different inputs fails loudly instead of silently
    blending two runs; ``done_chains`` maps chain id to its completed
    weighted sample ``Σ_i`` as plain lists.
    """

    meta: Dict[str, Any]
    done_chains: Dict[int, Dict[str, list]] = field(default_factory=dict)

    def compatible_with(self, meta: Dict[str, Any]) -> bool:
        """Whether this checkpoint belongs to a run shaped like ``meta``."""
        return all(self.meta.get(key) == value for key, value in meta.items())


def save_active_checkpoint(path: PathLike, meta: Dict[str, Any],
                           done_chains: Dict[int, Dict[str, list]]) -> None:
    """Atomically write an :class:`ActiveCheckpoint` document."""
    atomic_write_json(path, {
        "kind": "repro.active_checkpoint",
        "meta": meta,
        "done_chains": {str(k): v for k, v in done_chains.items()},
    })
    rec = recorder()
    if rec.enabled:
        rec.incr("resilience.checkpoints_written")


def load_active_checkpoint(path: PathLike) -> Optional[ActiveCheckpoint]:
    """Load a checkpoint document, or ``None`` when absent."""
    path = Path(path)
    if not path.exists():
        return None
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("kind") != "repro.active_checkpoint":
        raise ValueError(f"{path} is not an active-run checkpoint")
    return ActiveCheckpoint(
        meta=dict(payload.get("meta", {})),
        done_chains={
            int(k): v for k, v in payload.get("done_chains", {}).items()
        },
    )
