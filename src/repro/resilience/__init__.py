"""repro.resilience — surviving flaky oracles, crashes, and kills.

The paper's active algorithms (Theorems 2-3) assume an oracle that never
fails; every realistic probe source — a human annotator queue, a
crowdsourcing API, a remote scoring service — is flaky, slow, and
occasionally wrong.  This subsystem makes the pipeline survive that
without losing paid-for probes:

* :mod:`.faults` — :class:`FaultyOracle`, a deterministic
  ``SeedSequence``-driven fault injector (transient errors, timeouts,
  latency, dead indices, label flips) for tests and chaos experiments;
* :mod:`.retry` — :class:`RetryPolicy` (bounded retries, exponential
  backoff with deterministic jitter), :class:`CircuitBreaker`, and
  :class:`ResilientOracle` with majority-vote reconciliation;
* :mod:`.checkpoint` — the crash-safe probe journal and
  :class:`JournaledOracle`, plus active-run checkpoints, so an
  interrupted run resumes without re-paying probes;
* :mod:`.runtime` — :class:`ResilienceConfig` (what the pipeline entry
  points accept), :func:`build_oracle_stack`, and :class:`RunReport`
  (what degraded runs return instead of raising);
* :mod:`.errors` — the failure taxonomy, including ``HALT_ERRORS``.

Everything is observable: the layer emits ``resilience.*`` counters
(``retries``, ``faults_injected``, ``breaker_trips``,
``checkpoints_written``, ...) into the ambient :mod:`repro.obs` session,
and is driveable from the CLI (``--retry-max``, ``--probe-timeout``,
``--checkpoint``, ``--resume``, ``--inject-faults``).  See
``docs/resilience.md`` for the fault model and guarantees.
"""

from .checkpoint import (
    ActiveCheckpoint,
    JournaledOracle,
    journal_path,
    load_active_checkpoint,
    read_journal,
    replay_journal,
    save_active_checkpoint,
)
from .errors import (
    HALT_ERRORS,
    CircuitOpenError,
    OraclePermanentError,
    OracleTimeoutError,
    OracleTransientError,
    ProbeRetriesExhausted,
    WorkerCrashError,
)
from .faults import FaultSpec, FaultyOracle
from .retry import CircuitBreaker, ResilientOracle, RetryPolicy
from .runtime import (
    OracleStack,
    ResilienceConfig,
    RunReport,
    build_oracle_stack,
)
from .wrappers import OracleWrapper

__all__ = [
    "ActiveCheckpoint",
    "CircuitBreaker",
    "CircuitOpenError",
    "FaultSpec",
    "FaultyOracle",
    "HALT_ERRORS",
    "JournaledOracle",
    "OraclePermanentError",
    "OracleStack",
    "OracleTimeoutError",
    "OracleTransientError",
    "OracleWrapper",
    "ProbeRetriesExhausted",
    "ResilienceConfig",
    "ResilientOracle",
    "RetryPolicy",
    "RunReport",
    "WorkerCrashError",
    "build_oracle_stack",
    "journal_path",
    "load_active_checkpoint",
    "read_journal",
    "replay_journal",
    "save_active_checkpoint",
]
