"""Run-level resilience wiring: configuration, oracle stacks, run reports.

:class:`ResilienceConfig` is the single object the pipeline entry points
(:func:`repro.core.active.active_classify`, the 1-D variant, and the CLI)
accept; :func:`build_oracle_stack` turns it plus a base oracle into the
composed wrapper stack::

    JournaledOracle( ResilientOracle( FaultyOracle( base ) ) )

with each layer present only when configured, and returns handles to every
layer so the caller can assemble a :class:`RunReport` — the structured
"what did resilience actually do" record that degraded runs return instead
of raising.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .._util import PathLike
from ..core.active_1d import WeightedSample
from .checkpoint import JournaledOracle, journal_path, replay_journal
from .faults import FaultSpec, FaultyOracle
from .retry import CircuitBreaker, ResilientOracle, RetryPolicy

__all__ = [
    "ResilienceConfig",
    "OracleStack",
    "RunReport",
    "build_oracle_stack",
    "sample_to_doc",
    "sample_from_doc",
]


@dataclass(frozen=True)
class ResilienceConfig:
    """Everything the pipeline needs to survive a flaky oracle.

    Parameters
    ----------
    retry:
        Retry/backoff/reconciliation policy; ``None`` disables retries
        (faults propagate on first failure).
    faults:
        Fault-injection spec for chaos runs; ``None`` injects nothing.
    breaker_threshold, breaker_cooldown:
        Circuit-breaker configuration; a ``breaker_threshold`` of 0
        (default) disables the breaker entirely.
    checkpoint:
        Path of the checkpoint snapshot; enables the probe journal at
        ``<checkpoint>.journal``.  ``None`` disables checkpointing.
    resume:
        Resume from ``checkpoint`` (replay the journal, skip completed
        chains) instead of starting fresh.
    degrade:
        On a halting failure (budget exhausted, retries exhausted, breaker
        open, dead point, worker crash) return a best-effort classifier
        plus a :class:`RunReport` instead of raising.
    shard_budgets:
        Give each worker shard a shard-local budget cap equal to the
        parent's remaining budget, so a crashed or misbehaving parent
        cannot over-spend through its workers.
    """

    retry: Optional[RetryPolicy] = None
    faults: Optional[FaultSpec] = None
    breaker_threshold: int = 0
    breaker_cooldown: int = 8
    checkpoint: Optional[PathLike] = None
    resume: bool = False
    degrade: bool = False
    shard_budgets: bool = False

    def make_breaker(self) -> Optional[CircuitBreaker]:
        """A fresh breaker per run (or ``None`` when disabled)."""
        if self.breaker_threshold <= 0:
            return None
        return CircuitBreaker(self.breaker_threshold, self.breaker_cooldown)


@dataclass
class OracleStack:
    """The composed wrapper stack plus handles to each layer."""

    base: Any
    oracle: Any
    faulty: Optional[FaultyOracle] = None
    resilient: Optional[ResilientOracle] = None
    journal: Optional[JournaledOracle] = None
    restored: int = 0

    def close(self) -> None:
        """Release resources (the journal file handle, if any)."""
        if self.journal is not None:
            self.journal.close()


def build_oracle_stack(
    oracle: Any,
    config: ResilienceConfig,
    journal_meta: Optional[Dict[str, Any]] = None,
) -> OracleStack:
    """Compose the configured wrappers around ``oracle``.

    Order matters and is fixed: fault injection innermost (it models the
    unreliable transport in front of the real label source), retries
    around it (they see the faults), the journal outermost (it records
    only probes that actually charged, after all retrying).  When
    ``config.resume`` is set the journal is replayed into the *base*
    oracle first, so already-paid probes are free before any work starts.
    """
    stack = OracleStack(base=oracle, oracle=oracle)
    effective = oracle
    if config.faults is not None and config.faults.active:
        timeout = config.retry.timeout if config.retry is not None else None
        stack.faulty = FaultyOracle(effective, config.faults, timeout=timeout)
        effective = stack.faulty
    if config.retry is not None:
        stack.resilient = ResilientOracle(
            effective, config.retry, config.make_breaker()
        )
        effective = stack.resilient
    if config.checkpoint is not None:
        path = journal_path(config.checkpoint)
        if config.resume:
            stack.restored = replay_journal(path, oracle,
                                            expect_meta=journal_meta)
        stack.journal = JournaledOracle(effective, path, meta=journal_meta)
        effective = stack.journal
    stack.oracle = effective
    return stack


@dataclass(frozen=True)
class RunReport:
    """Structured account of what the resilience layer did during a run.

    Degraded runs return this *instead of raising*; healthy resilient runs
    attach it too, so probe overhead and fault exposure are always
    auditable.  In multi-process runs the fault/retry tallies cover the
    parent process only — worker-side events are merged into the ambient
    metrics session (``resilience.*`` counters), which is the
    authoritative cross-process record.
    """

    completed: bool
    degraded: bool
    halt_reason: Optional[str]
    probes_charged: int
    restored_probes: int = 0
    faults_injected: int = 0
    retries: int = 0
    reconciliations: int = 0
    breaker_trips: int = 0
    checkpoints_written: int = 0
    journal_appends: int = 0
    chains_total: int = 0
    chains_completed: List[int] = field(default_factory=list)
    chains_incomplete: List[int] = field(default_factory=list)
    chains_resumed: List[int] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        """A JSON-serializable view (for CLI output and experiment rows)."""
        return {
            "completed": self.completed,
            "degraded": self.degraded,
            "halt_reason": self.halt_reason,
            "probes_charged": self.probes_charged,
            "restored_probes": self.restored_probes,
            "faults_injected": self.faults_injected,
            "retries": self.retries,
            "reconciliations": self.reconciliations,
            "breaker_trips": self.breaker_trips,
            "checkpoints_written": self.checkpoints_written,
            "journal_appends": self.journal_appends,
            "chains_total": self.chains_total,
            "chains_completed": list(self.chains_completed),
            "chains_incomplete": list(self.chains_incomplete),
            "chains_resumed": list(self.chains_resumed),
        }

    def summary(self) -> str:
        """One line for CLI output."""
        status = "degraded" if self.degraded else "completed"
        parts = [
            f"resilience: {status}",
            f"probes={self.probes_charged}",
            f"faults={self.faults_injected}",
            f"retries={self.retries}",
        ]
        if self.restored_probes:
            parts.append(f"restored={self.restored_probes}")
        if self.breaker_trips:
            parts.append(f"breaker_trips={self.breaker_trips}")
        if self.chains_incomplete:
            parts.append(
                f"incomplete_chains={len(self.chains_incomplete)}"
                f"/{self.chains_total}"
            )
        if self.halt_reason:
            parts.append(f"halt={self.halt_reason}")
        return "  ".join(parts)


def sample_to_doc(sigma: WeightedSample) -> Dict[str, list]:
    """Serialize a weighted sample ``Σ_i`` for checkpoint storage."""
    indices, weights, labels = sigma.arrays()
    return {
        "indices": [int(i) for i in indices],
        "weights": [float(w) for w in weights],
        "labels": [int(label) for label in labels],
    }


def sample_from_doc(doc: Dict[str, list]) -> WeightedSample:
    """Rebuild a weighted sample from its checkpoint document."""
    sigma = WeightedSample()
    for index, weight, label in zip(
        doc["indices"], doc["weights"], doc["labels"]
    ):
        sigma.add(int(index), float(weight), int(label))
    return sigma
