"""Deterministic fault injection for probe oracles.

:class:`FaultyOracle` wraps any probing oracle and injects the failure
modes of a realistic label source — transient errors, timeouts, latency,
permanently-dead indices, and label flips that disagree across re-probes.
Every fault is driven by a :class:`numpy.random.SeedSequence` keyed on
``(seed, index, attempt)``, so the fault pattern is a *pure function* of
the spec: independent of worker count, probe order, and process boundaries.
That is what makes chaos experiments reproducible and lets the test suite
assert bit-identical recovery (see ``tests/test_chaos_pipeline.py``).

Fault decisions are made *before* the wrapped oracle is consulted, so a
failed probe never charges probing cost — recovery via retries therefore
reaches the exact charge count of a fault-free run.  Label flips are the
one exception: the true label is fetched (and charged once, as always)
and flipped on the way out, so re-probes can disagree and majority-vote
reconciliation (:class:`~repro.resilience.retry.ResilientOracle`) has
something to reconcile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from ..obs import recorder
from .errors import OraclePermanentError, OracleTimeoutError, OracleTransientError
from .wrappers import OracleWrapper

__all__ = ["FaultSpec", "FaultyOracle"]

#: Stream tags keeping the per-(index, attempt) draws and the per-index
#: dead-point decision statistically independent.
_ATTEMPT_TAG = 0xFA017
_DEAD_TAG = 0xDEAD


def _spec_field(value: str, key: str) -> float:
    try:
        return float(value)
    except ValueError:
        raise ValueError(f"fault spec field {key}={value!r} is not a number") from None


@dataclass(frozen=True)
class FaultSpec:
    """Configuration of the injected fault distribution.

    All rates are per-attempt probabilities in ``[0, 1]``; ``seed`` roots
    the deterministic fault streams.  ``latency_mean`` simulates per-probe
    latency (exponentially distributed, recorded to the
    ``resilience.simulated_latency`` histogram — no real sleeping); a
    probe whose simulated latency exceeds the caller's per-probe timeout
    raises :class:`~repro.resilience.errors.OracleTimeoutError` exactly as
    a slow remote annotator would.
    """

    transient_rate: float = 0.0
    timeout_rate: float = 0.0
    flip_rate: float = 0.0
    dead_rate: float = 0.0
    dead_indices: Tuple[int, ...] = field(default_factory=tuple)
    latency_mean: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("transient_rate", "timeout_rate", "flip_rate", "dead_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]; got {rate}")
        if self.latency_mean < 0:
            raise ValueError(f"latency_mean must be >= 0; got {self.latency_mean}")

    @property
    def active(self) -> bool:
        """Whether this spec injects anything at all."""
        return bool(
            self.transient_rate
            or self.timeout_rate
            or self.flip_rate
            or self.dead_rate
            or self.dead_indices
            or self.latency_mean
        )

    @classmethod
    def parse(cls, spec: str) -> "FaultSpec":
        """Parse a CLI fault spec like ``"transient=0.1,flip=0.02,seed=7"``.

        Fields: ``transient``, ``timeout``, ``flip``, ``dead`` (rate),
        ``dead_indices`` (semicolon-separated ints), ``latency`` (mean
        seconds), ``seed``.  Unknown fields are an error, not a silent
        no-op — a typo must not turn a chaos run into a clean one.
        """
        kwargs: Dict[str, Any] = {}
        for part in filter(None, (p.strip() for p in spec.split(","))):
            if "=" not in part:
                raise ValueError(f"fault spec field {part!r} is not key=value")
            key, _, value = part.partition("=")
            key = key.strip()
            if key == "transient":
                kwargs["transient_rate"] = _spec_field(value, key)
            elif key == "timeout":
                kwargs["timeout_rate"] = _spec_field(value, key)
            elif key == "flip":
                kwargs["flip_rate"] = _spec_field(value, key)
            elif key == "dead":
                kwargs["dead_rate"] = _spec_field(value, key)
            elif key == "dead_indices":
                kwargs["dead_indices"] = tuple(
                    int(i) for i in value.split(";") if i
                )
            elif key == "latency":
                kwargs["latency_mean"] = _spec_field(value, key)
            elif key == "seed":
                kwargs["seed"] = int(value)
            else:
                raise ValueError(
                    f"unknown fault spec field {key!r}; expected one of "
                    "transient, timeout, flip, dead, dead_indices, latency, seed"
                )
        return cls(**kwargs)


class FaultyOracle(OracleWrapper):
    """Injects deterministic faults in front of any probing oracle.

    Parameters
    ----------
    inner:
        The oracle to wrap (a real oracle, a shard, or another wrapper).
    spec:
        The fault distribution and its seed.
    timeout:
        Optional per-probe deadline in (simulated) seconds; when the
        simulated latency of an attempt exceeds it, the attempt raises
        :class:`OracleTimeoutError` without consulting the inner oracle.

    Faults are decided per ``(index, attempt)``: the ``k``-th probe of a
    given index always behaves the same, whichever process issues it.
    Attempt counters start at zero per wrapper instance, and chains
    partition the index space in the active pipeline, so serial and
    sharded runs see identical fault patterns.
    """

    def __init__(self, inner: Any, spec: FaultSpec,
                 timeout: Optional[float] = None) -> None:
        super().__init__(inner)
        self.spec = spec
        self.timeout = timeout
        self._attempts: Dict[int, int] = {}
        self.faults_injected = 0
        self.fault_counts: Dict[str, int] = {}

    # ------------------------------------------------------------------

    def _record_fault(self, kind: str, index: int) -> None:
        self.faults_injected += 1
        self.fault_counts[kind] = self.fault_counts.get(kind, 0) + 1
        rec = recorder()
        if rec.enabled:
            rec.incr("resilience.faults_injected")
            rec.incr(f"resilience.faults.{kind}")
            # Instant timeline marker: a trace shows *when* each fault
            # fired relative to the phase spans around it.
            rec.event(f"fault.{kind}", index=index)

    def _is_dead(self, index: int) -> bool:
        if index in self.spec.dead_indices:
            return True
        if self.spec.dead_rate <= 0.0:
            return False
        # Attempt-independent: a dead index stays dead across retries.
        seq = np.random.SeedSequence(
            [self.spec.seed & 0xFFFFFFFF, index, _DEAD_TAG]
        )
        return bool(np.random.default_rng(seq).random() < self.spec.dead_rate)

    def probe(self, index: int) -> int:
        """Probe through the fault model; failed attempts charge nothing."""
        index = int(index)
        attempt = self._attempts.get(index, 0)
        self._attempts[index] = attempt + 1
        spec = self.spec
        if self._is_dead(index):
            self._record_fault("dead", index)
            raise OraclePermanentError(f"point {index} is permanently dead")
        seq = np.random.SeedSequence(
            [spec.seed & 0xFFFFFFFF, index, attempt, _ATTEMPT_TAG]
        )
        rng = np.random.default_rng(seq)
        u_transient, u_timeout, u_flip = rng.random(3)
        latency = (
            float(rng.exponential(spec.latency_mean))
            if spec.latency_mean > 0.0 else 0.0
        )
        rec = recorder()
        if rec.enabled and spec.latency_mean > 0.0:
            rec.observe("resilience.simulated_latency", latency)
        if u_transient < spec.transient_rate:
            self._record_fault("transient", index)
            raise OracleTransientError(
                f"transient fault probing point {index} (attempt {attempt})"
            )
        if u_timeout < spec.timeout_rate or (
            self.timeout is not None and latency > self.timeout
        ):
            self._record_fault("timeout", index)
            raise OracleTimeoutError(
                f"probe of point {index} timed out (attempt {attempt})"
            )
        label = self._inner.probe(index)
        if u_flip < spec.flip_rate:
            self._record_fault("flip", index)
            label = 1 - label
        return label

    # ------------------------------------------------------------------

    def shard(self, indices: Sequence[int],
              budget: Optional[int] = None) -> "FaultyOracle":
        """A worker-side shard with the same fault model re-applied."""
        return FaultyOracle(
            self._inner.shard(indices, budget=budget),
            self.spec, timeout=self.timeout,
        )

    def __repr__(self) -> str:
        return (f"FaultyOracle({self._inner!r}, "
                f"faults_injected={self.faults_injected})")
