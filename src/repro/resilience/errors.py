"""Failure taxonomy of the resilience layer.

The active algorithms treat the oracle as an infallible function; real
probe sources (human annotators, crowdsourcing APIs, remote scorers) fail
in a handful of characteristic ways, each of which gets its own exception
type so retry policies can decide *what is worth retrying*:

* :class:`OracleTransientError` — the probe failed but a retry may
  succeed (rate limit, dropped connection, annotator timeout-and-requeue);
* :class:`OracleTimeoutError` — the probe took longer than the caller's
  per-probe deadline; a special case of transient (the label may still
  arrive on a re-ask);
* :class:`OraclePermanentError` — the index can never be labeled (record
  deleted upstream, annotator task rejected); retrying is pointless;
* :class:`ProbeRetriesExhausted` — the retry policy gave up on one index;
  carries the last underlying failure as ``__cause__``;
* :class:`CircuitOpenError` — the circuit breaker is open and the probe
  was rejected without being attempted;
* :class:`WorkerCrashError` — re-exported from :mod:`repro.parallel.pool`:
  a worker process died (SIGKILL, OOM) while executing a task.

``HALT_ERRORS`` collects everything that legitimately *halts* a run —
used by the graceful-degradation path to distinguish "stop and return the
best effort" from genuine bugs, which keep propagating.
"""

from __future__ import annotations

from ..core.oracle import ProbeBudgetExceeded
from ..parallel.pool import WorkerCrashError

__all__ = [
    "OracleTransientError",
    "OracleTimeoutError",
    "OraclePermanentError",
    "ProbeRetriesExhausted",
    "CircuitOpenError",
    "WorkerCrashError",
    "HALT_ERRORS",
]


class OracleTransientError(RuntimeError):
    """A probe failed in a way that a retry may fix."""


class OracleTimeoutError(OracleTransientError):
    """A probe exceeded its per-probe deadline (retryable)."""


class OraclePermanentError(RuntimeError):
    """The probed index can never be labeled; retrying is pointless."""


class ProbeRetriesExhausted(RuntimeError):
    """The retry policy gave up on one probe.

    ``index`` and ``attempts`` identify what was abandoned; the last
    underlying failure travels as ``__cause__``.
    """

    def __init__(self, index: int, attempts: int, message: str = "") -> None:
        self.index = int(index)
        self.attempts = int(attempts)
        detail = f": {message}" if message else ""
        super().__init__(
            f"probe of point {index} failed after {attempts} attempts{detail}"
        )


class CircuitOpenError(RuntimeError):
    """The circuit breaker is open; the probe was rejected unattempted."""


#: Everything that legitimately halts a run (as opposed to a bug).  The
#: graceful-degradation path catches exactly these and returns a
#: best-effort result plus a RunReport; anything else keeps propagating.
HALT_ERRORS = (
    ProbeBudgetExceeded,
    ProbeRetriesExhausted,
    OraclePermanentError,
    CircuitOpenError,
    WorkerCrashError,
)
