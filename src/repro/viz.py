"""Plain-text visualization of 2-D point sets and monotone classifiers.

The environment this reproduction targets has no plotting stack, so the
examples render with text: a character grid where labels show as ``o``
(0) / ``x`` (1), misclassified points are upper-cased, and the
classifier's decision region is shaded.  Good enough to *see* a staircase
boundary or the Figure 1 example in a terminal, and fully testable.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .core.classifier import MonotoneClassifier
from .core.points import HIDDEN, PointSet

__all__ = ["render_points", "render_decision_region"]

_LABEL_CHARS = {0: "o", 1: "x", HIDDEN: "?"}
_WRONG_CHARS = {0: "O", 1: "X"}


def _grid_bounds(points: PointSet) -> Tuple[float, float, float, float]:
    xs, ys = points.coords[:, 0], points.coords[:, 1]
    pad_x = (xs.max() - xs.min()) * 0.05 or 0.5
    pad_y = (ys.max() - ys.min()) * 0.05 or 0.5
    return xs.min() - pad_x, xs.max() + pad_x, ys.min() - pad_y, ys.max() + pad_y


def _to_cell(value: float, lo: float, hi: float, cells: int) -> int:
    frac = (value - lo) / (hi - lo) if hi > lo else 0.5
    return min(cells - 1, max(0, int(frac * cells)))


def render_points(points: PointSet, classifier: Optional[MonotoneClassifier] = None,
                  width: int = 60, height: int = 24) -> str:
    """Render a 2-D point set as an ASCII scatter plot.

    ``o`` marks label-0 points, ``x`` label-1, ``?`` hidden labels.  When
    a classifier is supplied, misclassified points are upper-cased.  The
    y-axis points up, as in the paper's figures.
    """
    if points.dim != 2:
        raise ValueError(f"render_points requires d = 2; got d = {points.dim}")
    if points.n == 0:
        return "(empty point set)"
    lo_x, hi_x, lo_y, hi_y = _grid_bounds(points)
    grid: List[List[str]] = [[" "] * width for _ in range(height)]

    predictions = None
    if classifier is not None and not points.has_hidden_labels:
        predictions = classifier.classify_set(points)

    for i in range(points.n):
        col = _to_cell(points.coords[i, 0], lo_x, hi_x, width)
        row = height - 1 - _to_cell(points.coords[i, 1], lo_y, hi_y, height)
        label = int(points.labels[i])
        char = _LABEL_CHARS[label]
        if predictions is not None and label != HIDDEN and predictions[i] != label:
            char = _WRONG_CHARS[label]
        grid[row][col] = char

    border = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in grid)
    legend = "o/x = label 0/1; uppercase = misclassified" if predictions is not None \
        else "o/x = label 0/1; ? = hidden"
    return f"{border}\n{body}\n{border}\n{legend}"


def render_decision_region(classifier: MonotoneClassifier,
                           bounds: Tuple[float, float, float, float] = (0, 1, 0, 1),
                           width: int = 60, height: int = 24,
                           points: Optional[PointSet] = None) -> str:
    """Render a monotone classifier's 2-D decision region.

    The 1-region is shaded with ``#``; supplied points overlay as in
    :func:`render_points`.  The monotone staircase shape of the boundary
    is immediately visible.
    """
    lo_x, hi_x, lo_y, hi_y = bounds
    if points is not None:
        if points.dim != 2:
            raise ValueError("points must be 2-D")
        lo_x2, hi_x2, lo_y2, hi_y2 = _grid_bounds(points)
        lo_x, hi_x = min(lo_x, lo_x2), max(hi_x, hi_x2)
        lo_y, hi_y = min(lo_y, lo_y2), max(hi_y, hi_y2)

    xs = lo_x + (np.arange(width) + 0.5) / width * (hi_x - lo_x)
    ys = lo_y + (np.arange(height) + 0.5) / height * (hi_y - lo_y)
    grid_coords = np.array([[x, y] for y in ys for x in xs])
    shading = classifier.classify_matrix(grid_coords).reshape(height, width)

    grid: List[List[str]] = [
        ["#" if shading[r][c] else "." for c in range(width)]
        for r in range(height - 1, -1, -1)
    ]
    if points is not None:
        for i in range(points.n):
            col = _to_cell(points.coords[i, 0], lo_x, hi_x, width)
            row = height - 1 - _to_cell(points.coords[i, 1], lo_y, hi_y, height)
            grid[row][col] = _LABEL_CHARS[int(points.labels[i])]

    border = "+" + "-" * width + "+"
    body = "\n".join("|" + "".join(row) + "|" for row in grid)
    return f"{border}\n{body}\n{border}\n# = classified 1, . = classified 0"
