"""Hasse diagrams: the transitive reduction of the dominance DAG.

The dominance relation is transitive, so most of its ``O(n^2)`` edges are
redundant.  The *Hasse diagram* keeps only covering pairs — ``i`` covers
``j`` when ``i`` is above ``j`` with nothing strictly between — which is
the minimal edge set whose transitive closure recovers the full order.
Used for inspection, debugging, and the text renderer in
:mod:`repro.viz`; also a compact certificate of the poset structure.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..core.points import PointSet
from .dominance import _order_matrix

__all__ = ["hasse_edges", "covers", "transitive_closure_from_hasse"]


def hasse_edges(points: PointSet) -> List[Tuple[int, int]]:
    """Covering pairs ``(lower, upper)`` of the (tie-broken) dominance order.

    ``upper`` covers ``lower`` iff ``upper`` is above ``lower`` and no
    third point sits strictly between them.  Computed from the boolean
    order matrix: the pair is covering iff no ``k`` has
    ``upper above k above lower``; vectorized as a boolean matrix product.
    Cost ``O(n^3 / 64)`` in practice via numpy — fine for the inspection
    sizes this module targets.
    """
    order = _order_matrix(points)
    if points.n == 0:
        return []
    # two_step[i, j]: exists k with i above k and k above j.
    two_step = (order.astype(np.uint8) @ order.astype(np.uint8)) > 0
    covering = order & ~two_step
    uppers, lowers = np.nonzero(covering)
    return [(int(lo), int(up)) for up, lo in zip(uppers, lowers)]


def covers(points: PointSet, upper: int, lower: int) -> bool:
    """Whether ``upper`` covers ``lower`` in the dominance order."""
    order = _order_matrix(points)
    if not order[upper, lower]:
        return False
    between = order[upper] & order[:, lower]
    return not bool(between.any())


def transitive_closure_from_hasse(points: PointSet) -> np.ndarray:
    """Rebuild the full order matrix from the Hasse edges (test oracle).

    Floyd–Warshall-style closure over the covering edges; must equal the
    directly-computed order matrix, which the tests assert — a structural
    self-check that :func:`hasse_edges` lost nothing.
    """
    n = points.n
    closure = np.zeros((n, n), dtype=bool)
    for lower, upper in hasse_edges(points):
        closure[upper, lower] = True
    for k in range(n):
        # closure[i, j] |= closure[i, k] & closure[k, j]
        closure |= np.outer(closure[:, k], closure[k, :])
    return closure
