"""Hasse diagrams: the transitive reduction of the dominance DAG.

The dominance relation is transitive, so most of its ``O(n^2)`` edges are
redundant.  The *Hasse diagram* keeps only covering pairs — ``i`` covers
``j`` when ``i`` is above ``j`` with nothing strictly between — which is
the minimal edge set whose transitive closure recovers the full order.
Used for inspection, debugging, and the text renderer in
:mod:`repro.viz`; also a compact certificate of the poset structure.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..core.points import PointSet
from .dominance import _order_matrix
from .sparse import hasse_edges_sparse

__all__ = ["hasse_edges", "covers", "transitive_closure_from_hasse"]


def hasse_edges(points: PointSet) -> List[Tuple[int, int]]:
    """Covering pairs ``(lower, upper)`` of the (tie-broken) dominance order.

    ``upper`` covers ``lower`` iff ``upper`` is above ``lower`` and no
    third point sits strictly between them.  Delegates to the packed-bitset
    :func:`repro.poset.sparse.transitive_reduction` over the shared cached
    order matrix.

    The earlier implementation vectorized the "exists k strictly between"
    test as a ``uint8`` matrix product, whose entries wrap mod 256: a pair
    with a multiple-of-256 number of intermediates was falsely reported as
    covering (a 258-point chain emitted a spurious ``(0, 257)`` edge).  The
    bitset union is pure boolean — no counter to overflow.
    """
    return hasse_edges_sparse(points)


def covers(points: PointSet, upper: int, lower: int) -> bool:
    """Whether ``upper`` covers ``lower`` in the dominance order.

    Pure boolean row/column intersection — agrees with :func:`hasse_edges`
    for all ``n`` (both are overflow-free, unlike the retired ``uint8``
    matrix product).
    """
    order = _order_matrix(points)
    if not order[upper, lower]:
        return False
    between = order[upper] & order[:, lower]
    return not bool(between.any())


def transitive_closure_from_hasse(points: PointSet) -> np.ndarray:
    """Rebuild the full order matrix from the Hasse edges (test oracle).

    Floyd–Warshall-style closure over the covering edges; must equal the
    directly-computed order matrix, which the tests assert — a structural
    self-check that :func:`hasse_edges` lost nothing.
    """
    n = points.n
    closure = np.zeros((n, n), dtype=bool)
    for lower, upper in hasse_edges(points):
        closure[upper, lower] = True
    for k in range(n):
        # closure[i, j] |= closure[i, k] & closure[k, j]
        closure |= np.outer(closure[:, k], closure[k, :])
    return closure
