"""Dominance width and maximum anti-chain certificates (paper Section 1.2).

The dominance width ``w`` of ``P`` is the size of its largest anti-chain.
By Dilworth's theorem it equals the number of chains in a minimum chain
decomposition, which is how :func:`dominance_width` computes it.

:func:`maximum_antichain` additionally returns a *certificate*: an explicit
anti-chain of size ``w``, extracted via König's theorem from the same
bipartite matching that powers the decomposition.  Tests cross-check both
against :func:`brute_force_width` on small inputs.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Tuple

import numpy as np

from ..core.points import PointSet
from .chains import minimum_chain_decomposition
from .dominance import _order_matrix
from .matching import hopcroft_karp

__all__ = ["dominance_width", "maximum_antichain", "brute_force_width", "is_antichain"]


def dominance_width(points: PointSet) -> int:
    """The dominance width ``w`` of ``P`` (size of the largest anti-chain)."""
    if points.n == 0:
        return 0
    return minimum_chain_decomposition(points).num_chains


def is_antichain(points: PointSet, indices: List[int]) -> bool:
    """Whether the given indices form an anti-chain (pairwise incomparable).

    Identical coordinate vectors are comparable (each weakly dominates the
    other), so duplicates can never share an anti-chain.
    """
    for a, b in combinations(indices, 2):
        if points.comparable(a, b):
            return False
    return True


def maximum_antichain(points: PointSet, engine: str = "auto") -> List[int]:
    """An anti-chain of maximum size ``w``, as an explicit list of indices.

    Uses the König construction: in the split bipartite graph of the minimum
    path cover reduction, take a maximum matching ``M``, compute a minimum
    vertex cover ``C`` via alternating reachability from the free left
    vertices, and return the points neither of whose copies lies in ``C``.
    Those points are pairwise incomparable and number ``n - |M| = w``.

    ``engine`` selects the substrate (``"auto"`` / ``"bitset"`` /
    ``"loop"``, as in :func:`~repro.poset.chains.matching_chain_decomposition`).
    The bitset path runs the alternating König BFS as packed frontier
    expansions; visited sets are pure reachability, so both engines return
    the identical anti-chain.
    """
    if engine not in ("auto", "bitset", "loop"):
        raise ValueError(f"unknown engine {engine!r}")
    n = points.n
    if n == 0:
        return []
    if engine == "auto":
        from .dominance import _use_bitset

        engine = "bitset" if _use_bitset(points) else "loop"
    if engine == "bitset":
        antichain, matching_size = _bitset_antichain(points)
    else:
        antichain, matching_size = _loop_antichain(points)
    expected = n - matching_size
    if len(antichain) != expected:
        raise AssertionError(
            f"König extraction produced {len(antichain)} points, expected {expected}"
        )
    return antichain


def _loop_antichain(points: PointSet) -> Tuple[List[int], int]:
    """Reference König extraction over dense adjacency lists."""
    n = points.n
    order = _order_matrix(points)  # order[i, j]: i above j
    adjacency = [np.flatnonzero(order[:, u]).tolist() for u in range(n)]
    matching = hopcroft_karp(adjacency, n)
    left_match, right_match = matching.left_match, matching.right_match

    # König: alternating BFS from unmatched left vertices.
    visited_left = [False] * n
    visited_right = [False] * n
    stack = [u for u in range(n) if left_match[u] == -1]
    for u in stack:
        visited_left[u] = True
    while stack:
        u = stack.pop()
        for v in adjacency[u]:
            if not visited_right[v]:
                visited_right[v] = True
                w = right_match[v]
                if w != -1 and not visited_left[w]:
                    visited_left[w] = True
                    stack.append(w)
    # Minimum vertex cover = (left not visited) ∪ (right visited).
    antichain = [
        v for v in range(n)
        if visited_left[v] and not visited_right[v]
    ]
    return antichain, matching.size


def _bitset_antichain(points: PointSet) -> Tuple[List[int], int]:
    """König extraction with packed-bitset alternating BFS.

    The alternating reachability from free left vertices is computed one
    layer at a time: OR the packed adjacency rows of the left frontier,
    mask off rights already visited, and map the fresh rights through the
    matching to the next left frontier.  Reachable sets do not depend on
    traversal order, so the result equals :func:`_loop_antichain` exactly.
    """
    from .bitset import _unpack_indices, hopcroft_karp_bitset, packed_order

    n = points.n
    packed = packed_order(points)
    matching = hopcroft_karp_bitset(packed.above, n)
    right_match = np.asarray(matching.right_match, dtype=np.int64)

    visited_left = np.asarray(matching.left_match, dtype=np.int64) == -1
    visited_right_packed = np.zeros(packed.above.shape[1], dtype=np.uint8)
    frontier = visited_left.copy()
    while frontier.any():
        reach = np.bitwise_or.reduce(packed.above[frontier], axis=0)
        fresh = reach & ~visited_right_packed
        if not fresh.any():
            break
        visited_right_packed |= fresh
        owners = right_match[_unpack_indices(fresh, n)]
        owners = owners[owners != -1]
        owners = owners[~visited_left[owners]]
        visited_left[owners] = True
        frontier = np.zeros(n, dtype=bool)
        frontier[owners] = True
    visited_right = np.unpackbits(visited_right_packed, count=n).astype(bool)
    antichain = np.flatnonzero(visited_left & ~visited_right).tolist()
    return antichain, matching.size


def brute_force_width(points: PointSet, max_n: int = 18) -> int:
    """Exact width by exhaustive search — test oracle for small inputs only."""
    n = points.n
    if n > max_n:
        raise ValueError(f"brute_force_width limited to n <= {max_n}; got n = {n}")
    best = 0
    indices = list(range(n))
    for size in range(n, 0, -1):
        if size <= best:
            break
        for combo in combinations(indices, size):
            if is_antichain(points, list(combo)):
                best = size
                break
    return best
