"""Dominance width and maximum anti-chain certificates (paper Section 1.2).

The dominance width ``w`` of ``P`` is the size of its largest anti-chain.
By Dilworth's theorem it equals the number of chains in a minimum chain
decomposition, which is how :func:`dominance_width` computes it.

:func:`maximum_antichain` additionally returns a *certificate*: an explicit
anti-chain of size ``w``, extracted via König's theorem from the same
bipartite matching that powers the decomposition.  Tests cross-check both
against :func:`brute_force_width` on small inputs.
"""

from __future__ import annotations

from itertools import combinations
from typing import List

import numpy as np

from ..core.points import PointSet
from .chains import minimum_chain_decomposition
from .dominance import _order_matrix
from .matching import hopcroft_karp

__all__ = ["dominance_width", "maximum_antichain", "brute_force_width", "is_antichain"]


def dominance_width(points: PointSet) -> int:
    """The dominance width ``w`` of ``P`` (size of the largest anti-chain)."""
    if points.n == 0:
        return 0
    return minimum_chain_decomposition(points).num_chains


def is_antichain(points: PointSet, indices: List[int]) -> bool:
    """Whether the given indices form an anti-chain (pairwise incomparable).

    Identical coordinate vectors are comparable (each weakly dominates the
    other), so duplicates can never share an anti-chain.
    """
    for a, b in combinations(indices, 2):
        if points.comparable(a, b):
            return False
    return True


def maximum_antichain(points: PointSet) -> List[int]:
    """An anti-chain of maximum size ``w``, as an explicit list of indices.

    Uses the König construction: in the split bipartite graph of the minimum
    path cover reduction, take a maximum matching ``M``, compute a minimum
    vertex cover ``C`` via alternating reachability from the free left
    vertices, and return the points neither of whose copies lies in ``C``.
    Those points are pairwise incomparable and number ``n - |M| = w``.
    """
    n = points.n
    if n == 0:
        return []
    order = _order_matrix(points)  # order[i, j]: i above j
    adjacency = [np.flatnonzero(order[:, u]).tolist() for u in range(n)]
    matching = hopcroft_karp(adjacency, n)
    left_match, right_match = matching.left_match, matching.right_match

    # König: alternating BFS from unmatched left vertices.
    visited_left = [False] * n
    visited_right = [False] * n
    stack = [u for u in range(n) if left_match[u] == -1]
    for u in stack:
        visited_left[u] = True
    while stack:
        u = stack.pop()
        for v in adjacency[u]:
            if not visited_right[v]:
                visited_right[v] = True
                w = right_match[v]
                if w != -1 and not visited_left[w]:
                    visited_left[w] = True
                    stack.append(w)
    # Minimum vertex cover = (left not visited) ∪ (right visited).
    antichain = [
        v for v in range(n)
        if visited_left[v] and not visited_right[v]
    ]
    expected = n - matching.size
    if len(antichain) != expected:
        raise AssertionError(
            f"König extraction produced {len(antichain)} points, expected {expected}"
        )
    return antichain


def brute_force_width(points: PointSet, max_n: int = 18) -> int:
    """Exact width by exhaustive search — test oracle for small inputs only."""
    n = points.n
    if n > max_n:
        raise ValueError(f"brute_force_width limited to n <= {max_n}; got n = {n}")
    best = 0
    indices = list(range(n))
    for size in range(n, 0, -1):
        if size <= best:
            break
        for combo in combinations(indices, size):
            if is_antichain(points, list(combo)):
                best = size
                break
    return best
