"""Partial-order (dominance) substrate.

Implements the combinatorial machinery the paper relies on:

* dominance digraph construction in ``O(d n^2)`` (:mod:`.dominance`);
* Hopcroft–Karp maximum bipartite matching in ``O(E sqrt(V))``
  (:mod:`.matching`), the engine behind Lemma 6;
* minimum chain decomposition via Dilworth's theorem (:mod:`.chains`);
* dominance width and maximum-antichain certificates (:mod:`.width`);
* the sparse engine (:mod:`.sparse`): block-streamed dominance in
  ``O(block * n)`` memory and packed-bitset transitive reduction, sharing
  the order-matrix cache on :class:`~repro.core.points.PointSet`
  (see ``docs/poset.md``);
* the packed-bitset order engine (:mod:`.bitset`): the whole order matrix
  as ``uint8`` bitset rows, vectorized minimal/maximal/pair-count
  consumers, and a Hopcroft–Karp whose BFS layering is bitset frontier
  expansion — the auto-selected substrate above
  :data:`~repro.poset.bitset.BITSET_CUTOFF` points.
"""

from .bitset import (
    BITSET_CUTOFF,
    PackedOrder,
    contending_mask_bitset,
    dominance_pair_count_bitset,
    hopcroft_karp_bitset,
    maximal_points_bitset,
    minimal_points_bitset,
    packed_adjacency,
    packed_order,
    popcount,
)
from .chains import (
    ChainDecomposition,
    greedy_chain_decomposition,
    is_valid_chain_decomposition,
    matching_chain_decomposition,
    minimum_chain_decomposition,
    patience_chain_decomposition,
)
from .dominance import dominance_digraph, maximal_points, minimal_points, topological_order
from .hasse import covers, hasse_edges
from .matching import hopcroft_karp, maximum_bipartite_matching
from .mirsky import heights, longest_chain_length, mirsky_antichain_partition
from .sparse import (
    dominance_pair_count,
    maximal_points_sparse,
    minimal_points_sparse,
    order_matrix_blocks,
    transitive_reduction,
    weak_dominance_blocks,
)
from .width import (
    brute_force_width,
    dominance_width,
    maximum_antichain,
)

__all__ = [
    "ChainDecomposition",
    "minimum_chain_decomposition",
    "matching_chain_decomposition",
    "patience_chain_decomposition",
    "greedy_chain_decomposition",
    "is_valid_chain_decomposition",
    "dominance_digraph",
    "topological_order",
    "maximal_points",
    "minimal_points",
    "hopcroft_karp",
    "maximum_bipartite_matching",
    "dominance_width",
    "maximum_antichain",
    "brute_force_width",
    "hasse_edges",
    "covers",
    "heights",
    "longest_chain_length",
    "mirsky_antichain_partition",
    "weak_dominance_blocks",
    "order_matrix_blocks",
    "minimal_points_sparse",
    "maximal_points_sparse",
    "dominance_pair_count",
    "transitive_reduction",
    "BITSET_CUTOFF",
    "PackedOrder",
    "packed_order",
    "popcount",
    "minimal_points_bitset",
    "maximal_points_bitset",
    "dominance_pair_count_bitset",
    "packed_adjacency",
    "contending_mask_bitset",
    "hopcroft_karp_bitset",
]
