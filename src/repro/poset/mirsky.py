"""Mirsky's theorem: minimum antichain partitions and longest chains.

Dilworth's theorem (chains vs maximum antichain) powers the paper; its
dual — Mirsky's theorem — says the minimum number of *antichains* that
partition a poset equals the length of its longest *chain*.  The
canonical construction assigns each point its *height* (longest chain
ending at it); equal-height points are pairwise incomparable.

Useful here for workload analysis: the height profile describes how
"deep" a point set is, complementing the width ``w`` that drives the
probing bounds (a set of ``n`` points satisfies ``width * height >= n``).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.points import PointSet
from .dominance import _order_matrix, topological_order

__all__ = ["heights", "longest_chain_length", "mirsky_antichain_partition"]


def heights(points: PointSet) -> np.ndarray:
    """Height of each point: length of the longest chain ending at it.

    Computed by a DP over a topological order of the (tie-broken)
    dominance DAG; heights start at 1 for minimal points.  For large
    inputs the below-sets are unpacked from the bitset engine's rows
    instead of the dense matrix (identical sets, 8x less resident memory).
    """
    n = points.n
    result = np.zeros(n, dtype=int)
    if n == 0:
        return result
    from .dominance import _use_bitset

    if _use_bitset(points):
        from .bitset import packed_order

        packed = packed_order(points)
        for idx in topological_order(points):
            below = packed.below_indices(idx)
            result[idx] = 1 + (result[below].max() if len(below) else 0)
        return result
    order_matrix = _order_matrix(points)  # order[i, j]: i above j
    for idx in topological_order(points):
        below = np.flatnonzero(order_matrix[idx])
        result[idx] = 1 + (result[below].max() if len(below) else 0)
    return result


def longest_chain_length(points: PointSet) -> int:
    """Length of the longest chain (Mirsky: = minimum antichain count)."""
    if points.n == 0:
        return 0
    return int(heights(points).max())


def mirsky_antichain_partition(points: PointSet) -> List[List[int]]:
    """Partition indices into the minimum number of antichains.

    Level ``k`` collects the points of height ``k + 1``; by construction
    two points of equal height are incomparable (a comparable pair has
    strictly increasing heights along the order), so every level is an
    antichain, and there are exactly ``longest_chain_length`` of them —
    optimal, since a chain meets each antichain at most once.
    """
    point_heights = heights(points)
    if points.n == 0:
        return []
    levels: List[List[int]] = [[] for _ in range(int(point_heights.max()))]
    for idx, height in enumerate(point_heights):
        levels[height - 1].append(idx)
    return levels
