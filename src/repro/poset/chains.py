"""Chain decompositions of a dominance poset (paper Section 2, Lemma 6).

A *chain* is a subset of points that can be arranged into a sequence where
each point is dominated by the next; an *anti-chain* contains no comparable
pair.  Dilworth's theorem says the minimum number of chains that partition
``P`` equals the size of the largest anti-chain — the *dominance width* ``w``.

:func:`minimum_chain_decomposition` implements Lemma 6: build the dominance
DAG in ``O(d n^2)``, reduce minimum path cover to maximum bipartite matching
(the split-graph construction), and solve the matching with Hopcroft–Karp in
``O(n^{2.5})``.  Because dominance is transitive, a vertex-disjoint path
cover of the DAG is exactly a chain decomposition.

:func:`greedy_chain_decomposition` is the cheap heuristic used in the A2
ablation: it needs no matching but may emit more than ``w`` chains for
``d >= 2``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.points import PointSet
from ..obs import recorder
from .dominance import _order_matrix, topological_order
from .matching import hopcroft_karp

__all__ = [
    "ChainDecomposition",
    "minimum_chain_decomposition",
    "matching_chain_decomposition",
    "patience_chain_decomposition",
    "greedy_chain_decomposition",
    "is_valid_chain_decomposition",
]


class ChainDecomposition:
    """A partition of point indices into chains.

    Each chain is stored as a list of indices sorted from the most dominated
    point to the most dominating one (ascending in the partial order), which
    is the orientation Section 4.1 needs when it treats a chain as a 1-D
    instance.
    """

    __slots__ = ("chains", "n", "method")

    def __init__(self, chains: Sequence[Sequence[int]], n: int, method: str) -> None:
        self.chains: List[List[int]] = [list(c) for c in chains]
        self.n = n
        self.method = method

    @property
    def num_chains(self) -> int:
        """Number of chains; equals the width ``w`` for the optimal method."""
        return len(self.chains)

    def chain_of(self) -> np.ndarray:
        """Array mapping each point index to its chain id."""
        owner = np.full(self.n, -1, dtype=int)
        for cid, chain in enumerate(self.chains):
            for idx in chain:
                owner[idx] = cid
        return owner

    def sizes(self) -> List[int]:
        """Chain sizes (sorted descending)."""
        return sorted((len(c) for c in self.chains), reverse=True)

    def __iter__(self):
        return iter(self.chains)

    def __len__(self) -> int:
        return len(self.chains)

    def __repr__(self) -> str:
        return (f"ChainDecomposition(num_chains={self.num_chains}, n={self.n}, "
                f"method={self.method!r})")


def _record_decomposition(decomp: ChainDecomposition) -> ChainDecomposition:
    """Report a finished decomposition to the active metrics session."""
    rec = recorder()
    if rec.enabled:
        rec.incr("poset.decompositions")
        rec.gauge("poset.num_chains", decomp.num_chains)
        if decomp.method in ("matching", "patience"):
            # Exact methods: the chain count IS the dominance width w.
            rec.gauge("poset.width", decomp.num_chains)
    return decomp


def minimum_chain_decomposition(points: PointSet, method: str = "auto",
                                engine: str = "auto") -> ChainDecomposition:
    """Decompose ``P`` into exactly ``w`` chains (Lemma 6).

    ``method``:

    * ``"auto"`` (default) — exact specialized algorithms for ``d <= 2``
      (sorting for ``d = 1``, patience best-fit for ``d = 2``, both
      ``O(n log n)``), the matching reduction otherwise;
    * ``"matching"`` — force the Lemma 6 Hopcroft–Karp reduction
      (``O(d n^2 + n^{2.5})`` time, ``O(n^2)`` space);
    * ``"patience"`` — force the 2-D algorithm (requires ``d <= 2``).

    ``engine`` selects the matching substrate (see
    :func:`matching_chain_decomposition`); the packed-bitset engine returns
    the *same decomposition*, not merely the same chain count.

    All methods return a minimum decomposition; they may differ in which
    one.  Tests cross-check the chain *counts* against each other and
    against brute-force width.
    """
    if method not in ("auto", "matching", "patience"):
        raise ValueError(f"unknown method {method!r}")
    rec = recorder()
    if method == "patience" or (method == "auto" and points.dim <= 2):
        with rec.span("patience"):
            return patience_chain_decomposition(points)
    with rec.span("matching"):
        return matching_chain_decomposition(points, engine=engine)


def patience_chain_decomposition(points: PointSet) -> ChainDecomposition:
    """Exact minimum chain decomposition for ``d <= 2`` in ``O(n log n)``.

    Process points by ascending ``(x, y)``; append each point to the chain
    whose current top has the largest ``y`` not exceeding the point's ``y``
    (best fit), opening a new chain when no top qualifies.  Every earlier
    top has ``x <=`` the current point's ``x``, so best-fit placement keeps
    chains valid; a patience-sorting argument shows that when the k-th
    chain opens there is an anti-chain of size k, so the count is minimum
    (Dilworth).  For ``d = 1`` the points are totally ordered and the
    result is a single chain.
    """
    n = points.n
    if points.dim > 2:
        raise ValueError(f"patience decomposition requires d <= 2; got d = {points.dim}")
    if n == 0:
        return ChainDecomposition([], 0, method="patience")
    if points.dim == 1:
        order = np.argsort(points.coords[:, 0], kind="stable")
        return ChainDecomposition([order.tolist()], n, method="patience")

    xs = points.coords[:, 0]
    ys = points.coords[:, 1]
    order = np.lexsort((ys, xs))  # ascending x, ties by ascending y

    from bisect import bisect_right

    top_ys: List[float] = []          # sorted multiset of current chain-top y's
    chain_at: List[List[int]] = []    # chain_at[k] = chain whose top has top_ys[k]
    for idx in order:
        y = float(ys[idx])
        pos = bisect_right(top_ys, y)
        if pos == 0:
            # No top with y' <= y: open a new chain.
            top_ys.insert(0, y)
            chain_at.insert(0, [int(idx)])
        else:
            chain = chain_at.pop(pos - 1)
            top_ys.pop(pos - 1)
            chain.append(int(idx))
            insert_at = bisect_right(top_ys, y)
            top_ys.insert(insert_at, y)
            chain_at.insert(insert_at, chain)
    return _record_decomposition(
        ChainDecomposition(chain_at, n, method="patience"))


def matching_chain_decomposition(points: PointSet,
                                 engine: str = "auto") -> ChainDecomposition:
    """The Lemma 6 reduction: minimum path cover via Hopcroft–Karp.

    Split every point ``v`` into a left copy ``v_out`` and a right copy
    ``v_in``; add an edge ``(u_out, v_in)`` whenever ``v`` is above ``u``.
    A maximum matching ``M`` yields a minimum path cover with ``n - |M|``
    paths: follow matched successors.  Transitivity of dominance makes
    every such path a chain, and Dilworth guarantees ``n - |M| = w``.

    ``engine``: ``"auto"`` (packed-bitset Hopcroft–Karp at or above
    :data:`repro.poset.bitset.BITSET_CUTOFF` points unless the dense order
    matrix is already cached, the list-based engine below), ``"bitset"``,
    or ``"loop"``.  Both engines produce the *identical* matching — the
    bitset DFS replays the reference traversal — so the decomposition does
    not depend on the engine; parity tests assert it chain-for-chain.
    """
    if engine not in ("auto", "bitset", "loop"):
        raise ValueError(f"unknown engine {engine!r}")
    n = points.n
    if n == 0:
        return ChainDecomposition([], 0, method="matching")
    rec = recorder()
    if engine == "auto":
        from .dominance import _use_bitset

        engine = "bitset" if _use_bitset(points) else "loop"
    if engine == "bitset":
        from .bitset import hopcroft_karp_bitset, packed_order

        packed = packed_order(points)
        if rec.enabled:
            rec.incr("poset.dominance_pairs", packed.pair_count())
        # Row u of the packed transpose is exactly the Lemma 6 adjacency
        # of left copy u: every v above u.
        matching = hopcroft_karp_bitset(packed.above, n)
    else:
        order = _order_matrix(points)  # order[i, j]: i above j
        if rec.enabled:
            rec.incr("poset.dominance_pairs", int(order.sum()))
        # Left copy of u connects to right copies of every v above u.
        adjacency = [np.flatnonzero(order[:, u]).tolist() for u in range(n)]
        matching = hopcroft_karp(adjacency, n)

    successor = matching.left_match  # successor[u] = next point up the chain
    has_predecessor = [False] * n
    for u in range(n):
        if successor[u] != -1:
            has_predecessor[successor[u]] = True

    chains: List[List[int]] = []
    for start in range(n):
        if has_predecessor[start]:
            continue
        chain = [start]
        cur = successor[start]
        while cur != -1:
            chain.append(cur)
            cur = successor[cur]
        chains.append(chain)
    return _record_decomposition(
        ChainDecomposition(chains, n, method="matching"))


def greedy_chain_decomposition(points: PointSet,
                               order_hint: Optional[Sequence[int]] = None) -> ChainDecomposition:
    """Greedy chain decomposition: fast, but may use more than ``w`` chains.

    Scans points in topological order and appends each point to the first
    chain whose current top it dominates, opening a new chain otherwise.
    For ``d = 1`` this is exact (a single chain); for higher dimensions it is
    a heuristic whose chain count the A2 ablation compares against ``w``.
    """
    n = points.n
    if n == 0:
        return ChainDecomposition([], 0, method="greedy")
    order = list(order_hint) if order_hint is not None else topological_order(points)
    coords = points.coords
    chains: List[List[int]] = []
    tops: List[np.ndarray] = []
    for idx in order:
        placed = False
        for cid, top in enumerate(tops):
            if np.all(coords[idx] >= top):
                chains[cid].append(idx)
                tops[cid] = coords[idx]
                placed = True
                break
        if not placed:
            chains.append([idx])
            tops.append(coords[idx])
    return _record_decomposition(ChainDecomposition(chains, n, method="greedy"))


def is_valid_chain_decomposition(points: PointSet,
                                 decomposition: ChainDecomposition) -> bool:
    """Check that a decomposition partitions all indices into genuine chains.

    Validates (i) every index appears exactly once and (ii) within each
    chain, consecutive points satisfy weak dominance in ascending order.
    """
    seen = np.zeros(points.n, dtype=bool)
    for chain in decomposition.chains:
        if not chain:
            return False
        for idx in chain:
            if not 0 <= idx < points.n or seen[idx]:
                return False
            seen[idx] = True
        for lower, upper in zip(chain, chain[1:]):
            if not points.weakly_dominates(upper, lower):
                return False
    return bool(seen.all())
