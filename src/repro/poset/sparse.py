"""Sparse poset engine: memory-bounded dominance and transitive reduction.

The dense dominance machinery (``PointSet.weak_dominance_matrix`` and the
cached :meth:`~repro.core.points.PointSet.order_matrix`) materializes all
``n^2`` booleans at once, which is the right trade below ~15k points and
prohibitive beyond.  This module is the scalable counterpart:

* :func:`order_matrix_blocks` / :func:`weak_dominance_blocks` stream the
  (tie-broken) order and weak-dominance matrices in row blocks, accumulating
  one dimension at a time so peak scratch memory is ``O(block_size * n)``
  booleans — never the ``(n, n, d)`` (or even ``(block, n, d)``) broadcast
  intermediate;
* :func:`minimal_points_sparse` / :func:`maximal_points_sparse` /
  :func:`dominance_pair_count` are block-streaming consumers of those
  iterators, giving the common poset statistics under the same memory bound;
* :func:`transitive_reduction` computes the Hasse (covering) relation of an
  explicit boolean order matrix with packed-bitset row unions — exact
  boolean reachability, immune to the mod-256 wraparound that an integer
  matrix product suffers (see :mod:`repro.poset.hasse`), and ``O(m n / 8)``
  bytes of work for ``m`` order pairs instead of an ``O(n^3)`` product.

When a :class:`~repro.core.points.PointSet` has already materialized its
cached order matrix, the block iterators serve slices of the shared cache
(counted by the ``poset.order_cache_hits`` metric) instead of recomputing.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from ..core.pairwise import DEFAULT_BLOCK_SIZE, pairwise_weak_dominance
from ..core.points import PointSet
from ..obs import recorder

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "weak_dominance_blocks",
    "order_matrix_blocks",
    "minimal_points_sparse",
    "maximal_points_sparse",
    "dominance_pair_count",
    "transitive_reduction",
    "hasse_edges_sparse",
]


def weak_dominance_blocks(points: PointSet,
                          block_size: int = DEFAULT_BLOCK_SIZE
                          ) -> Iterator[Tuple[int, int, np.ndarray]]:
    """Yield ``(start, stop, block)`` row blocks of the weak-dominance matrix.

    ``block[i - start, j]`` is true iff point ``i`` weakly dominates point
    ``j``.  If the full matrix is already cached on ``points`` the blocks
    are views of the cache; otherwise each block is computed by
    per-dimension accumulation in ``O(block_size * n)`` scratch memory.
    """
    n = points.n
    if n == 0:
        return
    cached = points._weak_dom
    for start in range(0, n, block_size):
        stop = min(n, start + block_size)
        if cached is not None:
            yield start, stop, cached[start:stop]
        else:
            yield start, stop, pairwise_weak_dominance(
                points.coords[start:stop], points.coords)


def order_matrix_blocks(points: PointSet,
                        block_size: int = DEFAULT_BLOCK_SIZE
                        ) -> Iterator[Tuple[int, int, np.ndarray]]:
    """Yield ``(start, stop, block)`` row blocks of the tie-broken order matrix.

    Semantics match :meth:`PointSet.order_matrix` exactly — strict dominance
    plus the index tie-break on identical coordinate vectors — but without
    requiring the ``O(n^2)`` cache.  When the cache *is* already populated
    its slices are served instead (a ``poset.order_cache_hits`` increment),
    so dense and sparse callers share work rather than duplicating it.
    """
    n = points.n
    if n == 0:
        return
    cached_order = points._order
    if cached_order is not None:
        rec = recorder()
        if rec.enabled:
            rec.incr("poset.order_cache_hits")
        for start in range(0, n, block_size):
            stop = min(n, start + block_size)
            yield start, stop, cached_order[start:stop]
        return
    coords = points.coords
    idx = np.arange(n)
    # Coordinate-equal ties come from one global duplicate grouping (two
    # points tie iff they share a group id) instead of a reverse-dominance
    # panel per block — that panel would double the pairwise work.
    _, group = np.unique(coords, axis=0, return_inverse=True)
    for start in range(0, n, block_size):
        stop = min(n, start + block_size)
        rows = coords[start:stop]
        weak = pairwise_weak_dominance(rows, coords)
        equal = group[start:stop, None] == group[None, :]
        order = weak & ~equal
        order |= equal & (idx[start:stop, None] > idx[None, :])
        yield start, stop, order


def minimal_points_sparse(points: PointSet,
                          block_size: int = DEFAULT_BLOCK_SIZE) -> List[int]:
    """Indices of minimal points in ``O(block_size * n)`` peak memory.

    Agrees with :func:`repro.poset.dominance.minimal_points`: point ``i`` is
    minimal iff its order-matrix row is empty (nothing below it).
    """
    mins: List[int] = []
    for start, stop, block in order_matrix_blocks(points, block_size):
        empty = ~block.any(axis=1)
        mins.extend((start + np.flatnonzero(empty)).tolist())
    return mins


def maximal_points_sparse(points: PointSet,
                          block_size: int = DEFAULT_BLOCK_SIZE) -> List[int]:
    """Indices of maximal points in ``O(block_size * n)`` peak memory.

    Point ``j`` is maximal iff column ``j`` of the order matrix is empty;
    computed by OR-accumulating the row blocks into one ``(n,)`` mask.
    """
    has_above = np.zeros(points.n, dtype=bool)
    for _start, _stop, block in order_matrix_blocks(points, block_size):
        has_above |= block.any(axis=0)
    return np.flatnonzero(~has_above).tolist()


def dominance_pair_count(points: PointSet,
                         block_size: int = DEFAULT_BLOCK_SIZE) -> int:
    """Number of ordered pairs in the tie-broken order (its edge count)."""
    total = 0
    for _start, _stop, block in order_matrix_blocks(points, block_size):
        total += int(np.count_nonzero(block))
    return total


def transitive_reduction(order: np.ndarray) -> np.ndarray:
    """Covering relation (Hasse diagram) of a transitively-closed strict order.

    ``order[i, j]`` must mean ``i`` is above ``j`` and must already be a
    strict partial order (irreflexive, antisymmetric, transitive).  Returns
    the boolean matrix keeping exactly the pairs with no third point
    strictly between them — the unique minimal relation whose transitive
    closure is ``order``.

    Implementation: rows are packed into bitsets (``np.packbits``) and the
    two-step reachability of row ``i`` is the OR of the packed rows of
    everything below ``i``.  Pure boolean arithmetic — unlike a ``uint8``
    matrix product there is no counter to wrap mod 256 — and the cost is
    ``O(m n / 8)`` bytes of bitset unions for ``m`` order pairs.
    """
    order = np.asarray(order, dtype=bool)
    n = order.shape[0]
    if order.shape != (n, n):
        raise ValueError(f"order matrix must be square; got {order.shape}")
    reduction = order.copy()
    if n == 0:
        return reduction
    packed = np.packbits(order, axis=1)
    for i in range(n):
        below = np.flatnonzero(order[i])
        if len(below) == 0:
            continue
        two_step = np.bitwise_or.reduce(packed[below], axis=0)
        reachable = np.unpackbits(two_step, count=n).astype(bool)
        reduction[i] &= ~reachable
    return reduction


def hasse_edges_sparse(points: PointSet) -> List[Tuple[int, int]]:
    """Covering pairs ``(lower, upper)`` via the shared cache + bitset reduction.

    Same contract as :func:`repro.poset.hasse.hasse_edges` (which delegates
    here); exposed separately so callers holding a precomputed order matrix
    can call :func:`transitive_reduction` directly.
    """
    if points.n == 0:
        return []
    covering = transitive_reduction(points.order_matrix())
    uppers, lowers = np.nonzero(covering)
    return [(int(lo), int(up)) for up, lo in zip(uppers, lowers)]
