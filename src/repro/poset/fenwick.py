"""A Fenwick (binary indexed) tree over prefix sums of counts.

Substrate for the low-dimensional dominance fast paths in
:mod:`repro.poset.dominance2d`: sweepline algorithms use it to count
previously-seen points with y-rank at most a query rank in ``O(log n)``.
"""

from __future__ import annotations

from typing import List

__all__ = ["FenwickTree"]


class FenwickTree:
    """Point updates and prefix-sum queries over ``size`` integer slots."""

    __slots__ = ("size", "_tree")

    def __init__(self, size: int) -> None:
        if size < 0:
            raise ValueError("size must be non-negative")
        self.size = size
        self._tree: List[int] = [0] * (size + 1)

    def add(self, index: int, amount: int = 1) -> None:
        """Add ``amount`` at position ``index`` (0-based)."""
        if not 0 <= index < self.size:
            raise IndexError(f"index {index} outside [0, {self.size})")
        i = index + 1
        while i <= self.size:
            self._tree[i] += amount
            i += i & (-i)

    def prefix_sum(self, index: int) -> int:
        """Sum of positions ``0 .. index`` inclusive; -1 yields 0."""
        if index >= self.size:
            index = self.size - 1
        total = 0
        i = index + 1
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return total

    def total(self) -> int:
        """Sum over all positions."""
        return self.prefix_sum(self.size - 1) if self.size else 0

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of positions ``lo .. hi`` inclusive."""
        if hi < lo:
            return 0
        return self.prefix_sum(hi) - (self.prefix_sum(lo - 1) if lo > 0 else 0)
