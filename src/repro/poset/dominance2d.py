"""O(n log n) dominance primitives for ``d <= 2`` (sweepline + Fenwick).

The generic pipeline charges ``O(d n^2)`` for pairwise dominance facts.
In one and two dimensions the same facts fall out of a sweepline:

* :func:`contending_mask_low_dim` — the Section 5.1 contending mask;
* :func:`count_violations_low_dim` — the number of (label-0 ⪰ label-1)
  conflicting pairs, whose zero-ness is exactly ``k* = 0``;
* :func:`is_monotone_labeling_low_dim` — monotonicity of the labeling.

``solve_passive`` uses the mask fast path automatically for ``d <= 2``,
which (together with the patience decomposition) makes the entire 2-D
pipeline scale to hundreds of thousands of points, the min-cut instance
size permitting.

Weak dominance (``q ⪯ p`` includes equal coordinates) is preserved
throughout: sweeping ascending in ``x`` with whole equal-``x`` groups
inserted *before* they are queried, and Fenwick ranks compressed over
``y`` with inclusive prefix sums.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.points import PointSet
from .fenwick import FenwickTree

__all__ = [
    "contending_mask_low_dim",
    "count_violations_low_dim",
    "is_monotone_labeling_low_dim",
]


def _as_xy(points: PointSet) -> Tuple[np.ndarray, np.ndarray]:
    """Coordinates as (x, y); 1-D points get a constant y (total order)."""
    if points.dim == 1:
        x = points.coords[:, 0]
        return x, np.zeros_like(x)
    if points.dim == 2:
        return points.coords[:, 0], points.coords[:, 1]
    raise ValueError(f"fast path requires d <= 2; got d = {points.dim}")


def _y_ranks(y: np.ndarray) -> Tuple[np.ndarray, int]:
    """Dense 0-based ranks of y values and the number of distinct values."""
    unique, ranks = np.unique(y, return_inverse=True)
    return ranks.astype(int), len(unique)


def contending_mask_low_dim(points: PointSet) -> np.ndarray:
    """The Section 5.1 contending mask in ``O(n log n)`` for ``d <= 2``.

    A label-0 point contends iff some label-1 point lies weakly below it
    (both coordinates ``<=``); a label-1 point contends iff some label-0
    point lies weakly above it.  Two sweeps over x (ascending for the
    label-0 side, descending for the label-1 side) with a Fenwick tree
    over y-ranks answer both quadrant-emptiness queries.
    """
    points.require_full_labels()
    n = points.n
    mask = np.zeros(n, dtype=bool)
    if n == 0:
        return mask
    x, y = _as_xy(points)
    ranks, num_ranks = _y_ranks(y)
    labels = points.labels

    # --- Sweep 1 (ascending x): label-0 contends iff a label-1 exists with
    # x' <= x and y' <= y.  Equal-x groups insert before querying so that
    # same-x (and identical) points are visible to each other.
    order = np.lexsort((ranks, x))
    tree = FenwickTree(num_ranks)
    i = 0
    while i < n:
        j = i
        while j < n and x[order[j]] == x[order[i]]:
            j += 1
        group = order[i:j]
        for idx in group:
            if labels[idx] == 1:
                tree.add(ranks[idx])
        for idx in group:
            if labels[idx] == 0 and tree.prefix_sum(ranks[idx]) > 0:
                mask[idx] = True
        i = j

    # --- Sweep 2 (descending x): label-1 contends iff a label-0 exists
    # with x' >= x and y' >= y.  Same structure on reversed axes.
    tree = FenwickTree(num_ranks)
    i = n
    while i > 0:
        j = i
        while j > 0 and x[order[j - 1]] == x[order[i - 1]]:
            j -= 1
        group = order[j:i]
        for idx in group:
            if labels[idx] == 0:
                tree.add(ranks[idx])
        for idx in group:
            if labels[idx] == 1:
                above = tree.range_sum(ranks[idx], num_ranks - 1)
                if above > 0:
                    mask[idx] = True
        i = j

    return mask


def count_violations_low_dim(points: PointSet) -> int:
    """Number of conflicting pairs (label-0 weakly dominating label-1).

    One ascending-x sweep: insert each equal-x group's label-1 points,
    then charge each label-0 point of the group the count of label-1
    points with y-rank at most its own.
    """
    points.require_full_labels()
    n = points.n
    if n == 0:
        return 0
    x, y = _as_xy(points)
    ranks, num_ranks = _y_ranks(y)
    labels = points.labels
    order = np.lexsort((ranks, x))

    tree = FenwickTree(num_ranks)
    violations = 0
    i = 0
    while i < n:
        j = i
        while j < n and x[order[j]] == x[order[i]]:
            j += 1
        group = order[i:j]
        for idx in group:
            if labels[idx] == 1:
                tree.add(ranks[idx])
        for idx in group:
            if labels[idx] == 0:
                violations += tree.prefix_sum(ranks[idx])
        i = j
    return violations


def is_monotone_labeling_low_dim(points: PointSet) -> bool:
    """Whether the labeling is monotone (``k* = 0``), in ``O(n log n)``."""
    return count_violations_low_dim(points) == 0
