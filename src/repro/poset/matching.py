"""Hopcroft–Karp maximum bipartite matching, implemented from scratch.

The paper's Lemma 6 reduces minimum chain decomposition to maximum matching
in a bipartite graph with ``O(n)`` vertices and ``O(n^2)`` edges and invokes
Hopcroft–Karp [16] to solve it in ``O(sqrt(V) * E)`` time — which yields the
``O(n^{2.5})`` term in the paper's bounds.  This module provides that engine.

The implementation is fully iterative (no recursion) so it handles inputs of
tens of thousands of vertices without hitting Python's recursion limit.
"""

from __future__ import annotations

from collections import deque
from typing import List, Sequence, Tuple

from ..obs import recorder

__all__ = ["hopcroft_karp", "maximum_bipartite_matching", "MatchingResult"]

_INF = float("inf")


class MatchingResult:
    """Result of a maximum bipartite matching computation.

    Attributes
    ----------
    size:
        Cardinality of the maximum matching.
    left_match:
        ``left_match[u]`` is the right vertex matched to left vertex ``u``,
        or -1 if unmatched.
    right_match:
        ``right_match[v]`` is the left vertex matched to right vertex ``v``,
        or -1 if unmatched.
    """

    __slots__ = ("size", "left_match", "right_match")

    def __init__(self, size: int, left_match: List[int], right_match: List[int]) -> None:
        self.size = size
        self.left_match = left_match
        self.right_match = right_match

    def pairs(self) -> List[Tuple[int, int]]:
        """Matched (left, right) pairs."""
        return [(u, v) for u, v in enumerate(self.left_match) if v != -1]

    def __repr__(self) -> str:
        return (f"MatchingResult(size={self.size}, n_left={len(self.left_match)}, "
                f"n_right={len(self.right_match)})")


def hopcroft_karp(adjacency: Sequence[Sequence[int]], n_right: int) -> MatchingResult:
    """Maximum matching of a bipartite graph in ``O(E sqrt(V))`` time.

    Parameters
    ----------
    adjacency:
        ``adjacency[u]`` lists the right-side neighbors of left vertex ``u``.
    n_right:
        Number of right-side vertices.

    Notes
    -----
    Standard Hopcroft–Karp: repeat (BFS layering from free left vertices,
    then a maximal set of vertex-disjoint shortest augmenting paths found by
    iterative DFS) until no augmenting path exists.  Each phase runs in
    ``O(E)`` and there are ``O(sqrt(V))`` phases.
    """
    n_left = len(adjacency)
    for u, neighbors in enumerate(adjacency):
        for v in neighbors:
            if not 0 <= v < n_right:
                raise ValueError(
                    f"edge ({u}, {v}) references right vertex outside [0, {n_right})"
                )

    left_match = [-1] * n_left
    right_match = [-1] * n_right
    dist: List[float] = [0.0] * n_left

    def bfs() -> bool:
        """Layer the graph from free left vertices; return whether an
        augmenting path exists."""
        queue: deque = deque()
        for u in range(n_left):
            if left_match[u] == -1:
                dist[u] = 0.0
                queue.append(u)
            else:
                dist[u] = _INF
        found = False
        while queue:
            u = queue.popleft()
            for v in adjacency[u]:
                w = right_match[v]
                if w == -1:
                    found = True
                elif dist[w] == _INF:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        return found

    def augment_from(root: int) -> bool:
        """Iterative DFS for one augmenting path starting at free vertex ``root``."""
        # Stack entries: (left vertex, index into its adjacency list).
        stack: List[Tuple[int, int]] = [(root, 0)]
        path: List[Tuple[int, int]] = []  # (left vertex, chosen right vertex)
        while stack:
            u, ptr = stack[-1]
            advanced = False
            neighbors = adjacency[u]
            while ptr < len(neighbors):
                v = neighbors[ptr]
                ptr += 1
                stack[-1] = (u, ptr)
                w = right_match[v]
                if w == -1:
                    # Found a free right vertex: flip the path.
                    path.append((u, v))
                    for pu, pv in path:
                        left_match[pu] = pv
                        right_match[pv] = pu
                    return True
                if dist[w] == dist[u] + 1:
                    path.append((u, v))
                    stack.append((w, 0))
                    advanced = True
                    break
            if not advanced:
                # Dead end: remove u from this phase's layering and backtrack,
                # discarding the edge that led into u (if u is not the root).
                dist[u] = _INF
                stack.pop()
                if stack:
                    path.pop()
        return False

    size = 0
    phases = 0
    while bfs():
        phases += 1
        for u in range(n_left):
            if left_match[u] == -1 and augment_from(u):
                size += 1
    rec = recorder()
    if rec.enabled:
        rec.incr("poset.matching.phases", phases)
        rec.incr("poset.matching.augmentations", size)
        rec.incr("poset.matching.edges",
                 sum(len(neighbors) for neighbors in adjacency))
    return MatchingResult(size, left_match, right_match)


def maximum_bipartite_matching(edges: Sequence[Tuple[int, int]], n_left: int,
                               n_right: int) -> MatchingResult:
    """Convenience wrapper taking an explicit edge list."""
    adjacency: List[List[int]] = [[] for _ in range(n_left)]
    for u, v in edges:
        if not 0 <= u < n_left:
            raise ValueError(f"left vertex {u} outside [0, {n_left})")
        adjacency[u].append(v)
    return hopcroft_karp(adjacency, n_right)
