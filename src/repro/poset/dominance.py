"""Dominance digraph construction and order-theoretic helpers.

The paper's Lemma 6 (appendix B) builds an acyclic directed graph whose
vertices are the points of ``P`` and whose edges connect each point to the
points it dominates.  We work with *weak* dominance restricted to distinct
indices; ties (identical coordinate vectors) are broken by index so the
relation stays antisymmetric and the digraph acyclic.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..core.points import PointSet

__all__ = [
    "dominance_digraph",
    "dominance_adjacency",
    "topological_order",
    "minimal_points",
    "maximal_points",
]


def _use_bitset(points: PointSet) -> bool:
    """Whether the packed-bitset engine should serve an order query.

    The dense cached matrix wins while it exists (the answer is a free
    slice); otherwise large inputs go through :mod:`repro.poset.bitset`,
    which never materializes the ``O(n^2)``-byte boolean caches.
    """
    from .bitset import BITSET_CUTOFF

    return points._order is None and points.n >= BITSET_CUTOFF


def _order_matrix(points: PointSet) -> np.ndarray:
    """Boolean matrix of the antisymmetric order used throughout the poset code.

    ``M[i, j]`` is true iff point ``i`` is *above* point ``j``: either ``i``
    strictly dominates ``j``, or the two coordinate vectors are identical and
    ``i > j`` (index tie-break).  The result is a strict partial order, so
    the induced digraph is a DAG.

    Thin shim over the cached :meth:`PointSet.order_matrix` so every poset
    helper (adjacency, minimal/maximal points, chains, width, Mirsky,
    Hasse) shares one copy per point set instead of rebuilding it per call;
    repeat reads show up in the ``poset.order_cache_hits`` counter.
    """
    return points.order_matrix()


def dominance_digraph(points: PointSet) -> np.ndarray:
    """Return the ``(n, n)`` boolean adjacency matrix of the dominance DAG.

    ``A[i, j]`` is true iff there is an edge from ``j`` (dominated) to ``i``
    (dominating) in the paper's orientation — equivalently, iff ``i`` is
    above ``j`` in the tie-broken order.  Cost is ``O(d n^2)``.
    """
    return _order_matrix(points)


def dominance_adjacency(points: PointSet) -> List[List[int]]:
    """Adjacency lists of the DAG: ``adj[j]`` lists every ``i`` above ``j``.

    Served from the packed transpose rows of the bitset engine for large
    inputs; from the dense cached matrix otherwise (identical lists).
    """
    if _use_bitset(points):
        from .bitset import packed_adjacency

        return packed_adjacency(points)
    order = _order_matrix(points)
    return [np.flatnonzero(order[:, j]).tolist() for j in range(points.n)]


def topological_order(points: PointSet) -> List[int]:
    """Indices sorted so that dominated points come before dominating ones.

    Sorting by coordinate sum (with index tie-break) is a valid topological
    order for dominance: if ``i`` is above ``j`` then ``sum(i) >= sum(j)``,
    and equal sums with dominance force identical vectors, resolved by index.
    """
    sums = points.coords.sum(axis=1)
    return list(np.lexsort((np.arange(points.n), sums)))


def minimal_points(points: PointSet) -> List[int]:
    """Indices of minimal points: points with nothing below them.

    ``order[i, j]`` means ``i`` is above ``j``, so point ``i`` is minimal iff
    its row is empty.
    """
    if _use_bitset(points):
        from .bitset import minimal_points_bitset

        return minimal_points_bitset(points)
    order = _order_matrix(points)
    has_below = np.any(order, axis=1)
    return np.flatnonzero(~has_below).tolist()


def maximal_points(points: PointSet) -> List[int]:
    """Indices of maximal points: points with nothing above them.

    Point ``j`` is maximal iff column ``j`` of the order matrix is empty.
    """
    if _use_bitset(points):
        from .bitset import maximal_points_bitset

        return maximal_points_bitset(points)
    order = _order_matrix(points)
    has_above = np.any(order, axis=0)
    return np.flatnonzero(~has_above).tolist()
