"""Packed-bitset order engine: the vectorized substrate for the hot paths.

Every load-bearing consumer of the dominance order — minimal/maximal
extraction, chain decomposition via Hopcroft–Karp, the Theorem 4 flow
network — reduces to row/column operations on the boolean order matrix.
This module packs that matrix into ``uint8`` bitset rows (``np.packbits``)
and re-expresses the hot loops as bitwise kernels:

* :class:`PackedOrder` — both orientations of the tie-broken strict order
  packed 8 points per byte, built **blockwise** through the PR 3 sparse
  iterators (:func:`repro.poset.sparse.order_matrix_blocks`) so scratch
  memory beyond the packed output stays ``O(block * n)`` booleans and the
  dense ``(n, n)`` caches are never forced;
* consumers (:func:`minimal_points_bitset`, :func:`maximal_points_bitset`,
  :func:`dominance_pair_count_bitset`, :func:`packed_adjacency`,
  :func:`contending_mask_bitset`) that answer the common order queries with
  byte-wise ``any``/popcount instead of per-point Python;
* :func:`hopcroft_karp_bitset` — Hopcroft–Karp whose BFS layering is a
  *bitset frontier expansion*: one ``np.bitwise_or.reduce`` over the packed
  adjacency rows of the frontier per layer, instead of a Python loop over
  every edge.  Its output (not just the matching size) is identical to the
  reference :func:`repro.poset.matching.hopcroft_karp`, which the parity
  tests assert vertex-for-vertex.

Popcounts use the hardware ``np.bitwise_count`` ufunc when available
(numpy >= 2.0) and fall back to a 256-entry lookup table otherwise.

Padding bits: with ``n`` not a multiple of 8 the final byte of every packed
row carries ``8 - n % 8`` zero padding bits.  All kernels here either
preserve zeros (AND/OR/popcount) or re-mask after complement; the
``n = 258``-style regression tests pin this.  See ``docs/poset.md`` for the
memory model and the path-selection policy.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core.pairwise import DEFAULT_BLOCK_SIZE, pairwise_weak_dominance
from ..core.points import PointSet
from ..obs import recorder
from .matching import MatchingResult
from .sparse import order_matrix_blocks

__all__ = [
    "PackedOrder",
    "packed_order",
    "popcount",
    "minimal_points_bitset",
    "maximal_points_bitset",
    "dominance_pair_count_bitset",
    "packed_adjacency",
    "contending_mask_bitset",
    "hopcroft_karp_bitset",
    "BITSET_CUTOFF",
]

#: Below this many points the dense boolean paths win (packing overhead
#: exceeds the loop cost); at or above it the auto-selected poset consumers
#: switch to the packed engine.  Parity is asserted by tests at every size.
BITSET_CUTOFF = 256

_INF = float("inf")

if hasattr(np, "bitwise_count"):

    def _popcount_bytes(packed: np.ndarray) -> np.ndarray:
        """Per-byte popcount via the hardware ufunc (numpy >= 2.0)."""
        return np.bitwise_count(packed)

else:  # pragma: no cover - exercised only on numpy < 2.0
    _POPCOUNT_LUT = (
        np.unpackbits(np.arange(256, dtype=np.uint8)[:, None], axis=1)
        .sum(axis=1)
        .astype(np.uint8)
    )

    def _popcount_bytes(packed: np.ndarray) -> np.ndarray:
        """Per-byte popcount via a 256-entry lookup table."""
        return _POPCOUNT_LUT[packed]


def popcount(packed: np.ndarray, axis: Optional[int] = None) -> np.ndarray:
    """Number of set bits in a packed ``uint8`` bitset array.

    With ``axis=None`` returns the scalar total; with ``axis=1`` the
    per-row counts (an ``int64`` array), etc.  Padding bits are zero by
    construction, so they never contribute.
    """
    return _popcount_bytes(packed).sum(axis=axis, dtype=np.int64)


def _unpack_indices(row: np.ndarray, n: int) -> np.ndarray:
    """Ascending indices of the set bits of one packed row."""
    return np.flatnonzero(np.unpackbits(row, count=n))


class PackedOrder:
    """Both orientations of the tie-broken strict order as packed bitsets.

    Attributes
    ----------
    n:
        Number of points.
    below:
        ``(n, ceil(n/8))`` ``uint8`` array; bit ``j`` of row ``i`` is set
        iff ``i`` is above ``j`` (``j`` lies below ``i``) — the packed
        rows of ``PointSet.order_matrix()``.
    above:
        The packed transpose: bit ``i`` of row ``j`` is set iff ``i`` is
        above ``j``.  Row ``j`` is exactly the Lemma 6 bipartite adjacency
        of left vertex ``j``.  Built lazily on first access (a strided
        transpose-pack costs as much as packing ``below`` itself, and the
        minimal/maximal/height consumers never need it); once built, both
        orientations together hold 2 bits per ordered pair — still 4x
        smaller than one boolean matrix.

    Rows are write-protected; the final byte of every row carries zero
    padding bits when ``n`` is not a multiple of 8.
    """

    __slots__ = ("n", "below", "_above")

    def __init__(self, n: int, below: np.ndarray,
                 above: Optional[np.ndarray] = None) -> None:
        self.n = n
        self.below = below
        below.setflags(write=False)
        self._above = above
        if above is not None:
            above.setflags(write=False)

    @property
    def above(self) -> np.ndarray:
        above = self._above
        if above is None:
            above = _transpose_packed(self.below, self.n)
            above.setflags(write=False)
            self._above = above
            rec = recorder()
            if rec.enabled:
                rec.incr("poset.bitset_transposes")
        return above

    @property
    def num_bytes(self) -> int:
        """Total bytes currently materialized (``above`` counts once built)."""
        total = self.below.nbytes
        if self._above is not None:
            total += self._above.nbytes
        return total

    def below_indices(self, i: int) -> np.ndarray:
        """Ascending indices of the points below ``i`` (``i`` above them)."""
        return _unpack_indices(self.below[i], self.n)

    def above_indices(self, j: int) -> np.ndarray:
        """Ascending indices of the points above ``j``."""
        return _unpack_indices(self.above[j], self.n)

    def pair_count(self) -> int:
        """Number of ordered pairs (edges of the dominance DAG)."""
        return int(popcount(self.below))

    def __repr__(self) -> str:
        return f"PackedOrder(n={self.n}, num_bytes={self.num_bytes})"


def _transpose_packed(packed: np.ndarray, n: int,
                      block_size: int = DEFAULT_BLOCK_SIZE) -> np.ndarray:
    """Packed transpose of a packed ``(n, ceil(n/8))`` bit matrix.

    Row blocks are unpacked, transposed, and re-packed into the matching
    byte columns — ``O(block * n)`` boolean scratch.  Block starts stay on
    multiples of 8 so transposed panels land on byte boundaries.
    """
    n_bytes = packed.shape[1]
    out = np.zeros((n, n_bytes), dtype=np.uint8)
    block_size = max(8, (block_size // 8) * 8)
    for start in range(0, n, block_size):
        stop = min(n, start + block_size)
        block = np.unpackbits(packed[start:stop], axis=1, count=n)
        out[:, start // 8 : start // 8 + (stop - start + 7) // 8] = (
            np.packbits(block.T, axis=1)
        )
    return out


def packed_order(points: PointSet, block_size: int = DEFAULT_BLOCK_SIZE) -> PackedOrder:
    """Build (or fetch the cached) :class:`PackedOrder` of a point set.

    Construction streams :func:`repro.poset.sparse.order_matrix_blocks` and
    row-packs each ``(block, n)`` boolean panel immediately into ``below``,
    so peak scratch beyond the packed output is one boolean panel,
    ``O(block * n)`` bytes; the ``above`` orientation is derived lazily on
    first access (matching consumers) rather than transpose-packed here
    (dominance consumers never touch it).

    The result is cached on the ``PointSet`` (like the dense order-matrix
    cache, which this path deliberately does **not** populate): repeat
    calls are free and counted by ``poset.bitset_cache_hits``.
    """
    cached = points._packed_order
    rec = recorder()
    if cached is not None:
        if rec.enabled:
            rec.incr("poset.bitset_cache_hits")
        return cached
    n = points.n
    n_bytes = (n + 7) // 8
    block_size = max(8, (block_size // 8) * 8)
    below = np.zeros((n, n_bytes), dtype=np.uint8)
    with rec.span("bitset_pack"):
        for start, stop, block in order_matrix_blocks(points, block_size):
            below[start:stop] = np.packbits(block, axis=1)
            if rec.enabled:
                rec.incr("poset.bitset_pack_blocks")
    packed = PackedOrder(n, below)
    if rec.enabled:
        rec.incr("poset.bitset_packs")
        rec.gauge("poset.bitset_bytes", packed.num_bytes)
    points._packed_order = packed
    return packed


def minimal_points_bitset(points: PointSet,
                          block_size: int = DEFAULT_BLOCK_SIZE) -> List[int]:
    """Indices of minimal points from the packed engine.

    A point is minimal iff its ``below`` row is all-zero bytes — one
    vectorized ``any`` over the packed rows.  Agrees with
    :func:`repro.poset.dominance.minimal_points` at every size.
    """
    packed = packed_order(points, block_size)
    has_below = (packed.below != 0).any(axis=1)
    return np.flatnonzero(~has_below).tolist()


def maximal_points_bitset(points: PointSet,
                          block_size: int = DEFAULT_BLOCK_SIZE) -> List[int]:
    """Indices of maximal points: all-zero columns of ``below``.

    Computed as one OR-reduction over the packed rows (a point is maximal
    iff nobody is above it, i.e. its bit is clear in every row), so the
    lazy ``above`` transpose is never forced.
    """
    packed = packed_order(points, block_size)
    has_above = np.unpackbits(
        np.bitwise_or.reduce(packed.below, axis=0), count=points.n
    )
    return np.flatnonzero(has_above == 0).tolist()


def dominance_pair_count_bitset(points: PointSet,
                                block_size: int = DEFAULT_BLOCK_SIZE) -> int:
    """Ordered-pair count via hardware popcount over the packed rows."""
    return packed_order(points, block_size).pair_count()


def packed_adjacency(points: PointSet,
                     block_size: int = DEFAULT_BLOCK_SIZE) -> List[List[int]]:
    """Adjacency lists of the dominance DAG (``adj[j]`` = points above ``j``).

    Same contract as :func:`repro.poset.dominance.dominance_adjacency`,
    unpacked row-by-row from the packed transpose.
    """
    packed = packed_order(points, block_size)
    return [packed.above_indices(j).tolist() for j in range(points.n)]


def contending_mask_bitset(points: PointSet,
                           block_size: int = DEFAULT_BLOCK_SIZE) -> np.ndarray:
    """Contending mask (Section 5.1) accumulated through packed panels.

    Streams label-0 row blocks against the label-1 columns, packs each
    dominance panel, and accumulates the "some label-0 point dominates
    label-1 ``q``" evidence as a single packed OR row — ``O(block * m1)``
    boolean scratch and ``m1 / 8`` bytes of accumulator for ``m1`` label-1
    points.  Bit-identical to
    :func:`repro.core.passive.contending_mask` and
    :func:`repro.core.pairwise.blocked_contending_mask`.
    """
    points.require_full_labels()
    n = points.n
    mask = np.zeros(n, dtype=bool)
    if n == 0:
        return mask
    zero_idx = np.flatnonzero(points.labels == 0)
    one_idx = np.flatnonzero(points.labels == 1)
    if len(zero_idx) == 0 or len(one_idx) == 0:
        return mask
    one_coords = points.coords[one_idx]
    m1 = len(one_idx)
    one_hit = np.zeros((m1 + 7) // 8, dtype=np.uint8)
    rec = recorder()
    for start in range(0, len(zero_idx), block_size):
        stop = min(len(zero_idx), start + block_size)
        rows = points.coords[zero_idx[start:stop]]
        panel = np.packbits(pairwise_weak_dominance(rows, one_coords), axis=1)
        mask[zero_idx[start:stop]] = (panel != 0).any(axis=1)
        one_hit |= np.bitwise_or.reduce(panel, axis=0)
        if rec.enabled:
            rec.incr("poset.bitset_contending_blocks")
    mask[one_idx] = np.unpackbits(one_hit, count=m1).astype(bool)
    return mask


def hopcroft_karp_bitset(adjacency_packed: np.ndarray,
                         n_right: int) -> MatchingResult:
    """Hopcroft–Karp over a packed-bitset adjacency matrix.

    Parameters
    ----------
    adjacency_packed:
        ``(n_left, ceil(n_right/8))`` ``uint8`` array; bit ``v`` of row
        ``u`` set iff the bipartite edge ``u -> v`` exists (for the
        Lemma 6 reduction this is :attr:`PackedOrder.above`).
    n_right:
        Number of right-side vertices.

    The BFS layering is fully vectorized: each layer ORs the packed
    adjacency rows of the current left frontier into one reachable-rights
    bitset (``np.bitwise_or.reduce``), subtracts the already-seen rights,
    and maps the fresh ones through ``right_match`` to the next left
    frontier — ``O(n^2 / 8)`` bytes of bitwise work per phase instead of a
    Python loop over every edge.  The augmenting DFS keeps the reference
    engine's exact traversal (ascending neighbor order, dead-end
    ``dist = inf`` removal), unpacking each visited row once on demand, so
    ``left_match``/``right_match`` equal
    :func:`repro.poset.matching.hopcroft_karp` vertex-for-vertex — not
    just in matching size — which downstream chain decompositions rely on
    and the parity tests assert.
    """
    n_left = adjacency_packed.shape[0]
    expected_bytes = (n_right + 7) // 8
    if adjacency_packed.shape[1] != expected_bytes:
        raise ValueError(
            f"packed adjacency has {adjacency_packed.shape[1]} byte columns; "
            f"expected {expected_bytes} for n_right = {n_right}"
        )
    # The DFS runs on plain Python lists (per-edge numpy scalar indexing
    # would cost ~10x the list lookups of the reference engine); the BFS
    # runs on numpy mirrors, kept in sync at the few points the DFS
    # mutates state (path flips, phase roots).
    left_match: List[int] = [-1] * n_left
    right_match: List[int] = [-1] * n_right
    right_match_np = np.full(n_right, -1, dtype=np.int64)
    dist_np = np.zeros(n_left, dtype=np.float64)
    dist: List[float] = []
    left_free_np = np.ones(n_left, dtype=bool)
    right_free = np.ones(n_right, dtype=bool)
    rec = recorder()

    # Lazily unpacked neighbor rows for the DFS; only rows the DFS
    # actually visits are materialized, and each at most once.  Small rows
    # are cached as Python lists (scanned directly, reference-style);
    # large rows stay packed-order arrays and get a vectorized prefilter
    # per visit — below ~64 neighbors the fixed numpy overhead exceeds
    # the scan it saves.
    _PREFILTER_MIN_DEGREE = 64
    row_cache: Dict[int, object] = {}

    def candidates(u: int, dist_u: float) -> List[int]:
        """Neighbors of ``u`` worth scanning at visit time.

        For high-degree rows this is a vectorized prefilter of the
        reference scan: an edge ``u -> v`` is kept iff ``v`` is free or
        its owner sits on the next BFS layer.  Edges dropped are exactly
        those the reference DFS would scan and skip — the condition can
        never *become* true later within the same ``augment_from`` call
        (matches only flip when the call returns, and ``dist`` only moves
        to inf) — so iterating the pruned list with the runtime checks
        below reproduces the reference traversal edge-for-edge.
        """
        row = row_cache.get(u)
        if row is None:
            unpacked = _unpack_indices(adjacency_packed[u], n_right)
            row = (unpacked.tolist()
                   if len(unpacked) < _PREFILTER_MIN_DEGREE else unpacked)
            row_cache[u] = row
        if type(row) is list:
            return row
        owners = right_match_np[row]
        keep = owners == -1
        matched = ~keep
        keep[matched] = dist_np[owners[matched]] == dist_u + 1.0
        return row[keep].tolist()

    def bfs() -> bool:
        """Layered bitset frontier expansion; returns whether an
        augmenting path exists and fills ``dist_np`` for reachable lefts."""
        dist_np[:] = np.where(left_free_np, 0.0, _INF)
        frontier = left_free_np.copy()
        seen = np.zeros(expected_bytes, dtype=np.uint8)
        found = False
        layer = 0.0
        layers = 0
        while frontier.any():
            reach = np.bitwise_or.reduce(adjacency_packed[frontier], axis=0)
            fresh = reach & ~seen
            if not fresh.any():
                break
            seen |= fresh
            layers += 1
            rights = _unpack_indices(fresh, n_right)
            if right_free[rights].any():
                found = True
            owners = right_match_np[rights]
            owners = owners[owners != -1]
            owners = owners[dist_np[owners] == _INF]
            layer += 1.0
            dist_np[owners] = layer
            frontier = np.zeros(n_left, dtype=bool)
            frontier[owners] = True
        if rec.enabled:
            rec.incr("poset.bitset_matching_layers", layers)
        return found

    def augment_from(root: int) -> bool:
        """Iterative DFS for one augmenting path, mirroring the reference
        engine step-for-step (see ``repro.poset.matching``)."""
        stack = [[root, 0, candidates(root, dist[root])]]
        path = []
        while stack:
            frame = stack[-1]
            u, ptr, row = frame
            dist_next = dist[u] + 1
            advanced = False
            while ptr < len(row):
                v = row[ptr]
                ptr += 1
                frame[1] = ptr
                w = right_match[v]
                if w == -1:
                    path.append((u, v))
                    for pu, pv in path:
                        left_match[pu] = pv
                        right_match[pv] = pu
                        right_match_np[pv] = pu
                        right_free[pv] = False
                    return True
                if dist[w] == dist_next:
                    path.append((u, v))
                    stack.append([w, 0, candidates(w, dist[w])])
                    advanced = True
                    break
            if not advanced:
                dist[u] = _INF
                dist_np[u] = _INF
                stack.pop()
                if stack:
                    path.pop()
        return False

    size = 0
    phases = 0
    with rec.span("bitset_matching"):
        while bfs():
            phases += 1
            dist = dist_np.tolist()
            for u in range(n_left):
                if left_match[u] == -1 and augment_from(u):
                    size += 1
                    left_free_np[u] = False
    if rec.enabled:
        rec.incr("poset.matching.phases", phases)
        rec.incr("poset.matching.augmentations", size)
        rec.incr("poset.matching.edges", int(popcount(adjacency_packed)))
        rec.incr("poset.bitset_matchings")
    return MatchingResult(size, left_match, right_match)
