"""Entity-matching workload simulator (paper Section 1.1 motivation).

The paper motivates monotone classification with similarity-based matching:
object pairs ``(x, y)`` are mapped to similarity vectors
``p = (sim_1(x,y), .., sim_d(x,y))`` and a monotone classifier decides
match / non-match.  Real corpora (Amazon/eBay ads, bibliographic records)
are proprietary; per the substitution rules in DESIGN.md we simulate the
*structure* those corpora exhibit:

* ground-truth entities; matching pairs are two noisy observations of one
  entity, non-matching pairs are observations of distinct entities;
* per-dimension similarity scores that are stochastically higher for
  matches (Beta distributions with match/non-match parameter sets);
* residual label noise: with probability ``label_noise`` the human verdict
  is wrong, which is exactly why ``k* > 0`` in practice.

Because similarity scores of matches stochastically dominate those of
non-matches, the Bayes-optimal decision region is (approximately) an upset
of ``R^d`` — the same structural assumption that justifies demanding
monotone classifiers in the first place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .._util import RngLike, as_generator
from ..core.oracle import LabelOracle
from ..core.points import PointSet

__all__ = ["EntityMatchingWorkload", "generate_entity_matching"]


@dataclass(frozen=True)
class EntityMatchingWorkload:
    """A simulated record-pair workload.

    Attributes
    ----------
    points:
        Similarity vectors with ground-truth match labels.
    match_rate:
        Fraction of pairs that are true matches.
    label_noise:
        Probability a ground-truth verdict is flipped (annotator error).
    """

    points: PointSet
    match_rate: float
    label_noise: float

    @property
    def n(self) -> int:
        """Number of record pairs."""
        return self.points.n

    @property
    def dim(self) -> int:
        """Number of similarity metrics."""
        return self.points.dim

    def oracle(self, budget: int = None) -> LabelOracle:
        """A probing oracle over this workload (the 'human inspector')."""
        return LabelOracle(self.points, budget=budget)

    def hidden(self) -> PointSet:
        """The active-setting view: coordinates only, labels hidden."""
        return self.points.with_hidden_labels()


def _beta_params(mean: float, concentration: float) -> Tuple[float, float]:
    """Beta(a, b) parameters with the given mean and a + b = concentration."""
    a = mean * concentration
    b = (1.0 - mean) * concentration
    return max(a, 1e-3), max(b, 1e-3)


def generate_entity_matching(n_pairs: int, dim: int = 3,
                             match_rate: float = 0.3,
                             label_noise: float = 0.05,
                             match_similarity: float = 0.75,
                             nonmatch_similarity: float = 0.35,
                             concentration: float = 12.0,
                             quantize: int = 0,
                             rng: RngLike = None) -> EntityMatchingWorkload:
    """Simulate ``n_pairs`` record pairs with ``dim`` similarity metrics.

    Parameters
    ----------
    n_pairs:
        Number of candidate pairs (the sample set ``S`` of Section 1.1).
    dim:
        Number of similarity metrics (the paper's ``d``).
    match_rate:
        Fraction of candidate pairs that truly match.
    label_noise:
        Probability the revealed label contradicts the ground truth — the
        source of non-zero ``k*``.
    match_similarity / nonmatch_similarity:
        Mean similarity score per dimension for matches / non-matches.
    concentration:
        Beta concentration; larger values mean cleaner separation.
    quantize:
        When positive, round every similarity score to a grid of this many
        levels.  Practical matchers discretize scores (e.g. to 0.05 steps),
        which caps the dominance width — the parameter Theorems 2-3 charge
        for — far below the width of continuous scores.  ``0`` keeps the
        raw continuous scores.
    """
    if n_pairs < 0:
        raise ValueError("n_pairs must be non-negative")
    if dim < 1:
        raise ValueError("dim must be >= 1")
    if not 0 < match_rate < 1:
        raise ValueError("match_rate must be in (0, 1)")
    if not 0 <= label_noise < 0.5:
        raise ValueError("label_noise must be in [0, 0.5)")
    if not 0 < nonmatch_similarity < match_similarity < 1:
        raise ValueError(
            "need 0 < nonmatch_similarity < match_similarity < 1 for the "
            "monotone structure the workload is meant to exhibit"
        )
    gen = as_generator(rng)
    is_match = gen.random(n_pairs) < match_rate

    a_m, b_m = _beta_params(match_similarity, concentration)
    a_n, b_n = _beta_params(nonmatch_similarity, concentration)
    coords = np.empty((n_pairs, dim))
    for j in range(dim):
        match_scores = gen.beta(a_m, b_m, size=n_pairs)
        nonmatch_scores = gen.beta(a_n, b_n, size=n_pairs)
        coords[:, j] = np.where(is_match, match_scores, nonmatch_scores)

    if quantize < 0:
        raise ValueError("quantize must be non-negative")
    if quantize:
        coords = np.round(coords * quantize) / quantize

    labels = is_match.astype(np.int8)
    flips = gen.random(n_pairs) < label_noise
    labels = np.where(flips, 1 - labels, labels).astype(np.int8)

    return EntityMatchingWorkload(
        points=PointSet(coords, labels),
        match_rate=match_rate,
        label_noise=label_noise,
    )
