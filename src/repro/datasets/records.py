"""Record-linkage simulation with real similarity functions (Section 1.1).

The paper's motivating pipeline: two databases describe overlapping
entities; candidate record pairs are scored on ``d`` similarity metrics;
a monotone classifier turns scores into match / non-match verdicts.  The
other workload generators fabricate score vectors directly; this module
simulates the *whole* pipeline from strings:

1. generate ground-truth entities (person-like records: name, city,
   zip, birth year);
2. derive two noisy observations per entity (typos, dropped tokens,
   swapped fields, year off-by-one) — the two "databases";
3. form candidate pairs (all true pairs + random non-matching pairs,
   mimicking a blocking stage);
4. score each pair with from-scratch similarity functions — token
   Jaccard, character-trigram Jaccard, normalized Levenshtein, numeric
   proximity — yielding the similarity vectors the classifiers consume.

The resulting labels are *not* exactly monotone in the scores (typos can
make true matches look dissimilar), which is precisely why ``k* > 0``
and why the paper's agnostic guarantees matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .._util import RngLike, as_generator
from ..core.points import PointSet

__all__ = [
    "Record",
    "RecordPairWorkload",
    "token_jaccard",
    "trigram_jaccard",
    "normalized_levenshtein",
    "numeric_proximity",
    "generate_record_linkage",
]

_FIRST_NAMES = (
    "james mary robert patricia john jennifer michael linda david barbara "
    "william elizabeth richard susan joseph jessica thomas sarah charles "
    "karen lisa nancy daniel betty matthew margaret anthony sandra mark "
    "ashley donald kimberly steven emily paul donna andrew michelle "
).split()

_LAST_NAMES = (
    "smith johnson williams brown jones garcia miller davis rodriguez "
    "martinez hernandez lopez gonzalez wilson anderson thomas taylor moore "
    "jackson martin lee perez thompson white harris sanchez clark ramirez "
    "lewis robinson walker young allen king wright scott torres nguyen hill "
).split()

_CITIES = (
    "springfield riverton fairview greenville bristol clinton georgetown "
    "salem madison franklin arlington ashland burlington clayton dayton "
    "dover hudson lebanon milton newport oxford princeton shelby winchester "
).split()


@dataclass(frozen=True)
class Record:
    """One database record describing a person-like entity."""

    entity_id: int
    name: str
    city: str
    zip_code: str
    birth_year: int


# ----------------------------------------------------------------------
# Similarity functions (all mapped to [0, 1], higher = more similar)
# ----------------------------------------------------------------------

def token_jaccard(a: str, b: str) -> float:
    """Jaccard similarity of whitespace token sets."""
    sa, sb = set(a.split()), set(b.split())
    if not sa and not sb:
        return 1.0
    if not sa or not sb:
        return 0.0
    return len(sa & sb) / len(sa | sb)


def _trigrams(text: str) -> set:
    padded = f"  {text} "
    return {padded[i:i + 3] for i in range(len(padded) - 2)}


def trigram_jaccard(a: str, b: str) -> float:
    """Jaccard similarity of character trigram sets (typo-tolerant)."""
    ta, tb = _trigrams(a), _trigrams(b)
    if not ta and not tb:
        return 1.0
    if not ta or not tb:
        return 0.0
    return len(ta & tb) / len(ta | tb)


def normalized_levenshtein(a: str, b: str) -> float:
    """``1 - edit_distance / max_len``: classic string closeness."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    # Standard two-row DP.
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            current.append(min(
                previous[j] + 1,          # deletion
                current[j - 1] + 1,       # insertion
                previous[j - 1] + (ca != cb),  # substitution
            ))
        previous = current
    return 1.0 - previous[-1] / max(len(a), len(b))


def numeric_proximity(a: float, b: float, scale: float) -> float:
    """``max(0, 1 - |a - b| / scale)``: proximity of numeric fields."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    return max(0.0, 1.0 - abs(a - b) / scale)


# ----------------------------------------------------------------------
# Corruption model
# ----------------------------------------------------------------------

def _typo(text: str, gen: np.random.Generator) -> str:
    """One character-level corruption: substitute, delete, or transpose."""
    if len(text) < 2:
        return text
    kind = gen.integers(0, 3)
    pos = int(gen.integers(0, len(text) - 1))
    if kind == 0:  # substitute
        letter = chr(ord("a") + int(gen.integers(0, 26)))
        return text[:pos] + letter + text[pos + 1:]
    if kind == 1:  # delete
        return text[:pos] + text[pos + 1:]
    return text[:pos] + text[pos + 1] + text[pos] + text[pos + 2:]  # transpose


def _corrupt_record(record: Record, gen: np.random.Generator,
                    severity: float) -> Record:
    """A noisy re-observation of the same entity."""
    name = record.name
    if gen.random() < severity:
        name = _typo(name, gen)
    if gen.random() < severity * 0.6:
        name = _typo(name, gen)
    if gen.random() < severity * 0.3:  # drop a token (e.g. middle name)
        tokens = name.split()
        if len(tokens) > 1:
            drop = int(gen.integers(0, len(tokens)))
            name = " ".join(t for k, t in enumerate(tokens) if k != drop)
    city = record.city
    if gen.random() < severity * 0.5:
        city = _typo(city, gen)
    zip_code = record.zip_code
    if gen.random() < severity * 0.4:
        zip_code = _typo(zip_code, gen)
    birth_year = record.birth_year
    if gen.random() < severity * 0.3:
        birth_year += int(gen.integers(-2, 3))
    return Record(record.entity_id, name, city, zip_code, birth_year)


def _random_record(entity_id: int, gen: np.random.Generator) -> Record:
    name = f"{gen.choice(_FIRST_NAMES)} {gen.choice(_LAST_NAMES)}"
    if gen.random() < 0.3:  # middle initial
        initial = chr(ord("a") + int(gen.integers(0, 26)))
        first, last = name.split()
        name = f"{first} {initial} {last}"
    return Record(
        entity_id=entity_id,
        name=name,
        city=str(gen.choice(_CITIES)),
        zip_code=f"{int(gen.integers(10000, 99999))}",
        birth_year=int(gen.integers(1940, 2005)),
    )


# ----------------------------------------------------------------------
# Workload assembly
# ----------------------------------------------------------------------

def _score_pair(a: Record, b: Record) -> Tuple[float, float, float, float]:
    return (
        token_jaccard(a.name, b.name),
        trigram_jaccard(a.name, b.name),
        max(trigram_jaccard(a.city, b.city),
            normalized_levenshtein(a.zip_code, b.zip_code)),
        numeric_proximity(a.birth_year, b.birth_year, scale=10.0),
    )


@dataclass(frozen=True)
class RecordPairWorkload:
    """The assembled record-linkage workload.

    ``points`` carries the 4-D similarity vectors and match labels;
    ``left``/``right`` hold the paired records so examples can show the
    underlying strings; ``pair_records[i]`` gives the record pair behind
    point ``i``.
    """

    points: PointSet
    pair_records: Tuple[Tuple[Record, Record], ...]

    @property
    def n(self) -> int:
        """Number of candidate pairs."""
        return self.points.n

    def hidden(self) -> PointSet:
        """Active-setting view (labels hidden)."""
        return self.points.with_hidden_labels()


def generate_record_linkage(n_entities: int = 500,
                            nonmatch_ratio: float = 3.0,
                            severity: float = 0.5,
                            namesake_fraction: float = 0.15,
                            quantize: int = 20,
                            rng: RngLike = None) -> RecordPairWorkload:
    """Simulate the full Section 1.1 record-linkage pipeline.

    Parameters
    ----------
    n_entities:
        Ground-truth entities; each contributes one matching pair (its
        two noisy observations).
    nonmatch_ratio:
        Non-matching candidate pairs per matching pair (the blocking
        stage's output skew).
    severity:
        Corruption severity in [0, 1]; higher = noisier observations =
        larger ``k*``.
    namesake_fraction:
        Fraction of entities that are *namesakes* of another entity
        (identical full name, different person).  Blocking stages surface
        exactly such pairs as candidates, and they are the reason real
        workloads have ``k* > 0``: a namesake non-match can outscore a
        typo-ridden true match on every metric.
    quantize:
        Round similarity scores to this many levels (0 = raw); practical
        systems discretize, which keeps the dominance width manageable.
    """
    if n_entities < 1:
        raise ValueError("n_entities must be >= 1")
    if nonmatch_ratio < 0:
        raise ValueError("nonmatch_ratio must be non-negative")
    if not 0 <= severity <= 1:
        raise ValueError("severity must be in [0, 1]")
    if not 0 <= namesake_fraction <= 1:
        raise ValueError("namesake_fraction must be in [0, 1]")
    gen = as_generator(rng)

    base = [_random_record(e, gen) for e in range(n_entities)]
    # Plant namesakes: distinct people sharing a full name (and sometimes
    # a city) — the hard negatives a blocking stage would surface.
    namesake_of: List[int] = []
    n_namesakes = int(n_entities * namesake_fraction)
    for e in range(1, min(n_entities, n_namesakes + 1)):
        donor = int(gen.integers(0, e))
        record = base[e]
        city = base[donor].city if gen.random() < 0.5 else record.city
        base[e] = Record(record.entity_id, base[donor].name, city,
                         record.zip_code, record.birth_year)
        namesake_of.append(e)

    left = [_corrupt_record(r, gen, severity * 0.5) for r in base]
    right = [_corrupt_record(r, gen, severity) for r in base]

    pairs: List[Tuple[Record, Record]] = []
    labels: List[int] = []
    for e in range(n_entities):
        pairs.append((left[e], right[e]))
        labels.append(1)
    n_nonmatch = int(n_entities * nonmatch_ratio)
    for k in range(n_nonmatch):
        if namesake_of and k % 2 == 0:
            # Hard negative: pair a namesake with its donor's observation.
            e = int(gen.choice(namesake_of))
            donor = next(d for d in range(n_entities)
                         if d != e and base[d].name == base[e].name)
            i, j = (e, donor) if gen.random() < 0.5 else (donor, e)
        else:
            i = int(gen.integers(0, n_entities))
            j = int(gen.integers(0, n_entities))
            while j == i:
                j = int(gen.integers(0, n_entities))
        pairs.append((left[i], right[j]))
        labels.append(0)

    coords = np.asarray([_score_pair(a, b) for a, b in pairs], dtype=float)
    if quantize:
        coords = np.round(coords * quantize) / quantize
    order = gen.permutation(len(pairs))
    coords = coords[order]
    labels_arr = np.asarray(labels, dtype=np.int8)[order]
    shuffled_pairs = tuple(pairs[i] for i in order)
    return RecordPairWorkload(PointSet(coords, labels_arr), shuffled_pairs)
