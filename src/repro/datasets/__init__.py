"""Workload generators backing the experiments.

* :mod:`.synthetic` — planted monotone labelings with controllable noise,
  width-controlled point sets, and 1-D threshold workloads;
* :mod:`.figures` — the paper's Figure 1 / Figure 2 worked example with its
  published answers (``k* = 3``, ``w = 6``, weighted optimum ``104``);
* :mod:`.entity_matching` — a record-pair similarity simulator standing in
  for the proprietary entity-matching corpora the paper motivates with.
"""

from .entity_matching import EntityMatchingWorkload, generate_entity_matching
from .records import Record, RecordPairWorkload, generate_record_linkage
from .figures import (
    FIGURE1_OPTIMAL_UNWEIGHTED_ERROR,
    FIGURE1_OPTIMAL_WEIGHTED_ERROR,
    FIGURE1_WIDTH,
    figure1_point_set,
    figure1_weighted_point_set,
)
from .synthetic import (
    adversarial_points,
    correlated_monotone,
    planted_monotone,
    planted_threshold_1d,
    staircase,
    width_controlled,
)

__all__ = [
    "planted_threshold_1d",
    "planted_monotone",
    "width_controlled",
    "adversarial_points",
    "staircase",
    "correlated_monotone",
    "figure1_point_set",
    "figure1_weighted_point_set",
    "FIGURE1_WIDTH",
    "FIGURE1_OPTIMAL_UNWEIGHTED_ERROR",
    "FIGURE1_OPTIMAL_WEIGHTED_ERROR",
    "EntityMatchingWorkload",
    "generate_entity_matching",
    "Record",
    "RecordPairWorkload",
    "generate_record_linkage",
]
