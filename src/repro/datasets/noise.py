"""Label-noise models for robustness studies.

The paper's guarantees are *agnostic*: nothing is assumed about how the
labeling deviates from monotone.  Different deviation processes stress
the algorithms very differently though — uniform flips scatter conflicts
everywhere, boundary-concentrated flips pile the uncertainty exactly
where the Section 3 recursion zooms in, and adversarial flips maximize
`k*` for a given flip budget.  This module provides those processes as
composable transforms over a clean labeling, and the E13 experiment
measures probing cost and error ratios under each.

All transforms take and return a :class:`~repro.core.points.PointSet`
(labels replaced, coordinates untouched) and are deterministic given a
seed.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from .._util import RngLike, as_generator
from ..core.points import PointSet

__all__ = [
    "uniform_flip",
    "boundary_concentrated_flip",
    "asymmetric_flip",
    "adversarial_pairs",
    "NOISE_MODELS",
]


def uniform_flip(points: PointSet, rate: float, rng: RngLike = None) -> PointSet:
    """Flip each label independently with probability ``rate``."""
    if not 0 <= rate < 0.5:
        raise ValueError(f"rate must be in [0, 0.5); got {rate}")
    points.require_full_labels()
    gen = as_generator(rng)
    flips = gen.random(points.n) < rate
    labels = np.where(flips, 1 - points.labels, points.labels)
    return points.replace(labels=labels)


def boundary_concentrated_flip(points: PointSet, rate: float,
                               rng: RngLike = None,
                               concentration: float = 4.0) -> PointSet:
    """Flip labels with probability decaying away from the class boundary.

    The flip probability of a point is proportional to
    ``exp(-concentration * margin)`` where ``margin`` is the distance (in
    coordinate-sum units, normalized) to the nearest oppositely-labeled
    point's sum — a cheap margin proxy.  The total expected flip count is
    normalized to ``rate * n``, so models are comparable at equal rates.
    """
    if not 0 <= rate < 0.5:
        raise ValueError(f"rate must be in [0, 0.5); got {rate}")
    if concentration <= 0:
        raise ValueError("concentration must be positive")
    points.require_full_labels()
    gen = as_generator(rng)
    n = points.n
    if n == 0 or rate == 0:
        return points.replace(labels=points.labels)
    sums = points.coords.sum(axis=1)
    ones = sums[points.labels == 1]
    zeros = sums[points.labels == 0]
    if len(ones) == 0 or len(zeros) == 0:
        return uniform_flip(points, rate, gen)
    # Margin proxy: distance to the opposite class's nearest coordinate sum.
    margins = np.empty(n)
    for i in range(n):
        opposite = zeros if points.labels[i] == 1 else ones
        margins[i] = np.abs(opposite - sums[i]).min()
    spread = margins.max() or 1.0
    raw = np.exp(-concentration * margins / spread)
    probabilities = raw * (rate * n / raw.sum())
    probabilities = np.clip(probabilities, 0.0, 0.49)
    flips = gen.random(n) < probabilities
    labels = np.where(flips, 1 - points.labels, points.labels)
    return points.replace(labels=labels)


def asymmetric_flip(points: PointSet, rate_0_to_1: float, rate_1_to_0: float,
                    rng: RngLike = None) -> PointSet:
    """Class-conditional noise: different flip rates per class.

    Models annotator bias — e.g. humans rarely call a true match a
    non-match but often miss borderline matches.
    """
    for rate in (rate_0_to_1, rate_1_to_0):
        if not 0 <= rate < 0.5:
            raise ValueError(f"rates must be in [0, 0.5); got {rate}")
    points.require_full_labels()
    gen = as_generator(rng)
    rolls = gen.random(points.n)
    rates = np.where(points.labels == 0, rate_0_to_1, rate_1_to_0)
    flips = rolls < rates
    labels = np.where(flips, 1 - points.labels, points.labels)
    return points.replace(labels=labels)


def adversarial_pairs(points: PointSet, budget: int,
                      rng: RngLike = None) -> PointSet:
    """Adversarial noise: each flip is guaranteed to cost the optimum.

    Greedily picks comparable pairs with (currently) consistent labels and
    flips one endpoint to create a conflict, making ``k*`` grow roughly
    one per flip (pairs are chosen vertex-disjoint, so conflicts cannot be
    repaired for free).  Stops early if it runs out of candidate pairs.
    """
    if budget < 0:
        raise ValueError("budget must be non-negative")
    points.require_full_labels()
    gen = as_generator(rng)
    labels = points.labels.copy()
    n = points.n
    weak = points.weak_dominance_matrix()
    used = np.zeros(n, dtype=bool)
    flipped = 0
    order = gen.permutation(n)
    for i in order:
        if flipped >= budget:
            break
        if used[i]:
            continue
        # Find an unused comparable partner with the same-side labels such
        # that flipping i creates a violation: i above j with labels
        # becoming 0 over 1, or below with 1 under 0.
        candidates = np.flatnonzero((weak[i] | weak[:, i]) & ~used)
        for j in candidates:
            if j == i or used[j]:
                continue
            if weak[i, j] and labels[i] == 1 and labels[j] == 1:
                labels[i] = 0  # now a 0 dominates a 1
            elif weak[j, i] and labels[i] == 0 and labels[j] == 0:
                labels[i] = 1  # now a 0 (j) dominates a 1 (i)
            else:
                continue
            used[i] = used[j] = True
            flipped += 1
            break
    return points.replace(labels=labels)


#: Registry used by the robustness experiment: name -> transform(points,
#: rate, rng).
NOISE_MODELS: Dict[str, Callable[..., PointSet]] = {
    "uniform": uniform_flip,
    "boundary": boundary_concentrated_flip,
    "asymmetric": lambda points, rate, rng=None: asymmetric_flip(
        points, rate / 2, rate * 3 / 2 if rate * 3 / 2 < 0.5 else 0.49, rng),
}
