"""Synthetic workload generators.

Three families drive the experiments:

* :func:`planted_threshold_1d` — 1-D values with a planted threshold and
  label noise (the Lemma 9 setting);
* :func:`planted_monotone` — ``d``-dimensional points labeled by a random
  monotone ground-truth function, then flipped with probability ``noise``;
  the flip count upper-bounds ``k*``, so error ratios are measurable;
* :func:`width_controlled` — point sets whose dominance width is *exactly*
  a requested ``w``, which the Theorem 2 probing-cost sweeps need.  The
  construction places ``w`` parallel diagonal chains in 2-D with offsets
  large enough that points on different chains are never comparable.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._util import RngLike, as_generator
from ..core.classifier import UpsetClassifier
from ..core.points import PointSet

__all__ = [
    "planted_threshold_1d",
    "planted_monotone",
    "width_controlled",
    "adversarial_points",
    "staircase",
    "correlated_monotone",
]


def planted_threshold_1d(n: int, threshold: float = 0.5, noise: float = 0.0,
                         rng: RngLike = None,
                         weights: Optional[str] = None) -> PointSet:
    """1-D uniform values in [0, 1) labeled by ``x > threshold`` plus noise.

    ``noise`` is the independent label-flip probability; the expected
    optimal error is at most ``noise * n``.  ``weights='random'`` draws
    Exp(1)-distributed weights for weighted-problem workloads.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if not 0 <= noise < 0.5:
        raise ValueError(f"noise must be in [0, 0.5); got {noise}")
    gen = as_generator(rng)
    values = gen.random(n)
    labels = (values > threshold).astype(np.int8)
    flips = gen.random(n) < noise
    labels = np.where(flips, 1 - labels, labels)
    weight_arr = None
    if weights == "random":
        weight_arr = gen.exponential(1.0, size=n) + 1e-3
    elif weights is not None:
        raise ValueError(f"weights must be None or 'random'; got {weights!r}")
    return PointSet(values.reshape(-1, 1), labels, weight_arr)


def _random_monotone_truth(dim: int, num_anchors: int,
                           gen: np.random.Generator) -> UpsetClassifier:
    """A random monotone ground-truth function: the upset of random anchors."""
    anchors = gen.random((num_anchors, dim)) * 0.8 + 0.1
    return UpsetClassifier(anchors)


def planted_monotone(n: int, dim: int, noise: float = 0.0,
                     num_anchors: int = 4, rng: RngLike = None,
                     weights: Optional[str] = None) -> PointSet:
    """``d``-dim points labeled by a random monotone function plus noise.

    The ground truth is the indicator of the upward closure of
    ``num_anchors`` random anchor points — a genuinely multi-dimensional
    monotone boundary (not a linear one), matching the paper's model where
    only monotonicity is assumed.
    """
    if dim < 1:
        raise ValueError("dim must be >= 1")
    if not 0 <= noise < 0.5:
        raise ValueError(f"noise must be in [0, 0.5); got {noise}")
    gen = as_generator(rng)
    coords = gen.random((n, dim))
    truth = _random_monotone_truth(dim, num_anchors, gen)
    labels = truth.classify_matrix(coords)
    flips = gen.random(n) < noise
    labels = np.where(flips, 1 - labels, labels).astype(np.int8)
    weight_arr = None
    if weights == "random":
        weight_arr = gen.exponential(1.0, size=n) + 1e-3
    elif weights is not None:
        raise ValueError(f"weights must be None or 'random'; got {weights!r}")
    return PointSet(coords, labels, weight_arr)


def width_controlled(n: int, width: int, noise: float = 0.0,
                     boundary: float = 0.5, rng: RngLike = None) -> PointSet:
    """A 2-D point set with dominance width *exactly* ``width``.

    Construction: chain ``j`` consists of points
    ``(t + j * D, t - j * D)`` for ``t = 1 .. m_j`` where ``D > max m_j``.
    Within a chain, larger ``t`` dominates smaller ``t``.  Across chains
    ``j > j'``, the first coordinate is strictly larger but the second is
    strictly smaller, so no two points on different chains are comparable —
    the ``width`` chain-starts form an anti-chain and Dilworth gives width
    exactly ``width`` (assuming every chain is non-empty, i.e.
    ``n >= width``).

    Labels: within chain ``j``, positions above ``boundary * m_j`` get
    label 1, then flipped with probability ``noise``.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    if n < width:
        raise ValueError(f"need n >= width; got n={n}, width={width}")
    if not 0 <= noise < 0.5:
        raise ValueError(f"noise must be in [0, 0.5); got {noise}")
    gen = as_generator(rng)
    base = n // width
    remainder = n % width
    sizes = [base + (1 if j < remainder else 0) for j in range(width)]
    offset = float(max(sizes) + 2)

    coords = np.empty((n, 2))
    labels = np.empty(n, dtype=np.int8)
    row = 0
    for j, m in enumerate(sizes):
        ts = np.arange(1, m + 1, dtype=float)
        coords[row:row + m, 0] = ts + j * offset
        coords[row:row + m, 1] = ts - j * offset
        clean = (ts > boundary * m).astype(np.int8)
        flips = gen.random(m) < noise
        labels[row:row + m] = np.where(flips, 1 - clean, clean)
        row += m
    # Shuffle so algorithms cannot exploit construction order.
    perm = gen.permutation(n)
    return PointSet(coords[perm], labels[perm])


def adversarial_points(n: int, kind: str = "00", anomaly_pair: int = 1) -> PointSet:
    """Convenience re-export of the Section 6 adversarial inputs."""
    from ..core.lowerbound import adversarial_input

    return adversarial_input(n, anomaly_pair, kind)


def staircase(n: int, steps: int, noise: float = 0.0,
              rng: RngLike = None) -> PointSet:
    """A 2-D staircase boundary: the hardest shape for axis thresholds.

    The positive region is the upset of ``steps`` anchor points arranged
    on an anti-diagonal staircase, so any single-coordinate threshold
    misclassifies a constant fraction while the monotone optimum is
    ``~ noise * n``.  Useful for showing why genuinely multi-dimensional
    monotone classifiers (Theorem 4 / Theorem 2 outputs) beat per-feature
    cutoffs.
    """
    if steps < 1:
        raise ValueError("steps must be >= 1")
    if not 0 <= noise < 0.5:
        raise ValueError(f"noise must be in [0, 0.5); got {noise}")
    gen = as_generator(rng)
    coords = gen.random((n, 2))
    # Anchors (a_k, b_k): a ascending, b descending across [0.1, 0.9].
    ks = np.arange(steps)
    anchors = np.stack([
        0.1 + 0.8 * ks / max(1, steps - 1) if steps > 1 else np.array([0.5]),
        0.9 - 0.8 * ks / max(1, steps - 1) if steps > 1 else np.array([0.5]),
    ], axis=1)
    above = np.any(
        np.all(coords[:, None, :] >= anchors[None, :, :], axis=2), axis=1)
    labels = above.astype(np.int8)
    flips = gen.random(n) < noise
    labels = np.where(flips, 1 - labels, labels).astype(np.int8)
    return PointSet(coords, labels)


def correlated_monotone(n: int, dim: int, correlation: float = 0.8,
                        noise: float = 0.05, rng: RngLike = None) -> PointSet:
    """Points with correlated coordinates — narrow-width workloads.

    Coordinates share a latent factor with weight ``correlation``; as the
    correlation rises the points concentrate around the diagonal, most
    pairs become comparable, and the dominance width falls — the regime
    where the Theorem 2 algorithm is at its best.  Labels come from a
    threshold on the latent factor plus flip noise.
    """
    if dim < 1:
        raise ValueError("dim must be >= 1")
    if not 0 <= correlation <= 1:
        raise ValueError(f"correlation must be in [0, 1]; got {correlation}")
    if not 0 <= noise < 0.5:
        raise ValueError(f"noise must be in [0, 0.5); got {noise}")
    gen = as_generator(rng)
    latent = gen.random(n)
    independent = gen.random((n, dim))
    coords = correlation * latent[:, None] + (1 - correlation) * independent
    labels = (latent > 0.5).astype(np.int8)
    flips = gen.random(n) < noise
    labels = np.where(flips, 1 - labels, labels).astype(np.int8)
    return PointSet(coords, labels)
