"""The paper's Figure 1 / Figure 2 worked example, reconstructed.

The paper never prints coordinates, but its text pins down everything the
algorithms can observe:

* labels — black (1): p1, p4, p9, p10, p12, p13, p14, p16; white (0): p2,
  p3, p5, p6, p7, p8, p11, p15 (read off the contending sets of Figure 2
  and the optimal-classifier discussion of Section 1.1);
* a 6-chain decomposition (Section 2): C1 = {p1, p2, p3, p4, p10},
  C2 = {p11}, C3 = {p5, p9, p12}, C4 = {p16}, C5 = {p13},
  C6 = {p6, p7, p8, p14, p15}, each listed in ascending dominance order;
* the maximum anti-chain {p10, p11, p12, p13, p14, p16}, so width w = 6;
* contending points (Figure 2(a)): label-0 {p2, p3, p5, p11, p15} and
  label-1 {p1, p4, p9, p13, p14};
* answers: optimal unweighted error k* = 3 (misclassify p1, p11, p15);
  with weight(p1) = 100, weight(p11) = weight(p15) = 60 and all other
  weights 1, the optimal weighted error is 104 (misclassify p1, p4, p9,
  p13, p14), achieved by mapping exactly {p10, p12, p16} to 1.

The coordinates below realize every one of those constraints; the E1/E2
tests verify all of them computationally, so the example is a faithful
executable reconstruction of the figure.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..core.points import PointSet

__all__ = [
    "figure1_point_set",
    "figure1_weighted_point_set",
    "FIGURE1_WIDTH",
    "FIGURE1_OPTIMAL_UNWEIGHTED_ERROR",
    "FIGURE1_OPTIMAL_WEIGHTED_ERROR",
    "FIGURE1_CHAINS",
    "FIGURE1_ANTICHAIN",
    "FIGURE1_CONTENDING",
]

#: Published answers the reconstruction must reproduce.
FIGURE1_WIDTH = 6
FIGURE1_OPTIMAL_UNWEIGHTED_ERROR = 3
FIGURE1_OPTIMAL_WEIGHTED_ERROR = 104.0

#: The paper's chain decomposition (point names, ascending dominance order).
FIGURE1_CHAINS: List[List[str]] = [
    ["p1", "p2", "p3", "p4", "p10"],
    ["p11"],
    ["p5", "p9", "p12"],
    ["p16"],
    ["p13"],
    ["p6", "p7", "p8", "p14", "p15"],
]

#: The size-6 anti-chain witnessing w = 6.
FIGURE1_ANTICHAIN = ["p10", "p11", "p12", "p13", "p14", "p16"]

#: Contending points (Figure 2(a)), by label.
FIGURE1_CONTENDING = {
    0: ["p2", "p3", "p5", "p11", "p15"],
    1: ["p1", "p4", "p9", "p13", "p14"],
}

# Coordinates (x, y) and labels; names follow the paper.
_FIGURE1_DATA: Dict[str, tuple] = {
    #        x     y    label
    "p1":  (1.0, 1.0, 1),
    "p2":  (1.5, 1.5, 0),
    "p3":  (2.0, 2.5, 0),
    "p4":  (2.5, 3.5, 1),
    "p5":  (3.5, 2.0, 0),
    "p6":  (5.0, 0.5, 0),
    "p7":  (5.5, 0.8, 0),
    "p8":  (6.0, 0.9, 0),
    "p9":  (4.0, 3.0, 1),
    "p10": (3.0, 7.5, 1),
    "p11": (4.5, 6.5, 0),
    "p12": (5.0, 5.5, 1),
    "p13": (5.5, 5.0, 1),
    "p14": (6.5, 4.9, 1),
    "p15": (7.0, 5.2, 0),
    "p16": (7.5, 4.8, 1),
}

#: Weights of Figure 1(b): p1 -> 100, p11 and p15 -> 60, everything else 1.
_FIGURE1_WEIGHTS: Dict[str, float] = {"p1": 100.0, "p11": 60.0, "p15": 60.0}


def _names_in_order() -> List[str]:
    return [f"p{i}" for i in range(1, 17)]


def figure1_point_set() -> PointSet:
    """The unit-weight input of Figure 1(a); point ``p{i}`` has index ``i-1``."""
    names = _names_in_order()
    coords = np.asarray([[_FIGURE1_DATA[n][0], _FIGURE1_DATA[n][1]] for n in names])
    labels = np.asarray([_FIGURE1_DATA[n][2] for n in names], dtype=np.int8)
    return PointSet(coords, labels, names=names)


def figure1_weighted_point_set() -> PointSet:
    """The weighted input of Figure 1(b) (same points, weights 100/60/1)."""
    base = figure1_point_set()
    weights = [
        _FIGURE1_WEIGHTS.get(name, 1.0) for name in _names_in_order()
    ]
    return base.replace(weights=weights)
