"""Session-scoped metrics registry, timeline tracing, and the no-op path.

Two recorders implement the same recording protocol:

* :class:`MetricsRegistry` — collects counters, gauges, histograms, timers,
  hierarchical spans, and (when tracing is enabled) timeline trace events
  for one run;
* :class:`NullRecorder` — every method is a no-op and ``enabled`` is
  ``False``, so instrumented hot loops can guard a whole block behind a
  single attribute check (``if rec.enabled: ...``) and pay nothing when
  metrics are off.

The active recorder lives in a :mod:`contextvars` variable.  Code that
wants telemetry opens a session::

    from repro import obs

    with obs.metrics_session() as registry:
        run_pipeline()
    print(obs.report(registry))

Everything instrumented below the ``with`` — oracle probes, recursion
levels, matching rounds, flow pushes — lands in ``registry``.  Because the
scope is a contextvar, nested sessions shadow outer ones and concurrent
tasks (threads with distinct contexts, asyncio tasks) each see their own
registry rather than colliding in a process-global singleton.

Timeline tracing (``metrics_session(trace=True)``) additionally records
one :class:`TraceEvent`-shaped document per completed span — wall-aligned
monotonic timestamps, process/thread ids, span identity/parentage, and
typed attributes — plus instant events (:meth:`MetricsRegistry.event`).
The buffer exports to Chrome trace-event JSON via
:func:`repro.obs.trace.to_chrome_trace` and feeds the phase profiler
(:mod:`repro.obs.prof`); ``docs/observability.md`` documents the format.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional, Union

from .metrics import Counter, Gauge, Histogram, Timer

__all__ = [
    "MetricsRegistry",
    "NullRecorder",
    "Span",
    "NULL_RECORDER",
    "recorder",
    "enabled",
    "metrics_session",
]

Number = Union[int, float]

#: Separator between nested span names in a span path.
SPAN_SEP = "/"

#: Default cap on buffered trace events per registry; past it, events are
#: dropped (counted in ``trace_dropped``) rather than exhausting memory.
TRACE_EVENT_LIMIT = 200_000


class _NullContext:
    """Reusable no-op context manager returned by the disabled recorder."""

    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None

    def set_attr(self, key: str, value: Any) -> None:
        """No-op attribute setter (mirrors :meth:`Span.set_attr`)."""


_NULL_CONTEXT = _NullContext()


class NullRecorder:
    """The disabled path: every operation is a no-op.

    A single module-level instance (:data:`NULL_RECORDER`) is the contextvar
    default, so ``recorder()`` never returns ``None`` and call sites never
    branch on existence — only on the ``enabled`` attribute when they want
    to skip preparatory work.
    """

    __slots__ = ()

    enabled = False
    trace = False

    def incr(self, name: str, amount: Number = 1) -> None:
        pass

    def gauge(self, name: str, value: Number) -> None:
        pass

    def gauge_max(self, name: str, value: Number) -> None:
        pass

    def observe(self, name: str, value: Number) -> None:
        pass

    def record_time(self, name: str, seconds: float) -> None:
        pass

    def timer(self, name: str) -> _NullContext:
        return _NULL_CONTEXT

    def span(self, name: str) -> _NullContext:
        return _NULL_CONTEXT

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def merge_snapshot(
        self,
        snapshot: Dict[str, Any],
        *,
        span_prefix: str = "",
        gauge_merge: str = "last",
    ) -> None:
        pass

    def __repr__(self) -> str:
        return "NullRecorder()"


NULL_RECORDER = NullRecorder()


class Span:
    """One hierarchical phase of a run (``active/chain[3]/recurse`` ...).

    Entering pushes the span's name onto the owning registry's span stack;
    the full path (stack joined with ``/``) keys a duration histogram, so
    re-entering the same phase accumulates count and total wall-clock.

    When the registry traces, exiting additionally records a timeline
    event carrying wall-aligned start/end timestamps, the process and
    thread id, a session-unique span id, the parent span's id, and any
    typed attributes attached via :meth:`set_attr`.  A span that exits via
    an exception still records (the ``error`` attribute carries the
    exception type), so trace files never contain dangling spans.
    """

    __slots__ = ("_registry", "name", "path", "elapsed", "attrs",
                 "span_id", "parent_id", "_start_ns")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self.name = name
        self.path: Optional[str] = None
        self.elapsed: Optional[float] = None
        self.attrs: Optional[Dict[str, Any]] = None
        self.span_id: Optional[str] = None
        self.parent_id: Optional[str] = None
        self._start_ns: Optional[int] = None

    def set_attr(self, key: str, value: Any) -> None:
        """Attach a typed attribute (shown in trace viewers under ``args``)."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        registry = self._registry
        self.parent_id = registry.current_span_id
        self.span_id = registry._new_span_id()
        stack = registry._span_stack
        stack.append(self.name)
        registry._span_ids.append(self.span_id)
        self.path = SPAN_SEP.join(stack)
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        end_ns = time.perf_counter_ns()
        registry = self._registry
        start_ns = self._start_ns
        if start_ns is None:
            raise RuntimeError("Span exited without __enter__")
        self.elapsed = (end_ns - start_ns) / 1e9
        if self.path is not None:
            registry._record_span(self.path, self.elapsed)
            if registry.trace:
                if exc_type is not None:
                    self.set_attr("error", exc_type.__name__)
                registry._append_trace({
                    "name": self.name,
                    "path": self.path,
                    "cat": "span",
                    "ts": registry._wall_ns(start_ns),
                    "dur": end_ns - start_ns,
                    "pid": registry._pid,
                    "tid": threading.get_native_id(),
                    "id": self.span_id,
                    "parent": self.parent_id,
                    "args": self.attrs,
                })
        registry._span_stack.pop()
        registry._span_ids.pop()

    def __repr__(self) -> str:
        return f"Span({self.path or self.name!r}, elapsed={self.elapsed!r})"


class MetricsRegistry:
    """Collects every metric emitted during one session.

    Metric names are free-form dotted strings (``oracle.probes``,
    ``flow.dinic.phases``); span paths are slash-joined (``active/solve``).
    The registry is not thread-safe by design — one registry per context,
    scoping handled by :func:`metrics_session`.

    ``trace=True`` turns on the timeline buffer: completed spans and
    instant events accumulate in :attr:`trace_events` (wall-aligned
    nanosecond timestamps, capped at ``trace_limit``).  Tracing rides on
    top of the always-on span duration histograms; with ``trace=False``
    span accounting behaves exactly as before and costs no buffering.
    """

    enabled = True

    __slots__ = (
        "name",
        "counters",
        "gauges",
        "histograms",
        "timers",
        "spans",
        "trace",
        "trace_limit",
        "trace_events",
        "trace_dropped",
        "_span_stack",
        "_span_ids",
        "_span_counter",
        "_pid",
        "_epoch_wall_ns",
        "_epoch_pc_ns",
    )

    def __init__(self, name: str = "session", *, trace: bool = False,
                 trace_limit: int = TRACE_EVENT_LIMIT) -> None:
        self.name = name
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.timers: Dict[str, Histogram] = {}
        self.spans: Dict[str, Histogram] = {}
        self.trace = bool(trace)
        self.trace_limit = int(trace_limit)
        self.trace_events: List[Dict[str, Any]] = []
        self.trace_dropped: int = 0
        self._span_stack: List[str] = []
        self._span_ids: List[str] = []
        self._span_counter = 0
        self._pid = os.getpid()
        # Epoch pair anchoring monotonic perf_counter readings to the wall
        # clock: event ts = epoch_wall + (pc - epoch_pc).  Workers on the
        # same host share the wall clock, which is what keeps merged
        # cross-process timelines aligned.
        self._epoch_wall_ns = time.time_ns()
        self._epoch_pc_ns = time.perf_counter_ns()

    # ------------------------------------------------------------------
    # Recording protocol (shared with NullRecorder)
    # ------------------------------------------------------------------

    def incr(self, name: str, amount: Number = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        counter.incr(amount)

    def gauge(self, name: str, value: Number) -> None:
        """Set gauge ``name`` to ``value``."""
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name)
        gauge.set(value)

    def gauge_max(self, name: str, value: Number) -> None:
        """Raise gauge ``name`` to ``value`` if larger (running maximum)."""
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name)
        gauge.set_max(value)

    def observe(self, name: str, value: Number) -> None:
        """Fold ``value`` into histogram ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(name)
        hist.observe(value)

    def record_time(self, name: str, seconds: float) -> None:
        """Fold a duration into timer ``name``."""
        hist = self.timers.get(name)
        if hist is None:
            hist = self.timers[name] = Histogram(name)
        hist.observe(seconds)

    def timer(self, name: str) -> Timer:
        """A context-manager stopwatch reporting into timer ``name``."""
        return Timer(name, sink=self.record_time)

    def span(self, name: str) -> Span:
        """A context manager tracing one hierarchical phase ``name``."""
        return Span(self, name)

    def event(self, name: str, **attrs: Any) -> None:
        """Record an instant timeline event (fault injected, retry, ...).

        No-op unless tracing is enabled: instant events exist for the
        timeline, not for aggregate metrics — pair with a counter when the
        aggregate matters.  The event is parented to the innermost open
        span and carries the current span path.
        """
        if not self.trace:
            return
        self._append_trace({
            "name": name,
            "path": self.span_path,
            "cat": "mark",
            "ts": self._wall_ns(time.perf_counter_ns()),
            "dur": None,
            "pid": self._pid,
            "tid": threading.get_native_id(),
            "id": self._new_span_id(),
            "parent": self.current_span_id,
            "args": attrs or None,
        })

    # ------------------------------------------------------------------
    # Trace internals
    # ------------------------------------------------------------------

    def _wall_ns(self, pc_ns: int) -> int:
        """Convert a ``perf_counter_ns`` reading to wall-clock nanoseconds."""
        return self._epoch_wall_ns + (pc_ns - self._epoch_pc_ns)

    def _new_span_id(self) -> str:
        self._span_counter += 1
        return f"{self._pid}:{self._span_counter}"

    def _append_trace(self, event: Dict[str, Any]) -> None:
        if len(self.trace_events) >= self.trace_limit:
            self.trace_dropped += 1
            return
        self.trace_events.append(event)

    # ------------------------------------------------------------------
    # Cross-process merging
    # ------------------------------------------------------------------

    @property
    def span_path(self) -> str:
        """The currently open span path (empty string outside any span)."""
        return SPAN_SEP.join(self._span_stack)

    @property
    def current_span_id(self) -> Optional[str]:
        """Id of the innermost open span (``None`` outside any span)."""
        return self._span_ids[-1] if self._span_ids else None

    def merge_snapshot(
        self,
        snapshot: Dict[str, Any],
        *,
        span_prefix: str = "",
        gauge_merge: str = "last",
    ) -> None:
        """Fold a :meth:`snapshot` document into this registry.

        This is how per-worker registries come home: a worker process runs
        inside its own :func:`metrics_session`, ships ``snapshot()`` back
        (plain picklable dicts), and the parent merges the documents in
        deterministic task order.  Counters and histogram/timer/span
        distributions are additive (quantile-exact — see
        :meth:`repro.obs.metrics.Histogram.merge_summary`); gauges follow
        ``gauge_merge``:

        * ``"last"`` — the later merge wins (matches serial last-write
          semantics when merges happen in task order);
        * ``"max"`` — keep the maximum (for high-water gauges such as
          ``active.recursion_depth`` that workers each report locally).

        ``span_prefix`` re-roots the worker's span paths under the parent's
        current phase (pass :attr:`span_path`), so a worker's ``chain[3]``
        lands at ``active/sample_chains/chain[3]`` exactly as it would have
        in a serial run.  Trace events ride along: their paths get the same
        prefix, worker-root spans are re-parented under the innermost span
        open *now* (the dispatching span, since merges happen inside it),
        and their timestamps/pids stay untouched — wall-clock alignment
        across processes is what makes the merged timeline coherent.
        """
        if gauge_merge not in ("last", "max"):
            raise ValueError(
                f"gauge_merge must be 'last' or 'max'; got {gauge_merge!r}"
            )
        counters: Dict[str, Number] = snapshot.get("counters", {})
        for name, value in counters.items():
            self.incr(name, value)
        gauges: Dict[str, Optional[Number]] = snapshot.get("gauges", {})
        for name, gauge_value in gauges.items():
            if gauge_value is None:
                continue
            if gauge_merge == "max":
                self.gauge_max(name, gauge_value)
            else:
                self.gauge(name, gauge_value)
        for family, store in (
            ("histograms", self.histograms),
            ("timers", self.timers),
            ("spans", self.spans),
        ):
            summaries: Dict[str, Dict[str, Any]] = snapshot.get(family, {})
            for name, summary in summaries.items():
                if family == "spans" and span_prefix:
                    name = f"{span_prefix}{SPAN_SEP}{name}"
                hist = store.get(name)
                if hist is None:
                    hist = store[name] = Histogram(name)
                hist.merge_summary(summary)
        if self.trace:
            anchor = self.current_span_id
            for event in snapshot.get("trace") or []:
                event = dict(event)
                if span_prefix and event.get("path"):
                    event["path"] = f"{span_prefix}{SPAN_SEP}{event['path']}"
                elif span_prefix:
                    event["path"] = span_prefix
                if event.get("parent") is None and anchor is not None:
                    event["parent"] = anchor
                self._append_trace(event)
            self.trace_dropped += int(snapshot.get("trace_dropped") or 0)

    def merge(
        self,
        other: "MetricsRegistry",
        *,
        span_prefix: str = "",
        gauge_merge: str = "last",
    ) -> None:
        """Fold another registry into this one (via its snapshot)."""
        self.merge_snapshot(
            other.snapshot(), span_prefix=span_prefix, gauge_merge=gauge_merge
        )

    # ------------------------------------------------------------------
    # Internals and inspection
    # ------------------------------------------------------------------

    def _record_span(self, path: str, seconds: float) -> None:
        hist = self.spans.get(path)
        if hist is None:
            hist = self.spans[path] = Histogram(path)
        hist.observe(seconds)

    def counter_value(self, name: str, default: Number = 0) -> Number:
        """Current value of counter ``name`` (``default`` if never hit)."""
        counter = self.counters.get(name)
        return counter.value if counter is not None else default

    def gauge_value(self, name: str) -> Optional[Number]:
        """Current value of gauge ``name``, or ``None`` if never set."""
        gauge = self.gauges.get(name)
        return gauge.value if gauge is not None else None

    def snapshot(self) -> dict:
        """A plain-dict, JSON-serializable view of everything recorded."""
        doc = {
            "session": self.name,
            "counters": {k: c.value for k, c in sorted(self.counters.items())},
            "gauges": {k: g.value for k, g in sorted(self.gauges.items())},
            "histograms": {k: h.snapshot() for k, h in sorted(self.histograms.items())},
            "timers": {k: h.snapshot() for k, h in sorted(self.timers.items())},
            "spans": {k: h.snapshot() for k, h in sorted(self.spans.items())},
        }
        if self.trace:
            doc["trace"] = list(self.trace_events)
            doc["trace_dropped"] = self.trace_dropped
        return doc

    def reset(self) -> None:
        """Drop everything recorded so far (keeps the session name)."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.timers.clear()
        self.spans.clear()
        self.trace_events.clear()
        self.trace_dropped = 0
        self._span_stack.clear()
        self._span_ids.clear()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(name={self.name!r}, "
            f"counters={len(self.counters)}, gauges={len(self.gauges)}, "
            f"spans={len(self.spans)}, trace={self.trace})"
        )


_ACTIVE: ContextVar[Union[MetricsRegistry, NullRecorder]] = ContextVar(
    "repro_obs_recorder", default=NULL_RECORDER
)


def recorder() -> Union[MetricsRegistry, NullRecorder]:
    """The recorder for the current context (never ``None``).

    Instrumented code calls this once per operation (or once per solve for
    tight loops), then either records unconditionally or guards a block
    with ``if rec.enabled:``.
    """
    return _ACTIVE.get()


def enabled() -> bool:
    """Whether a metrics session is active in the current context."""
    return _ACTIVE.get().enabled


@contextmanager
def metrics_session(
    registry: Optional[MetricsRegistry] = None,
    name: str = "session",
    *,
    trace: bool = False,
) -> Iterator[MetricsRegistry]:
    """Activate a registry for the dynamic extent of the ``with`` block.

    A fresh :class:`MetricsRegistry` is created unless one is passed in
    (pass your own to accumulate several runs into one registry).
    ``trace=True`` enables the timeline buffer on the session's registry
    (it upgrades a passed-in registry in place — tracing cannot be
    un-requested by a nested session).  On exit the previous recorder —
    possibly an outer session's registry — is restored, so sessions nest
    without interference.
    """
    registry = registry if registry is not None else MetricsRegistry(
        name, trace=trace
    )
    if trace:
        registry.trace = True
    token = _ACTIVE.set(registry)
    try:
        yield registry
    finally:
        _ACTIVE.reset(token)
