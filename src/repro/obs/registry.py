"""Session-scoped metrics registry and the no-op disabled path.

Two recorders implement the same five-method protocol:

* :class:`MetricsRegistry` — collects counters, gauges, histograms, timers,
  and hierarchical spans for one run;
* :class:`NullRecorder` — every method is a no-op and ``enabled`` is
  ``False``, so instrumented hot loops can guard a whole block behind a
  single attribute check (``if rec.enabled: ...``) and pay nothing when
  metrics are off.

The active recorder lives in a :mod:`contextvars` variable.  Code that
wants telemetry opens a session::

    from repro import obs

    with obs.metrics_session() as registry:
        run_pipeline()
    print(obs.report(registry))

Everything instrumented below the ``with`` — oracle probes, recursion
levels, matching rounds, flow pushes — lands in ``registry``.  Because the
scope is a contextvar, nested sessions shadow outer ones and concurrent
tasks (threads with distinct contexts, asyncio tasks) each see their own
registry rather than colliding in a process-global singleton.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Iterator, List, Optional, Union

from .metrics import Counter, Gauge, Histogram, Timer

__all__ = [
    "MetricsRegistry",
    "NullRecorder",
    "Span",
    "NULL_RECORDER",
    "recorder",
    "enabled",
    "metrics_session",
]

Number = Union[int, float]

#: Separator between nested span names in a span path.
SPAN_SEP = "/"


class _NullContext:
    """Reusable no-op context manager returned by the disabled recorder."""

    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_CONTEXT = _NullContext()


class NullRecorder:
    """The disabled path: every operation is a no-op.

    A single module-level instance (:data:`NULL_RECORDER`) is the contextvar
    default, so ``recorder()`` never returns ``None`` and call sites never
    branch on existence — only on the ``enabled`` attribute when they want
    to skip preparatory work.
    """

    __slots__ = ()

    enabled = False

    def incr(self, name: str, amount: Number = 1) -> None:
        pass

    def gauge(self, name: str, value: Number) -> None:
        pass

    def gauge_max(self, name: str, value: Number) -> None:
        pass

    def observe(self, name: str, value: Number) -> None:
        pass

    def record_time(self, name: str, seconds: float) -> None:
        pass

    def timer(self, name: str) -> _NullContext:
        return _NULL_CONTEXT

    def span(self, name: str) -> _NullContext:
        return _NULL_CONTEXT

    def merge_snapshot(
        self,
        snapshot: Dict[str, Any],
        *,
        span_prefix: str = "",
        gauge_merge: str = "last",
    ) -> None:
        pass

    def __repr__(self) -> str:
        return "NullRecorder()"


NULL_RECORDER = NullRecorder()


class Span:
    """One hierarchical phase of a run (``active/chain[3]/recurse`` ...).

    Entering pushes the span's name onto the owning registry's span stack;
    the full path (stack joined with ``/``) keys a duration histogram, so
    re-entering the same phase accumulates count and total wall-clock.
    """

    __slots__ = ("_registry", "name", "path", "elapsed", "_timer")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self.name = name
        self.path: Optional[str] = None
        self.elapsed: Optional[float] = None
        self._timer = Timer()

    def __enter__(self) -> "Span":
        stack = self._registry._span_stack
        stack.append(self.name)
        self.path = SPAN_SEP.join(stack)
        self._timer.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._timer.__exit__(exc_type, exc, tb)
        self.elapsed = self._timer.elapsed
        if self.path is not None and self.elapsed is not None:
            self._registry._record_span(self.path, self.elapsed)
        self._registry._span_stack.pop()

    def __repr__(self) -> str:
        return f"Span({self.path or self.name!r}, elapsed={self.elapsed!r})"


class MetricsRegistry:
    """Collects every metric emitted during one session.

    Metric names are free-form dotted strings (``oracle.probes``,
    ``flow.dinic.phases``); span paths are slash-joined (``active/solve``).
    The registry is not thread-safe by design — one registry per context,
    scoping handled by :func:`metrics_session`.
    """

    enabled = True

    __slots__ = (
        "name",
        "counters",
        "gauges",
        "histograms",
        "timers",
        "spans",
        "_span_stack",
    )

    def __init__(self, name: str = "session") -> None:
        self.name = name
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.timers: Dict[str, Histogram] = {}
        self.spans: Dict[str, Histogram] = {}
        self._span_stack: List[str] = []

    # ------------------------------------------------------------------
    # Recording protocol (shared with NullRecorder)
    # ------------------------------------------------------------------

    def incr(self, name: str, amount: Number = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        counter.incr(amount)

    def gauge(self, name: str, value: Number) -> None:
        """Set gauge ``name`` to ``value``."""
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name)
        gauge.set(value)

    def gauge_max(self, name: str, value: Number) -> None:
        """Raise gauge ``name`` to ``value`` if larger (running maximum)."""
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge(name)
        gauge.set_max(value)

    def observe(self, name: str, value: Number) -> None:
        """Fold ``value`` into histogram ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(name)
        hist.observe(value)

    def record_time(self, name: str, seconds: float) -> None:
        """Fold a duration into timer ``name``."""
        hist = self.timers.get(name)
        if hist is None:
            hist = self.timers[name] = Histogram(name)
        hist.observe(seconds)

    def timer(self, name: str) -> Timer:
        """A context-manager stopwatch reporting into timer ``name``."""
        return Timer(name, sink=self.record_time)

    def span(self, name: str) -> Span:
        """A context manager tracing one hierarchical phase ``name``."""
        return Span(self, name)

    # ------------------------------------------------------------------
    # Cross-process merging
    # ------------------------------------------------------------------

    @property
    def span_path(self) -> str:
        """The currently open span path (empty string outside any span)."""
        return SPAN_SEP.join(self._span_stack)

    def merge_snapshot(
        self,
        snapshot: Dict[str, Any],
        *,
        span_prefix: str = "",
        gauge_merge: str = "last",
    ) -> None:
        """Fold a :meth:`snapshot` document into this registry.

        This is how per-worker registries come home: a worker process runs
        inside its own :func:`metrics_session`, ships ``snapshot()`` back
        (plain picklable dicts), and the parent merges the documents in
        deterministic task order.  Counters and histogram/timer/span
        summaries are additive; gauges follow ``gauge_merge``:

        * ``"last"`` — the later merge wins (matches serial last-write
          semantics when merges happen in task order);
        * ``"max"`` — keep the maximum (for high-water gauges such as
          ``active.recursion_depth`` that workers each report locally).

        ``span_prefix`` re-roots the worker's span paths under the parent's
        current phase (pass :attr:`span_path`), so a worker's ``chain[3]``
        lands at ``active/sample_chains/chain[3]`` exactly as it would have
        in a serial run.
        """
        if gauge_merge not in ("last", "max"):
            raise ValueError(
                f"gauge_merge must be 'last' or 'max'; got {gauge_merge!r}"
            )
        counters: Dict[str, Number] = snapshot.get("counters", {})
        for name, value in counters.items():
            self.incr(name, value)
        gauges: Dict[str, Optional[Number]] = snapshot.get("gauges", {})
        for name, gauge_value in gauges.items():
            if gauge_value is None:
                continue
            if gauge_merge == "max":
                self.gauge_max(name, gauge_value)
            else:
                self.gauge(name, gauge_value)
        for family, store in (
            ("histograms", self.histograms),
            ("timers", self.timers),
            ("spans", self.spans),
        ):
            summaries: Dict[str, Dict[str, Optional[float]]] = snapshot.get(family, {})
            for name, summary in summaries.items():
                if family == "spans" and span_prefix:
                    name = f"{span_prefix}{SPAN_SEP}{name}"
                hist = store.get(name)
                if hist is None:
                    hist = store[name] = Histogram(name)
                hist.merge_summary(summary)

    def merge(
        self,
        other: "MetricsRegistry",
        *,
        span_prefix: str = "",
        gauge_merge: str = "last",
    ) -> None:
        """Fold another registry into this one (via its snapshot)."""
        self.merge_snapshot(
            other.snapshot(), span_prefix=span_prefix, gauge_merge=gauge_merge
        )

    # ------------------------------------------------------------------
    # Internals and inspection
    # ------------------------------------------------------------------

    def _record_span(self, path: str, seconds: float) -> None:
        hist = self.spans.get(path)
        if hist is None:
            hist = self.spans[path] = Histogram(path)
        hist.observe(seconds)

    def counter_value(self, name: str, default: Number = 0) -> Number:
        """Current value of counter ``name`` (``default`` if never hit)."""
        counter = self.counters.get(name)
        return counter.value if counter is not None else default

    def gauge_value(self, name: str) -> Optional[Number]:
        """Current value of gauge ``name``, or ``None`` if never set."""
        gauge = self.gauges.get(name)
        return gauge.value if gauge is not None else None

    def snapshot(self) -> dict:
        """A plain-dict, JSON-serializable view of everything recorded."""
        return {
            "session": self.name,
            "counters": {k: c.value for k, c in sorted(self.counters.items())},
            "gauges": {k: g.value for k, g in sorted(self.gauges.items())},
            "histograms": {k: h.snapshot() for k, h in sorted(self.histograms.items())},
            "timers": {k: h.snapshot() for k, h in sorted(self.timers.items())},
            "spans": {k: h.snapshot() for k, h in sorted(self.spans.items())},
        }

    def reset(self) -> None:
        """Drop everything recorded so far (keeps the session name)."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.timers.clear()
        self.spans.clear()
        self._span_stack.clear()

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(name={self.name!r}, "
            f"counters={len(self.counters)}, gauges={len(self.gauges)}, "
            f"spans={len(self.spans)})"
        )


_ACTIVE: ContextVar[Union[MetricsRegistry, NullRecorder]] = ContextVar(
    "repro_obs_recorder", default=NULL_RECORDER
)


def recorder() -> Union[MetricsRegistry, NullRecorder]:
    """The recorder for the current context (never ``None``).

    Instrumented code calls this once per operation (or once per solve for
    tight loops), then either records unconditionally or guards a block
    with ``if rec.enabled:``.
    """
    return _ACTIVE.get()


def enabled() -> bool:
    """Whether a metrics session is active in the current context."""
    return _ACTIVE.get().enabled


@contextmanager
def metrics_session(
    registry: Optional[MetricsRegistry] = None, name: str = "session"
) -> Iterator[MetricsRegistry]:
    """Activate a registry for the dynamic extent of the ``with`` block.

    A fresh :class:`MetricsRegistry` is created unless one is passed in
    (pass your own to accumulate several runs into one registry).  On exit
    the previous recorder — possibly an outer session's registry — is
    restored, so sessions nest without interference.
    """
    registry = registry if registry is not None else MetricsRegistry(name)
    token = _ACTIVE.set(registry)
    try:
        yield registry
    finally:
        _ACTIVE.reset(token)
