"""Exporters: JSON / CSV / OpenMetrics documents and the plain-text report.

JSON mirrors :meth:`MetricsRegistry.snapshot` verbatim; CSV flattens every
scalar metric field into ``kind,name,field,value`` rows so spreadsheets can
pivot on them; :func:`to_openmetrics` renders the OpenMetrics text
exposition format (counters, gauges, and bucketed histograms with ``le``
labels) for the future serving layer's scrape endpoint; :func:`report`
renders the aligned tables the experiment harness already uses
(``format_table``).
"""

from __future__ import annotations

import csv
import io
import json
import math
import re
from pathlib import Path
from typing import List, Optional, Union

from .._util import atomic_write_text, format_table
from .metrics import Histogram
from .registry import MetricsRegistry

__all__ = ["to_json", "to_csv", "to_openmetrics", "export_file", "report"]

PathLike = Union[str, Path]

#: Histogram snapshot fields that are distribution payloads, not scalars.
_PAYLOAD_FIELDS = ("raw", "buckets")

_METRIC_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def to_json(
    registry: MetricsRegistry, path: Optional[PathLike] = None, indent: int = 1
) -> str:
    """Serialize a registry snapshot to JSON (optionally writing ``path``)."""
    text = json.dumps(registry.snapshot(), indent=indent)
    if path is not None:
        atomic_write_text(path, text + "\n")
    return text


def to_csv(registry: MetricsRegistry, path: Optional[PathLike] = None) -> str:
    """Serialize a registry snapshot to flat CSV rows.

    Columns are ``kind,name,field,value``: counters and gauges emit one
    ``value`` row each; histograms, timers, and spans emit one row per
    scalar summary field (count/total/mean/min/max/last and the
    quantiles) — the raw/bucket distribution payloads stay in the JSON
    export, where their structure survives.
    """
    snap = registry.snapshot()
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["kind", "name", "field", "value"])
    for name, value in snap["counters"].items():
        writer.writerow(["counter", name, "value", value])
    for name, value in snap["gauges"].items():
        writer.writerow(["gauge", name, "value", value])
    for kind in ("histograms", "timers", "spans"):
        singular = kind[:-1]
        for name, fields in snap[kind].items():
            for field, value in fields.items():
                if field in _PAYLOAD_FIELDS:
                    continue
                writer.writerow([singular, name, field, value])
    text = buffer.getvalue()
    if path is not None:
        atomic_write_text(path, text)
    return text


def _metric_name(name: str, prefix: str = "repro") -> str:
    """Sanitize a dotted/slashed metric name into OpenMetrics grammar."""
    return f"{prefix}_{_METRIC_NAME_RE.sub('_', name)}".strip("_")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _openmetrics_histogram(lines: List[str], name: str, hist: Histogram) -> None:
    lines.append(f"# TYPE {name} histogram")
    for upper, cumulative in hist.cumulative_buckets():
        lines.append(
            f'{name}_bucket{{le="{_format_value(upper)}"}} {cumulative}'
        )
    lines.append(f"{name}_sum {_format_value(hist.total)}")
    lines.append(f"{name}_count {hist.count}")


def to_openmetrics(
    registry: MetricsRegistry, path: Optional[PathLike] = None
) -> str:
    """Render the registry in OpenMetrics text exposition format.

    Counters become ``<name>_total`` counter samples, gauges stay gauges,
    and histograms/timers/spans become OpenMetrics histograms whose ``le``
    buckets come from the log-bucket layout (computed on the fly for
    histograms still on the exact path, so the exposition is stable across
    the spill).  Metric names are sanitized into the exposition grammar
    (``oracle.probes`` -> ``repro_oracle_probes``).  The document ends
    with the mandatory ``# EOF`` marker.
    """
    lines: List[str] = []
    for name, counter in sorted(registry.counters.items()):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric}_total {_format_value(counter.value)}")
    for name, gauge in sorted(registry.gauges.items()):
        if gauge.value is None:
            continue
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(gauge.value)}")
    for family, prefix in (
        (registry.histograms, "repro"),
        (registry.timers, "repro_timer"),
        (registry.spans, "repro_span"),
    ):
        for name, hist in sorted(family.items()):
            _openmetrics_histogram(lines, _metric_name(name, prefix), hist)
    lines.append("# EOF")
    text = "\n".join(lines) + "\n"
    if path is not None:
        atomic_write_text(path, text)
    return text


def export_file(registry: MetricsRegistry, path: PathLike) -> None:
    """Write the registry to ``path``, picking the format from the suffix.

    ``.csv`` selects CSV, ``.prom`` / ``.om`` / ``.openmetrics`` select
    the OpenMetrics text format, anything else gets JSON.
    """
    text = str(path)
    if text.endswith(".csv"):
        to_csv(registry, path)
    elif text.endswith((".prom", ".om", ".openmetrics")):
        to_openmetrics(registry, path)
    else:
        to_json(registry, path)


def report(registry: MetricsRegistry) -> str:
    """Human-readable summary: one aligned table per metric family."""
    snap = registry.snapshot()
    sections: List[str] = []

    scalar_rows = [
        {"kind": "counter", "name": k, "value": v} for k, v in snap["counters"].items()
    ]
    scalar_rows += [
        {"kind": "gauge", "name": k, "value": v} for k, v in snap["gauges"].items()
    ]
    if scalar_rows:
        sections.append(format_table(scalar_rows))

    hist_rows = [
        {
            "histogram": k,
            "count": v["count"],
            "mean": v["mean"],
            "min": v["min"],
            "p50": v["p50"],
            "p90": v["p90"],
            "p99": v["p99"],
            "max": v["max"],
            "total": v["total"],
        }
        for k, v in snap["histograms"].items()
    ]
    if hist_rows:
        sections.append(format_table(hist_rows))

    time_rows = [
        {
            "phase": k,
            "calls": v["count"],
            "total_s": v["total"],
            "mean_s": v["mean"],
            "p50_s": v["p50"],
            "p99_s": v["p99"],
            "max_s": v["max"],
        }
        for k, v in snap["spans"].items()
    ]
    time_rows += [
        {
            "phase": f"timer:{k}",
            "calls": v["count"],
            "total_s": v["total"],
            "mean_s": v["mean"],
            "p50_s": v["p50"],
            "p99_s": v["p99"],
            "max_s": v["max"],
        }
        for k, v in snap["timers"].items()
    ]
    if time_rows:
        sections.append(format_table(time_rows))

    if not sections:
        return "(no metrics recorded)"
    return "\n\n".join(sections)
