"""Exporters: JSON / CSV documents and the plain-text report table.

JSON mirrors :meth:`MetricsRegistry.snapshot` verbatim; CSV flattens every
metric into ``kind,name,field,value`` rows so spreadsheets can pivot on
them; :func:`report` renders the aligned tables the experiment harness
already uses (``format_table``).
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import List, Optional, Union

from .._util import atomic_write_text, format_table
from .registry import MetricsRegistry

__all__ = ["to_json", "to_csv", "export_file", "report"]

PathLike = Union[str, Path]


def to_json(
    registry: MetricsRegistry, path: Optional[PathLike] = None, indent: int = 1
) -> str:
    """Serialize a registry snapshot to JSON (optionally writing ``path``)."""
    text = json.dumps(registry.snapshot(), indent=indent)
    if path is not None:
        atomic_write_text(path, text + "\n")
    return text


def to_csv(registry: MetricsRegistry, path: Optional[PathLike] = None) -> str:
    """Serialize a registry snapshot to flat CSV rows.

    Columns are ``kind,name,field,value``: counters and gauges emit one
    ``value`` row each; histograms, timers, and spans emit one row per
    summary field (count/total/mean/min/max/last).
    """
    snap = registry.snapshot()
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["kind", "name", "field", "value"])
    for name, value in snap["counters"].items():
        writer.writerow(["counter", name, "value", value])
    for name, value in snap["gauges"].items():
        writer.writerow(["gauge", name, "value", value])
    for kind in ("histograms", "timers", "spans"):
        singular = kind[:-1]
        for name, fields in snap[kind].items():
            for field, value in fields.items():
                writer.writerow([singular, name, field, value])
    text = buffer.getvalue()
    if path is not None:
        atomic_write_text(path, text)
    return text


def export_file(registry: MetricsRegistry, path: PathLike) -> None:
    """Write the registry to ``path``; ``.csv`` selects CSV, else JSON."""
    if str(path).endswith(".csv"):
        to_csv(registry, path)
    else:
        to_json(registry, path)


def report(registry: MetricsRegistry) -> str:
    """Human-readable summary: one aligned table per metric family."""
    snap = registry.snapshot()
    sections: List[str] = []

    scalar_rows = [
        {"kind": "counter", "name": k, "value": v} for k, v in snap["counters"].items()
    ]
    scalar_rows += [
        {"kind": "gauge", "name": k, "value": v} for k, v in snap["gauges"].items()
    ]
    if scalar_rows:
        sections.append(format_table(scalar_rows))

    hist_rows = [
        {
            "histogram": k,
            "count": v["count"],
            "mean": v["mean"],
            "min": v["min"],
            "max": v["max"],
            "total": v["total"],
        }
        for k, v in snap["histograms"].items()
    ]
    if hist_rows:
        sections.append(format_table(hist_rows))

    time_rows = [
        {
            "phase": k,
            "calls": v["count"],
            "total_s": v["total"],
            "mean_s": v["mean"],
            "max_s": v["max"],
        }
        for k, v in snap["spans"].items()
    ]
    time_rows += [
        {
            "phase": f"timer:{k}",
            "calls": v["count"],
            "total_s": v["total"],
            "mean_s": v["mean"],
            "max_s": v["max"],
        }
        for k, v in snap["timers"].items()
    ]
    if time_rows:
        sections.append(format_table(time_rows))

    if not sections:
        return "(no metrics recorded)"
    return "\n\n".join(sections)
