"""Deterministic phase-attribution profiler over span timelines.

Consumes the trace-event documents produced by a tracing session (or
loaded back from a Chrome trace file via
:func:`repro.obs.trace.load_trace_events`) and aggregates the span tree
into a per-phase table:

* **cumulative time** — total wall-clock spent inside a span path,
  summed over all of its occurrences;
* **self time** — cumulative time minus the cumulative time of the
  path's *direct* children, i.e. time attributable to the phase's own
  code.  Ancestry is carried by the span path itself (``active/
  sample_chains/chain[3]`` is a child of ``active/sample_chains``), which
  makes the attribution a pure function of the trace — no sampling, no
  symbolication.

Self time can legitimately clamp to zero for phases whose children ran
*concurrently* (a dispatching span whose worker spans sum to more than
its own wall-clock); the ``conc`` column reports that overlap factor.

Two export shapes feed external tooling:

* :func:`to_collapsed` — collapsed-stack lines (``a;b;c <self µs>``)
  consumable by flamegraph.pl, speedscope, or inferno;
* the table itself via :func:`profile_report` (the ``repro profile``
  CLI renders this).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from .._util import atomic_write_text, format_table
from .registry import SPAN_SEP, MetricsRegistry

__all__ = [
    "profile_events",
    "profile_report",
    "to_collapsed",
]

TraceEvent = Dict[str, Any]
PathLike = Union[str, Path]

#: Sort keys accepted by :func:`profile_report` (column -> row key).
SORT_KEYS = {"self": "self_s", "cum": "cum_s", "calls": "calls"}


def _span_events(
    source: Union[MetricsRegistry, Sequence[TraceEvent]],
) -> List[TraceEvent]:
    events = (source.trace_events if isinstance(source, MetricsRegistry)
              else source)
    return [e for e in events
            if e.get("dur") is not None and e.get("path")]


def profile_events(
    source: Union[MetricsRegistry, Sequence[TraceEvent]],
) -> List[Dict[str, Any]]:
    """Aggregate span events into per-path self/cumulative rows.

    Rows are sorted by self time, descending.  Each row carries::

        {"phase": path, "calls": n, "cum_s": ..., "self_s": ...,
         "mean_s": cum/calls, "conc": children_cum / cum (capped >= 1.0)}

    ``conc`` > 1 flags phases whose direct children overlapped in time
    (parallel dispatch); for purely serial phases it stays <= 1.
    """
    cum_ns: Dict[str, int] = {}
    calls: Dict[str, int] = {}
    for event in _span_events(source):
        path = event["path"]
        cum_ns[path] = cum_ns.get(path, 0) + int(event["dur"])
        calls[path] = calls.get(path, 0) + 1
    child_ns: Dict[str, int] = {}
    for path, total in cum_ns.items():
        if SPAN_SEP in path:
            parent = path.rsplit(SPAN_SEP, 1)[0]
            if parent in cum_ns:
                child_ns[parent] = child_ns.get(parent, 0) + total
    rows: List[Dict[str, Any]] = []
    for path in cum_ns:
        cum = cum_ns[path]
        children = child_ns.get(path, 0)
        rows.append({
            "phase": path,
            "calls": calls[path],
            "cum_s": cum / 1e9,
            "self_s": max(0, cum - children) / 1e9,
            "mean_s": cum / calls[path] / 1e9,
            "conc": round(children / cum, 3) if cum and children > cum else 1.0,
        })
    rows.sort(key=lambda row: (-row["self_s"], row["phase"]))
    return rows


def profile_report(
    source: Union[MetricsRegistry, Sequence[TraceEvent]],
    *,
    sort: str = "self",
    top: Optional[int] = None,
) -> str:
    """Render the self/cumulative phase table as aligned text."""
    try:
        key = SORT_KEYS[sort]
    except KeyError:
        raise ValueError(
            f"sort must be one of {sorted(SORT_KEYS)}; got {sort!r}"
        ) from None
    rows = profile_events(source)
    if not rows:
        return "(no span events in trace)"
    rows.sort(key=lambda row: (-row[key], row["phase"]))
    if top is not None:
        rows = rows[: max(0, top)]
    display = [
        {
            "phase": row["phase"],
            "calls": row["calls"],
            "self_s": f"{row['self_s']:.6f}",
            "cum_s": f"{row['cum_s']:.6f}",
            "mean_s": f"{row['mean_s']:.6f}",
            "conc": row["conc"],
        }
        for row in rows
    ]
    return format_table(display)


def to_collapsed(
    source: Union[MetricsRegistry, Sequence[TraceEvent]],
    path: Optional[PathLike] = None,
) -> str:
    """Collapsed-stack output: one ``frame;frame;frame <self µs>`` per line.

    The value attributed to each stack is its *self* time in integer
    microseconds — the flamegraph convention, where a frame's total width
    comes from summing its own line with its descendants'.  Lines are
    sorted lexicographically (the canonical collapsed-stack order); zero
    self-time stacks are kept only if they have no children, so purely
    structural phases do not clutter the graph.
    """
    cum_ns: Dict[str, int] = {}
    for event in _span_events(source):
        cum_ns[event["path"]] = cum_ns.get(event["path"], 0) + int(event["dur"])
    child_ns: Dict[str, int] = {}
    parents = set()
    for span_path, total in cum_ns.items():
        if SPAN_SEP in span_path:
            parent = span_path.rsplit(SPAN_SEP, 1)[0]
            if parent in cum_ns:
                parents.add(parent)
                child_ns[parent] = child_ns.get(parent, 0) + total
    lines: List[str] = []
    for span_path in sorted(cum_ns):
        self_us = max(0, cum_ns[span_path] - child_ns.get(span_path, 0)) // 1000
        if self_us == 0 and span_path in parents:
            continue
        lines.append(f"{span_path.replace(SPAN_SEP, ';')} {self_us}")
    text = "\n".join(lines) + ("\n" if lines else "")
    if path is not None:
        atomic_write_text(path, text)
    return text
