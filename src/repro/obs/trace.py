"""Timeline traces: Chrome trace-event export, load, and trace context.

The registry's trace buffer (``metrics_session(trace=True)``) holds plain
event documents::

    {"name": "chain[3]", "path": "active/sample_chains/chain[3]",
     "cat": "span" | "mark", "ts": <wall ns>, "dur": <ns> | None,
     "pid": 1234, "tid": 5678, "id": "1234:17", "parent": "1234:9",
     "args": {...} | None}

``ts`` is a monotonic (``perf_counter``) reading anchored to the wall
clock at session start, so events from different processes on the same
host line up on one timeline.  This module converts that buffer to and
from the Chrome trace-event JSON format, which Perfetto
(https://ui.perfetto.dev) and ``chrome://tracing`` open directly:

* spans become complete events (``"ph": "X"``) with microsecond ``ts`` /
  ``dur`` relative to the earliest event in the file;
* instant events (``"ph": "i"``) mark faults, retries, checkpoints;
* per-process metadata events name each worker's track.

The span ``path`` and identity travel in ``args`` so a trace file round
trips losslessly through :func:`load_trace_events` back into the event
documents the phase profiler (:mod:`repro.obs.prof`) consumes.

:class:`TraceContext` is the cross-process propagation handle:
``repro.parallel.pool_map`` extracts one from the dispatching session and
ships it to workers, whose sessions then trace with the same enablement;
on merge the worker's span tree is re-rooted under the dispatching span
(see :meth:`repro.obs.MetricsRegistry.merge_snapshot`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from .._util import atomic_write_text
from .registry import MetricsRegistry, NullRecorder, recorder

__all__ = [
    "TraceContext",
    "chrome_trace_document",
    "to_chrome_trace",
    "load_trace_events",
]

PathLike = Union[str, Path]
TraceEvent = Dict[str, Any]


@dataclass(frozen=True)
class TraceContext:
    """What a worker needs to continue the dispatcher's trace.

    ``capture`` mirrors the parent session's ``enabled`` flag, ``trace``
    its timeline flag, and ``parent_path`` the span path open at dispatch
    time (informational — re-rooting happens parent-side at merge, keyed
    on the *parent's* live span stack, so worker code never needs to know
    where it will be grafted).
    """

    capture: bool = False
    trace: bool = False
    parent_path: str = ""

    @classmethod
    def current(cls) -> "TraceContext":
        """Extract the context of the active session (disabled if none)."""
        rec = recorder()
        if isinstance(rec, NullRecorder) or not rec.enabled:
            return cls()
        return cls(capture=True, trace=bool(rec.trace),
                   parent_path=rec.span_path)


def _registry_events(
    source: Union[MetricsRegistry, Sequence[TraceEvent]],
) -> List[TraceEvent]:
    if isinstance(source, MetricsRegistry):
        return list(source.trace_events)
    return list(source)


def chrome_trace_document(
    source: Union[MetricsRegistry, Sequence[TraceEvent]],
    *,
    origin_ns: Optional[int] = None,
) -> Dict[str, Any]:
    """Build a Chrome trace-event JSON document from a trace buffer.

    Timestamps are converted to microseconds relative to ``origin_ns``
    (default: the earliest event), keeping the numbers small while
    preserving cross-process alignment.  Span identity (``id``/``parent``)
    and the hierarchical ``path`` are preserved under ``args`` so
    :func:`load_trace_events` can reconstruct the original events.
    """
    events = _registry_events(source)
    if origin_ns is None:
        origin_ns = min((e["ts"] for e in events), default=0)
    trace_events: List[Dict[str, Any]] = []
    named_tracks = set()
    for event in sorted(events, key=lambda e: e["ts"]):
        pid = event.get("pid", 0)
        if pid not in named_tracks:
            named_tracks.add(pid)
            trace_events.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": f"repro pid {pid}"},
            })
        args = dict(event.get("args") or {})
        args["path"] = event.get("path", "")
        args["span_id"] = event.get("id")
        if event.get("parent") is not None:
            args["parent_id"] = event["parent"]
        record: Dict[str, Any] = {
            "name": event["name"],
            "cat": event.get("cat", "span"),
            "ts": (event["ts"] - origin_ns) / 1e3,
            "pid": pid,
            "tid": event.get("tid", 0),
            "args": args,
        }
        if event.get("dur") is None:
            record["ph"] = "i"
            record["s"] = "t"
        else:
            record["ph"] = "X"
            record["dur"] = event["dur"] / 1e3
        trace_events.append(record)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "origin_ns": origin_ns,
            "format": "repro.obs.trace/1",
        },
    }


def to_chrome_trace(
    source: Union[MetricsRegistry, Sequence[TraceEvent]],
    path: Optional[PathLike] = None,
    *,
    indent: Optional[int] = None,
) -> str:
    """Serialize a trace buffer to Chrome trace-event JSON.

    Returns the JSON text; when ``path`` is given the file is written
    atomically.  Open the result directly in Perfetto or
    ``chrome://tracing``.
    """
    text = json.dumps(chrome_trace_document(source), indent=indent)
    if path is not None:
        atomic_write_text(path, text + "\n")
    return text


def load_trace_events(path: PathLike) -> List[TraceEvent]:
    """Read a Chrome trace JSON file back into trace-event documents.

    Accepts files written by :func:`to_chrome_trace` (full fidelity via
    the ``args.path`` / ``args.span_id`` round-trip fields) and, with
    reduced fidelity, any Chrome trace whose complete events carry
    ``name``/``ts``/``dur`` — foreign events get their name as path.
    Metadata events are skipped.  Raises :class:`ValueError` on files that
    are not a Chrome trace document.
    """
    raw = Path(path).read_text(encoding="utf-8")
    try:
        doc = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc})") from None
    if isinstance(doc, list):  # Chrome also accepts a bare event array
        records = doc
        origin = 0
    elif isinstance(doc, dict) and isinstance(doc.get("traceEvents"), list):
        records = doc["traceEvents"]
        origin = int((doc.get("otherData") or {}).get("origin_ns") or 0)
    else:
        raise ValueError(f"{path}: not a Chrome trace-event document")
    events: List[TraceEvent] = []
    for record in records:
        if not isinstance(record, dict) or record.get("ph") not in ("X", "i"):
            continue
        args = dict(record.get("args") or {})
        path_field = args.pop("path", None) or record.get("name", "")
        span_id = args.pop("span_id", None)
        parent_id = args.pop("parent_id", None)
        dur = record.get("dur")
        events.append({
            "name": record.get("name", ""),
            "path": path_field,
            "cat": record.get("cat", "span"),
            "ts": int(round(float(record.get("ts", 0.0)) * 1e3)) + origin,
            "dur": None if record.get("ph") == "i" or dur is None
                   else int(round(float(dur) * 1e3)),
            "pid": record.get("pid", 0),
            "tid": record.get("tid", 0),
            "id": span_id,
            "parent": parent_id,
            "args": args or None,
        })
    return events
