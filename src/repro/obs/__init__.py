"""repro.obs — zero-dependency instrumentation for the whole pipeline.

The paper's claims are cost claims — Theorem 2/3's probe bound and Theorem
4's passive runtime — so the reproduction makes cost observable everywhere:

* :mod:`.metrics` — ``Counter`` / ``Gauge`` / ``Histogram`` / ``Timer``
  primitives (histograms are mergeable log-bucket quantile sketches with
  an exact small-n path — p50/p90/p99/p99.9 in every snapshot);
* :mod:`.registry` — the contextvar-scoped :class:`MetricsRegistry`,
  hierarchical :class:`Span` tracing with timestamps/ids/attributes, and
  the no-op disabled path;
* :mod:`.trace` — timeline traces: Chrome trace-event JSON export (opens
  in Perfetto / ``chrome://tracing``), trace loading, and the
  cross-process :class:`~repro.obs.trace.TraceContext`;
* :mod:`.prof` — the deterministic phase profiler (self/cumulative time
  tables, collapsed-stack flamegraph output);
* :mod:`.export` — JSON / CSV / OpenMetrics exporters and a
  ``format_table`` report.

Enable collection by opening a session::

    from repro import obs

    with obs.metrics_session(trace=True) as registry:
        result = active_classify(points, oracle, epsilon=0.5)
    registry.counter_value("oracle.probes")    # == oracle.probes_used
    print(obs.report(registry))
    print(obs.profile_report(registry))        # self/cumulative phases
    obs.to_json(registry, "metrics.json")
    obs.to_chrome_trace(registry, "trace.json")  # open in Perfetto

With no session active, every instrumented call site hits the shared
:data:`NULL_RECORDER` whose methods are no-ops — the disabled path costs a
single attribute check, which the benchmark suite pins to negligible
overhead (``benchmarks/test_bench_obs.py``).

Metric-name conventions (see docs/observability.md for the full catalog):
dotted names group by subsystem (``oracle.*``, ``active.*``, ``poset.*``,
``flow.<backend>.*``, ``passive.*``); span paths are slash-joined phase
stacks (``active/chain_decompose/matching``).
"""

from .export import export_file, report, to_csv, to_json, to_openmetrics
from .metrics import EXACT_LIMIT, GROWTH, Counter, Gauge, Histogram, Timer
from .prof import profile_events, profile_report, to_collapsed
from .registry import (
    NULL_RECORDER,
    MetricsRegistry,
    NullRecorder,
    Span,
    enabled,
    metrics_session,
    recorder,
)
from .trace import (
    TraceContext,
    chrome_trace_document,
    load_trace_events,
    to_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "EXACT_LIMIT",
    "GROWTH",
    "Span",
    "MetricsRegistry",
    "NullRecorder",
    "NULL_RECORDER",
    "recorder",
    "enabled",
    "metrics_session",
    "TraceContext",
    "chrome_trace_document",
    "to_chrome_trace",
    "load_trace_events",
    "profile_events",
    "profile_report",
    "to_collapsed",
    "report",
    "to_json",
    "to_csv",
    "to_openmetrics",
    "export_file",
]
