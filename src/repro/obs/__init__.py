"""repro.obs — zero-dependency instrumentation for the whole pipeline.

The paper's claims are cost claims — Theorem 2/3's probe bound and Theorem
4's passive runtime — so the reproduction makes cost observable everywhere:

* :mod:`.metrics` — ``Counter`` / ``Gauge`` / ``Histogram`` / ``Timer``
  primitives;
* :mod:`.registry` — the contextvar-scoped :class:`MetricsRegistry`,
  hierarchical :class:`Span` tracing, and the no-op disabled path;
* :mod:`.export` — JSON / CSV exporters and a ``format_table`` report.

Enable collection by opening a session::

    from repro import obs

    with obs.metrics_session() as registry:
        result = active_classify(points, oracle, epsilon=0.5)
    registry.counter_value("oracle.probes")    # == oracle.probes_used
    print(obs.report(registry))
    obs.to_json(registry, "metrics.json")

With no session active, every instrumented call site hits the shared
:data:`NULL_RECORDER` whose methods are no-ops — the disabled path costs a
single attribute check, which the benchmark suite pins to negligible
overhead.

Metric-name conventions (see docs/observability.md for the full catalog):
dotted names group by subsystem (``oracle.*``, ``active.*``, ``poset.*``,
``flow.<backend>.*``, ``passive.*``); span paths are slash-joined phase
stacks (``active/chain_decompose/matching``).
"""

from .export import export_file, report, to_csv, to_json
from .metrics import Counter, Gauge, Histogram, Timer
from .registry import (
    NULL_RECORDER,
    MetricsRegistry,
    NullRecorder,
    Span,
    enabled,
    metrics_session,
    recorder,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "Span",
    "MetricsRegistry",
    "NullRecorder",
    "NULL_RECORDER",
    "recorder",
    "enabled",
    "metrics_session",
    "report",
    "to_json",
    "to_csv",
    "export_file",
]
