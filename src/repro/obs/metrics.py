"""Metric primitives: counters, gauges, histograms, and timers.

These are deliberately tiny, zero-dependency value objects.  They carry no
locking and no global state — a :class:`~repro.obs.registry.MetricsRegistry`
owns one instance per metric name within a session, and sessions are
contextvar-scoped so nested or parallel runs never share instances.

Determinism note: everything except wall-clock durations is a pure function
of the algorithm's execution, so counter/gauge/histogram values from a
seeded run are reproducible bit-for-bit and usable as regression fixtures
(``tests/test_obs.py`` pins this).
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Dict, Optional, Union

__all__ = ["Counter", "Gauge", "Histogram", "Timer"]

Number = Union[int, float]


class Counter:
    """A monotonically increasing count (probes, pushes, phases, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def incr(self, amount: Number = 1) -> None:
        """Add ``amount`` (default 1) to the count."""
        self.value += amount

    def snapshot(self) -> Number:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value!r})"


class Gauge:
    """A point-in-time value (budget headroom, width, network size, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[Number] = None

    def set(self, value: Number) -> None:
        """Record the latest value."""
        self.value = value

    def set_max(self, value: Number) -> None:
        """Keep the maximum of all recorded values (e.g. recursion depth)."""
        if self.value is None or value > self.value:
            self.value = value

    def snapshot(self) -> Optional[Number]:
        return self.value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value!r})"


class Histogram:
    """Running summary of a stream of observations.

    Keeps count / sum / min / max / last in O(1) memory, which is enough
    for the per-level and per-chain quantities the pipeline emits (sample
    sizes, shrink factors, chain sizes, span durations).
    """

    __slots__ = ("name", "count", "total", "min", "max", "last")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count: int = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.last: Optional[float] = None

    def observe(self, value: Number) -> None:
        """Fold one observation into the summary."""
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.last = value

    @property
    def mean(self) -> Optional[float]:
        """Arithmetic mean of all observations, or ``None`` when empty."""
        return self.total / self.count if self.count else None

    def merge_summary(self, summary: Dict[str, Optional[float]]) -> None:
        """Fold another histogram's :meth:`snapshot` into this one.

        Used when worker-process registries are merged back into a parent:
        counts and totals add, min/max combine, and ``last`` takes the
        merged summary's last (merge order is the deterministic task
        order, so the result matches a serial run for order-insensitive
        fields).
        """
        count = int(summary.get("count") or 0)
        if count == 0:
            return
        self.count += count
        self.total += float(summary.get("total") or 0.0)
        for bound, better in (("min", min), ("max", max)):
            value = summary.get(bound)
            if value is None:
                continue
            current = getattr(self, bound)
            merged = float(value) if current is None else better(current, float(value))
            setattr(self, bound, merged)
        last = summary.get("last")
        if last is not None:
            self.last = float(last)

    def snapshot(self) -> Dict[str, Optional[float]]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "last": self.last,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean!r})"


class Timer:
    """A ``perf_counter`` stopwatch usable standalone or bound to a sink.

    Standalone (replaces ad-hoc start/stop pairs)::

        with Timer() as t:
            work()
        print(t.elapsed)           # seconds

    Bound (obtained from a registry via ``registry.timer(name)``), the
    duration is additionally reported to the registry on exit.  ``elapsed``
    is ``None`` until the ``with`` block finishes; a Timer may be reused,
    each use reporting once.
    """

    __slots__ = ("name", "elapsed", "_sink", "_start")

    def __init__(
        self,
        name: Optional[str] = None,
        sink: Optional[Callable[[str, float], None]] = None,
    ) -> None:
        self.name = name
        self.elapsed: Optional[float] = None
        self._sink = sink
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._start is None:
            raise RuntimeError("Timer exited without __enter__")
        self.elapsed = perf_counter() - self._start
        if self._sink is not None and self.name is not None:
            self._sink(self.name, self.elapsed)

    def __repr__(self) -> str:
        return f"Timer({self.name!r}, elapsed={self.elapsed!r})"
