"""Metric primitives: counters, gauges, quantile histograms, and timers.

These are deliberately tiny, zero-dependency value objects.  They carry no
locking and no global state — a :class:`~repro.obs.registry.MetricsRegistry`
owns one instance per metric name within a session, and sessions are
contextvar-scoped so nested or parallel runs never share instances.

Determinism note: everything except wall-clock durations is a pure function
of the algorithm's execution, so counter/gauge/histogram values from a
seeded run are reproducible bit-for-bit and usable as regression fixtures
(``tests/test_obs.py`` pins this).

Histogram design
----------------
:class:`Histogram` reports quantiles (p50/p90/p99/p99.9), not just a
count/total/min/max summary.  Two representations back it:

* **exact** — the first :data:`EXACT_LIMIT` observations are kept raw, so
  small-n histograms (most per-run phase distributions, and everything the
  test suite checks) report *exact* quantiles;
* **log-bucketed** — past the limit, observations spill into logarithmic
  buckets with growth factor :data:`GROWTH` per bucket (~19% relative
  width), preserving quantile accuracy to within one bucket width at any
  stream length in O(1) memory per occupied bucket.  Negative values use a
  mirrored bucket array and zeros are counted separately, so the full real
  line is covered.

Both representations merge *exactly*: folding worker snapshots into a
parent histogram reproduces the distribution the serial run would have
seen (raw values concatenate; bucket counts add — bucket boundaries are
fixed by construction, never data-dependent), which is what makes
cross-process quantiles trustworthy.  ``docs/observability.md`` documents
the semantics.
"""

from __future__ import annotations

import math
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

__all__ = ["Counter", "Gauge", "Histogram", "Timer", "EXACT_LIMIT", "GROWTH"]

Number = Union[int, float]

#: Raw observations retained before spilling to log buckets.
EXACT_LIMIT = 512

#: Per-bucket growth factor of the log-bucket layout (4 buckets per octave).
GROWTH = 2.0 ** 0.25

_LOG_GROWTH = math.log(GROWTH)

#: Bucket-index clamp: GROWTH**±_INDEX_CLAMP spans ~1e-30 .. 1e+30, far past
#: any duration/count the pipeline emits; outliers land in the edge bucket.
_INDEX_CLAMP = 400

#: Quantiles reported by :meth:`Histogram.snapshot`.
_SNAPSHOT_QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p90", 0.90),
    ("p99", 0.99),
    ("p999", 0.999),
)


class Counter:
    """A monotonically increasing count (probes, pushes, phases, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def incr(self, amount: Number = 1) -> None:
        """Add ``amount`` (default 1) to the count."""
        self.value += amount

    def snapshot(self) -> Number:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value!r})"


class Gauge:
    """A point-in-time value (budget headroom, width, network size, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[Number] = None

    def set(self, value: Number) -> None:
        """Record the latest value."""
        self.value = value

    def set_max(self, value: Number) -> None:
        """Keep the maximum of all recorded values (e.g. recursion depth)."""
        if self.value is None or value > self.value:
            self.value = value

    def snapshot(self) -> Optional[Number]:
        return self.value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self.value!r})"


def bucket_index(value: float) -> int:
    """Log-bucket index of a positive magnitude (clamped to the layout)."""
    index = math.floor(math.log(value) / _LOG_GROWTH)
    return max(-_INDEX_CLAMP, min(_INDEX_CLAMP, index))


def bucket_bounds(index: int) -> Tuple[float, float]:
    """``(lower, upper)`` magnitude bounds of bucket ``index``."""
    return GROWTH ** index, GROWTH ** (index + 1)


def _bucket_representative(index: int) -> float:
    """Geometric midpoint of bucket ``index`` — the reported quantile value."""
    return GROWTH ** (index + 0.5)


class Histogram:
    """Mergeable quantile histogram over a stream of observations.

    Keeps count / total / min / max / last plus either the raw values
    (up to :data:`EXACT_LIMIT` observations — exact quantiles) or sparse
    logarithmic buckets (quantiles within one bucket width).  Merging via
    :meth:`merge_summary` is exact in both modes: a parent that folds in
    worker snapshots reports the same quantiles a single-process run over
    the union of observations would.
    """

    __slots__ = ("name", "count", "total", "min", "max", "last",
                 "_raw", "_zeros", "_pos", "_neg")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count: int = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.last: Optional[float] = None
        self._raw: Optional[List[float]] = []
        self._zeros: int = 0
        self._pos: Dict[int, int] = {}
        self._neg: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def observe(self, value: Number) -> None:
        """Fold one observation into the histogram."""
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.last = value
        if self._raw is not None:
            self._raw.append(value)
            if len(self._raw) > EXACT_LIMIT:
                self._spill()
        else:
            self._bucket_one(value)

    def _bucket_one(self, value: float) -> None:
        if value == 0.0:
            self._zeros += 1
        elif value > 0.0:
            index = bucket_index(value)
            self._pos[index] = self._pos.get(index, 0) + 1
        else:
            index = bucket_index(-value)
            self._neg[index] = self._neg.get(index, 0) + 1

    def _spill(self) -> None:
        """Switch from raw values to log buckets (one-way, exact at switch)."""
        raw, self._raw = self._raw, None
        assert raw is not None
        for value in raw:
            self._bucket_one(value)

    @property
    def exact(self) -> bool:
        """Whether quantiles are still computed from raw observations."""
        return self._raw is not None

    @property
    def mean(self) -> Optional[float]:
        """Arithmetic mean of all observations, or ``None`` when empty."""
        return self.total / self.count if self.count else None

    # ------------------------------------------------------------------
    # Quantiles
    # ------------------------------------------------------------------

    def quantile(self, q: float) -> Optional[float]:
        """The ``q``-quantile (nearest-rank), or ``None`` when empty.

        Exact while raw values are retained; within one bucket width
        (a factor of :data:`GROWTH` in magnitude) after spilling.
        """
        return self.quantiles([q])[0]

    def quantiles(self, qs: List[float]) -> List[Optional[float]]:
        """Several quantiles in one pass (one sort / one bucket walk)."""
        for q in qs:
            if not 0.0 <= q <= 1.0:
                raise ValueError(f"quantile must be in [0, 1]; got {q}")
        if self.count == 0:
            return [None for _ in qs]
        ranks = [max(1, math.ceil(q * self.count)) for q in qs]
        if self._raw is not None:
            ordered = sorted(self._raw)
            return [ordered[rank - 1] for rank in ranks]
        return [self._bucket_rank(rank) for rank in ranks]

    def _bucket_rank(self, rank: int) -> float:
        """Value at 1-based ``rank`` in the bucketed distribution."""
        seen = 0
        for index in sorted(self._neg, reverse=True):  # most negative first
            seen += self._neg[index]
            if seen >= rank:
                return self._clamp(-_bucket_representative(index))
        seen += self._zeros
        if seen >= rank:
            return 0.0
        for index in sorted(self._pos):
            seen += self._pos[index]
            if seen >= rank:
                return self._clamp(_bucket_representative(index))
        return self.max if self.max is not None else 0.0

    def _clamp(self, value: float) -> float:
        """Clamp a bucket representative into the observed [min, max] range."""
        if self.min is not None and value < self.min:
            return self.min
        if self.max is not None and value > self.max:
            return self.max
        return value

    # ------------------------------------------------------------------
    # Merging (cross-process exactness)
    # ------------------------------------------------------------------

    def merge_summary(self, summary: Dict[str, Any]) -> None:
        """Fold another histogram's :meth:`snapshot` into this one, exactly.

        Used when worker-process registries are merged back into a parent:
        counts and totals add, min/max combine, ``last`` takes the merged
        summary's last (merge order is the deterministic task order), and
        the distribution payload — raw values while both sides are exact,
        bucket counts otherwise — is folded so the merged quantiles equal
        a single-process run over the same observations
        (``tests/test_trace.py`` pins worker-merged == serial).

        Summaries without a distribution payload (snapshots from versions
        predating bucketed histograms) degrade to the old lossy behavior:
        scalars fold, quantiles of the foreign part are unavailable.
        """
        count = int(summary.get("count") or 0)
        if count == 0:
            return
        self.count += count
        self.total += float(summary.get("total") or 0.0)
        for bound, better in (("min", min), ("max", max)):
            value = summary.get(bound)
            if value is None:
                continue
            current = getattr(self, bound)
            merged = float(value) if current is None else better(current, float(value))
            setattr(self, bound, merged)
        last = summary.get("last")
        if last is not None:
            self.last = float(last)

        raw = summary.get("raw")
        buckets = summary.get("buckets")
        if raw is not None:
            if self._raw is not None and len(self._raw) + len(raw) <= EXACT_LIMIT:
                self._raw.extend(float(v) for v in raw)
            else:
                if self._raw is not None:
                    self._spill()
                for value in raw:
                    self._bucket_one(float(value))
        elif buckets is not None:
            if self._raw is not None:
                self._spill()
            self._zeros += int(buckets.get("zeros") or 0)
            for store, key in ((self._pos, "pos"), (self._neg, "neg")):
                for index, bucket_count in buckets.get(key) or []:
                    index = int(index)
                    store[index] = store.get(index, 0) + int(bucket_count)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-serializable summary: scalars, quantiles, and the payload.

        The ``raw`` / ``buckets`` keys carry the mergeable distribution
        (exactly one is present for a non-empty histogram); everything
        else is a scalar field for reports and spreadsheets.
        """
        quantiles = self.quantiles([q for _, q in _SNAPSHOT_QUANTILES])
        doc: Dict[str, Any] = {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "last": self.last,
        }
        for (label, _), value in zip(_SNAPSHOT_QUANTILES, quantiles):
            doc[label] = value
        if self._raw is not None:
            if self._raw:
                doc["raw"] = list(self._raw)
        else:
            doc["buckets"] = {
                "zeros": self._zeros,
                "pos": sorted(self._pos.items()),
                "neg": sorted(self._neg.items()),
            }
        return doc

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs for exposition formats.

        Bucketizes the raw values on the fly when still exact, so the
        OpenMetrics exporter sees one stable layout either way.  The final
        pair is ``(inf, count)``.
        """
        pos: Dict[int, int] = dict(self._pos)
        neg: Dict[int, int] = dict(self._neg)
        zeros = self._zeros
        if self._raw is not None:
            pos, neg, zeros = {}, {}, 0
            for value in self._raw:
                if value == 0.0:
                    zeros += 1
                elif value > 0.0:
                    index = bucket_index(value)
                    pos[index] = pos.get(index, 0) + 1
                else:
                    index = bucket_index(-value)
                    neg[index] = neg.get(index, 0) + 1
        pairs: List[Tuple[float, int]] = []
        running = 0
        for index in sorted(neg, reverse=True):
            running += neg[index]
            # Upper bound of a negative bucket is its *least* negative edge.
            pairs.append((-(GROWTH ** index), running))
        running += zeros
        if zeros:
            pairs.append((0.0, running))
        for index in sorted(pos):
            running += pos[index]
            pairs.append((GROWTH ** (index + 1), running))
        pairs.append((math.inf, self.count))
        return pairs

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count}, mean={self.mean!r})"


class Timer:
    """A ``perf_counter`` stopwatch usable standalone or bound to a sink.

    Standalone (replaces ad-hoc start/stop pairs)::

        with Timer() as t:
            work()
        print(t.elapsed)           # seconds

    Bound (obtained from a registry via ``registry.timer(name)``), the
    duration is additionally reported to the registry on exit.  ``elapsed``
    is ``None`` until the ``with`` block finishes; a Timer may be reused,
    each use reporting once.
    """

    __slots__ = ("name", "elapsed", "_sink", "_start")

    def __init__(
        self,
        name: Optional[str] = None,
        sink: Optional[Callable[[str, float], None]] = None,
    ) -> None:
        self.name = name
        self.elapsed: Optional[float] = None
        self._sink = sink
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._start is None:
            raise RuntimeError("Timer exited without __enter__")
        self.elapsed = perf_counter() - self._start
        if self._sink is not None and self.name is not None:
            self._sink(self.name, self.elapsed)

    def __repr__(self) -> str:
        return f"Timer({self.name!r}, elapsed={self.elapsed!r})"
