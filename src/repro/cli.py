"""Command-line interface: ``repro-monotone`` / ``python -m repro``.

Subcommands
-----------
``generate``
    Produce a synthetic workload and write it to CSV/JSON.
``passive``
    Solve Problem 2 exactly on a stored point set and report the optimum.
``active``
    Run the Theorem 2 algorithm against a stored (fully labeled) point set
    used as the oracle's ground truth; reports probes and achieved error.
``width``
    Report the dominance width and chain statistics of a stored point set.
``experiment``
    Run one or all registered experiments and print their tables.
``fit``
    Fit a classifier on a stored point set and write a durable,
    digest-verified model artifact (see ``docs/serving.md``).
``serve``
    Answer classify queries from a model artifact through the
    fault-tolerant :class:`~repro.serve.ServeEngine` (bounded queue,
    deadlines, degradation ladder), run a chaos campaign (``--chaos``),
    or serve a directory of artifacts as a bulkheaded multi-model fleet
    with verified hot-swap and per-model health (``--fleet``).
``fuzz``
    Differential fuzz campaign: hostile instance families through every
    passive configuration, certificates cross-checked, disagreements
    shrunk into a replayable corpus (see ``docs/robustness.md``).
``profile``
    Phase-attribution profile (self/cumulative time, flamegraph export)
    of a trace recorded with ``--trace-out``.

Every workload subcommand accepts ``--metrics`` (print an instrumentation
report after the run), ``--metrics-out FILE`` (write the metrics document
— JSON, CSV, or OpenMetrics text by extension), and ``--trace-out FILE``
(write a Chrome trace-event timeline, viewable in Perfetto).  Missing or
malformed input files and unwritable output destinations exit with code 2
and a one-line message instead of a traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from ._util import format_table
from .flow import FLOW_BACKENDS

__all__ = ["main", "build_parser"]


def _add_metrics_flags(sub: argparse.ArgumentParser) -> None:
    """Attach the shared instrumentation flags to a subcommand parser."""
    group = sub.add_argument_group("instrumentation")
    group.add_argument("--metrics", action="store_true",
                       help="print counters/gauges/span timings after the run")
    group.add_argument("--metrics-out", metavar="FILE", default=None,
                       help="write the metrics document to FILE "
                            "(JSON or CSV by extension; .prom/.om/"
                            ".openmetrics for OpenMetrics text)")
    group.add_argument("--trace-out", metavar="FILE", default=None,
                       help="write a Chrome trace-event timeline of the run "
                            "to FILE (open in Perfetto or chrome://tracing)")


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-monotone",
        description="Monotone classification (Tao & Wang, PODS 2021) toolkit",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic workload")
    gen.add_argument("output", help="output file (.csv or .json)")
    gen.add_argument("--kind",
                     choices=["threshold1d", "monotone", "width", "entity",
                              "records"],
                     default="monotone")
    gen.add_argument("--n", type=int, default=1000)
    gen.add_argument("--dim", type=int, default=2)
    gen.add_argument("--width", type=int, default=8)
    gen.add_argument("--noise", type=float, default=0.1)
    gen.add_argument("--seed", type=int, default=0)

    passive = sub.add_parser("passive", help="solve Problem 2 exactly (Theorem 4)")
    passive.add_argument("input", help="point-set file (.csv or .json)")
    passive.add_argument("--backend", choices=sorted(FLOW_BACKENDS),
                         default="dinic")

    active = sub.add_parser("active", help="run the Theorem 2 active algorithm")
    active.add_argument("input", help="fully-labeled point-set file (ground truth)")
    active.add_argument("--epsilon", type=float, default=0.5)
    active.add_argument("--seed", type=int, default=0)
    active.add_argument("--decomposition",
                        choices=["exact", "matching", "patience", "greedy"],
                        default="exact")
    active.add_argument("--workers", type=int, default=1,
                        help="processes for chain-level parallel sampling "
                             "(default 1; output is identical for any value)")
    resil = active.add_argument_group(
        "resilience", "fault injection, retries, and checkpoint/resume "
                      "(see docs/resilience.md)")
    resil.add_argument("--retry-max", type=int, default=None, metavar="K",
                       help="retry transient probe failures up to K attempts "
                            "per probe (enables the retry layer)")
    resil.add_argument("--probe-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-probe deadline; slow probes fail as "
                            "retryable timeouts")
    resil.add_argument("--checkpoint", default=None, metavar="PATH",
                       help="write a crash-safe probe journal and per-chain "
                            "checkpoint to PATH (+ PATH.journal)")
    resil.add_argument("--resume", action="store_true",
                       help="resume from --checkpoint: replay paid probes, "
                            "skip completed chains")
    resil.add_argument("--inject-faults", default=None, metavar="SPEC",
                       help="deterministic chaos spec, e.g. "
                            "'transient=0.1,flip=0.02,seed=7' (fields: "
                            "transient, timeout, flip, dead, dead_indices, "
                            "latency, seed)")
    resil.add_argument("--degrade", action="store_true",
                       help="on halting failures return a best-effort "
                            "classifier and a run report instead of failing")

    fit = sub.add_parser(
        "fit", help="fit a classifier and write a durable model artifact")
    fit.add_argument("input", help="fully-labeled point-set file (.csv or .json)")
    fit.add_argument("artifact", help="output artifact file (.json)")
    fit.add_argument("--mode", choices=["passive", "active"], default="passive")
    fit.add_argument("--backend", choices=sorted(FLOW_BACKENDS),
                     default="dinic", help="flow backend (passive mode)")
    fit.add_argument("--epsilon", type=float, default=0.5,
                     help="approximation parameter (active mode)")
    fit.add_argument("--seed", type=int, default=0,
                     help="sampling seed (active mode)")
    fit.add_argument("--decomposition",
                     choices=["exact", "matching", "patience", "greedy"],
                     default="exact", help="chain decomposition (active mode)")
    fit.add_argument("--no-chains", action="store_true",
                     help="omit the chain decomposition from the artifact")
    fit.add_argument("--no-certificate", action="store_true",
                     help="omit the min-cut certificate from the artifact")

    serve = sub.add_parser(
        "serve", help="answer classify queries from a model artifact")
    serve.add_argument("artifact", help="model artifact written by 'fit'")
    serve.add_argument("queries", nargs="?", default=None,
                       help="point-set file of query coordinates "
                            "(required unless --chaos)")
    serve.add_argument("--output", default=None, metavar="FILE",
                       help="write answered labels (JSON) to FILE")
    serve.add_argument("--batch-size", type=int, default=512,
                       help="points per admitted request (default 512)")
    serve.add_argument("--queue-limit", type=int, default=64,
                       help="bounded admission queue size; excess requests "
                            "are shed with an explicit overloaded result")
    serve.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS", help="per-request deadline")
    serve.add_argument("--retry-max", type=int, default=None, metavar="K",
                       help="retry budget for transient artifact loads")
    serve.add_argument("--journal", default=None, metavar="PATH",
                       help="crash-safe request journal (enables warm restart)")
    serve.add_argument("--resume", action="store_true",
                       help="warm-restart from --journal: resume the request "
                            "sequence after a crash")
    serve.add_argument("--chaos", default=None, metavar="SPEC",
                       help="run the chaos load-test harness instead of "
                            "serving a file, e.g. "
                            "'corrupt=0.05,delay=0.1,kill=0.02,seed=7' "
                            "(with --fleet: fleet spec, e.g. "
                            "'corrupt=0.1,swap=0.1,storm=0.05,seed=7')")
    serve.add_argument("--chaos-queries", type=int, default=100_000,
                       help="query volume for --chaos (default 100000)")
    serve.add_argument("--fleet", action="store_true",
                       help="serve a *directory* of model artifacts as a "
                            "bulkheaded multi-model fleet (verified hot-swap, "
                            "LRU residency, per-model health)")
    serve.add_argument("--model", default=None, metavar="NAME",
                       help="fleet: dispatch the queries file to this model")
    serve.add_argument("--resident-limit", type=int, default=8,
                       help="fleet: max resident engines (LRU beyond this)")

    width = sub.add_parser("width", help="dominance width and chain stats")
    width.add_argument("input", help="point-set file (.csv or .json)")

    audit = sub.add_parser(
        "audit", help="solve passively and machine-check the result")
    audit.add_argument("input", help="fully-labeled point-set file")
    audit.add_argument("--backend", choices=sorted(FLOW_BACKENDS),
                       default="dinic")

    repair = sub.add_parser(
        "repair", help="minimum-weight monotone label repair (data cleaning)")
    repair.add_argument("input", help="fully-labeled point-set file")
    repair.add_argument("output", nargs="?",
                        help="optional file to write the repaired set to")

    viz = sub.add_parser("viz", help="render a 2-D point set in the terminal")
    viz.add_argument("input", help="2-D point-set file (.csv or .json)")
    viz.add_argument("--solve", action="store_true",
                     help="overlay the optimal monotone decision region")
    viz.add_argument("--width", type=int, default=60)
    viz.add_argument("--height", type=int, default=24)

    experiment = sub.add_parser("experiment", help="run registered experiments")
    experiment.add_argument("names", nargs="*", help="experiment names (default: all)")
    experiment.add_argument("--list", action="store_true", help="list experiments")
    experiment.add_argument("--workers", type=int, default=1,
                            help="processes for experiment fan-out (default 1)")
    experiment.add_argument("--out-dir", default=None, metavar="DIR",
                            help="write per-experiment rows to DIR/<name>.json "
                                 "(atomic writes, crash-safe)")
    experiment.add_argument("--resume", action="store_true",
                            help="skip experiments already completed in "
                                 "--out-dir (restart a killed sweep)")

    from .fuzz.generators import FAMILIES
    from .fuzz.mutants import MUTANTS
    from .fuzz.runner import IO_FAMILY

    fuzz = sub.add_parser(
        "fuzz", help="differential fuzz campaign across all solver configs")
    fuzz.add_argument("--runs", type=int, default=100,
                      help="instances to generate and cross-check (default 100)")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="campaign seed; run i replays from child seed i")
    fuzz.add_argument("--family", action="append", default=None,
                      choices=sorted(FAMILIES) + [IO_FAMILY], metavar="NAME",
                      help="restrict to an instance family (repeatable; "
                           f"choices: {', '.join(sorted(FAMILIES) + [IO_FAMILY])})")
    fuzz.add_argument("--corpus", default=None, metavar="DIR",
                      help="archive shrunk reproducers into DIR")
    fuzz.add_argument("--size", type=int, default=48,
                      help="target instance size (default 48)")
    fuzz.add_argument("--active-every", type=int, default=0, metavar="K",
                      help="also cross-check the active pipeline "
                           "(workers 1 vs 2) on every K-th run")
    fuzz.add_argument("--time-budget", type=float, default=None,
                      metavar="SECONDS",
                      help="stop early after this much wall-clock time "
                           "(deterministic prefix of the campaign)")
    fuzz.add_argument("--mutant", choices=sorted(MUTANTS), default=None,
                      help="self-test mode: activate a deliberately broken "
                           "solver mutant; the campaign must catch it")
    fuzz.add_argument("--replay", default=None, metavar="DIR",
                      help="replay a regression corpus instead of generating "
                           "new instances")

    profile = sub.add_parser(
        "profile", help="phase-attribution profile of a recorded trace")
    profile.add_argument("trace", help="Chrome trace file written by --trace-out")
    profile.add_argument("--sort", choices=["self", "cum", "calls"],
                         default="self",
                         help="table order: self time (default), cumulative "
                              "time, or call count")
    profile.add_argument("--top", type=int, default=None, metavar="N",
                         help="show only the N heaviest phases")
    profile.add_argument("--collapsed", default=None, metavar="FILE",
                         help="also write collapsed-stack lines to FILE "
                              "(flamegraph.pl / speedscope / inferno input)")

    for command in (gen, passive, active, fit, serve, width, audit, repair,
                    viz, experiment, fuzz):
        _add_metrics_flags(command)
    return parser


def _load(path: str):
    from .io import load_csv, load_json

    if path.endswith(".json"):
        return load_json(path)
    return load_csv(path)


def _save(points, path: str) -> None:
    from .io import save_csv, save_json

    if path.endswith(".json"):
        save_json(points, path)
    else:
        save_csv(points, path)


def _cmd_generate(args: argparse.Namespace) -> int:
    from .datasets import (
        generate_entity_matching,
        planted_monotone,
        planted_threshold_1d,
        width_controlled,
    )

    if args.kind == "threshold1d":
        points = planted_threshold_1d(args.n, noise=args.noise, rng=args.seed)
    elif args.kind == "monotone":
        points = planted_monotone(args.n, args.dim, noise=args.noise, rng=args.seed)
    elif args.kind == "width":
        points = width_controlled(args.n, args.width, noise=args.noise, rng=args.seed)
    elif args.kind == "records":
        from .datasets import generate_record_linkage

        # --n counts pairs; the generator takes entities (1 match + 3
        # non-matches per entity).
        points = generate_record_linkage(max(1, args.n // 4),
                                         rng=args.seed).points
    else:
        points = generate_entity_matching(args.n, dim=args.dim,
                                          label_noise=args.noise,
                                          rng=args.seed).points
    _save(points, args.output)
    print(f"wrote {points!r} to {args.output}")
    return 0


def _cmd_passive(args: argparse.Namespace) -> int:
    from .core.passive import solve_passive

    points = _load(args.input)
    result = solve_passive(points, backend=args.backend)
    print(format_table([{
        "n": points.n,
        "d": points.dim,
        "contending": result.num_contending,
        "optimal_weighted_error": result.optimal_error,
        "backend": result.backend,
    }]))
    return 0


def _resilience_config(args: argparse.Namespace):
    """Build a ResilienceConfig from the active-subcommand flags, or None."""
    wanted = (args.retry_max is not None or args.probe_timeout is not None
              or args.checkpoint is not None or args.inject_faults is not None
              or args.degrade)
    if args.resume and args.checkpoint is None:
        raise ValueError("--resume requires --checkpoint PATH")
    if not wanted:
        return None
    from .resilience import FaultSpec, ResilienceConfig, RetryPolicy

    retry = None
    if args.retry_max is not None or args.probe_timeout is not None:
        retry = RetryPolicy(max_attempts=args.retry_max or 3,
                            timeout=args.probe_timeout)
    faults = None
    if args.inject_faults is not None:
        faults = FaultSpec.parse(args.inject_faults)
    return ResilienceConfig(retry=retry, faults=faults,
                            checkpoint=args.checkpoint, resume=args.resume,
                            degrade=args.degrade)


def _cmd_active(args: argparse.Namespace) -> int:
    from .core.active import active_classify
    from .core.errors import error_count
    from .core.oracle import LabelOracle
    from .core.passive import solve_passive

    points = _load(args.input)
    points.require_full_labels()
    oracle = LabelOracle(points)
    result = active_classify(points.with_hidden_labels(), oracle,
                             epsilon=args.epsilon, rng=args.seed,
                             decomposition=args.decomposition,
                             workers=args.workers,
                             resilience=_resilience_config(args))
    optimum = solve_passive(points).optimal_error
    err = error_count(points, result.classifier)
    print(format_table([{
        "n": points.n,
        "width_w": result.num_chains,
        "epsilon": args.epsilon,
        "probes": result.probing_cost,
        "probe_fraction": result.probing_cost / points.n,
        "achieved_error": err,
        "optimal_error": optimum,
        "ratio": err / optimum if optimum else float(err == 0) or float("inf"),
    }]))
    if result.report is not None:
        print(result.report.summary())
    return 0


def _cmd_fit(args: argparse.Namespace) -> int:
    from .serve import fit_artifact, save_artifact

    points = _load(args.input)
    artifact = fit_artifact(points, args.mode,
                            epsilon=args.epsilon, seed=args.seed,
                            backend=args.backend,
                            decomposition=args.decomposition,
                            include_chains=not args.no_chains,
                            include_certificate=not args.no_certificate)
    digest = save_artifact(artifact, args.artifact)
    row = {"mode": args.mode, "n": points.n, "d": points.dim,
           "digest": digest[:12]}
    if artifact.fit.get("width") is not None:
        row["width_w"] = artifact.fit["width"]
    if artifact.certificate is not None:
        row["optimal_error"] = artifact.certificate["optimal_error"]
    if "probes" in artifact.fit:
        row["probes"] = artifact.fit["probes"]
    print(format_table([row]))
    print(f"wrote model artifact to {args.artifact} (sha256 {digest})")
    return 0


def _cmd_serve_fleet(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .serve import FleetFaultSpec, ModelFleet, run_chaos_fleet

    directory = Path(args.artifact)
    if not directory.is_dir():
        raise ValueError(
            f"serve --fleet: {args.artifact} is not a directory of artifacts"
        )

    if args.chaos is not None:
        artifacts = {
            p.stem: p for p in sorted(directory.glob("*.json")) if p.is_file()
        }
        if len(artifacts) < 2:
            raise ValueError(
                f"serve --fleet --chaos: {directory} holds "
                f"{len(artifacts)} artifact(s); need >= 2"
            )
        report = run_chaos_fleet(
            artifacts,
            queries=args.chaos_queries,
            batch_size=args.batch_size,
            spec=FleetFaultSpec.parse(args.chaos),
        )
        print(format_table([report.summary_row()]))
        return 0 if report.ok else 1

    retry = None
    if args.retry_max is not None:
        from .resilience import RetryPolicy

        retry = RetryPolicy(max_attempts=args.retry_max)
    kwargs: dict = dict(
        resident_limit=args.resident_limit,
        queue_limit=args.queue_limit,
        default_deadline=args.deadline,
        journal_dir=args.journal,
    )
    if retry is not None:
        kwargs["retry"] = retry
    counts: dict = {}
    with ModelFleet.from_directory(directory, **kwargs) as fleet:
        for event in fleet.poll():
            print(f"swap {event['model']}: {event['action']} "
                  f"({event.get('reason') or event.get('digest', '')})")
        if args.queries is not None:
            if args.model is None:
                raise ValueError(
                    "serve --fleet: --model NAME is required with a "
                    "queries file"
                )
            points = _load(args.queries)
            batch = max(1, args.batch_size)
            for start in range(0, points.n, batch):
                result = fleet.dispatch(
                    args.model, points.coords[start:start + batch]
                )
                counts[result.status] = counts.get(result.status, 0) + 1
        print(format_table([health.row() for health in fleet.health()]))
        if counts:
            print(format_table([dict(sorted(counts.items()))]))
    # Degraded answers are survivable and explicitly flagged; only a model
    # that cannot answer at all (or a bulkhead rejection) fails the exit.
    bad = counts.get("failed", 0) + counts.get("unavailable", 0)
    return 0 if bad == 0 else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import ServeEngine, ServeFaultSpec, run_chaos_serve

    if args.fleet:
        return _cmd_serve_fleet(args)

    if args.chaos is not None:
        report = run_chaos_serve(
            args.artifact,
            queries=args.chaos_queries,
            batch_size=args.batch_size,
            spec=ServeFaultSpec.parse(args.chaos),
            deadline=args.deadline,
        )
        print(format_table([report.summary_row()]))
        return 0 if report.ok else 1

    if args.queries is None:
        raise ValueError("serve: a queries file is required unless --chaos")
    if args.resume and args.journal is None:
        raise ValueError("--resume requires --journal PATH")
    from pathlib import Path

    from .serve import last_good_path

    # A deployed artifact going bad mid-flight is survivable (the engine
    # degrades); a path that never existed is a CLI input error — unless
    # its last-good copy remains, the legitimate post-crash state.
    if not Path(args.artifact).exists() and not last_good_path(args.artifact).exists():
        raise ValueError(f"{args.artifact}: model artifact not found")
    points = _load(args.queries)

    retry = None
    if args.retry_max is not None:
        from .resilience import RetryPolicy

        retry = RetryPolicy(max_attempts=args.retry_max)
    kwargs = dict(queue_limit=args.queue_limit,
                  default_deadline=args.deadline)
    if retry is not None:
        kwargs["retry"] = retry
    if args.resume:
        engine = ServeEngine.warm_restart(args.artifact, args.journal,
                                          **kwargs)
    else:
        engine = ServeEngine(args.artifact, journal_path=args.journal,
                             **kwargs)

    labels: List[Optional[int]] = [None] * points.n
    counts: dict = {}
    with engine:
        offsets = list(range(0, points.n, max(1, args.batch_size)))
        pending_offsets = []
        results = []
        for start in offsets:
            chunk = points.coords[start:start + args.batch_size]
            shed = engine.submit(chunk)
            if shed is not None:
                results.append((start, shed))
                continue
            pending_offsets.append(start)
            for answered in engine.drain():
                results.append((pending_offsets.pop(0), answered))
        for answered in engine.drain():
            results.append((pending_offsets.pop(0), answered))
        for start, result in results:
            counts[result.status] = counts.get(result.status, 0) + 1
            if result.labels is not None:
                for i, label in enumerate(result.labels):
                    labels[start + i] = int(label)
        row = {"n": points.n, "source": engine.source,
               "verified": engine.serving_verified,
               "answered": engine.answered, "shed": engine.shed,
               "quarantined": engine.quarantines}
        row.update(sorted(counts.items()))
    print(format_table([row]))
    if args.output is not None:
        import json as _json

        from ._util import atomic_write_text

        atomic_write_text(args.output, _json.dumps({
            "artifact": str(args.artifact),
            "model_digest": engine.model_digest,
            "source": engine.source,
            "statuses": counts,
            "labels": labels,
        }, indent=1))
        print(f"wrote answers to {args.output}")
    # Degraded serving is graceful, not an error; only a total inability
    # to answer (no fallback either) is a failure exit.
    return 0 if counts.get("failed", 0) == 0 else 1


def _cmd_width(args: argparse.Namespace) -> int:
    from .poset import minimum_chain_decomposition

    points = _load(args.input)
    decomposition = minimum_chain_decomposition(points)
    sizes = decomposition.sizes()
    print(format_table([{
        "n": points.n,
        "d": points.dim,
        "width_w": decomposition.num_chains,
        "largest_chain": sizes[0] if sizes else 0,
        "smallest_chain": sizes[-1] if sizes else 0,
    }]))
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from .core.passive import solve_passive
    from .core.validation import audit_passive_result, conflict_matching_lower_bound

    points = _load(args.input)
    result = solve_passive(points, backend=args.backend)
    report = audit_passive_result(points, result)
    rows = [{"check": name,
             "status": "FAIL" if name in report.failures else "pass"}
            for name in report.checks]
    print(format_table(rows))
    print(f"\noptimal weighted error: {result.optimal_error:g}")
    print(f"matching lower bound:   {conflict_matching_lower_bound(points):g}")
    return 0 if report.ok else 1


def _cmd_repair(args: argparse.Namespace) -> int:
    from .core.repair import repair_labels

    points = _load(args.input)
    report = repair_labels(points)
    print(format_table([{
        "n": points.n,
        "flips": report.num_flips,
        "flips_0_to_1": report.flips_0_to_1,
        "flips_1_to_0": report.flips_1_to_0,
        "repair_weight": report.repair_weight,
        "consistent_after": report.repaired.is_monotone_labeling(),
    }]))
    if args.output:
        _save(report.repaired, args.output)
        print(f"wrote repaired set to {args.output}")
    return 0


def _cmd_viz(args: argparse.Namespace) -> int:
    from .viz import render_decision_region, render_points

    points = _load(args.input)
    if args.solve:
        from .core.passive import solve_passive

        result = solve_passive(points)
        print(render_decision_region(result.classifier, points=points,
                                     width=args.width, height=args.height))
        print(f"optimal weighted error: {result.optimal_error:g}")
    else:
        print(render_points(points, width=args.width, height=args.height))
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .fuzz import replay_corpus, run_fuzz

    if args.replay is not None:
        failures = replay_corpus(args.replay)
        rows = [{"entry": str(path), "findings": len(findings)}
                for path, findings in failures]
        print(format_table(rows) if rows
              else "corpus replay clean (no regressions)")
        for path, findings in failures:
            for finding in findings:
                print(f"  {path.name}: {finding}")
        return 1 if failures else 0

    report = run_fuzz(
        runs=args.runs,
        seed=args.seed,
        families=args.family,
        size=args.size,
        corpus_dir=args.corpus,
        mutant=args.mutant,
        active_every=args.active_every,
        time_budget=args.time_budget,
    )
    print(format_table([report.summary_row()]))
    for family, index, finding in report.findings[:50]:
        print(f"  run {index} [{family}]: {finding}")
    for violation in report.io_violations[:50]:
        print(f"  io: {violation}")
    for path in report.reproducers:
        print(f"  reproducer: {path}")
    if report.truncated_by_budget:
        print(f"  (campaign truncated by --time-budget after "
              f"{report.runs} runs)")
    if args.mutant is not None:
        # Self-test: a campaign against a broken mutant MUST find it.
        if report.ok:
            print(f"error: mutant {args.mutant!r} was NOT detected",
                  file=sys.stderr)
            return 1
        print(f"mutant {args.mutant!r} detected "
              f"({report.num_disagreements} finding(s))")
        return 0
    return 0 if report.ok else 1


def _cmd_profile(args: argparse.Namespace) -> int:
    from . import obs

    events = obs.load_trace_events(args.trace)
    print(obs.profile_report(events, sort=args.sort, top=args.top))
    if args.collapsed is not None:
        obs.to_collapsed(events, args.collapsed)
        print(f"wrote collapsed stacks to {args.collapsed}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments.runner import EXPERIMENTS, main as run_main

    if args.list:
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    runner_argv = list(args.names)
    if args.workers != 1:
        runner_argv += ["--workers", str(args.workers)]
    if args.out_dir is not None:
        runner_argv += ["--out-dir", args.out_dir]
    if args.resume:
        runner_argv += ["--resume"]
    return run_main(runner_argv)


def _check_writable(path: str, flag: str) -> None:
    """Fail fast when an output path cannot be written.

    Checked *before* the workload runs: a long solve that then dies
    writing its metrics or trace wastes the whole run, so unwritable
    destinations are a one-line exit-2 error up front.
    """
    import os

    directory = os.path.dirname(path) or "."
    if not os.path.isdir(directory):
        raise ValueError(f"{flag} {path}: directory {directory!r} does not exist")
    if not os.access(directory, os.W_OK):
        raise ValueError(f"{flag} {path}: directory {directory!r} is not writable")
    if os.path.exists(path):
        if os.path.isdir(path):
            raise ValueError(f"{flag} {path}: is a directory")
        if not os.access(path, os.W_OK):
            raise ValueError(f"{flag} {path}: file is not writable")


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    Input problems (missing file, malformed CSV/JSON, unwritable
    ``--metrics-out``/``--trace-out`` destinations) are reported as a
    one-line ``error:`` message on stderr with exit code 2 — user mistakes
    are not tracebacks.  When ``--metrics``/``--metrics-out``/
    ``--trace-out`` is given the whole command runs inside a metrics
    session (tracing enabled iff a trace is requested); the report prints
    after the command's own output so tables stay machine-greppable.  The
    trace file is written even when the command fails — a trace of the
    run that died is exactly the trace worth looking at.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "passive": _cmd_passive,
        "active": _cmd_active,
        "fit": _cmd_fit,
        "serve": _cmd_serve,
        "width": _cmd_width,
        "audit": _cmd_audit,
        "repair": _cmd_repair,
        "viz": _cmd_viz,
        "experiment": _cmd_experiment,
        "fuzz": _cmd_fuzz,
        "profile": _cmd_profile,
    }
    handler = handlers[args.command]
    metrics_out = getattr(args, "metrics_out", None)
    trace_out = getattr(args, "trace_out", None)
    want_metrics = (getattr(args, "metrics", False)
                    or metrics_out is not None or trace_out is not None)
    try:
        if metrics_out is not None:
            _check_writable(metrics_out, "--metrics-out")
        if trace_out is not None:
            _check_writable(trace_out, "--trace-out")
        if not want_metrics:
            return handler(args)
        from . import obs

        registry = obs.MetricsRegistry(args.command,
                                       trace=trace_out is not None)
        try:
            with obs.metrics_session(registry):
                code = handler(args)
        finally:
            if trace_out is not None:
                obs.to_chrome_trace(registry, trace_out)
                print(f"wrote trace to {trace_out}")
        if args.metrics:
            print()
            print(obs.report(registry))
        if metrics_out is not None:
            obs.export_file(registry, metrics_out)
            print(f"wrote metrics to {metrics_out}")
        return code
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
