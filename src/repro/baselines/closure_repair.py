"""Greedy closure repairs: the quick-and-dirty alternative to Theorem 4.

Practitioners often fix a non-monotone labeling by *propagation*: sweep
the points in dominance order and force consistency, either by promoting
labels upward (any point above a 1 becomes 1) or demoting them downward
(any point below a 0 becomes 0).  Both yield monotone labelings in
``O(dn^2)`` without a flow solver — but neither is optimal in general,
which is exactly the gap the exact min-cut repair closes.

:func:`closure_repair` runs both directions and keeps the cheaper one;
tests and the repair example quantify how far it lands from optimal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.points import PointSet

__all__ = ["ClosureRepairResult", "upward_closure_labels",
           "downward_closure_labels", "closure_repair"]


def upward_closure_labels(points: PointSet) -> np.ndarray:
    """Promote: every point weakly above a label-1 point becomes 1.

    The closure has a closed form — a point's repaired label is the max
    initial label over everything it weakly dominates (itself included),
    because weak dominance is transitive.  Duplicated coordinate vectors
    weakly dominate each other, so they always end up equal.
    """
    points.require_full_labels()
    if points.n == 0:
        return points.labels.astype(np.int8).copy()
    weak = points.weak_dominance_matrix()  # weak[i, j]: i dominates j
    ones = points.labels == 1
    promoted = weak[:, ones].any(axis=1)
    return np.where(promoted, 1, points.labels).astype(np.int8)


def downward_closure_labels(points: PointSet) -> np.ndarray:
    """Demote: every point weakly below a label-0 point becomes 0."""
    points.require_full_labels()
    if points.n == 0:
        return points.labels.astype(np.int8).copy()
    weak = points.weak_dominance_matrix()
    zeros = points.labels == 0
    demoted = weak[zeros, :].any(axis=0)
    return np.where(demoted, 0, points.labels).astype(np.int8)


@dataclass(frozen=True)
class ClosureRepairResult:
    """The cheaper of the two closure repairs.

    ``direction`` records which sweep won (``"up"`` or ``"down"``);
    ``repair_weight`` is its cost — an *upper bound* on the exact optimum
    of :func:`repro.core.repair.repair_labels`.
    """

    labels: np.ndarray
    direction: str
    repair_weight: float
    num_flips: int


def closure_repair(points: PointSet) -> ClosureRepairResult:
    """Run both closure sweeps and keep the cheaper monotone labeling."""
    points.require_full_labels()
    up = upward_closure_labels(points)
    down = downward_closure_labels(points)
    up_cost = float(points.weights[up != points.labels].sum())
    down_cost = float(points.weights[down != points.labels].sum())
    if up_cost <= down_cost:
        chosen, direction, cost = up, "up", up_cost
    else:
        chosen, direction, cost = down, "down", down_cost
    return ClosureRepairResult(
        labels=chosen,
        direction=direction,
        repair_weight=cost,
        num_flips=int((chosen != points.labels).sum()),
    )
