"""Baselines the paper compares against (Section 1.2) plus sanity floors.

* :mod:`.probe_all` — reveal every label, then solve passively (the naive
  optimum Theorem 1 proves unavoidable for exact answers);
* :mod:`.tao2018` — reconstruction of the per-chain binary-search approach
  of Tao, PODS'18 [25] (expected error ``<= 2 k*``);
* :mod:`.a2` — a disagreement-region active learner in the spirit of the
  ``A^2`` algorithm [2, 4, 9, 15], specialized to monotone classifiers;
* :mod:`.isotonic` — PAVA isotonic regression thresholded at 1/2, the
  classical passive 1-D comparator (what e.g. sklearn's IsotonicRegression
  would give);
* :mod:`.trivial` — constant and random-threshold floors.
"""

from .a2 import A2Result, a2_classify
from .closure_repair import (
    ClosureRepairResult,
    closure_repair,
    downward_closure_labels,
    upward_closure_labels,
)
from .isotonic import isotonic_fit, isotonic_threshold_classifier, pava
from .probe_all import ProbeAllResult, probe_all_classify
from .tao2018 import Tao2018Result, tao2018_classify
from .trivial import majority_classifier, random_threshold_classifier

__all__ = [
    "probe_all_classify",
    "ProbeAllResult",
    "tao2018_classify",
    "Tao2018Result",
    "a2_classify",
    "A2Result",
    "pava",
    "isotonic_fit",
    "isotonic_threshold_classifier",
    "majority_classifier",
    "random_threshold_classifier",
    "closure_repair",
    "ClosureRepairResult",
    "upward_closure_labels",
    "downward_closure_labels",
]
