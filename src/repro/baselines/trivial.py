"""Trivial baselines: sanity floors for the comparison experiments.

A useful experiment table includes floors that any real method must beat:
the best *constant* classifier (majority label) and a random threshold.
"""

from __future__ import annotations

from .._util import RngLike, as_generator
from ..core.classifier import ConstantClassifier, ThresholdClassifier
from ..core.oracle import LabelOracle
from ..core.points import PointSet
from ..stats.estimation import sample_with_replacement

__all__ = ["majority_classifier", "random_threshold_classifier"]


def majority_classifier(points: PointSet, oracle: LabelOracle,
                        sample_size: int = 64,
                        rng: RngLike = None) -> ConstantClassifier:
    """The better of the two constant classifiers, estimated from a sample.

    Probes ``sample_size`` random labels and returns the constant classifier
    matching the sampled majority — the cheapest possible active method.
    """
    gen = as_generator(rng)
    size = min(sample_size, points.n)
    picks = sample_with_replacement(range(points.n), size, gen)
    ones = sum(oracle.probe(int(i)) for i in picks)
    return ConstantClassifier(1 if 2 * ones >= size else 0)


def random_threshold_classifier(points: PointSet, dim: int = 0,
                                rng: RngLike = None) -> ThresholdClassifier:
    """A threshold at a uniformly random point's coordinate — zero probes."""
    gen = as_generator(rng)
    if points.n == 0:
        return ThresholdClassifier(float("inf"), dim=dim)
    pick = int(gen.integers(0, points.n))
    return ThresholdClassifier(float(points.coords[pick, dim]), dim=dim)
