"""Weighted isotonic regression (PAVA) as a passive 1-D comparator.

The classical approach to 1-D monotone classification — what a user of
scikit-learn's ``IsotonicRegression`` would do — fits a monotone real-valued
function to the 0/1 labels by weighted least squares using the Pool
Adjacent Violators Algorithm (PAVA), then thresholds at 1/2.

For binary labels this is in fact *exact*: thresholding the L2 isotonic fit
at 1/2 minimizes the weighted 0/1 error among monotone classifiers, which
the tests verify against the prefix-sum solver of
:mod:`repro.core.passive_1d`.  The baseline exists to connect the paper's
Problem 2 (d = 1) to standard statistical practice.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..core.classifier import ThresholdClassifier
from ..core.points import PointSet

__all__ = ["pava", "isotonic_fit", "isotonic_threshold_classifier"]


def pava(values: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Pool Adjacent Violators: weighted L2 isotonic regression.

    Given a sequence ``values`` (ordered by the predictor) and positive
    ``weights``, returns the non-decreasing sequence minimizing
    ``sum(weights * (fit - values)^2)``.  Classic stack-based
    implementation, ``O(n)``.
    """
    values = np.asarray(values, dtype=float)
    weights = np.asarray(weights, dtype=float)
    n = len(values)
    if weights.shape != (n,):
        raise ValueError("weights must match values in length")
    if (weights <= 0).any():
        raise ValueError("weights must be positive")
    if n == 0:
        return np.empty(0)

    # Each block: (mean, weight, count).
    means: list = []
    block_weights: list = []
    counts: list = []
    for value, weight in zip(values, weights):
        means.append(float(value))
        block_weights.append(float(weight))
        counts.append(1)
        # Merge while the monotonicity constraint is violated.
        while len(means) >= 2 and means[-2] > means[-1]:
            m2, w2, c2 = means.pop(), block_weights.pop(), counts.pop()
            m1, w1, c1 = means.pop(), block_weights.pop(), counts.pop()
            w = w1 + w2
            means.append((m1 * w1 + m2 * w2) / w)
            block_weights.append(w)
            counts.append(c1 + c2)

    fit = np.empty(n)
    pos = 0
    for mean, count in zip(means, counts):
        fit[pos:pos + count] = mean
        pos += count
    return fit


def isotonic_fit(x: Sequence[float], y: Sequence[int],
                 weights: Optional[Sequence[float]] = None
                 ) -> Tuple[np.ndarray, np.ndarray]:
    """Fit a monotone function to labeled 1-D data.

    Returns ``(sorted_x, fitted_values)`` with ``fitted_values``
    non-decreasing along ``sorted_x``.  Ties in ``x`` are pre-pooled (points
    sharing a predictor value must share a fitted value).
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    w = np.ones(len(x)) if weights is None else np.asarray(weights, dtype=float)
    order = np.argsort(x, kind="stable")
    xs, ys, ws = x[order], y[order], w[order]

    # Pool exact ties: a classifier is a function of the value.
    unique_x, start = np.unique(xs, return_index=True)
    boundaries = np.append(start, len(xs))
    pooled_y = np.empty(len(unique_x))
    pooled_w = np.empty(len(unique_x))
    for i in range(len(unique_x)):
        seg = slice(boundaries[i], boundaries[i + 1])
        pooled_w[i] = ws[seg].sum()
        pooled_y[i] = float(np.average(ys[seg], weights=ws[seg]))
    return unique_x, pava(pooled_y, pooled_w)


def isotonic_threshold_classifier(points: PointSet) -> ThresholdClassifier:
    """Passive 1-D classifier: isotonic fit thresholded at 1/2.

    The returned threshold ``tau`` is the largest x whose fitted value is
    ``< 1/2`` (``-inf`` if the fit starts at or above 1/2), so the
    classifier predicts 1 exactly where the fit reaches 1/2.
    """
    points.require_full_labels()
    if points.dim != 1:
        raise ValueError(f"isotonic baseline requires d = 1; got d = {points.dim}")
    if points.n == 0:
        return ThresholdClassifier(float("inf"))
    xs, fit = isotonic_fit(points.coords[:, 0], points.labels, points.weights)
    below = np.flatnonzero(fit < 0.5)
    if len(below) == 0:
        return ThresholdClassifier(float("-inf"))
    return ThresholdClassifier(float(xs[below[-1]]))
