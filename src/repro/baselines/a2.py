"""An ``A^2``-style disagreement-based active learner for monotone classifiers.

Section 1.2 of the paper identifies the agnostic active learner ``A^2``
[2, 4, 9, 15] as the best prior approach for a ``(1+eps) k*`` guarantee with
high probability, at probing cost ``Ω(w^2 / eps^2)`` in the best case.  No
reference implementation exists; this module provides a faithful-in-spirit
specialization to the monotone hypothesis class:

* the hypothesis space is the product of per-chain position thresholds;
* rounds alternate between (a) sampling uniformly from the current
  *disagreement region* — points whose prediction is not yet forced because
  some surviving hypothesis labels them 0 and another labels them 1 — and
  (b) eliminating per-chain thresholds whose empirical-error lower
  confidence bound exceeds the best threshold's upper bound;
* confidence intervals are Hoeffding bounds over the probed points of each
  chain, which keeps the elimination sound for the per-chain surrogate
  objective.

Documented simplifications (DESIGN.md substitution rules): per-chain
version spaces are intervals of thresholds rather than the full product
space, and the final combination solves the passive problem on all probed
points — both choices only *help* the baseline, making the comparison
against Theorem 2 conservative.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from .._util import RngLike, as_generator
from ..core.classifier import MonotoneClassifier
from ..core.oracle import LabelOracle
from ..core.passive import solve_passive
from ..core.points import PointSet
from ..poset.chains import minimum_chain_decomposition

__all__ = ["A2Result", "a2_classify"]


@dataclass(frozen=True)
class A2Result:
    """Classifier plus accounting for the A²-style baseline."""

    classifier: MonotoneClassifier
    probing_cost: int
    rounds: int
    num_chains: int
    final_disagreement: int  # points still undecided when learning stopped


class _ChainVersionSpace:
    """Surviving threshold interval ``[lo, hi]`` for one chain.

    Threshold ``t`` means positions ``>= t`` are classified 1; valid values
    are ``0 .. m`` where ``m = len(chain)`` (``m`` = all-0).
    """

    def __init__(self, chain: List[int]) -> None:
        self.chain = chain
        self.lo = 0
        self.hi = len(chain)
        # Per-position probe tallies: position -> (zeros, ones).
        self.tallies: Dict[int, Tuple[int, int]] = {}

    @property
    def m(self) -> int:
        return len(self.chain)

    def record(self, position: int, label: int) -> None:
        zeros, ones = self.tallies.get(position, (0, 0))
        if label == 1:
            self.tallies[position] = (zeros, ones + 1)
        else:
            self.tallies[position] = (zeros + 1, ones)

    def disagreement_positions(self) -> List[int]:
        """Positions whose prediction differs across surviving thresholds."""
        return list(range(self.lo, self.hi))

    def empirical_errors(self) -> np.ndarray:
        """Empirical error of every surviving threshold on probed positions."""
        errors = np.zeros(self.hi - self.lo + 1)
        for position, (zeros, ones) in self.tallies.items():
            # Threshold t classifies position p as 1 iff p >= t.
            for k, t in enumerate(range(self.lo, self.hi + 1)):
                predicted_one = position >= t
                errors[k] += zeros if predicted_one else ones
        return errors

    def total_probes(self) -> int:
        return sum(z + o for z, o in self.tallies.values())

    def eliminate(self, slack: float) -> None:
        """Drop thresholds whose error exceeds the best by more than ``slack``.

        The surviving set is kept as an interval (the smallest interval
        containing all non-eliminated thresholds), preserving the version
        space structure.
        """
        errors = self.empirical_errors()
        best = errors.min()
        keep = np.flatnonzero(errors <= best + slack)
        if len(keep) == 0:
            return
        self.lo, self.hi = self.lo + int(keep[0]), self.lo + int(keep[-1])


def a2_classify(points: PointSet, oracle: LabelOracle,
                epsilon: float = 0.5, delta: Optional[float] = None,
                samples_per_round: int = 32, max_rounds: int = 64,
                rng: RngLike = None,
                flow_backend: str = "dinic") -> A2Result:
    """Run the A²-style learner on a hidden-label point set.

    Stops when every chain's version space is a single threshold, when the
    disagreement region is empty, or after ``max_rounds`` rounds; then
    solves the passive problem on all probed points for the final answer.
    """
    if not 0 < epsilon <= 1:
        raise ValueError(f"epsilon must be in (0, 1]; got {epsilon}")
    n = points.n
    if delta is None:
        delta = 1.0 / max(4, n * n)
    gen = as_generator(rng)
    decomposition = minimum_chain_decomposition(points)
    cost_before = oracle.cost

    spaces = [_ChainVersionSpace(chain) for chain in decomposition.chains]
    rounds = 0
    for rounds in range(1, max_rounds + 1):
        # Disagreement region across all chains.
        region: List[Tuple[int, int]] = []  # (chain id, position)
        for cid, space in enumerate(spaces):
            region.extend((cid, pos) for pos in space.disagreement_positions())
        if not region:
            break
        picks = gen.integers(0, len(region), size=min(samples_per_round, len(region)))
        for pick in picks:
            cid, pos = region[pick]
            label = oracle.probe(spaces[cid].chain[pos])
            spaces[cid].record(pos, label)
        # Hoeffding slack per chain, scaled by its probe count.
        for space in spaces:
            t = space.total_probes()
            if t == 0:
                continue
            slack = math.sqrt(0.5 * t * math.log(2.0 * max(2, space.m) / delta))
            slack = min(slack, epsilon * max(1.0, t) / 2.0 + slack / 2.0)
            space.eliminate(slack)
        if all(space.lo == space.hi for space in spaces):
            break

    probed = oracle.revealed_indices
    if probed:
        labels = np.asarray([oracle.peek(i) for i in probed], dtype=np.int8)
        probed_points = PointSet(points.coords[np.asarray(probed)], labels)
        classifier = solve_passive(probed_points, backend=flow_backend).classifier
    else:  # pragma: no cover - max_rounds=0 style degenerate configuration
        from ..core.classifier import ConstantClassifier

        classifier = ConstantClassifier(0)

    remaining = sum(space.hi - space.lo for space in spaces)
    return A2Result(
        classifier=classifier,
        probing_cost=oracle.cost - cost_before,
        rounds=rounds,
        num_chains=decomposition.num_chains,
        final_disagreement=remaining,
    )
