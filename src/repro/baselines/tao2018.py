"""Reconstruction of the Tao PODS'18 active algorithm [25] (2-approximation).

The original paper ("Entity Matching with Active Monotone Classification")
has no public implementation.  Its headline algorithm probes
``O(w log(n/w))`` labels in expectation and returns a classifier of
*expected* error at most ``2 k*``.  The core mechanism, which we reconstruct
here, is:

1. decompose ``P`` into ``w`` chains (the same Lemma 6 substrate);
2. on each chain — where any monotone classifier is a position threshold —
   run a *noisy binary search*: probe the midpoint, move left on label 1
   and right on label 0, as if the chain's labeling were perfectly
   monotone.  This costs ``O(log |C_i|)`` probes per chain;
3. combine the per-chain prefix boundaries into one global monotone
   classifier: the 1-region is the upward closure of the first 1-side point
   of every chain.

Deviations from [25], documented per DESIGN.md's substitution rules:

* [25] analyses a randomized variant with repeated probes to bound the
  *expected* error by ``2 k*``; we expose ``repeats`` (majority voting per
  probe position) so experiments can trade probes for robustness, with
  ``repeats=1`` as the cheapest faithful-in-spirit configuration;
* the cross-chain combination step in [25] involves additional machinery;
  the upward-closure combination used here preserves monotonicity and the
  per-chain boundaries, which is what the comparison experiments exercise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .._util import RngLike, as_generator
from ..core.classifier import MonotoneClassifier, UpsetClassifier
from ..core.oracle import LabelOracle
from ..core.points import PointSet
from ..poset.chains import minimum_chain_decomposition

__all__ = ["Tao2018Result", "tao2018_classify"]


@dataclass(frozen=True)
class Tao2018Result:
    """Classifier plus accounting for the Tao'18-style baseline."""

    classifier: MonotoneClassifier
    probing_cost: int
    num_chains: int
    boundaries: List[int]  # per chain: index of the first 1-classified position


def _noisy_binary_search(chain: List[int], oracle: LabelOracle, repeats: int,
                         rng: np.random.Generator) -> int:
    """Find the 0/1 boundary position of a chain by (noisy) binary search.

    Treats the chain as if its labels were a clean 0-prefix / 1-suffix:
    probing position ``mid`` with a majority of ``repeats`` probes, a label
    of 1 moves the search left (boundary at or before ``mid``), a label of 0
    moves it right.  Returns the position of the first point classified 1
    (``len(chain)`` when the whole chain is classified 0).
    """
    lo, hi = 0, len(chain)  # boundary in [lo, hi]
    while lo < hi:
        mid = (lo + hi) // 2
        votes = 0
        for _ in range(repeats):
            votes += oracle.probe(chain[mid])
        majority_one = 2 * votes > repeats or (2 * votes == repeats and rng.random() < 0.5)
        if majority_one:
            hi = mid
        else:
            lo = mid + 1
    return lo


def tao2018_classify(points: PointSet, oracle: LabelOracle,
                     repeats: int = 1, rng: RngLike = None) -> Tao2018Result:
    """Run the reconstructed Tao'18 algorithm on a hidden-label point set."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1; got {repeats}")
    gen = as_generator(rng)
    decomposition = minimum_chain_decomposition(points)
    cost_before = oracle.cost

    boundaries: List[int] = []
    anchors: List[np.ndarray] = []
    for chain in decomposition.chains:
        boundary = _noisy_binary_search(chain, oracle, repeats, gen)
        boundaries.append(boundary)
        if boundary < len(chain):
            anchors.append(points.coords[chain[boundary]])

    classifier = UpsetClassifier(anchors, dim=points.dim)
    return Tao2018Result(
        classifier=classifier,
        probing_cost=oracle.cost - cost_before,
        num_chains=decomposition.num_chains,
        boundaries=boundaries,
    )
