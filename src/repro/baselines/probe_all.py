"""The naive active baseline: probe every label, then solve exactly.

Theorem 1 shows that any algorithm insisting on an *optimal* classifier
must probe ``Ω(n)`` labels, so this baseline — ``n`` probes followed by the
Theorem 4 passive solver — is asymptotically optimal for the exact problem.
It anchors the probing-cost axis in the baseline-comparison experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.classifier import MonotoneClassifier
from ..core.oracle import LabelOracle
from ..core.passive import solve_passive
from ..core.points import PointSet

__all__ = ["ProbeAllResult", "probe_all_classify"]


@dataclass(frozen=True)
class ProbeAllResult:
    """Classifier plus accounting for the probe-everything baseline."""

    classifier: MonotoneClassifier
    probing_cost: int
    optimal_error: float


def probe_all_classify(points: PointSet, oracle: LabelOracle,
                       flow_backend: str = "dinic") -> ProbeAllResult:
    """Probe all ``n`` labels and return an exactly optimal classifier."""
    n = points.n
    labels = np.asarray(oracle.probe_many(range(n)), dtype=np.int8)
    revealed = points.replace(labels=labels)
    result = solve_passive(revealed, backend=flow_backend)
    return ProbeAllResult(
        classifier=result.classifier,
        probing_cost=oracle.cost,
        optimal_error=result.optimal_error,
    )
