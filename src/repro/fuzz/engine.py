"""The differential engine: one instance, every solver configuration.

Differential testing in the query-engine-fuzzer style: run the same
instance through every interchangeable implementation and treat *any*
divergence as a finding.  For the passive problem the configuration grid
is all four max-flow backends × Hasse reduction on/off (8 exact solvers
that must agree to the last certificate), plus brute force for small
``n``.  For the active problem, ``workers=1`` versus ``workers=2`` must be
bit-for-bit identical and the Theorem 2/3 accounting must audit clean.
Every result is additionally cross-checked against the machine-checkable
certificates in :mod:`repro.core.validation` and the flow-feasibility
check of :class:`~repro.flow.FlowNetwork`.

A configuration that *raises* is also a finding (kind ``"error"``): the
strict validation boundary means hostile instances either solve
identically everywhere or fail identically everywhere with ``ValueError``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.passive import brute_force_passive, solve_passive
from ..core.points import PointSet
from ..core.validation import audit_active_result, audit_passive_result
from ..flow import FLOW_BACKENDS, FlowNetwork, solve_max_flow
from ..obs import recorder

__all__ = [
    "PassiveConfig",
    "ALL_PASSIVE_CONFIGS",
    "Disagreement",
    "run_passive_differential",
    "run_active_differential",
    "run_flow_differential",
    "check_poset_structure",
]

#: Relative tolerance for cross-implementation value agreement.
VALUE_RTOL = 1e-6

#: Default ceiling for including the exponential brute-force oracle.
BRUTE_FORCE_MAX_N = 12


@dataclass(frozen=True)
class PassiveConfig:
    """One passive solver configuration in the differential grid."""

    backend: str
    hasse: bool

    @property
    def label(self) -> str:
        """Human-readable configuration name used in findings."""
        return f"{self.backend}{'+hasse' if self.hasse else ''}"


#: The full grid: every flow backend with and without Hasse reduction.
ALL_PASSIVE_CONFIGS: Tuple[PassiveConfig, ...] = tuple(
    PassiveConfig(backend, hasse)
    for backend in sorted(FLOW_BACKENDS)
    for hasse in (False, True)
)


@dataclass(frozen=True)
class Disagreement:
    """One differential finding on one instance.

    Attributes
    ----------
    kind:
        ``"value_mismatch"`` (configurations report different optima),
        ``"certificate"`` (an optimality/accounting audit failed),
        ``"error"`` (a configuration raised where others succeeded),
        ``"structure"`` (the Hasse reduction is not minimal/complete), or
        ``"flow"`` (max-flow backends diverge or produced infeasible flow).
    config:
        Label of the configuration(s) involved.
    detail:
        Human-readable description with the observed values.
    """

    kind: str
    config: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.config}: {self.detail}"


@dataclass
class DifferentialOutcome:
    """Raw per-config observations backing a list of findings (debugging aid)."""

    values: Dict[str, float] = field(default_factory=dict)
    errors: Dict[str, str] = field(default_factory=dict)


def _relative_gap(a: float, b: float) -> float:
    return abs(a - b) / max(1.0, abs(a), abs(b))


def run_passive_differential(
    points: PointSet,
    configs: Sequence[PassiveConfig] = ALL_PASSIVE_CONFIGS,
    brute_force_max_n: int = BRUTE_FORCE_MAX_N,
    check_structure: bool = True,
    structure_max_n: int = 1024,
) -> List[Disagreement]:
    """Run one instance through the passive grid and cross-check everything.

    Returns the (possibly empty) list of findings.  ``ValueError`` raised
    uniformly by *all* configurations is treated as a clean rejection by
    the validation boundary, not a finding; divergent acceptance is.
    """
    rec = recorder()
    findings: List[Disagreement] = []
    outcome = DifferentialOutcome()

    for config in configs:
        if rec.enabled:
            rec.incr("fuzz.configs_run")
        try:
            result = solve_passive(points, backend=config.backend,
                                   use_hasse_reduction=config.hasse)
        except Exception as exc:  # noqa: BLE001 - every escape is data here
            outcome.errors[config.label] = f"{type(exc).__name__}: {exc}"
            continue
        outcome.values[config.label] = float(result.optimal_error)
        audit = audit_passive_result(points, result)
        if not audit.ok:
            findings.append(Disagreement(
                kind="certificate",
                config=config.label,
                detail=f"audit failed: {', '.join(audit.failures)}",
            ))

    # Uniform clean rejection (every config raised ValueError) is the
    # validation boundary working as designed.
    if not outcome.values and outcome.errors:
        if all(msg.startswith("ValueError") for msg in outcome.errors.values()):
            return findings
    # Divergence between raising and succeeding configs (or any non-ValueError
    # escape) is a finding per raising config.
    for label, msg in outcome.errors.items():
        if outcome.values or not msg.startswith("ValueError"):
            findings.append(Disagreement(
                kind="error", config=label,
                detail=f"raised {msg} while other configs solved",
            ))

    if outcome.values:
        items = sorted(outcome.values.items())
        ref_label, ref_value = items[0]
        for label, value in items[1:]:
            if _relative_gap(value, ref_value) > VALUE_RTOL:
                findings.append(Disagreement(
                    kind="value_mismatch",
                    config=f"{ref_label} vs {label}",
                    detail=f"optimal error {ref_value!r} != {value!r}",
                ))
        if points.n <= brute_force_max_n:
            brute = brute_force_passive(points, max_n=brute_force_max_n)
            if _relative_gap(brute, ref_value) > VALUE_RTOL:
                findings.append(Disagreement(
                    kind="value_mismatch",
                    config=f"brute_force vs {ref_label}",
                    detail=f"brute force {brute!r} != solver {ref_value!r}",
                ))

    if check_structure and points.n <= structure_max_n:
        findings.extend(check_poset_structure(points))

    if rec.enabled and findings:
        rec.incr("fuzz.disagreements", len(findings))
    return findings


def check_poset_structure(points: PointSet) -> List[Disagreement]:
    """Verify the Hasse reduction is exactly the covering relation.

    Three invariants of :func:`repro.poset.sparse.transitive_reduction`
    over the shared order matrix:

    * the reduction is a subset of the order;
    * its transitive closure reproduces the order exactly (nothing lost);
    * it is *minimal* — no kept edge has a third point strictly between
      its endpoints (the invariant the historical uint8 mod-256 overflow
      violated: spurious covering pairs at 256-multiple depths).
    """
    from ..poset.sparse import transitive_reduction

    findings: List[Disagreement] = []
    n = points.n
    if n == 0:
        return findings
    order = points.order_matrix()
    red = transitive_reduction(order)

    if bool(np.any(red & ~order)):
        findings.append(Disagreement(
            kind="structure", config="transitive_reduction",
            detail="reduction contains pairs outside the order",
        ))
        return findings

    # Completeness: closure of the reduction must equal the order.
    closure = red.copy()
    for k in range(n):
        closure |= np.outer(closure[:, k], closure[k, :])
    if bool(np.any(closure != order)):
        missing = int(np.count_nonzero(order & ~closure))
        findings.append(Disagreement(
            kind="structure", config="transitive_reduction",
            detail=f"closure of reduction loses {missing} order pair(s)",
        ))

    # Minimality: a kept edge (i, j) with some k strictly between is not a
    # covering pair.  Boolean reachability via a float matmul — no integer
    # counter to wrap.
    between = (order.astype(np.float32) @ order.astype(np.float32)) > 0.5
    spurious = red & between
    if bool(np.any(spurious)):
        i, j = (int(x[0]) for x in np.nonzero(spurious))
        findings.append(Disagreement(
            kind="structure", config="transitive_reduction",
            detail=(f"{int(np.count_nonzero(spurious))} non-covering edge(s) "
                    f"kept, e.g. ({i}, {j})"),
        ))
    return findings


def run_flow_differential(network: FlowNetwork, source: int,
                          sink: int) -> List[Disagreement]:
    """All max-flow backends on one network: equal values, feasible flows."""
    rec = recorder()
    findings: List[Disagreement] = []
    values: Dict[str, float] = {}
    for backend in sorted(FLOW_BACKENDS):
        network.reset_flow()
        if rec.enabled:
            rec.incr("fuzz.flow_solves")
        try:
            value = solve_max_flow(network, source, sink, backend=backend)
        except Exception as exc:  # noqa: BLE001
            findings.append(Disagreement(
                kind="flow", config=backend,
                detail=f"raised {type(exc).__name__}: {exc}",
            ))
            continue
        values[backend] = float(value)
        if not network.check_flow_conservation(source, sink):
            findings.append(Disagreement(
                kind="flow", config=backend,
                detail="produced an infeasible flow (conservation/capacity)",
            ))
        recomputed = network.flow_value(source)
        if _relative_gap(recomputed, value) > VALUE_RTOL:
            findings.append(Disagreement(
                kind="flow", config=backend,
                detail=f"reported value {value!r} != net source flow "
                       f"{recomputed!r}",
            ))
    if values:
        items = sorted(values.items())
        ref_backend, ref_value = items[0]
        for backend, value in items[1:]:
            if _relative_gap(value, ref_value) > VALUE_RTOL:
                findings.append(Disagreement(
                    kind="flow", config=f"{ref_backend} vs {backend}",
                    detail=f"max-flow {ref_value!r} != {value!r}",
                ))
    network.reset_flow()
    if rec.enabled and findings:
        rec.incr("fuzz.disagreements", len(findings))
    return findings


def run_active_differential(
    points: PointSet,
    seed: int = 0,
    epsilons: Sequence[float] = (0.5, 0.05),
    worker_counts: Sequence[int] = (1, 2),
    true_optimum: Optional[float] = None,
) -> List[Disagreement]:
    """Active pipeline differential: worker counts must be bit-identical.

    Runs :func:`~repro.core.active.active_classify` on ``points`` (fully
    labeled; labels are hidden for the run and served by a fresh
    :class:`~repro.core.oracle.LabelOracle`) for each ``epsilon`` at every
    worker count, compares probing cost / Σ error / per-point predictions
    across worker counts, and audits the Theorem 2/3 accounting.  Tiny
    epsilons are deliberately in the default grid: sample sizes blow up and
    the recursion windows degenerate, which is where off-by-one sampling
    bugs live.
    """
    from ..core.active import active_classify
    from ..core.oracle import LabelOracle

    rec = recorder()
    findings: List[Disagreement] = []
    points.require_full_labels()
    hidden = points.with_hidden_labels()

    for epsilon in epsilons:
        reference = None
        reference_label = ""
        for workers in worker_counts:
            label = f"active(eps={epsilon}, workers={workers})"
            if rec.enabled:
                rec.incr("fuzz.configs_run")
            oracle = LabelOracle(points)
            try:
                result = active_classify(hidden, oracle, epsilon=epsilon,
                                         rng=seed, workers=workers)
            except Exception as exc:  # noqa: BLE001
                findings.append(Disagreement(
                    kind="error", config=label,
                    detail=f"raised {type(exc).__name__}: {exc}",
                ))
                continue
            audit = audit_active_result(points, result, oracle,
                                        true_optimum=true_optimum)
            if not audit.ok:
                findings.append(Disagreement(
                    kind="certificate", config=label,
                    detail=f"audit failed: {', '.join(audit.failures)}",
                ))
            observation = (
                result.probing_cost,
                float(result.sigma_error),
                result.classifier.classify_set(points).tobytes(),
            )
            if reference is None:
                reference = observation
                reference_label = label
            elif observation[:2] != reference[:2] or observation[2] != reference[2]:
                findings.append(Disagreement(
                    kind="value_mismatch",
                    config=f"{reference_label} vs {label}",
                    detail=(f"probes/Σ-error/predictions diverge: "
                            f"{reference[:2]} vs {observation[:2]}"),
                ))
    if rec.enabled and findings:
        rec.incr("fuzz.disagreements", len(findings))
    return findings
