"""Replayable regression corpus for shrunk reproducers.

Every disagreement the fuzzer finds and shrinks is serialized into a
small, self-describing JSON file under ``tests/corpus/``.  Corpus entries
are the fuzzer's long-term memory: tier-1 tests replay every entry through
the full differential grid on each run, so a bug found once by a nightly
campaign can never silently return.

The format is deliberately dumb — schema version, provenance (family,
seed, mutant, findings at capture time), and the columnar point data —
and the filename embeds a content digest, so re-saving the same
reproducer is idempotent and replay is deterministic.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from .._util import atomic_write_json
from ..core.points import PointSet
from .engine import Disagreement, run_passive_differential

__all__ = [
    "CORPUS_SCHEMA_VERSION",
    "save_reproducer",
    "load_reproducer",
    "iter_corpus",
    "replay_corpus",
]

PathLike = Union[str, Path]

CORPUS_SCHEMA_VERSION = 1


def _points_payload(points: PointSet) -> Dict[str, object]:
    return {
        "dim": points.dim,
        "coords": points.coords.tolist(),
        "labels": points.labels.tolist(),
        "weights": points.weights.tolist(),
    }


def save_reproducer(corpus_dir: PathLike, points: PointSet, *,
                    family: str, seed: int,
                    findings: Sequence[Disagreement],
                    mutant: Optional[str] = None) -> Path:
    """Serialize a shrunk reproducer; returns the written path.

    The filename is ``repro-<family>-<digest>.json`` where the digest
    covers the instance data, so saving the same reproducer twice (e.g.
    from two campaigns) lands on the same file.
    """
    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": CORPUS_SCHEMA_VERSION,
        "family": family,
        "seed": seed,
        "mutant": mutant,
        "findings": [str(f) for f in findings],
        "points": _points_payload(points),
    }
    digest = hashlib.sha256(
        json.dumps(payload["points"], sort_keys=True).encode()
    ).hexdigest()[:12]
    path = corpus_dir / f"repro-{family}-{digest}.json"
    atomic_write_json(path, payload)
    return path


def load_reproducer(path: PathLike) -> Tuple[PointSet, Dict[str, object]]:
    """Load one corpus entry; returns ``(points, metadata)``.

    Corpus files are trusted repository artifacts but still validated —
    a malformed entry raises ``ValueError`` naming the file.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not parseable as JSON: {exc}") from None
    if not isinstance(payload, dict) or "points" not in payload:
        raise ValueError(f"{path}: not a corpus entry (missing 'points')")
    schema = payload.get("schema")
    if schema != CORPUS_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported corpus schema {schema!r} "
            f"(expected {CORPUS_SCHEMA_VERSION})")
    data = payload["points"]
    try:
        points = PointSet(np.asarray(data["coords"], dtype=float)
                          .reshape(-1, int(data["dim"])),
                          data["labels"], data["weights"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"{path}: malformed points payload: {exc}") from None
    meta = {key: value for key, value in payload.items() if key != "points"}
    return points, meta


def iter_corpus(corpus_dir: PathLike) -> Iterator[Path]:
    """Yield corpus entry paths in sorted (deterministic) order."""
    corpus_dir = Path(corpus_dir)
    if not corpus_dir.is_dir():
        return
    yield from sorted(corpus_dir.glob("repro-*.json"))


def replay_corpus(corpus_dir: PathLike) -> List[Tuple[Path, List[Disagreement]]]:
    """Re-run the full differential grid on every corpus entry.

    Returns ``(path, findings)`` pairs for entries that still disagree —
    on a healthy tree the list is empty (every archived bug stays fixed).
    """
    failures: List[Tuple[Path, List[Disagreement]]] = []
    for path in iter_corpus(corpus_dir):
        points, _meta = load_reproducer(path)
        findings = run_passive_differential(points)
        if findings:
            failures.append((path, findings))
    return failures
