"""Fuzz campaigns: generate → differentiate → shrink → archive.

:func:`run_fuzz` is the driver behind ``repro fuzz`` and the CI jobs.  Per
run it draws a hostile instance from a registered family (child seed
``i`` of the campaign seed, so any single run can be replayed in
isolation), pushes it through the passive differential grid, a random
max-flow cross-check, periodically the active workers-1-vs-2 differential,
and — for the ``io`` family — byte-mutates serialized datasets against the
loader boundary.  Any disagreement is shrunk with ddmin to a 1-minimal
reproducer and archived in the regression corpus.

Campaigns are deterministic given ``(seed, runs, families, size)``; the
optional wall-clock budget only ever *truncates* the run sequence, it
never reorders it.
"""

from __future__ import annotations

import tempfile
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import ContextManager, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.points import PointSet
from ..flow import FlowNetwork
from ..obs import recorder
from ..parallel.seeds import spawn_seed_sequences
from .corpus import save_reproducer
from .engine import (
    ALL_PASSIVE_CONFIGS,
    Disagreement,
    check_poset_structure,
    run_active_differential,
    run_flow_differential,
    run_passive_differential,
)
from .generators import FAMILIES, generate, mutate_bytes, serialized_corpus_texts
from .mutants import apply_mutant
from .shrink import shrink_instance

__all__ = ["FuzzReport", "run_fuzz", "fuzz_io_roundtrip",
           "fuzz_artifact_roundtrip", "IO_FAMILY"]

#: Pseudo-family name routing runs to the IO byte-mutation fuzzer.
IO_FAMILY = "io"


@dataclass
class FuzzReport:
    """Outcome of one fuzz campaign."""

    runs: int = 0
    seed: int = 0
    instances_by_family: Dict[str, int] = field(default_factory=dict)
    findings: List[Tuple[str, int, Disagreement]] = field(default_factory=list)
    reproducers: List[str] = field(default_factory=list)
    io_mutations: int = 0
    io_violations: List[str] = field(default_factory=list)
    shrink_evaluations: int = 0
    truncated_by_budget: bool = False

    @property
    def num_disagreements(self) -> int:
        """Total findings across all runs (including IO-boundary breaks)."""
        return len(self.findings) + len(self.io_violations)

    @property
    def ok(self) -> bool:
        """True when the campaign found nothing."""
        return self.num_disagreements == 0

    def summary_row(self) -> Dict[str, object]:
        """One table row for the CLI."""
        return {
            "runs": self.runs,
            "families": len(self.instances_by_family),
            "io_mutations": self.io_mutations,
            "disagreements": self.num_disagreements,
            "reproducers": len(self.reproducers),
            "shrink_evals": self.shrink_evaluations,
            "ok": self.ok,
        }


def fuzz_io_roundtrip(points: PointSet, rng: np.random.Generator,
                      mutations_per_text: int = 8) -> Tuple[int, List[str]]:
    """Byte-mutate both serialized forms of ``points`` against the loaders.

    Every mutated file must either load into a valid :class:`PointSet` or
    raise ``ValueError`` — any other exception type is a violation of the
    :mod:`repro.io` validation boundary.  Returns ``(mutations_tried,
    violations)``.
    """
    from ..io import load_csv, load_json

    violations: List[str] = []
    tried = 0
    texts = serialized_corpus_texts(points)
    with tempfile.TemporaryDirectory() as tmp:
        for text, (suffix, loader) in zip(
                texts, ((".csv", load_csv), (".json", load_json))):
            for k in range(mutations_per_text):
                tried += 1
                corrupted = mutate_bytes(text, rng, mutations=1 + k % 4)
                target = Path(tmp) / f"mutated{k}{suffix}"
                target.write_bytes(corrupted)
                try:
                    loaded = loader(target)
                except ValueError:
                    continue  # clean rejection: the boundary held
                except Exception as exc:  # noqa: BLE001 - the point of the test
                    violations.append(
                        f"{suffix} loader raised {type(exc).__name__} on "
                        f"mutated input: {exc}")
                    continue
                # Accepted: the parse must at least be a structurally valid
                # set (constructor invariants enforce the rest).
                if loaded.n and not np.isfinite(loaded.coords).all():
                    violations.append(
                        f"{suffix} loader accepted non-finite coordinates")
    return tried, violations


def fuzz_artifact_roundtrip(
    points: PointSet, rng: np.random.Generator,
    mutations_per_text: int = 8,
    corpus_dir: Optional[str] = None,
) -> Tuple[int, List[str], List[str]]:
    """Byte-mutate a serve model artifact against :func:`load_artifact`.

    Fits a real artifact (classifier + fallback + chains + certificate) on
    ``points``, then attacks its envelope the way :func:`fuzz_io_roundtrip`
    attacks datasets: every mutation must either be *cleanly rejected*
    (``ValueError`` naming the file) or load into an artifact whose digest
    verifies and whose classifier still answers queries.  Any other
    exception type — or an accepted artifact that then crashes on a
    classify — is a violation of the serve validation boundary.  Offending
    mutated bytes are archived under ``corpus_dir`` when given.  Returns
    ``(mutations_tried, violations, archived_paths)``.
    """
    import hashlib

    from ..serve.artifact import fit_artifact, load_artifact, save_artifact

    if points.n == 0:
        return 0, [], []
    if (points.labels < 0).any():
        points = points.replace(labels=np.where(points.labels < 0, 0,
                                                points.labels))
    artifact = fit_artifact(points, "passive")
    violations: List[str] = []
    archived: List[str] = []
    tried = 0
    with tempfile.TemporaryDirectory() as tmp:
        source = Path(tmp) / "artifact.json"
        save_artifact(artifact, source)
        text = source.read_text()
        for k in range(mutations_per_text):
            tried += 1
            corrupted = mutate_bytes(text, rng, mutations=1 + k % 4)
            target = Path(tmp) / f"mutated{k}.json"
            target.write_bytes(corrupted)
            finding: Optional[str] = None
            try:
                loaded = load_artifact(target)
            except ValueError:
                continue  # clean rejection: the boundary held
            except Exception as exc:  # noqa: BLE001 - the point of the test
                finding = (f"artifact loader raised {type(exc).__name__} on "
                           f"mutated envelope: {exc}")
            else:
                # Accepted: the digest verified, so the artifact must be
                # fully servable — a classify crash here means hostile
                # bytes slipped past verification.
                try:
                    probe = np.zeros((1, points.dim))
                    loaded.classifier.classify_matrix(probe)
                    if loaded.fallback is not None:
                        loaded.fallback.classify_matrix(probe)
                except Exception as exc:  # noqa: BLE001
                    finding = ("artifact accepted but classify raised "
                               f"{type(exc).__name__}: {exc}")
            if finding is None:
                continue
            violations.append(finding)
            if corpus_dir is not None:
                stem = hashlib.sha256(corrupted).hexdigest()[:16]
                corpus = Path(corpus_dir)
                corpus.mkdir(parents=True, exist_ok=True)
                entry = corpus / f"artifact-{stem}.json"
                entry.write_bytes(corrupted)
                archived.append(str(entry))
    return tried, violations, archived


def _random_network(rng: np.random.Generator, max_nodes: int = 24
                    ) -> Tuple[FlowNetwork, int, int]:
    """A small random capacitated digraph for backend cross-checking."""
    n = int(rng.integers(2, max_nodes + 1))
    network = FlowNetwork(n)
    num_edges = int(rng.integers(1, 4 * n))
    for _ in range(num_edges):
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u == v:
            continue
        capacity = float(rng.choice([0.0, 0.5, 1.0, 3.0, 1e6,
                                     float(rng.random() * 10)]))
        network.add_edge(u, v, capacity)
    return network, 0, n - 1


def run_fuzz(
    runs: int = 100,
    seed: int = 0,
    families: Optional[Sequence[str]] = None,
    size: int = 48,
    corpus_dir: Optional[str] = None,
    mutant: Optional[str] = None,
    active_every: int = 0,
    active_max_n: int = 40,
    time_budget: Optional[float] = None,
    shrink: bool = True,
) -> FuzzReport:
    """Run a differential fuzz campaign; see the module docstring.

    Parameters
    ----------
    runs:
        Number of instances to generate and cross-check.
    seed:
        Campaign seed; run ``i`` uses child seed ``i`` (replayable alone).
    families:
        Family names to draw from (default: all registered point-set
        families plus the ``io`` byte-mutation fuzzer).
    size:
        Target instance size handed to the generators.
    corpus_dir:
        When set, shrunk reproducers are archived here.
    mutant:
        Optional named solver mutant (see :mod:`repro.fuzz.mutants`)
        activated for every differential check — the engine's self-test
        mode; campaigns with a mutant are *expected* to find disagreements.
    active_every:
        Every ``k``-th run additionally cross-checks the active pipeline
        (workers 1 vs 2) on a size-capped instance; 0 disables.
    time_budget:
        Optional wall-clock budget in seconds; the campaign stops early
        (deterministic prefix of the full campaign) when exceeded.
    shrink:
        Disable to archive unshrunk instances (faster triage runs).
    """
    if runs < 0:
        raise ValueError(f"runs must be >= 0; got {runs}")
    chosen = list(families) if families else [*sorted(FAMILIES), IO_FAMILY]
    for name in chosen:
        if name != IO_FAMILY and name not in FAMILIES:
            raise ValueError(
                f"unknown fuzz family {name!r}; available: "
                f"{sorted(FAMILIES) + [IO_FAMILY]}")
    rec = recorder()
    report = FuzzReport(seed=seed)
    child_seeds = spawn_seed_sequences(np.random.default_rng(seed), runs)
    started = time.monotonic()
    def mutant_context() -> ContextManager[None]:
        return apply_mutant(mutant) if mutant else nullcontext()

    for index in range(runs):
        if time_budget is not None and time.monotonic() - started > time_budget:
            report.truncated_by_budget = True
            break
        rng = np.random.default_rng(child_seeds[index])
        family = chosen[index % len(chosen)]
        report.instances_by_family[family] = (
            report.instances_by_family.get(family, 0) + 1)
        report.runs += 1
        if rec.enabled:
            rec.incr("fuzz.instances")
            rec.incr(f"fuzz.family.{family}")

        if family == IO_FAMILY:
            points = generate("random", rng, min(size, 24))
            tried, violations = fuzz_io_roundtrip(points, rng)
            a_tried, a_violations, a_archived = fuzz_artifact_roundtrip(
                points, rng, corpus_dir=corpus_dir)
            tried += a_tried
            violations = violations + a_violations
            report.io_mutations += tried
            report.io_violations.extend(violations)
            report.reproducers.extend(a_archived)
            if rec.enabled:
                rec.incr("fuzz.io_mutations", tried)
                if violations:
                    rec.incr("fuzz.disagreements", len(violations))
            continue

        points = generate(family, rng, size)
        with mutant_context():
            findings = run_passive_differential(points,
                                                configs=ALL_PASSIVE_CONFIGS)
        findings.extend(run_flow_differential(*_random_network(rng)))
        if active_every and index % active_every == 0 and points.n:
            capped = (points if points.n <= active_max_n
                      else points.subset(np.arange(active_max_n)))
            with mutant_context():
                findings.extend(run_active_differential(capped, seed=seed))

        if not findings:
            continue
        for finding in findings:
            report.findings.append((family, index, finding))

        shrunk = points
        if shrink and points.n > 1:
            # Structure-only findings (a broken Hasse reduction, say) can be
            # re-checked without re-solving the whole differential grid —
            # ddmin runs hundreds of predicate evaluations, so the cheap
            # predicate is the difference between seconds and minutes.
            structure_only = all(f.kind == "structure" for f in findings)

            def still_fails(candidate: PointSet) -> bool:
                with mutant_context():
                    if structure_only:
                        return bool(check_poset_structure(candidate))
                    return bool(run_passive_differential(
                        candidate, configs=ALL_PASSIVE_CONFIGS))

            with_passive = still_fails(points)
            if with_passive:
                shrunk, evaluations = shrink_instance(points, still_fails)
                report.shrink_evaluations += evaluations
        if corpus_dir is not None:
            path = save_reproducer(corpus_dir, shrunk, family=family,
                                   seed=seed, findings=findings,
                                   mutant=mutant)
            report.reproducers.append(str(path))

    if rec.enabled:
        rec.gauge("fuzz.total_disagreements", report.num_disagreements)
    return report
