"""Differential fuzzing and adversarial hardening (``repro.fuzz``).

PR 4's resilience layer made the pipeline survive *infrastructure*
failure; this package defends it against *hostile data* — the regime the
paper itself studies (the Theorem 1 lower bound is an adversarial input
family).  Four pieces:

* :mod:`.generators` — hostile instance families: the paper's Theorem 1
  hard inputs, duplicate-coordinate floods, maximal chains/antichains,
  near-float-limit coordinates and weights, plus byte-level mutation of
  serialized datasets;
* :mod:`.engine` — the differential engine: every passive configuration
  (four flow backends × Hasse reduction on/off × brute force for small
  ``n``) and the active pipeline at workers 1 and 2 must agree exactly
  and pass the :mod:`repro.core.validation` certificates;
* :mod:`.shrink` / :mod:`.corpus` — ddmin shrinking of any disagreement
  to a 1-minimal reproducer, archived in a replayable regression corpus
  under ``tests/corpus/``;
* :mod:`.mutants` / :mod:`.runner` — deliberately broken solver mutants
  that self-test the whole detect-shrink-archive loop, and the campaign
  driver behind ``repro fuzz`` and the nightly CI job.

See ``docs/robustness.md`` for the triage workflow.
"""

from .corpus import (
    CORPUS_SCHEMA_VERSION,
    iter_corpus,
    load_reproducer,
    replay_corpus,
    save_reproducer,
)
from .engine import (
    ALL_PASSIVE_CONFIGS,
    Disagreement,
    PassiveConfig,
    check_poset_structure,
    run_active_differential,
    run_flow_differential,
    run_passive_differential,
)
from .generators import FAMILIES, generate, mutate_bytes
from .mutants import MUTANTS, apply_mutant
from .runner import FuzzReport, fuzz_io_roundtrip, run_fuzz
from .shrink import shrink_instance

__all__ = [
    "FAMILIES",
    "generate",
    "mutate_bytes",
    "PassiveConfig",
    "ALL_PASSIVE_CONFIGS",
    "Disagreement",
    "run_passive_differential",
    "run_active_differential",
    "run_flow_differential",
    "check_poset_structure",
    "shrink_instance",
    "MUTANTS",
    "apply_mutant",
    "CORPUS_SCHEMA_VERSION",
    "save_reproducer",
    "load_reproducer",
    "iter_corpus",
    "replay_corpus",
    "FuzzReport",
    "run_fuzz",
    "fuzz_io_roundtrip",
]
