"""Hostile instance families for the differential fuzzer.

Random point sets almost never stress the solvers where they can actually
break: the paper's own lower-bound construction (Theorem 1), duplicate
coordinate vectors with opposing labels, degenerate posets (one maximal
chain, one maximal antichain), and weight/coordinate scales at the edge of
float64 are where dominance tie-breaks, effective-infinity capacities, and
Hasse reductions earn their keep.  Each family here is a deterministic
function of a ``numpy`` Generator and a target size, registered in
:data:`FAMILIES` so campaigns (:mod:`repro.fuzz.runner`) and the CLI can
select them by name.

Byte-level corruption of serialized datasets lives here too
(:func:`mutate_bytes`): the loaders in :mod:`repro.io` must answer every
mutated file with either a valid :class:`~repro.core.points.PointSet` or a
clean ``ValueError`` — never a ``TypeError`` traceback or a silently
corrupt set.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from ..core.lowerbound import adversarial_input
from ..core.points import PointSet

__all__ = [
    "FAMILIES",
    "theorem1_hard",
    "duplicate_flood",
    "max_chain",
    "antichain",
    "near_equal_weights",
    "extreme_weights",
    "near_float_limit_coords",
    "random_mixed",
    "generate",
    "mutate_bytes",
    "serialized_corpus_texts",
]

GeneratorFn = Callable[[np.random.Generator, int], PointSet]


def _random_weights(rng: np.random.Generator, n: int) -> np.ndarray:
    """Positive weights with occasional ties, the common case for families."""
    weights = rng.random(n) + 0.25
    # Force some exact ties so min-cut tie-breaking gets exercised.
    if n >= 4:
        weights[rng.integers(0, n, size=n // 4)] = 1.0
    return weights


def theorem1_hard(rng: np.random.Generator, size: int) -> PointSet:
    """The paper's Section 6 adversarial 1-D family (Theorem 1 hard inputs).

    Picks a uniformly random member ``P_00(i)`` / ``P_11(i)``: alternating
    labels on ``{1..n}`` with one anomalous pair.  Optimal error is exactly
    ``n/2 - 1`` — maximal conflict density, the worst regime for the
    min-cut construction.
    """
    n = max(4, size - size % 2)
    kind = "00" if rng.integers(0, 2) == 0 else "11"
    anomaly_pair = int(rng.integers(1, n // 2 + 1))
    points = adversarial_input(n, anomaly_pair=anomaly_pair, kind=kind)
    # Re-weight: the family is unit-weight by construction; half the time
    # keep it (König tightness is only audited for uniform weights), half
    # the time randomize to stress the weighted path.
    if rng.integers(0, 2) == 1:
        return points.replace(weights=_random_weights(rng, points.n))
    return points


def duplicate_flood(rng: np.random.Generator, size: int) -> PointSet:
    """Few distinct coordinate vectors, many copies, clashing labels.

    Duplicate coordinates with opposing labels are the sharpest test of the
    label-aware tie-breaks: a classifier is a function of coordinates, so
    opposing duplicates *must* contend, and the Hasse-reduced network must
    encode the direction that forbids the free assignment.
    """
    n = max(2, size)
    num_distinct = max(1, n // 8)
    dim = int(rng.integers(1, 4))
    distinct = rng.integers(0, 4, size=(num_distinct, dim)).astype(float)
    idx = rng.integers(0, num_distinct, size=n)
    labels = rng.integers(0, 2, size=n).astype(np.int8)
    return PointSet(distinct[idx], labels, _random_weights(rng, n))


def max_chain(rng: np.random.Generator, size: int) -> PointSet:
    """A single maximal chain (totally ordered set) with noisy labels.

    Width 1, Hasse diagram of ``n - 1`` edges, and the deepest possible
    transitive closure — the regime where the uint8 reduction bug of
    PR 3 lived (spurious covering pairs at 256-multiple depths).
    """
    n = max(2, size)
    dim = int(rng.integers(1, 4))
    base = np.sort(rng.random(n))
    coords = np.repeat(base[:, None], dim, axis=1)
    labels = (rng.random(n) < 0.5).astype(np.int8)
    return PointSet(coords, labels, _random_weights(rng, n))


def antichain(rng: np.random.Generator, size: int) -> PointSet:
    """A maximal antichain: no two points comparable, nothing contends.

    The optimal error must be exactly 0 with every label kept — any flip
    is a solver bug, and the contending reduction must produce an empty
    instance.
    """
    n = max(1, size)
    x = np.arange(n, dtype=float)
    coords = np.stack([x, -x], axis=1)
    labels = rng.integers(0, 2, size=n).astype(np.int8)
    return PointSet(coords, labels, _random_weights(rng, n))


def near_equal_weights(rng: np.random.Generator, size: int) -> PointSet:
    """Weights separated by a few ulps — cut comparisons on a knife edge.

    Near-ties between alternative minimum cuts expose any backend whose
    cut extraction depends on accumulated floating-point error.
    """
    n = max(2, size)
    dim = int(rng.integers(1, 3))
    coords = rng.random((n, dim))
    labels = rng.integers(0, 2, size=n).astype(np.int8)
    base = 1.0
    ulps = rng.integers(0, 3, size=n)
    weights = np.full(n, base)
    for _ in range(3):
        weights = np.where(ulps > 0, np.nextafter(weights, 2.0), weights)
        ulps = ulps - 1
    return PointSet(coords, labels, weights)


def extreme_weights(rng: np.random.Generator, size: int) -> PointSet:
    """Weight magnitudes spanning ~30 orders, up near the float64 edge.

    The effective-infinity capacity of the passive network is derived from
    the total weight; mixing 1e-12 and 1e15 weights checks that "infinite"
    edges stay uncuttable and small weights are not absorbed.
    """
    n = max(2, size)
    dim = int(rng.integers(1, 3))
    coords = rng.random((n, dim))
    labels = rng.integers(0, 2, size=n).astype(np.int8)
    exponents = rng.integers(-12, 16, size=n).astype(float)
    weights = 10.0 ** exponents
    return PointSet(coords, labels, weights)


def near_float_limit_coords(rng: np.random.Generator, size: int) -> PointSet:
    """Coordinates at ±1e300 scale and separations of a single ulp.

    Dominance is pure comparison so huge magnitudes must be harmless, and
    one-ulp separations must still order points strictly (no accidental
    equality from intermediate arithmetic).
    """
    n = max(2, size)
    dim = int(rng.integers(1, 3))
    magnitude = 1e300
    coords = rng.integers(-2, 3, size=(n, dim)).astype(float) * magnitude
    # Nudge some coordinates by one ulp to create barely-distinct vectors.
    nudge = rng.integers(0, 2, size=(n, dim)) == 1
    coords = np.where(nudge, np.nextafter(coords, np.inf), coords)
    labels = rng.integers(0, 2, size=n).astype(np.int8)
    return PointSet(coords, labels)


def random_mixed(rng: np.random.Generator, size: int) -> PointSet:
    """Baseline random instances (dims 1-4, arbitrary labels, mixed weights)."""
    n = max(1, size)
    dim = int(rng.integers(1, 5))
    coords = rng.random((n, dim))
    labels = rng.integers(0, 2, size=n).astype(np.int8)
    return PointSet(coords, labels, _random_weights(rng, n))


#: Registry of hostile instance families, by name.  Every entry is a pure
#: function of (Generator, size) so campaigns replay deterministically.
FAMILIES: Dict[str, GeneratorFn] = {
    "theorem1": theorem1_hard,
    "duplicates": duplicate_flood,
    "chain": max_chain,
    "antichain": antichain,
    "near_equal_weights": near_equal_weights,
    "extreme_weights": extreme_weights,
    "float_limit_coords": near_float_limit_coords,
    "random": random_mixed,
}


def generate(family: str, rng: np.random.Generator, size: int) -> PointSet:
    """Generate one instance of a named family."""
    try:
        fn = FAMILIES[family]
    except KeyError:
        raise ValueError(
            f"unknown fuzz family {family!r}; available: {sorted(FAMILIES)}"
        ) from None
    return fn(rng, size)


def mutate_bytes(text: str, rng: np.random.Generator,
                 mutations: int = 4) -> bytes:
    """Corrupt a serialized dataset at the byte level.

    Applies ``mutations`` random edits — overwrite, insert, delete, or
    truncate — to the UTF-8 encoding of ``text``.  Output is raw bytes (it
    need not decode cleanly); the loader under test must respond with a
    valid parse or a clean ``ValueError``.
    """
    data = bytearray(text.encode("utf-8"))
    for _ in range(max(1, mutations)):
        if not data:
            break
        op = int(rng.integers(0, 4))
        pos = int(rng.integers(0, len(data)))
        if op == 0:  # overwrite with a random byte
            data[pos] = int(rng.integers(0, 256))
        elif op == 1:  # insert a random byte
            data.insert(pos, int(rng.integers(0, 256)))
        elif op == 2:  # delete one byte
            del data[pos]
        else:  # truncate
            del data[pos:]
    return bytes(data)


def serialized_corpus_texts(points: PointSet) -> List[str]:
    """Both serialized forms of ``points``, as mutation seeds."""
    import tempfile
    from pathlib import Path

    from ..io import save_csv, save_json

    texts = []
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = Path(tmp) / "seed.csv"
        json_path = Path(tmp) / "seed.json"
        save_csv(points, csv_path)
        save_json(points, json_path)
        texts.append(csv_path.read_text())
        texts.append(json_path.read_text())
    return texts
