"""Deliberately broken solver mutants for self-testing the fuzzer.

A differential engine that has never caught a bug is untested itself.
Mutation testing closes the loop: each mutant here re-introduces a real
(historical or representative) defect behind a context manager, and the
engine's self-tests assert that the campaign finds a disagreement and
shrinks it to a small reproducer.  This is the correctness-side analogue
of the fault injection in :mod:`repro.resilience.faults` — there we break
the *infrastructure* on purpose, here we break the *solver*.

Mutants patch module attributes and restore them in a ``finally`` block;
they are process-local, never nest with themselves, and are exposed on the
CLI (``repro fuzz --mutant NAME``) so the whole detect-shrink-serialize
path can be exercised end to end by hand.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, ContextManager, Dict, Iterator

import numpy as np

__all__ = ["MUTANTS", "apply_mutant"]


def _uint8_transitive_reduction(order: np.ndarray) -> np.ndarray:
    """The pre-PR-3 Hasse reduction with the uint8 mod-256 overflow.

    Counts the points strictly between each pair with a ``uint8`` matrix
    product; a pair with a multiple-of-256 number of intermediates wraps
    to zero and is falsely kept as a covering edge (a 258-point chain
    emits a spurious ``(0, 257)`` edge).  Kept verbatim as a mutant: the
    fuzzer's poset-structure check must flag the non-minimal reduction.
    """
    order = np.asarray(order, dtype=bool)
    small = order.astype(np.uint8)
    between_count = small @ small
    return order & (between_count == 0)


@contextmanager
def _hasse_uint8_overflow() -> Iterator[None]:
    from ..poset import sparse

    original = sparse.transitive_reduction
    sparse.transitive_reduction = _uint8_transitive_reduction  # type: ignore[assignment]
    try:
        yield
    finally:
        sparse.transitive_reduction = original  # type: ignore[assignment]


@contextmanager
def _hasse_index_tie_break() -> Iterator[None]:
    """Drop the label-aware tie-break from the Hasse-reduced order.

    Re-introduces the subtle duplicate-coordinate bug the label-aware
    ranking in ``_hasse_reduced_order`` exists to prevent: with a plain
    index tie-break, an opposing-label duplicate pair can be encoded in
    the direction that fails to forbid the zero-flip assignment, so the
    Hasse-reduced network reports a cheaper (wrong) optimum or an outright
    non-monotone assignment.
    """
    from ..core import passive

    original = passive._hasse_reduced_order

    def broken(points):  # type: ignore[no-untyped-def]
        weak = points.weak_dominance_matrix()
        equal = weak & weak.T
        order = weak & ~equal
        if points.n:
            idx = np.arange(points.n)
            order |= equal & (idx[:, None] > idx[None, :])
        return order

    passive._hasse_reduced_order = broken  # type: ignore[assignment]
    try:
        yield
    finally:
        passive._hasse_reduced_order = original  # type: ignore[assignment]


@contextmanager
def _capacity_plus_one() -> Iterator[None]:
    """Revert the effective-infinity guard to the bare ``total + 1.0``.

    Strips *every* scale check at once: the ill-conditioning rejection, the
    overflow detection and the absorbed-``+ 1.0`` fallback — the naive
    implementation the guard replaced.  At extreme weight scales the mutant
    either feeds the backends numerically meaningless capacities (tripping
    a backend-dependent assertion where healthy code raises a uniform
    ``ValueError``) or silently makes "infinite" edges cuttable — the
    extreme-weights family exists to catch precisely this.
    """
    from ..core import passive

    original = passive._effective_infinity
    passive._effective_infinity = (  # type: ignore[assignment]
        lambda total, min_weight: total + 1.0)
    try:
        yield
    finally:
        passive._effective_infinity = original  # type: ignore[assignment]


#: Named mutants: context managers that break one solver invariant each.
MUTANTS: Dict[str, Callable[[], ContextManager[None]]] = {
    "hasse_uint8_overflow": _hasse_uint8_overflow,
    "hasse_index_tie_break": _hasse_index_tie_break,
    "capacity_plus_one": _capacity_plus_one,
}


@contextmanager
def apply_mutant(name: str) -> Iterator[None]:
    """Activate a named mutant for the duration of the block."""
    try:
        factory = MUTANTS[name]
    except KeyError:
        raise ValueError(
            f"unknown mutant {name!r}; available: {sorted(MUTANTS)}"
        ) from None
    with factory():
        yield
