"""Delta-debugging shrinker: minimize a disagreeing instance.

A 500-point instance that splits two backends is evidence; a 4-point one
is a bug report.  :func:`shrink_instance` is classic ddmin over the point
set: repeatedly try dropping chunks of points (halves, then quarters, …,
then single points) while the caller's predicate — "the differential
engine still finds a disagreement" — keeps holding.  The result is
1-minimal: removing any single remaining point loses the disagreement.

Shrinking is fully deterministic (no randomness, fixed scan order), so a
shrunk reproducer serialized into the corpus replays identically.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from ..core.points import PointSet
from ..obs import recorder

__all__ = ["shrink_instance"]

Predicate = Callable[[PointSet], bool]


def shrink_instance(points: PointSet, predicate: Predicate,
                    max_evaluations: int = 2000) -> Tuple[PointSet, int]:
    """Return a 1-minimal sub-instance still satisfying ``predicate``.

    Parameters
    ----------
    points:
        The original failing instance; ``predicate(points)`` must be true.
    predicate:
        Re-runs the check (typically the differential engine under the
        same mutant/configuration) on a candidate sub-instance.
    max_evaluations:
        Hard cap on predicate evaluations; shrinking stops early — still
        sound, possibly not 1-minimal — when exhausted.

    Returns
    -------
    (shrunk, evaluations):
        The minimized instance and the number of predicate calls spent.
    """
    if not predicate(points):
        raise ValueError("predicate does not hold on the original instance")
    rec = recorder()
    indices = np.arange(points.n)
    evaluations = 0

    def holds(candidate_indices: np.ndarray) -> bool:
        nonlocal evaluations
        evaluations += 1
        if rec.enabled:
            rec.incr("fuzz.shrink_evals")
        return predicate(points.subset(candidate_indices))

    chunks = 2
    while len(indices) >= 2 and evaluations < max_evaluations:
        size = len(indices)
        chunk_bounds = np.array_split(np.arange(size), min(chunks, size))
        progressed = False
        # Try dropping each chunk (complement test — ddmin's reduce step).
        for bounds in chunk_bounds:
            if evaluations >= max_evaluations:
                break
            keep = np.delete(indices, bounds)
            if len(keep) == 0:
                continue
            if holds(keep):
                indices = keep
                chunks = max(2, chunks - 1)
                progressed = True
                break
        if progressed:
            continue
        if chunks >= size:
            break  # single-point granularity exhausted: 1-minimal
        chunks = min(size, chunks * 2)

    if rec.enabled:
        rec.gauge("fuzz.shrunk_size", len(indices))
    return points.subset(indices), evaluations
