"""Small shared utilities used across the package.

Nothing in this module is part of the public API; everything here exists to
keep the algorithmic modules focused on the paper's logic.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]

PathLike = Union[str, Path]


def atomic_write_text(path: PathLike, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    The temporary file lives in the destination directory so the final
    rename never crosses filesystems; an interrupted writer leaves the old
    contents (or no file) behind, never a truncated one.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent) or ".", prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        # mkstemp creates 0600 files; match what a plain open() would do.
        umask = os.umask(0)
        os.umask(umask)
        os.chmod(tmp_name, 0o666 & ~umask)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_json(path: PathLike, payload: object, indent: int = 1) -> None:
    """Serialize ``payload`` to JSON and write it atomically to ``path``.

    Serialization happens fully in memory before any byte touches disk, so
    a payload that fails to serialize cannot clobber an existing file.
    """
    atomic_write_text(path, json.dumps(payload, indent=indent) + "\n")


def as_generator(rng: RngLike) -> np.random.Generator:
    """Coerce ``None``, a seed, or a Generator into a ``np.random.Generator``.

    Every randomized routine in the package accepts a ``rng`` argument of
    this form so experiments are reproducible end to end.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def as_float_matrix(coords: Iterable[Sequence[float]],
                    require_finite: bool = True) -> np.ndarray:
    """Convert an iterable of coordinate sequences into a 2-D float array.

    Raises ``ValueError`` on ragged input or wrong dimensionality because a
    silent reshape would corrupt dominance comparisons downstream.  Non-finite
    entries are rejected by default: ``NaN >= x`` is always false, so a NaN
    coordinate breaks dominance trichotomy and every monotonicity check built
    on it.  ``require_finite=False`` is the explicit opt-out for callers that
    knowingly handle ±inf themselves.
    """
    try:
        matrix = np.asarray(
            list(coords) if not isinstance(coords, np.ndarray) else coords,
            dtype=float)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"coordinates are not a numeric matrix: {exc}") from None
    if matrix.ndim == 1:
        # A flat sequence of reals is interpreted as 1-D points.
        matrix = matrix.reshape(-1, 1)
    if matrix.ndim != 2:
        raise ValueError(
            f"coordinates must form a 2-D array of shape (n, d); got ndim={matrix.ndim}"
        )
    if require_finite and matrix.size and not np.isfinite(matrix).all():
        bad = int(np.flatnonzero(~np.isfinite(matrix).all(axis=1))[0])
        raise ValueError(
            f"coordinates must be finite real numbers (point {bad} is not; "
            "pass validate=False to PointSet to accept non-finite coords)"
        )
    return matrix


def validate_labels(labels: Iterable[int], n: int, allow_hidden: bool = False) -> np.ndarray:
    """Validate and normalize a label vector.

    Labels are 0/1; the sentinel -1 denotes a hidden label and is accepted
    only when ``allow_hidden`` is set (active setting).
    """
    try:
        arr = np.asarray(list(labels) if not isinstance(labels, np.ndarray) else labels,
                         dtype=np.int8)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"labels are not an integer vector: {exc}") from None
    if arr.shape != (n,):
        raise ValueError(f"expected {n} labels, got shape {arr.shape}")
    allowed = {-1, 0, 1} if allow_hidden else {0, 1}
    present = set(np.unique(arr).tolist())
    if not present <= allowed:
        raise ValueError(f"labels must be in {sorted(allowed)}; got values {sorted(present)}")
    return arr


def validate_weights(weights: Optional[Iterable[float]], n: int) -> np.ndarray:
    """Validate a weight vector; ``None`` means unit weights."""
    if weights is None:
        return np.ones(n, dtype=float)
    try:
        arr = np.asarray(list(weights) if not isinstance(weights, np.ndarray) else weights,
                         dtype=float)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"weights are not a numeric vector: {exc}") from None
    if arr.shape != (n,):
        raise ValueError(f"expected {n} weights, got shape {arr.shape}")
    if not np.isfinite(arr).all():
        raise ValueError("weights must be finite")
    if (arr <= 0).any():
        raise ValueError("weights must be strictly positive (as in the paper's Problem 2)")
    return arr


def ceil_log2(x: float) -> int:
    """``ceil(log2(x))`` for x >= 1, and 0 for x < 1."""
    if x <= 1:
        return 0
    return int(math.ceil(math.log2(x)))


def log_levels(n: int) -> int:
    """Upper bound on the recursion depth of the 1-D active framework.

    Lemma 10 shrinks the working set by a factor 5/8 per level, so the depth
    is at most ``log_{8/5} n`` plus a constant; we return a safe bound.
    """
    if n <= 1:
        return 1
    return max(1, int(math.ceil(math.log(n, 8.0 / 5.0))) + 2)


def format_table(rows: Sequence[dict], columns: Optional[Sequence[str]] = None,
                 floatfmt: str = "{:.4g}") -> str:
    """Render a list of row dicts as an aligned plain-text table.

    Used by the experiment harness to print the per-claim tables recorded in
    EXPERIMENTS.md.
    """
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(value: object) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, float):
            return floatfmt.format(value)
        return str(value)

    rendered = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    ruler = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join("  ".join(r[i].ljust(widths[i]) for i in range(len(columns)))
                     for r in rendered)
    return f"{header}\n{ruler}\n{body}"
