"""Chaos load-testing for the serving layer.

:func:`run_chaos_serve` pushes a large deterministic query stream (the
acceptance bar is >= 100k queries) through a :class:`~repro.serve.engine.ServeEngine`
while a deterministic fault injector attacks the deployment the way PR 4's
:class:`~repro.resilience.faults.FaultyOracle` attacks probes:

* **corruptions** — the deployed artifact's bytes are mutated on disk
  (via the fuzzer's :func:`~repro.fuzz.generators.mutate_bytes`) and the
  engine is forced to reload: it must quarantine the corrupt file and
  degrade (last-good copy, then fallback), never crash;
* **delays** — artifact loads raise transient failures that the engine's
  retry policy must absorb;
* **kills** — the serving worker dies abruptly mid-journal
  (:meth:`~repro.serve.engine.ServeEngine.abandon`) and is warm-restarted
  from the request journal.

Every fault is a pure function of ``(spec.seed, batch_index)`` — the same
``SeedSequence`` discipline as the PR 4 injector — so chaos campaigns
replay exactly.  The invariant the report checks is the serving layer's
core promise: **zero silently wrong answers**.  A response flagged ``ok``
must match the pristine model bit-for-bit; degraded, shed, and expired
responses are explicitly flagged and therefore allowed to differ.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

from .._util import PathLike, atomic_write_text
from ..obs import recorder
from ..resilience.retry import CircuitBreaker, RetryPolicy
from .artifact import ModelArtifact, load_artifact
from .engine import (
    DEADLINE_EXCEEDED,
    DEGRADED,
    OK,
    OVERLOADED,
    ServeEngine,
    ServeLoadTransient,
)

__all__ = [
    "ServeFaultSpec",
    "FaultyArtifactLoader",
    "ChaosServeReport",
    "run_chaos_serve",
]

#: Stream tags keeping fault draws, query draws, and byte mutations
#: statistically independent of each other.
_CHAOS_TAG = 0xC405
_QUERY_TAG = 0x9E47
_DELAY_TAG = 0xDE1A


@dataclass(frozen=True)
class ServeFaultSpec:
    """Fault distribution for the serving chaos harness.

    Rates are per-batch (``corrupt_rate``, ``kill_rate``) or per-load-
    attempt (``delay_rate``) probabilities in ``[0, 1]``; ``seed`` roots
    every deterministic stream.
    """

    corrupt_rate: float = 0.0
    delay_rate: float = 0.0
    kill_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("corrupt_rate", "delay_rate", "kill_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]; got {rate}")

    @property
    def active(self) -> bool:
        return bool(self.corrupt_rate or self.delay_rate or self.kill_rate)

    @classmethod
    def parse(cls, spec: str) -> "ServeFaultSpec":
        """Parse a CLI spec like ``"corrupt=0.05,delay=0.1,kill=0.02,seed=7"``.

        Unknown fields are an error, not a silent no-op — a typo must not
        turn a chaos run into a clean one.
        """
        kwargs: Dict[str, Any] = {}
        for part in filter(None, (p.strip() for p in spec.split(","))):
            if "=" not in part:
                raise ValueError(f"serve fault spec field {part!r} is not key=value")
            key, _, value = part.partition("=")
            key = key.strip()
            if key in ("corrupt", "delay", "kill"):
                try:
                    kwargs[f"{key}_rate"] = float(value)
                except ValueError:
                    raise ValueError(
                        f"serve fault spec field {key}={value!r} is not a number"
                    ) from None
            elif key == "seed":
                kwargs["seed"] = int(value)
            else:
                raise ValueError(
                    f"unknown serve fault spec field {key!r}; expected one of "
                    "corrupt, delay, kill, seed"
                )
        return cls(**kwargs)


class FaultyArtifactLoader:
    """Deterministic transient-delay injection in front of the loader.

    Each load *attempt* draws from a stream keyed on
    ``(seed, attempt_index)``; a hit raises
    :class:`~repro.serve.engine.ServeLoadTransient`, which the engine's
    retry policy must absorb.  Corruption faults are injected on disk by
    the driver, not here — the loader sees them as what they are: bytes
    that fail verification.
    """

    def __init__(self, spec: ServeFaultSpec, inner: Any = load_artifact) -> None:
        self.spec = spec
        self._inner = inner
        self.calls = 0
        self.delays = 0

    def __call__(self, path: PathLike) -> ModelArtifact:
        attempt = self.calls
        self.calls += 1
        if self.spec.delay_rate > 0.0:
            seq = np.random.SeedSequence(
                [self.spec.seed & 0xFFFFFFFF, attempt, _DELAY_TAG]
            )
            if float(np.random.default_rng(seq).random()) < self.spec.delay_rate:
                self.delays += 1
                rec = recorder()
                if rec.enabled:
                    rec.incr("serve.chaos.delays")
                raise ServeLoadTransient(f"injected load delay (attempt {attempt})")
        return self._inner(path)


@dataclass
class ChaosServeReport:
    """What the chaos campaign observed; ``ok`` is the acceptance bar."""

    queries: int = 0
    answered_points: int = 0
    wrong_answers: int = 0
    degraded_answers: int = 0
    degraded_divergent: int = 0
    shed: int = 0
    deadline_missed: int = 0
    failed: int = 0
    corruptions: int = 0
    delays: int = 0
    kills: int = 0
    restarts: int = 0
    quarantines: int = 0
    reloads: int = 0
    batches: int = 0
    counts_by_status: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Zero silently wrong answers and the server never went dark."""
        return self.wrong_answers == 0 and self.failed == 0

    def summary_row(self) -> Dict[str, Any]:
        return {
            "queries": self.queries,
            "answered": self.answered_points,
            "wrong": self.wrong_answers,
            "degraded": self.degraded_answers,
            "shed": self.shed,
            "deadline": self.deadline_missed,
            "corruptions": self.corruptions,
            "delays": self.delays,
            "kills": self.kills,
            "quarantines": self.quarantines,
            "ok": self.ok,
        }


def _query_stream(dim: int, total: int, batch_size: int, seed: int):
    """Deterministic query batches, independent of the fault stream."""
    seq = np.random.SeedSequence([seed & 0xFFFFFFFF, _QUERY_TAG])
    rng = np.random.default_rng(seq)
    produced = 0
    while produced < total:
        size = min(batch_size, total - produced)
        produced += size
        yield rng.random((size, dim)) * 2.0 - 0.5


def run_chaos_serve(
    artifact_path: PathLike,
    *,
    queries: int = 100_000,
    batch_size: int = 512,
    spec: Optional[ServeFaultSpec] = None,
    queue_limit: int = 4,
    burst_every: int = 16,
    deadline: Optional[float] = None,
    workdir: Optional[PathLike] = None,
    retry: Optional[RetryPolicy] = None,
    keep_last_good: bool = True,
    dim: Optional[int] = None,
) -> ChaosServeReport:
    """Drive ``queries`` classify queries through a chaos-attacked engine.

    The artifact at ``artifact_path`` is treated as the pristine deploy:
    it is copied into a scratch deployment directory, corrupted / delayed
    / killed per ``spec``, and re-deployed after each corruption the way
    an operator (or a CD system) would roll a bad artifact back.  Answers
    flagged ``ok`` are checked bit-for-bit against the pristine model;
    any mismatch is a *silently wrong answer* and fails the report.

    Every ``burst_every``-th batch is submitted as a burst of sub-chunks
    against the bounded admission queue, so load-shedding is exercised on
    top of the fault ladder.  Latencies and fault counters flow through
    the ambient :mod:`repro.obs` session when one is active.
    """
    spec = spec or ServeFaultSpec()
    pristine = load_artifact(artifact_path)
    pristine_text = Path(artifact_path).read_text()
    reference = pristine.classifier
    if dim is None:
        fit_dim = pristine.fit.get("dim")
        if not isinstance(fit_dim, int) or fit_dim < 1:
            raise ValueError(
                f"{artifact_path}: artifact fit metadata has no usable 'dim'; "
                "pass dim= explicitly"
            )
        dim = fit_dim

    report = ChaosServeReport()
    loader = FaultyArtifactLoader(spec)
    rec = recorder()

    with tempfile.TemporaryDirectory() as scratch:
        base = Path(workdir) if workdir is not None else Path(scratch)
        base.mkdir(parents=True, exist_ok=True)
        deploy = base / "deployed-model.json"
        journal = base / "serve.journal"
        atomic_write_text(deploy, pristine_text)

        def fresh_engine(warm: bool) -> ServeEngine:
            kwargs: Dict[str, Any] = dict(
                retry=retry or RetryPolicy(max_attempts=6),
                breaker=CircuitBreaker(threshold=4, cooldown=2),
                queue_limit=queue_limit,
                default_deadline=deadline,
                loader=loader,
                keep_last_good=keep_last_good,
            )
            if warm:
                return ServeEngine.warm_restart(deploy, journal, **kwargs)
            return ServeEngine(deploy, journal_path=journal, **kwargs)

        engine = fresh_engine(warm=False)
        needs_redeploy = False

        for batch_index, coords in enumerate(
            _query_stream(dim, queries, batch_size, spec.seed)
        ):
            report.batches += 1
            # Roll back the previous batch's corruption: a CD system
            # re-deploys the known-good artifact; until the reload below,
            # the engine has been serving degraded answers.
            if needs_redeploy:
                atomic_write_text(deploy, pristine_text)
                engine.reload()
                needs_redeploy = False

            chaos_seq = np.random.SeedSequence(
                [spec.seed & 0xFFFFFFFF, batch_index, _CHAOS_TAG]
            )
            draws = np.random.default_rng(chaos_seq)
            u_corrupt, u_kill = (float(v) for v in draws.random(2))

            if spec.corrupt_rate and u_corrupt < spec.corrupt_rate:
                from ..fuzz.generators import mutate_bytes

                report.corruptions += 1
                if rec.enabled:
                    rec.incr("serve.chaos.corruptions")
                deploy.write_bytes(
                    mutate_bytes(pristine_text, draws, mutations=1 + batch_index % 4)
                )
                engine.reload()  # must quarantine + degrade, never raise
                needs_redeploy = True

            if spec.kill_rate and u_kill < spec.kill_rate:
                report.kills += 1
                if rec.enabled:
                    rec.incr("serve.chaos.kills")
                engine.abandon()
                # Counters die with the killed worker; bank them first.
                report.quarantines += engine.quarantines
                report.reloads += engine.reloads
                engine = fresh_engine(warm=True)
                report.restarts += 1

            expected = reference.classify_matrix(coords)
            results = []
            if burst_every and batch_index % burst_every == burst_every - 1:
                # Burst admission: more chunks than the queue holds, so
                # the tail is shed with explicit overload results.
                chunks = np.array_split(coords, min(len(coords), queue_limit * 2))
                for chunk in chunks:
                    if not len(chunk):
                        continue
                    outcome = engine.submit(chunk)
                    if outcome is not None:
                        results.append(outcome)
                results.extend(engine.drain())
            else:
                outcome = engine.submit(coords)
                if outcome is not None:
                    results.append(outcome)
                results.extend(engine.drain())

            cursor = 0
            for result in results:
                report.counts_by_status[result.status] = (
                    report.counts_by_status.get(result.status, 0) + 1
                )
                if result.status == OVERLOADED:
                    report.shed += 1
                    continue
                if result.status == DEADLINE_EXCEEDED:
                    report.deadline_missed += 1
                    continue
                if result.labels is None:
                    report.failed += 1
                    continue
                n = result.n
                truth = expected[cursor : cursor + n]
                cursor += n
                report.answered_points += n
                if result.status == OK:
                    if not np.array_equal(result.labels, truth):
                        report.wrong_answers += int(
                            np.count_nonzero(result.labels != truth)
                        )
                elif result.status == DEGRADED:
                    report.degraded_answers += n
                    report.degraded_divergent += int(
                        np.count_nonzero(result.labels != truth)
                    )
            report.queries += len(coords)

        report.delays = loader.delays
        report.quarantines += engine.quarantines
        report.reloads += engine.reloads
        engine.close()
    return report
