"""Chaos load-testing for the serving layer.

:func:`run_chaos_serve` pushes a large deterministic query stream (the
acceptance bar is >= 100k queries) through a :class:`~repro.serve.engine.ServeEngine`
while a deterministic fault injector attacks the deployment the way PR 4's
:class:`~repro.resilience.faults.FaultyOracle` attacks probes:

* **corruptions** — the deployed artifact's bytes are mutated on disk
  (via the fuzzer's :func:`~repro.fuzz.generators.mutate_bytes`) and the
  engine is forced to reload: it must quarantine the corrupt file and
  degrade (last-good copy, then fallback), never crash;
* **delays** — artifact loads raise transient failures that the engine's
  retry policy must absorb;
* **kills** — the serving worker dies abruptly mid-journal
  (:meth:`~repro.serve.engine.ServeEngine.abandon`) and is warm-restarted
  from the request journal.

Every fault is a pure function of ``(spec.seed, batch_index)`` — the same
``SeedSequence`` discipline as the PR 4 injector — so chaos campaigns
replay exactly.  The invariant the report checks is the serving layer's
core promise: **zero silently wrong answers**.  A response flagged ``ok``
must match the pristine model bit-for-bit; degraded, shed, and expired
responses are explicitly flagged and therefore allowed to differ.
"""

from __future__ import annotations

import tempfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional

import numpy as np

from .._util import PathLike, atomic_write_text
from ..core.classifier import ConstantClassifier
from ..obs import recorder
from ..resilience.retry import CircuitBreaker, RetryPolicy
from .artifact import ModelArtifact, load_artifact, save_artifact
from .engine import (
    DEADLINE_EXCEEDED,
    DEGRADED,
    OK,
    OVERLOADED,
    ServeEngine,
    ServeLoadTransient,
)
from .fleet import UNAVAILABLE, ModelFleet

__all__ = [
    "ServeFaultSpec",
    "FaultyArtifactLoader",
    "ChaosServeReport",
    "run_chaos_serve",
    "FleetFaultSpec",
    "ChaosFleetReport",
    "run_chaos_fleet",
]

#: Stream tags keeping fault draws, query draws, and byte mutations
#: statistically independent of each other.
_CHAOS_TAG = 0xC405
_QUERY_TAG = 0x9E47
_DELAY_TAG = 0xDE1A
_FLEET_TAG = 0xF1EE


@dataclass(frozen=True)
class ServeFaultSpec:
    """Fault distribution for the serving chaos harness.

    Rates are per-batch (``corrupt_rate``, ``kill_rate``) or per-load-
    attempt (``delay_rate``) probabilities in ``[0, 1]``; ``seed`` roots
    every deterministic stream.
    """

    corrupt_rate: float = 0.0
    delay_rate: float = 0.0
    kill_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("corrupt_rate", "delay_rate", "kill_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]; got {rate}")

    @property
    def active(self) -> bool:
        return bool(self.corrupt_rate or self.delay_rate or self.kill_rate)

    @classmethod
    def parse(cls, spec: str) -> "ServeFaultSpec":
        """Parse a CLI spec like ``"corrupt=0.05,delay=0.1,kill=0.02,seed=7"``.

        Unknown fields are an error, not a silent no-op — a typo must not
        turn a chaos run into a clean one.
        """
        kwargs: Dict[str, Any] = {}
        for part in filter(None, (p.strip() for p in spec.split(","))):
            if "=" not in part:
                raise ValueError(f"serve fault spec field {part!r} is not key=value")
            key, _, value = part.partition("=")
            key = key.strip()
            if key in ("corrupt", "delay", "kill"):
                try:
                    kwargs[f"{key}_rate"] = float(value)
                except ValueError:
                    raise ValueError(
                        f"serve fault spec field {key}={value!r} is not a number"
                    ) from None
            elif key == "seed":
                kwargs["seed"] = int(value)
            else:
                raise ValueError(
                    f"unknown serve fault spec field {key!r}; expected one of "
                    "corrupt, delay, kill, seed"
                )
        return cls(**kwargs)


class FaultyArtifactLoader:
    """Deterministic transient-delay injection in front of the loader.

    Each load *attempt* draws from a stream keyed on
    ``(seed, attempt_index)``; a hit raises
    :class:`~repro.serve.engine.ServeLoadTransient`, which the engine's
    retry policy must absorb.  Corruption faults are injected on disk by
    the driver, not here — the loader sees them as what they are: bytes
    that fail verification.
    """

    def __init__(self, spec: ServeFaultSpec, inner: Any = load_artifact) -> None:
        self.spec = spec
        self._inner = inner
        self.calls = 0
        self.delays = 0

    def __call__(self, path: PathLike) -> ModelArtifact:
        attempt = self.calls
        self.calls += 1
        if self.spec.delay_rate > 0.0:
            seq = np.random.SeedSequence(
                [self.spec.seed & 0xFFFFFFFF, attempt, _DELAY_TAG]
            )
            if float(np.random.default_rng(seq).random()) < self.spec.delay_rate:
                self.delays += 1
                rec = recorder()
                if rec.enabled:
                    rec.incr("serve.chaos.delays")
                raise ServeLoadTransient(f"injected load delay (attempt {attempt})")
        return self._inner(path)


@dataclass
class ChaosServeReport:
    """What the chaos campaign observed; ``ok`` is the acceptance bar."""

    queries: int = 0
    answered_points: int = 0
    wrong_answers: int = 0
    degraded_answers: int = 0
    degraded_divergent: int = 0
    shed: int = 0
    deadline_missed: int = 0
    failed: int = 0
    corruptions: int = 0
    delays: int = 0
    kills: int = 0
    restarts: int = 0
    quarantines: int = 0
    reloads: int = 0
    batches: int = 0
    counts_by_status: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Zero silently wrong answers and the server never went dark."""
        return self.wrong_answers == 0 and self.failed == 0

    def summary_row(self) -> Dict[str, Any]:
        return {
            "queries": self.queries,
            "answered": self.answered_points,
            "wrong": self.wrong_answers,
            "degraded": self.degraded_answers,
            "shed": self.shed,
            "deadline": self.deadline_missed,
            "corruptions": self.corruptions,
            "delays": self.delays,
            "kills": self.kills,
            "quarantines": self.quarantines,
            "ok": self.ok,
        }


def _query_stream(dim: int, total: int, batch_size: int, seed: int):
    """Deterministic query batches, independent of the fault stream."""
    seq = np.random.SeedSequence([seed & 0xFFFFFFFF, _QUERY_TAG])
    rng = np.random.default_rng(seq)
    produced = 0
    while produced < total:
        size = min(batch_size, total - produced)
        produced += size
        yield rng.random((size, dim)) * 2.0 - 0.5


def run_chaos_serve(
    artifact_path: PathLike,
    *,
    queries: int = 100_000,
    batch_size: int = 512,
    spec: Optional[ServeFaultSpec] = None,
    queue_limit: int = 4,
    burst_every: int = 16,
    deadline: Optional[float] = None,
    workdir: Optional[PathLike] = None,
    retry: Optional[RetryPolicy] = None,
    keep_last_good: bool = True,
    dim: Optional[int] = None,
) -> ChaosServeReport:
    """Drive ``queries`` classify queries through a chaos-attacked engine.

    The artifact at ``artifact_path`` is treated as the pristine deploy:
    it is copied into a scratch deployment directory, corrupted / delayed
    / killed per ``spec``, and re-deployed after each corruption the way
    an operator (or a CD system) would roll a bad artifact back.  Answers
    flagged ``ok`` are checked bit-for-bit against the pristine model;
    any mismatch is a *silently wrong answer* and fails the report.

    Every ``burst_every``-th batch is submitted as a burst of sub-chunks
    against the bounded admission queue, so load-shedding is exercised on
    top of the fault ladder.  Latencies and fault counters flow through
    the ambient :mod:`repro.obs` session when one is active.
    """
    spec = spec or ServeFaultSpec()
    pristine = load_artifact(artifact_path)
    pristine_text = Path(artifact_path).read_text()
    reference = pristine.classifier
    if dim is None:
        fit_dim = pristine.fit.get("dim")
        if not isinstance(fit_dim, int) or fit_dim < 1:
            raise ValueError(
                f"{artifact_path}: artifact fit metadata has no usable 'dim'; "
                "pass dim= explicitly"
            )
        dim = fit_dim

    report = ChaosServeReport()
    loader = FaultyArtifactLoader(spec)
    rec = recorder()

    with tempfile.TemporaryDirectory() as scratch:
        base = Path(workdir) if workdir is not None else Path(scratch)
        base.mkdir(parents=True, exist_ok=True)
        deploy = base / "deployed-model.json"
        journal = base / "serve.journal"
        atomic_write_text(deploy, pristine_text)

        def fresh_engine(warm: bool) -> ServeEngine:
            kwargs: Dict[str, Any] = dict(
                retry=retry or RetryPolicy(max_attempts=6),
                breaker=CircuitBreaker(threshold=4, cooldown=2),
                queue_limit=queue_limit,
                default_deadline=deadline,
                loader=loader,
                keep_last_good=keep_last_good,
            )
            if warm:
                return ServeEngine.warm_restart(deploy, journal, **kwargs)
            return ServeEngine(deploy, journal_path=journal, **kwargs)

        engine = fresh_engine(warm=False)
        needs_redeploy = False

        for batch_index, coords in enumerate(
            _query_stream(dim, queries, batch_size, spec.seed)
        ):
            report.batches += 1
            # Roll back the previous batch's corruption: a CD system
            # re-deploys the known-good artifact; until the reload below,
            # the engine has been serving degraded answers.
            if needs_redeploy:
                atomic_write_text(deploy, pristine_text)
                engine.reload()
                needs_redeploy = False

            chaos_seq = np.random.SeedSequence(
                [spec.seed & 0xFFFFFFFF, batch_index, _CHAOS_TAG]
            )
            draws = np.random.default_rng(chaos_seq)
            u_corrupt, u_kill = (float(v) for v in draws.random(2))

            if spec.corrupt_rate and u_corrupt < spec.corrupt_rate:
                from ..fuzz.generators import mutate_bytes

                report.corruptions += 1
                if rec.enabled:
                    rec.incr("serve.chaos.corruptions")
                deploy.write_bytes(
                    mutate_bytes(pristine_text, draws, mutations=1 + batch_index % 4)
                )
                engine.reload()  # must quarantine + degrade, never raise
                needs_redeploy = True

            if spec.kill_rate and u_kill < spec.kill_rate:
                report.kills += 1
                if rec.enabled:
                    rec.incr("serve.chaos.kills")
                engine.abandon()
                # Counters die with the killed worker; bank them first.
                report.quarantines += engine.quarantines
                report.reloads += engine.reloads
                engine = fresh_engine(warm=True)
                report.restarts += 1

            expected = reference.classify_matrix(coords)
            results = []
            if burst_every and batch_index % burst_every == burst_every - 1:
                # Burst admission: more chunks than the queue holds, so
                # the tail is shed with explicit overload results.
                chunks = np.array_split(coords, min(len(coords), queue_limit * 2))
                for chunk in chunks:
                    if not len(chunk):
                        continue
                    outcome = engine.submit(chunk)
                    if outcome is not None:
                        results.append(outcome)
                results.extend(engine.drain())
            else:
                outcome = engine.submit(coords)
                if outcome is not None:
                    results.append(outcome)
                results.extend(engine.drain())

            cursor = 0
            for result in results:
                report.counts_by_status[result.status] = (
                    report.counts_by_status.get(result.status, 0) + 1
                )
                if result.status == OVERLOADED:
                    report.shed += 1
                    continue
                if result.status == DEADLINE_EXCEEDED:
                    report.deadline_missed += 1
                    continue
                if result.labels is None:
                    report.failed += 1
                    continue
                n = result.n
                truth = expected[cursor : cursor + n]
                cursor += n
                report.answered_points += n
                if result.status == OK:
                    if not np.array_equal(result.labels, truth):
                        report.wrong_answers += int(
                            np.count_nonzero(result.labels != truth)
                        )
                elif result.status == DEGRADED:
                    report.degraded_answers += n
                    report.degraded_divergent += int(
                        np.count_nonzero(result.labels != truth)
                    )
            report.queries += len(coords)

        report.delays = loader.delays
        report.quarantines += engine.quarantines
        report.reloads += engine.reloads
        engine.close()
    return report


# ----------------------------------------------------------------------
# Fleet-wide chaos certification
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FleetFaultSpec:
    """Fault distribution for the fleet chaos harness.

    Per-batch probabilities in ``[0, 1]``; each fault targets one model
    drawn from the same deterministic stream (at most one fault per model
    per batch, so every injection is attributable):

    * ``corrupt_rate`` — the target's deployed bytes are mutated; the
      fleet's next poll must reject the "candidate", quarantine it, and
      re-pin the incumbent.
    * ``delay_rate`` — per-load-attempt transient delays through the
      target's own loader (per-model streams, so delays are attributable).
    * ``evict_rate`` — the target's engine is LRU-evicted and must reload
      on demand through the digest-verified path.
    * ``kill_rate`` — the target's worker dies abruptly (journal torn)
      and warm-restarts on the next dispatch.
    * ``swap_rate`` — a *legitimate* refit (same classifier, new digest)
      is deployed; the fleet must canary-verify and promote it.
    * ``bad_swap_rate`` — an *incompatible* candidate is deployed; the
      fleet must reject it at canary time, quarantine it, and re-pin.
    * ``storm_rate`` — a promotion is immediately followed by an
      artifact-store brownout (every load attempt for that model turns
      transient) and an eviction, so the promoted slot degrades and its
      post-promotion error rate spikes; the watch must auto-roll-back to
      the pinned incumbent — from memory, without touching the browned-
      out store — and quarantine the candidate file.
    """

    corrupt_rate: float = 0.0
    delay_rate: float = 0.0
    evict_rate: float = 0.0
    kill_rate: float = 0.0
    swap_rate: float = 0.0
    bad_swap_rate: float = 0.0
    storm_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in (
            "corrupt_rate",
            "delay_rate",
            "evict_rate",
            "kill_rate",
            "swap_rate",
            "bad_swap_rate",
            "storm_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]; got {rate}")

    @property
    def active(self) -> bool:
        return bool(
            self.corrupt_rate
            or self.delay_rate
            or self.evict_rate
            or self.kill_rate
            or self.swap_rate
            or self.bad_swap_rate
            or self.storm_rate
        )

    @classmethod
    def parse(cls, spec: str) -> "FleetFaultSpec":
        """Parse ``"corrupt=0.05,swap=0.1,storm=0.02,seed=7"`` etc.

        Field names: ``corrupt``, ``delay``, ``evict``, ``kill``,
        ``swap``, ``badswap``, ``storm``, ``seed``.  Unknown fields are
        an error, not a silent no-op.
        """
        field_map = {
            "corrupt": "corrupt_rate",
            "delay": "delay_rate",
            "evict": "evict_rate",
            "kill": "kill_rate",
            "swap": "swap_rate",
            "badswap": "bad_swap_rate",
            "storm": "storm_rate",
        }
        kwargs: Dict[str, Any] = {}
        for part in filter(None, (p.strip() for p in spec.split(","))):
            if "=" not in part:
                raise ValueError(f"fleet fault spec field {part!r} is not key=value")
            key, _, value = part.partition("=")
            key = key.strip()
            if key in field_map:
                try:
                    kwargs[field_map[key]] = float(value)
                except ValueError:
                    raise ValueError(
                        f"fleet fault spec field {key}={value!r} is not a number"
                    ) from None
            elif key == "seed":
                kwargs["seed"] = int(value)
            else:
                raise ValueError(
                    f"unknown fleet fault spec field {key!r}; expected one of "
                    "corrupt, delay, evict, kill, swap, badswap, storm, seed"
                )
        return cls(**kwargs)


@dataclass
class ChaosFleetReport:
    """What a fleet campaign observed; ``ok`` is the acceptance bar.

    ``blast_events`` counts *cross-model blast radius*: a model with no
    fault targeting it (and no attributable load delay) answering
    anything but a bit-exact ``ok`` — the bulkhead promise is that one
    tenant's faults never change another tenant's answers.
    """

    models: int = 0
    queries: int = 0
    batches: int = 0
    answered_points: int = 0
    wrong_answers: int = 0
    degraded_answers: int = 0
    blast_events: int = 0
    shed: int = 0
    unavailable: int = 0
    failed: int = 0
    corruptions: int = 0
    evictions: int = 0
    kills: int = 0
    restarts: int = 0
    delays: int = 0
    swaps_injected: int = 0
    bad_swaps_injected: int = 0
    storms: int = 0
    promotions: int = 0
    rejected_swaps: int = 0
    rollbacks: int = 0
    quarantines: int = 0
    counts_by_status: Dict[str, int] = field(default_factory=dict)
    per_model: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Zero silently wrong answers, zero blast radius, every injected
        bad swap rejected, every storm rolled back."""
        return (
            self.wrong_answers == 0
            and self.blast_events == 0
            and self.failed == 0
            and (self.bad_swaps_injected == 0 or self.rejected_swaps > 0)
            and (self.storms == 0 or self.rollbacks > 0)
        )

    def summary_row(self) -> Dict[str, Any]:
        return {
            "models": self.models,
            "queries": self.queries,
            "answered": self.answered_points,
            "wrong": self.wrong_answers,
            "blast": self.blast_events,
            "degraded": self.degraded_answers,
            "shed": self.shed,
            "corruptions": self.corruptions,
            "evictions": self.evictions,
            "kills": self.kills,
            "promotions": self.promotions,
            "rejects": self.rejected_swaps,
            "rollbacks": self.rollbacks,
            "ok": self.ok,
        }


def _model_query_stream(
    name: str, dim: int, batch_size: int, seed: int
) -> Iterator[np.ndarray]:
    """Endless deterministic per-model query batches."""
    seq = np.random.SeedSequence(
        [
            seed & 0xFFFFFFFF,
            zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF,
            _QUERY_TAG,
        ]
    )
    rng = np.random.default_rng(seq)
    while True:
        yield rng.random((batch_size, dim)) * 2.0 - 0.5


def _refit_artifact(pristine: ModelArtifact, marker: int) -> ModelArtifact:
    """A legitimate refit: identical classifier, new fit metadata/digest."""
    return ModelArtifact(
        classifier=pristine.classifier,
        fallback=pristine.fallback,
        fit={**pristine.fit, "refit": marker},
        chains=pristine.chains,
        certificate=pristine.certificate,
    )


def _incompatible_artifact(pristine: ModelArtifact, marker: int) -> ModelArtifact:
    """A verifiable but *wrong-shaped* candidate (dim bumped): the canary
    gate must reject it before it ever serves."""
    dim = pristine.fit.get("dim", 1)
    return ModelArtifact(
        classifier=ConstantClassifier(0),
        fallback=pristine.fallback,
        fit={**pristine.fit, "dim": int(dim) + 1, "refit": -marker},
    )


def run_chaos_fleet(
    artifacts: Mapping[str, PathLike],
    *,
    queries: int = 100_000,
    batch_size: int = 256,
    spec: Optional[FleetFaultSpec] = None,
    resident_limit: Optional[int] = None,
    queue_limit: int = 4,
    burst_every: int = 16,
    journal_max_bytes: Optional[int] = 4096,
    workdir: Optional[PathLike] = None,
    retry: Optional[RetryPolicy] = None,
) -> ChaosFleetReport:
    """Certify a :class:`~repro.serve.fleet.ModelFleet` under chaos.

    ``artifacts`` maps model names to pristine artifact files.  Each is
    copied into a scratch deployment directory and served behind one
    fleet while seeded injectors corrupt, delay, evict, kill, hot-swap,
    bad-swap, and storm individual models concurrently.  Every batch
    dispatches queries to *every* model, so each model continuously
    witnesses the others' faults:

    * every ``ok`` answer is checked bit-for-bit against that model's
      pristine classifier (``wrong_answers``);
    * every answer from a model with **no fault targeting it** must be a
      bit-exact ``ok`` — anything else is a cross-model ``blast_event``.

    Every fault is a pure function of ``(spec.seed, batch_index)``, so
    campaigns replay exactly.  The LRU resident cache defaults to one
    slot fewer than the fleet, so residency churns throughout.
    """
    spec = spec or FleetFaultSpec()
    names = sorted(artifacts)
    if len(names) < 2:
        raise ValueError(f"fleet chaos needs >= 2 models; got {len(names)}")
    pristine: Dict[str, ModelArtifact] = {}
    dims: Dict[str, int] = {}
    for name in names:
        art = load_artifact(artifacts[name])
        dim = art.fit.get("dim")
        if not isinstance(dim, int) or dim < 1:
            raise ValueError(
                f"{artifacts[name]}: artifact fit metadata has no usable 'dim'"
            )
        pristine[name] = art
        dims[name] = dim

    report = ChaosFleetReport(models=len(names))
    rec = recorder()
    loaders = {
        name: FaultyArtifactLoader(
            ServeFaultSpec(
                delay_rate=spec.delay_rate,
                seed=(spec.seed ^ zlib.crc32(name.encode("utf-8"))) & 0x7FFFFFFF,
            )
        )
        for name in names
    }

    with tempfile.TemporaryDirectory() as scratch:
        base = Path(workdir) if workdir is not None else Path(scratch)
        base.mkdir(parents=True, exist_ok=True)
        deploy_dir = base / "deploy"
        journal_dir = base / "journals"
        deploy_dir.mkdir(exist_ok=True)
        journal_dir.mkdir(exist_ok=True)
        deploys: Dict[str, Path] = {}
        deploy_text: Dict[str, str] = {}
        for name in names:
            deploys[name] = deploy_dir / f"{name}.json"
            text = Path(artifacts[name]).read_text()
            atomic_write_text(deploys[name], text)
            deploy_text[name] = text

        storm_active: set = set()
        forced_delays = {name: 0 for name in names}

        def fleet_loader(path: PathLike) -> ModelArtifact:
            stem = Path(path).name.partition(".json")[0]
            if stem in storm_active:
                # Store brownout: every load attempt for a storming
                # model fails transiently until the watch rolls back.
                forced_delays[stem] += 1
                raise ServeLoadTransient(f"storm brownout ({stem})")
            inner = loaders.get(stem)
            if inner is None:
                return load_artifact(path)
            return inner(path)

        fleet = ModelFleet(
            {name: deploys[name] for name in names},
            resident_limit=resident_limit or max(2, len(names) - 1),
            queue_limit=queue_limit,
            retry=retry or RetryPolicy(max_attempts=6),
            canary_count=16,
            watch_min=3,
            watch_window=24,
            watch_threshold=0.5,
            journal_dir=journal_dir,
            journal_max_bytes=journal_max_bytes,
            journal_keep=4,
            loader=fleet_loader,
        )
        streams = {
            name: _model_query_stream(name, dims[name], batch_size, spec.seed)
            for name in names
        }
        for name in names:
            report.per_model[name] = {
                "queries": 0,
                "wrong": 0,
                "degraded": 0,
                "blast": 0,
            }

        def check_results(
            name: str,
            results: List[Any],
            expected: np.ndarray,
            clean: bool,
        ) -> None:
            cursor = 0
            for result in results:
                report.counts_by_status[result.status] = (
                    report.counts_by_status.get(result.status, 0) + 1
                )
                if result.status == OVERLOADED:
                    report.shed += 1
                    continue
                if result.status == UNAVAILABLE:
                    report.unavailable += 1
                    if clean:
                        report.blast_events += 1
                        report.per_model[name]["blast"] += 1
                    continue
                if result.status == DEADLINE_EXCEEDED:
                    continue
                if result.labels is None:
                    report.failed += 1
                    if clean:
                        report.blast_events += 1
                        report.per_model[name]["blast"] += 1
                    continue
                n = result.n
                truth = expected[cursor : cursor + n]
                cursor += n
                report.answered_points += n
                if result.status == OK:
                    wrong = int(np.count_nonzero(result.labels != truth))
                    if wrong:
                        report.wrong_answers += wrong
                        report.per_model[name]["wrong"] += wrong
                else:
                    report.degraded_answers += n
                    report.per_model[name]["degraded"] += n
                    if clean:
                        report.blast_events += 1
                        report.per_model[name]["blast"] += 1

        # Warm every model once so each slot pins a verified incumbent
        # (the re-pin target for every later reject/rollback).
        for name in names:
            coords = next(streams[name])
            expected = pristine[name].classifier.classify_matrix(coords)
            check_results(name, [fleet.dispatch(name, coords)], expected, True)
            report.queries += len(coords)
            report.per_model[name]["queries"] += len(coords)
        report.batches += 1

        rollback_seen = {name: 0 for name in names}
        batch_index = 0

        def corrupt_bytes(name: str, draws: np.random.Generator) -> bytes:
            from ..fuzz.generators import mutate_bytes

            return mutate_bytes(
                deploy_text[name], draws, mutations=1 + batch_index % 4
            )

        while report.queries < queries:
            batch_index += 1
            report.batches += 1
            draws = np.random.default_rng(
                np.random.SeedSequence(
                    [spec.seed & 0xFFFFFFFF, batch_index, _FLEET_TAG]
                )
            )
            u = draws.random(6)
            picks = draws.integers(0, len(names), 6)
            targeted = set(storm_active)

            def pick(i: int) -> Optional[str]:
                name = names[int(picks[i])]
                if name in targeted:
                    return None
                targeted.add(name)
                return name

            if spec.corrupt_rate and u[0] < spec.corrupt_rate:
                name = pick(0)
                if name is not None:
                    deploys[name].write_bytes(corrupt_bytes(name, draws))
                    report.corruptions += 1
                    if rec.enabled:
                        rec.incr("serve.chaos.corruptions")
            if spec.evict_rate and u[1] < spec.evict_rate:
                name = pick(1)
                if name is not None and fleet.evict(name):
                    report.evictions += 1
            if spec.kill_rate and u[2] < spec.kill_rate:
                name = pick(2)
                if name is not None and fleet.abandon(name):
                    report.kills += 1
                    report.restarts += 1
                    if rec.enabled:
                        rec.incr("serve.chaos.kills")
            if spec.swap_rate and u[3] < spec.swap_rate:
                name = pick(3)
                if name is not None:
                    save_artifact(
                        _refit_artifact(pristine[name], batch_index),
                        deploys[name],
                    )
                    report.swaps_injected += 1
            if spec.bad_swap_rate and u[4] < spec.bad_swap_rate:
                name = pick(4)
                if name is not None:
                    save_artifact(
                        _incompatible_artifact(pristine[name], batch_index),
                        deploys[name],
                    )
                    report.bad_swaps_injected += 1
            if spec.storm_rate and u[5] < spec.storm_rate:
                name = pick(5)
                if name is not None:
                    save_artifact(
                        _refit_artifact(pristine[name], -batch_index),
                        deploys[name],
                    )
                    events = fleet.poll([name])
                    if any(e["action"] == "promote" for e in events):
                        # The refit just promoted; now its artifact store
                        # browns out and the engine is evicted, so every
                        # post-promotion answer degrades.  Only the watch
                        # rollback — re-pinning the incumbent from memory
                        # — can save this model.
                        report.promotions += 1
                        deploy_text[name] = deploys[name].read_text()
                        storm_active.add(name)
                        fleet.evict(name)
                        report.storms += 1
                    elif deploys[name].exists():
                        deploy_text[name] = deploys[name].read_text()

            for event in fleet.poll(
                [n for n in names if n not in storm_active]
            ):
                if event["action"] == "promote":
                    report.promotions += 1
                elif event["action"] == "reject":
                    report.rejected_swaps += 1
                ev_name = str(event["model"])
                if deploys[ev_name].exists():
                    deploy_text[ev_name] = deploys[ev_name].read_text()

            burst_model: Optional[str] = None
            if burst_every and batch_index % burst_every == burst_every - 1:
                burst_model = names[batch_index % len(names)]

            for name in names:
                coords = next(streams[name])
                expected = pristine[name].classifier.classify_matrix(coords)
                delays_before = loaders[name].delays
                results: List[Any] = []
                if name == burst_model:
                    chunks = np.array_split(
                        coords, min(len(coords), queue_limit * 2)
                    )
                    for chunk in chunks:
                        if not len(chunk):
                            continue
                        outcome = fleet.submit(name, chunk)
                        if outcome is not None:
                            results.append(outcome)
                    results.extend(fleet.drain(name))
                else:
                    results.append(fleet.dispatch(name, coords))
                delayed = loaders[name].delays > delays_before
                clean = name not in targeted and not delayed
                check_results(name, results, expected, clean)
                report.queries += len(coords)
                report.per_model[name]["queries"] += len(coords)

            if storm_active:
                rows = {row.name: row for row in fleet.health()}
                for name in list(storm_active):
                    if rows[name].rollbacks > rollback_seen[name]:
                        rollback_seen[name] = rows[name].rollbacks
                        storm_active.discard(name)
                        report.rollbacks += 1
                        if deploys[name].exists():
                            deploy_text[name] = deploys[name].read_text()

        report.delays = sum(
            loader.delays for loader in loaders.values()
        ) + sum(forced_delays.values())
        report.quarantines = (
            sum(row.quarantines for row in fleet.health())
            + report.rejected_swaps
        )
        fleet.close()
    return report
