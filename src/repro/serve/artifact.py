"""Durable, integrity-verified model artifacts.

A *model artifact* is the unit of deployment for the serving layer: a
single JSON file holding a fitted classifier together with everything a
server needs to answer queries and to degrade gracefully when it cannot:

* the primary classifier (any family :mod:`repro.serialization` handles);
* an optional *fallback* classifier — typically the trivial majority
  baseline recorded at fit time — served, flagged as degraded, when the
  primary is unloadable;
* fit metadata (mode, dataset shape, probe bill, solver backend, ...);
* optionally the chain decomposition and the min-cut certificate of the
  fit, so operators can audit what was deployed.

The envelope is versioned and checksummed::

    {"magic": "repro-model-artifact", "schema_version": 1,
     "digest": "<sha256 of the canonical body JSON>", "body": {...}}

Writes go through :func:`repro._util.atomic_write_text`, so a crashed
writer never leaves a truncated artifact.  :func:`load_artifact` is a
strict validation boundary matching :mod:`repro.io`: it re-canonicalizes
the body, verifies the digest, and rejects corrupt, truncated, or hostile
bytes with a ``ValueError`` naming the file.  :func:`quarantine_artifact`
moves a rejected artifact aside (``<name>.quarantined[-k]``) so a bad
deploy is preserved for forensics instead of crashing the server or being
retried forever.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from .._util import PathLike, atomic_write_text
from ..core.classifier import ConstantClassifier
from ..core.points import PointSet
from ..obs import recorder
from ..serialization import (
    AnyClassifier,
    classifier_from_dict,
    classifier_to_dict,
)

__all__ = [
    "ARTIFACT_MAGIC",
    "ARTIFACT_SCHEMA_VERSION",
    "ModelArtifact",
    "artifact_digest",
    "fit_artifact",
    "load_artifact",
    "quarantine_artifact",
    "save_artifact",
]

ARTIFACT_MAGIC = "repro-model-artifact"
ARTIFACT_SCHEMA_VERSION = 1

#: Cap on quarantine-name probing; beyond this the oldest slot is reused.
_MAX_QUARANTINE_SLOTS = 64


@dataclass
class ModelArtifact:
    """A fitted model plus its serving and audit metadata.

    Attributes
    ----------
    classifier:
        The primary classifier queries are answered with.
    fallback:
        Optional degraded-mode classifier (the trivial baseline recorded
        at fit time).  Servers answer from it — flagged — when the
        primary artifact cannot be loaded.
    fit:
        Free-form fit metadata (mode, n, dim, epsilon, probes, backend).
    chains:
        Optional chain decomposition of the training set (lists of point
        indices, most-dominated first), for audit and warm diagnostics.
    certificate:
        Optional min-cut certificate of the fit (optimal error, flow
        value, contending-set size, backend).
    digest:
        SHA-256 hex digest of the canonical body; filled in by
        :func:`save_artifact` / :func:`load_artifact`.
    """

    classifier: AnyClassifier
    fallback: Optional[AnyClassifier] = None
    fit: Dict[str, Any] = field(default_factory=dict)
    chains: Optional[List[List[int]]] = None
    certificate: Optional[Dict[str, Any]] = None
    digest: Optional[str] = None

    def body(self) -> Dict[str, Any]:
        """The digestable body document (everything except the envelope)."""
        return {
            "classifier": classifier_to_dict(self.classifier),
            "fallback": (
                classifier_to_dict(self.fallback)
                if self.fallback is not None
                else None
            ),
            "fit": self.fit,
            "chains": self.chains,
            "certificate": self.certificate,
        }


def artifact_digest(body: Dict[str, Any]) -> str:
    """SHA-256 hex digest of the canonical (sorted, compact) body JSON.

    The digest is computed over a canonical re-serialization rather than
    raw file bytes, so cosmetic whitespace differences do not invalidate
    an artifact while any *content* mutation does.
    """
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def save_artifact(artifact: ModelArtifact, path: PathLike) -> str:
    """Write ``artifact`` to ``path`` atomically; returns the digest.

    The envelope records the schema version and the body digest; the
    artifact's ``digest`` field is updated in place.
    """
    body = artifact.body()
    digest = artifact_digest(body)
    envelope = {
        "magic": ARTIFACT_MAGIC,
        "schema_version": ARTIFACT_SCHEMA_VERSION,
        "digest": digest,
        "body": body,
    }
    atomic_write_text(path, json.dumps(envelope, indent=1))
    artifact.digest = digest
    rec = recorder()
    if rec.enabled:
        rec.incr("serve.artifacts_written")
    return digest


def load_artifact(path: PathLike) -> ModelArtifact:
    """Read and verify an artifact written by :func:`save_artifact`.

    Verification order: parseable JSON → object envelope → magic → schema
    version → digest over the canonical body → body structure (classifier
    payloads, chain/certificate types).  Every failure raises
    ``ValueError`` naming the file, the same contract :mod:`repro.io`
    enforces for datasets — and the byte-mutation fuzzer enforces here.
    """
    path = Path(path)
    rec = recorder()
    try:
        raw = path.read_text()
    except OSError as exc:
        raise ValueError(f"{path}: cannot read artifact: {exc}") from None
    try:
        envelope = json.loads(raw)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        _count_reject(rec)
        raise ValueError(f"{path}: not parseable as JSON: {exc}") from None
    if not isinstance(envelope, dict):
        _count_reject(rec)
        raise ValueError(
            f"{path}: expected a JSON object, got {type(envelope).__name__}"
        )
    if envelope.get("magic") != ARTIFACT_MAGIC:
        _count_reject(rec)
        raise ValueError(
            f"{path}: not a model artifact (magic={envelope.get('magic')!r})"
        )
    version = envelope.get("schema_version")
    if version != ARTIFACT_SCHEMA_VERSION:
        _count_reject(rec)
        raise ValueError(
            f"{path}: unsupported artifact schema version {version!r} "
            f"(supported: {ARTIFACT_SCHEMA_VERSION})"
        )
    body = envelope.get("body")
    if not isinstance(body, dict):
        _count_reject(rec)
        raise ValueError(f"{path}: artifact body must be an object")
    recorded = envelope.get("digest")
    actual = artifact_digest(body)
    if recorded != actual:
        _count_reject(rec)
        raise ValueError(
            f"{path}: content digest mismatch (recorded {recorded!r}, "
            f"computed {actual!r}) — artifact is corrupt or tampered with"
        )
    try:
        artifact = _artifact_from_body(body)
    except ValueError as exc:
        _count_reject(rec)
        raise ValueError(f"{path}: {exc}") from None
    artifact.digest = actual
    if rec.enabled:
        rec.incr("serve.artifact_loads")
    return artifact


def _count_reject(rec: Any) -> None:
    if rec.enabled:
        rec.incr("serve.artifact_rejects")


def _artifact_from_body(body: Dict[str, Any]) -> ModelArtifact:
    """Decode a verified body; raises bare ``ValueError`` on bad structure."""
    classifier = classifier_from_dict(body.get("classifier"))  # type: ignore[arg-type]
    fallback_doc = body.get("fallback")
    fallback: Optional[AnyClassifier] = None
    if fallback_doc is not None:
        fallback = classifier_from_dict(fallback_doc)
    fit = body.get("fit")
    if fit is None:
        fit = {}
    if not isinstance(fit, dict):
        raise ValueError("'fit' metadata must be an object")
    chains = body.get("chains")
    if chains is not None:
        if not isinstance(chains, list):
            raise ValueError("'chains' must be a list of index lists")
        if not all(isinstance(c, list) for c in chains):
            raise ValueError("'chains' must be a list of index lists")
        try:
            chains = [[int(i) for i in chain] for chain in chains]
        except (TypeError, ValueError) as exc:
            raise ValueError(f"'chains' entries must be integers: {exc!r}") from None
    certificate = body.get("certificate")
    if certificate is not None and not isinstance(certificate, dict):
        raise ValueError("'certificate' must be an object")
    return ModelArtifact(
        classifier=classifier,
        fallback=fallback,
        fit=fit,
        chains=chains,
        certificate=certificate,
    )


def quarantine_artifact(path: PathLike, reason: str = "") -> Optional[Path]:
    """Move a rejected artifact aside instead of deleting or retrying it.

    The file is renamed to ``<name>.quarantined`` (or ``-k`` suffixed when
    earlier quarantines exist), preserving the bad bytes for forensics.
    Suffix selection is atomic: each slot is claimed with an
    ``O_CREAT | O_EXCL`` placeholder before the rename, so concurrent
    quarantines of the same artifact name race to *different* slots and
    never overwrite each other's preserved bytes.  Returns the quarantine
    path, or ``None`` when the artifact vanished in the meantime (another
    process may have quarantined it first).
    """
    path = Path(path)
    if not path.exists():
        return None
    target: Optional[Path] = None
    claimed = False
    for k in range(_MAX_QUARANTINE_SLOTS):
        suffix = ".quarantined" if k == 0 else f".quarantined-{k}"
        candidate = path.with_name(path.name + suffix)
        try:
            fd = os.open(candidate, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        except OSError:
            return None
        os.close(fd)
        target = candidate
        claimed = True
        break
    if target is None:
        # Every slot taken: reuse the last one rather than probing forever.
        target = path.with_name(
            f"{path.name}.quarantined-{_MAX_QUARANTINE_SLOTS - 1}"
        )
    try:
        os.replace(path, target)
    except OSError:
        if claimed:
            try:
                os.unlink(target)
            except OSError:
                pass
        return None
    rec = recorder()
    if rec.enabled:
        rec.incr("serve.quarantined")
        rec.event("serve.quarantine", path=str(path), reason=reason)
    return target


def _majority_fallback(points: PointSet) -> ConstantClassifier:
    """The weighted-majority constant classifier of a labeled fit set."""
    labels = np.asarray(points.labels)
    known = labels >= 0
    if not known.any():
        return ConstantClassifier(0)
    weights = np.asarray(points.weights, dtype=float)[known]
    ones = float(weights[labels[known] == 1].sum())
    return ConstantClassifier(1 if 2.0 * ones >= float(weights.sum()) else 0)


def fit_artifact(
    points: PointSet,
    mode: str = "passive",
    *,
    epsilon: float = 0.5,
    seed: int = 0,
    backend: str = "dinic",
    decomposition: str = "exact",
    include_chains: bool = True,
    include_certificate: bool = True,
) -> ModelArtifact:
    """Fit a classifier on a fully-labeled set and package it for serving.

    ``mode="passive"`` solves Problem 2 exactly (Theorem 4) and records
    the min-cut certificate; ``mode="active"`` runs the Theorem 2
    algorithm against a :class:`~repro.core.oracle.LabelOracle` over
    ``points`` and records the probe bill.  Both embed the trivial
    weighted-majority fallback so a server holding only this artifact can
    always degrade instead of going down.
    """
    points.require_full_labels()
    fallback = _majority_fallback(points)
    fit_meta: Dict[str, Any] = {
        "mode": mode,
        "n": int(points.n),
        "dim": int(points.dim),
    }
    chains: Optional[List[List[int]]] = None
    certificate: Optional[Dict[str, Any]] = None
    classifier: AnyClassifier
    if mode == "passive":
        from ..core.passive import solve_passive

        passive_result = solve_passive(points, backend=backend)
        classifier = passive_result.classifier
        fit_meta["backend"] = passive_result.backend
        if include_certificate:
            certificate = {
                "optimal_error": float(passive_result.optimal_error),
                "flow_value": float(passive_result.flow_value),
                "num_contending": int(passive_result.num_contending),
                "backend": passive_result.backend,
            }
    elif mode == "active":
        from ..core.active import active_classify
        from ..core.oracle import LabelOracle

        oracle = LabelOracle(points)
        active_result = active_classify(
            points.with_hidden_labels(),
            oracle,
            epsilon=epsilon,
            rng=seed,
            decomposition=decomposition,
        )
        classifier = active_result.classifier
        fit_meta.update(
            {
                "epsilon": float(epsilon),
                "seed": int(seed),
                "probes": int(active_result.probing_cost),
                "num_chains": int(active_result.num_chains),
                "sigma_error": float(active_result.sigma_error),
            }
        )
    else:
        raise ValueError(f"unknown fit mode {mode!r}; expected passive or active")
    if include_chains:
        from ..poset import minimum_chain_decomposition

        decomp = minimum_chain_decomposition(points)
        chains = [[int(i) for i in chain] for chain in decomp.chains]
        fit_meta["width"] = int(decomp.num_chains)
    return ModelArtifact(
        classifier=classifier,
        fallback=fallback,
        fit=fit_meta,
        chains=chains,
        certificate=certificate,
    )
