"""Multi-model serve fleet: bulkheads, LRU residency, verified hot-swap.

:class:`ModelFleet` manages N named :class:`~repro.serve.engine.ServeEngine`
instances behind one dispatch surface, built so that *one tenant's corrupt
artifact or load storm can never degrade any other*:

* **Bulkhead isolation** — every model owns its engine, its bounded
  admission queue, its load breaker, and a fleet-level *dispatch* breaker;
  a model whose dispatches keep failing is quarantined (answered with an
  explicit ``unavailable`` result, its engine evicted) without touching
  any sibling.
* **LRU resident-model cache** — at most ``resident_limit`` engines are
  live at once; the least-recently-dispatched model is evicted (its
  journal closed cleanly) and reloads on demand through the existing
  digest-verified path, warm-restarting from its journal when one exists.
* **Verified hot-swap** — :meth:`ModelFleet.poll` watches each deployed
  artifact's fingerprint (mtime + size); a changed file is shadow-loaded
  and digest-verified, a deterministic *canary* query set is replayed
  against the incumbent, and the candidate is promoted atomically
  (:meth:`~repro.serve.engine.ServeEngine.install_verified`) only when
  the answers agree within ``canary_tolerance``.
* **Automatic rollback** — a candidate that fails verification or canary
  replay is *quarantined* and the incumbent re-pinned on disk; a promoted
  candidate whose post-promotion error rate spikes inside the watch
  window is rolled back the same way.  Either way the incumbent never
  stops serving and the bad bytes are preserved for forensics.
* **Health/readiness reporting** — :meth:`ModelFleet.health` reports the
  per-model ladder rung, breaker state, queue depth, residency, and swap
  history; everything flows through :mod:`repro.obs` as
  ``serve.fleet.*`` metrics.

The swap/rollback state machine (see ``docs/serving.md`` for the full
diagram)::

    watching --fingerprint changed--> shadow load
    shadow load --digest fail-------> REJECT   (quarantine + re-pin)
    shadow load --verified----------> canary replay vs incumbent
    canary ------disagree-----------> REJECT   (quarantine + re-pin)
    canary ------agree--------------> PROMOTE  (atomic install, watch armed)
    watch -------error-rate spike---> ROLLBACK (quarantine + re-pin)
    watch -------window survived----> candidate accepted

:func:`~repro.serve.chaos.run_chaos_fleet` certifies the whole surface:
zero silently wrong answers and zero cross-model blast radius under
concurrent corruption, hot-swap, eviction, and kill injection.
"""

from __future__ import annotations

import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from .._util import PathLike
from ..core.classifier import ConstantClassifier, MonotoneClassifier
from ..obs import recorder
from ..resilience.errors import CircuitOpenError
from ..resilience.retry import CircuitBreaker, RetryPolicy
from .artifact import ModelArtifact, load_artifact, quarantine_artifact, save_artifact
from .engine import (
    FAILED,
    QueryResult,
    ServeEngine,
    ServeLoadTransient,
    read_serve_journal,
)

__all__ = ["UNAVAILABLE", "FleetModelHealth", "ModelFleet"]

#: Response status for a dispatch rejected by a bulkhead: the target model
#: is quarantined or its dispatch breaker is open.  Like every non-``ok``
#: status, it is explicit — a bulkhead never silently answers from the
#: wrong model.
UNAVAILABLE = "unavailable"

#: ``QueryResult.source`` for bulkhead-rejected dispatches.
_BULKHEAD = "bulkhead"

#: Model slot states.
_ACTIVE = "active"
_QUARANTINED = "quarantined"

#: Stream tag keeping canary draws independent of every other stream.
_CANARY_TAG = 0xCA9A

#: Swap-history entries retained per model.
_HISTORY_LIMIT = 32


@dataclass
class FleetModelHealth:
    """One model's row in the fleet health/readiness report."""

    name: str
    state: str
    resident: bool
    source: str
    verified: bool
    breaker: str
    queue_depth: int
    answered: int
    shed: int
    quarantines: int
    cold_loads: int
    evictions: int
    promotions: int
    rejected_swaps: int
    rollbacks: int
    watching: bool
    digest: Optional[str]
    last_event: Optional[str]

    def row(self) -> Dict[str, Any]:
        """The health row as a flat dict (CLI table / JSON export)."""
        return {
            "model": self.name,
            "state": self.state,
            "resident": self.resident,
            "source": self.source,
            "verified": self.verified,
            "breaker": self.breaker,
            "queue": self.queue_depth,
            "answered": self.answered,
            "shed": self.shed,
            "swaps": self.promotions,
            "rollbacks": self.rejected_swaps + self.rollbacks,
            "digest": (self.digest or "")[:12],
        }


@dataclass
class _Slot:
    """Fleet-internal per-model state (engine, bulkheads, swap machine)."""

    name: str
    artifact_path: Path
    breaker: CircuitBreaker
    state: str = _ACTIVE
    engine: Optional[ServeEngine] = None
    fingerprint: Optional[Tuple[int, int]] = None
    #: Most recent digest-verified artifact seen serving (promote target
    #: base and reject-restore source).
    last_verified: Optional[ModelArtifact] = None
    #: Incumbent pinned for rollback while the post-promotion watch runs.
    pinned: Optional[ModelArtifact] = None
    watching: bool = False
    watch_requests: int = 0
    watch_bad: int = 0
    quarantine_reason: Optional[str] = None
    history: List[Dict[str, Any]] = field(default_factory=list)
    # Lifetime counters (survive eviction; engines die, slots do not).
    dispatches: int = 0
    unavailable: int = 0
    cold_loads: int = 0
    evictions: int = 0
    promotions: int = 0
    rejected_swaps: int = 0
    rollbacks: int = 0
    answered: int = 0
    shed: int = 0
    engine_quarantines: int = 0

    def record(self, action: str, **detail: Any) -> Dict[str, Any]:
        entry = {"action": action, **detail}
        self.history.append(entry)
        del self.history[:-_HISTORY_LIMIT]
        return entry


def _fingerprint(path: Path) -> Optional[Tuple[int, int]]:
    try:
        stat = path.stat()
    except OSError:
        return None
    return (stat.st_mtime_ns, stat.st_size)


class ModelFleet:
    """N named serve engines behind one bulkheaded dispatch surface.

    Parameters
    ----------
    models:
        Optional initial ``{name: artifact_path}`` mapping; more models
        can be added with :meth:`register`.
    resident_limit:
        Maximum live engines; the least-recently-dispatched model beyond
        it is evicted (journal closed cleanly, reloads on demand).
    queue_limit, default_deadline, retry, fallback, keep_last_good,
    journal_max_bytes, journal_keep, loader, clock:
        Passed through to each model's :class:`ServeEngine`.  Every
        engine gets its own fresh *load* breaker so one model's flapping
        store cannot open a sibling's.
    breaker_threshold, breaker_cooldown:
        Per-model *dispatch* breaker configuration: consecutive failed
        dispatches trip it, and while open dispatches are answered
        ``unavailable`` without touching the engine.
    quarantine_after_trips:
        Dispatch-breaker trips after which the model is quarantined
        outright (``unavailable`` until :meth:`reinstate_model`).
    canary_count, canary_tolerance, canary_seed:
        Hot-swap verification: ``canary_count`` deterministic queries are
        replayed against incumbent and candidate; promotion requires the
        disagreeing fraction to be ``<= canary_tolerance`` (default 0.0:
        bit-for-bit agreement).
    watch_min, watch_window, watch_threshold:
        Post-promotion watch: after ``watch_min`` dispatches, a
        failed+degraded fraction above ``watch_threshold`` rolls the
        promotion back; surviving ``watch_window`` dispatches accepts the
        candidate and releases the pinned incumbent.
    journal_dir:
        Enables per-model crash-safe request journals
        (``<journal_dir>/<name>.journal.jsonl``, rotation per
        ``journal_max_bytes``/``journal_keep``); a model whose journal
        already exists is warm-restarted on (re)load.
    """

    def __init__(
        self,
        models: Optional[Mapping[str, PathLike]] = None,
        *,
        resident_limit: int = 8,
        queue_limit: int = 1024,
        default_deadline: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        fallback: Optional[MonotoneClassifier] = ConstantClassifier(0),
        breaker_threshold: int = 5,
        breaker_cooldown: int = 16,
        quarantine_after_trips: int = 3,
        canary_count: int = 32,
        canary_tolerance: float = 0.0,
        canary_seed: int = 0,
        watch_min: int = 8,
        watch_window: int = 32,
        watch_threshold: float = 0.5,
        journal_dir: Optional[PathLike] = None,
        journal_max_bytes: Optional[int] = None,
        journal_keep: int = 8,
        keep_last_good: bool = True,
        loader: Optional[Callable[[PathLike], ModelArtifact]] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if resident_limit < 1:
            raise ValueError(f"resident_limit must be >= 1; got {resident_limit}")
        if canary_count < 1:
            raise ValueError(f"canary_count must be >= 1; got {canary_count}")
        if not 0.0 <= canary_tolerance <= 1.0:
            raise ValueError(
                f"canary_tolerance must be in [0, 1]; got {canary_tolerance}"
            )
        if watch_min < 1 or watch_window < watch_min:
            raise ValueError(
                "watch_min must be >= 1 and watch_window >= watch_min; "
                f"got {watch_min}/{watch_window}"
            )
        self.resident_limit = int(resident_limit)
        self.queue_limit = int(queue_limit)
        self.default_deadline = default_deadline
        self.retry = retry
        self.fallback = fallback
        self.breaker_threshold = int(breaker_threshold)
        self.breaker_cooldown = int(breaker_cooldown)
        self.quarantine_after_trips = int(quarantine_after_trips)
        self.canary_count = int(canary_count)
        self.canary_tolerance = float(canary_tolerance)
        self.canary_seed = int(canary_seed)
        self.watch_min = int(watch_min)
        self.watch_window = int(watch_window)
        self.watch_threshold = float(watch_threshold)
        self.journal_dir = Path(journal_dir) if journal_dir is not None else None
        self.journal_max_bytes = journal_max_bytes
        self.journal_keep = int(journal_keep)
        self.keep_last_good = keep_last_good
        self._loader = loader or load_artifact
        self._clock = clock or time.monotonic

        self._slots: Dict[str, _Slot] = {}
        self._resident: "OrderedDict[str, _Slot]" = OrderedDict()
        self._rejected = 0
        if models:
            for name, path in models.items():
                self.register(name, path)

    # ------------------------------------------------------------------
    # Registration / construction
    # ------------------------------------------------------------------

    @classmethod
    def from_directory(cls, directory: PathLike, **kwargs: Any) -> "ModelFleet":
        """A fleet over every ``*.json`` artifact in ``directory``.

        Model names are file stems; last-good copies, quarantined files,
        and journals do not match the glob and are ignored.
        """
        directory = Path(directory)
        paths = sorted(p for p in directory.glob("*.json") if p.is_file())
        if not paths:
            raise ValueError(f"{directory}: no model artifacts (*.json) found")
        fleet = cls(**kwargs)
        for path in paths:
            fleet.register(path.stem, path)
        return fleet

    def register(self, name: str, artifact_path: PathLike) -> None:
        """Add a model to the fleet (loading stays lazy)."""
        if not name:
            raise ValueError("model name must be non-empty")
        if name in self._slots:
            raise ValueError(f"model {name!r} already registered")
        path = Path(artifact_path)
        slot = _Slot(
            name=name,
            artifact_path=path,
            breaker=CircuitBreaker(self.breaker_threshold, self.breaker_cooldown),
        )
        slot.fingerprint = _fingerprint(path)
        self._slots[name] = slot

    @property
    def models(self) -> List[str]:
        return sorted(self._slots)

    @property
    def resident(self) -> List[str]:
        """Resident model names, least-recently-dispatched first."""
        return list(self._resident)

    def _slot(self, name: str) -> _Slot:
        try:
            return self._slots[name]
        except KeyError:
            raise ValueError(f"unknown model {name!r}") from None

    # ------------------------------------------------------------------
    # Residency (LRU cache of live engines)
    # ------------------------------------------------------------------

    def _journal_path(self, name: str) -> Optional[Path]:
        if self.journal_dir is None:
            return None
        self.journal_dir.mkdir(parents=True, exist_ok=True)
        return self.journal_dir / f"{name}.journal.jsonl"

    def _engine(self, slot: _Slot) -> ServeEngine:
        """The slot's live engine, cold-loading (and LRU-evicting) as needed."""
        if slot.engine is not None:
            self._resident.move_to_end(slot.name)
            return slot.engine
        while len(self._resident) >= self.resident_limit:
            _, victim = next(iter(self._resident.items()))
            self.evict(victim.name)
        journal = self._journal_path(slot.name)
        kwargs: Dict[str, Any] = dict(
            retry=self.retry,
            breaker=CircuitBreaker(self.breaker_threshold, self.breaker_cooldown),
            fallback=self.fallback,
            queue_limit=self.queue_limit,
            default_deadline=self.default_deadline,
            journal_max_bytes=self.journal_max_bytes,
            journal_keep=self.journal_keep,
            loader=self._loader,
            clock=self._clock,
            keep_last_good=self.keep_last_good,
        )
        if kwargs["retry"] is None:
            del kwargs["retry"]
        if journal is not None and journal.exists() and journal.stat().st_size > 0:
            engine = ServeEngine.warm_restart(
                slot.artifact_path, journal, **kwargs
            )
        else:
            engine = ServeEngine(
                slot.artifact_path, journal_path=journal, **kwargs
            )
        if (
            slot.last_verified is not None
            and _fingerprint(slot.artifact_path) != slot.fingerprint
        ):
            # The deploy file changed while the engine was cold: those
            # bytes have NOT passed the canary gate, so a cold load must
            # not serve them.  Serve the vetted incumbent from memory and
            # leave the new file for :meth:`poll` to verify.
            engine.install_verified(slot.last_verified)
        slot.engine = engine
        slot.cold_loads += 1
        self._resident[slot.name] = slot
        rec = recorder()
        if rec.enabled:
            rec.incr("serve.fleet.cold_loads")
            rec.gauge_max("serve.fleet.resident", len(self._resident))
        return engine

    def evict(self, name: str) -> bool:
        """Evict a model's engine (journal closed cleanly); idempotent."""
        slot = self._slot(name)
        if slot.engine is None:
            return False
        slot.answered += slot.engine.answered
        slot.shed += slot.engine.shed
        slot.engine_quarantines += slot.engine.quarantines
        slot.engine.close()
        slot.engine = None
        slot.evictions += 1
        self._resident.pop(name, None)
        rec = recorder()
        if rec.enabled:
            rec.incr("serve.fleet.evictions")
        return True

    def abandon(self, name: str) -> bool:
        """Chaos hook: the model's worker dies abruptly (no clean close).

        The engine is dropped exactly as a SIGKILL would leave it — journal
        descriptor closed without a shutdown marker, queue lost — and the
        next dispatch warm-restarts from the journal.
        """
        slot = self._slot(name)
        if slot.engine is None:
            return False
        slot.answered += slot.engine.answered
        slot.shed += slot.engine.shed
        slot.engine_quarantines += slot.engine.quarantines
        slot.engine.abandon()
        slot.engine = None
        self._resident.pop(name, None)
        return True

    # ------------------------------------------------------------------
    # Bulkheaded dispatch
    # ------------------------------------------------------------------

    def _unavailable(self, slot: _Slot, reason: str) -> QueryResult:
        self._rejected += 1
        slot.unavailable += 1
        rec = recorder()
        if rec.enabled:
            rec.incr("serve.fleet.unavailable")
            rec.incr(f"serve.fleet.unavailable.{reason}")
        return QueryResult(
            self._rejected - 1, UNAVAILABLE, _BULKHEAD, degraded=True
        )

    def _gate(self, slot: _Slot) -> Optional[QueryResult]:
        """Bulkhead checks before a dispatch touches the engine."""
        if slot.state == _QUARANTINED:
            return self._unavailable(slot, "quarantined")
        try:
            slot.breaker.before_call()
        except CircuitOpenError:
            rec = recorder()
            if rec.enabled:
                rec.incr("serve.fleet.breaker_rejects")
            return self._unavailable(slot, "breaker")
        return None

    def _account(self, slot: _Slot, result: QueryResult) -> None:
        """Feed a dispatch outcome to the breaker and the swap watch."""
        if result.status == FAILED:
            slot.breaker.record_failure()
            if slot.breaker.trips >= self.quarantine_after_trips:
                self.quarantine_model(slot.name, reason="dispatch breaker")
        else:
            slot.breaker.record_success()
        engine = slot.engine
        if (
            engine is not None
            and engine.serving_verified
            and engine.artifact is not None
        ):
            slot.last_verified = engine.artifact
        if slot.watching:
            slot.watch_requests += 1
            if result.status in (FAILED,) or result.degraded:
                slot.watch_bad += 1
            if slot.watch_requests >= self.watch_min:
                rate = slot.watch_bad / slot.watch_requests
                if rate > self.watch_threshold:
                    self._rollback(slot, reason="post-promotion error-rate spike")
                elif slot.watch_requests >= self.watch_window:
                    slot.watching = False
                    slot.pinned = None
                    slot.record("accept", digest=_short(slot.last_verified))

    def dispatch(
        self, name: str, coords: Any, deadline: Optional[float] = None
    ) -> QueryResult:
        """Answer one batched request against the named model.

        Bulkhead order: quarantine state, then the dispatch breaker, then
        the model's own engine (queue, deadline, degradation ladder).  A
        rejected dispatch is an explicit ``unavailable`` result — never an
        answer from a different model.
        """
        slot = self._slot(name)
        slot.dispatches += 1
        rec = recorder()
        if rec.enabled:
            rec.incr("serve.fleet.dispatches")
        rejected = self._gate(slot)
        if rejected is not None:
            return rejected
        engine = self._engine(slot)
        try:
            result = engine.classify_batch(coords, deadline=deadline)
        except Exception:
            # An engine must not take the fleet down; the failure is the
            # model's alone and feeds its breaker.
            slot.breaker.record_failure()
            if slot.breaker.trips >= self.quarantine_after_trips:
                self.quarantine_model(slot.name, reason="dispatch breaker")
            if rec.enabled:
                rec.incr("serve.fleet.dispatch_errors")
            self._rejected += 1
            return QueryResult(
                self._rejected - 1, FAILED, _BULKHEAD, degraded=True
            )
        self._account(slot, result)
        return result

    def classify(
        self, name: str, point: Any, deadline: Optional[float] = None
    ) -> QueryResult:
        """Single-point view of :meth:`dispatch`."""
        return self.dispatch(name, [tuple(point)], deadline=deadline)

    def submit(
        self, name: str, coords: Any, deadline: Optional[float] = None
    ) -> Optional[QueryResult]:
        """Admit a request into the named model's bounded queue.

        Returns ``None`` on admission, an explicit ``overloaded`` (queue
        full) or ``unavailable`` (bulkhead) result otherwise — one model's
        load storm fills only its own queue.
        """
        slot = self._slot(name)
        slot.dispatches += 1
        rejected = self._gate(slot)
        if rejected is not None:
            return rejected
        return self._engine(slot).submit(coords, deadline=deadline)

    def drain(
        self, name: str, max_requests: Optional[int] = None
    ) -> List[QueryResult]:
        """Drain the named model's queue, feeding outcomes to its watch."""
        slot = self._slot(name)
        if slot.engine is None or slot.state == _QUARANTINED:
            return []
        results = slot.engine.drain(max_requests)
        for result in results:
            self._account(slot, result)
        return results

    # ------------------------------------------------------------------
    # Quarantine bulkhead
    # ------------------------------------------------------------------

    def quarantine_model(self, name: str, reason: str = "") -> None:
        """Quarantine a model: evict it and answer ``unavailable`` until
        :meth:`reinstate_model`.  Siblings are untouched."""
        slot = self._slot(name)
        if slot.state == _QUARANTINED:
            return
        self.evict(name)
        slot.state = _QUARANTINED
        slot.quarantine_reason = reason or None
        slot.record("quarantine", reason=reason)
        rec = recorder()
        if rec.enabled:
            rec.incr("serve.fleet.quarantined_models")
            rec.event("serve.fleet.quarantine", model=name, reason=reason)

    def reinstate_model(self, name: str) -> None:
        """Lift a model's quarantine with a fresh dispatch breaker."""
        slot = self._slot(name)
        slot.state = _ACTIVE
        slot.quarantine_reason = None
        slot.breaker = slot.breaker.clone_fresh()
        slot.record("reinstate")

    # ------------------------------------------------------------------
    # Verified hot-swap / rollback
    # ------------------------------------------------------------------

    def _canary_coords(self, slot: _Slot, dim: int) -> np.ndarray:
        seq = np.random.SeedSequence(
            [
                self.canary_seed & 0xFFFFFFFF,
                zlib.crc32(slot.name.encode("utf-8")) & 0xFFFFFFFF,
                _CANARY_TAG,
            ]
        )
        rng = np.random.default_rng(seq)
        return rng.random((self.canary_count, dim)) * 2.0 - 0.5

    def _artifact_dim(self, artifact: ModelArtifact) -> Optional[int]:
        dim = artifact.fit.get("dim")
        if isinstance(dim, int) and dim >= 1:
            return dim
        return None

    def _incumbent(self, slot: _Slot) -> Optional[ModelArtifact]:
        engine = slot.engine
        if engine is not None and engine.serving_verified and engine.artifact:
            return engine.artifact
        return slot.last_verified

    def _repin(self, slot: _Slot, incumbent: Optional[ModelArtifact]) -> None:
        """Quarantine whatever sits at the deploy path, restore the incumbent."""
        quarantined = quarantine_artifact(
            slot.artifact_path, reason=f"fleet swap rejected ({slot.name})"
        )
        if incumbent is not None:
            try:
                save_artifact(incumbent, slot.artifact_path)
            except OSError:
                pass  # a full disk must not fail the reject path
        slot.fingerprint = _fingerprint(slot.artifact_path)
        rec = recorder()
        if rec.enabled and quarantined is not None:
            rec.event(
                "serve.fleet.candidate_quarantined",
                model=slot.name,
                path=str(quarantined),
            )

    def _reject(self, slot: _Slot, reason: str) -> Dict[str, Any]:
        slot.rejected_swaps += 1
        self._repin(slot, self._incumbent(slot))
        rec = recorder()
        if rec.enabled:
            rec.incr("serve.fleet.swap_rejects")
        return slot.record("reject", reason=reason)

    def _rollback(self, slot: _Slot, reason: str) -> Dict[str, Any]:
        """Re-pin the incumbent after a promotion went bad."""
        incumbent = slot.pinned
        slot.watching = False
        slot.pinned = None
        slot.rollbacks += 1
        self._repin(slot, incumbent)
        if incumbent is not None:
            engine = self._engine(slot)
            engine.install_verified(incumbent)
            slot.last_verified = incumbent
        rec = recorder()
        if rec.enabled:
            rec.incr("serve.fleet.swap_rollbacks")
            rec.event("serve.fleet.rollback", model=slot.name, reason=reason)
        return slot.record(
            "rollback", reason=reason, repinned=_short(incumbent)
        )

    def _attempt_swap(
        self, slot: _Slot, fingerprint: Tuple[int, int]
    ) -> Optional[Dict[str, Any]]:
        rec = recorder()
        if rec.enabled:
            rec.incr("serve.fleet.swap_candidates")
        try:
            candidate = self._loader(slot.artifact_path)
        except ValueError as exc:
            return self._reject(slot, reason=f"verification: {exc}")
        except (ServeLoadTransient, OSError):
            # Transient store trouble: leave the fingerprint stale so the
            # next poll retries; nothing to quarantine.
            return None
        incumbent = self._incumbent(slot)
        if incumbent is None or incumbent.digest == candidate.digest:
            # First deploy (nothing to compare against) or a cosmetic
            # rewrite of the same content: install without ceremony.
            engine = self._engine(slot)
            engine.install_verified(candidate)
            slot.last_verified = candidate
            slot.fingerprint = fingerprint
            if incumbent is None:
                return slot.record("install", digest=_short(candidate))
            return None
        dim = self._artifact_dim(incumbent)
        cand_dim = self._artifact_dim(candidate)
        if dim is not None and cand_dim is not None and dim != cand_dim:
            return self._reject(
                slot, reason=f"canary: dim {cand_dim} != incumbent {dim}"
            )
        if dim is None:
            dim = cand_dim
        if dim is None:
            return self._reject(slot, reason="canary: no usable 'dim' metadata")
        coords = self._canary_coords(slot, dim)
        started = time.monotonic()
        try:
            incumbent_labels = incumbent.classifier.classify_matrix(coords)
            candidate_labels = candidate.classifier.classify_matrix(coords)
        except ValueError as exc:
            return self._reject(slot, reason=f"canary: {exc}")
        disagree = float(np.mean(incumbent_labels != candidate_labels))
        if rec.enabled:
            rec.record_time(
                "serve.fleet.canary_seconds", time.monotonic() - started
            )
        if disagree > self.canary_tolerance:
            return self._reject(
                slot,
                reason=(
                    f"canary: {disagree:.2f} disagreement > "
                    f"tolerance {self.canary_tolerance:.2f}"
                ),
            )
        engine = self._engine(slot)
        engine.install_verified(candidate)
        slot.pinned = incumbent
        slot.last_verified = candidate
        slot.watching = True
        slot.watch_requests = 0
        slot.watch_bad = 0
        slot.fingerprint = fingerprint
        slot.promotions += 1
        if rec.enabled:
            rec.incr("serve.fleet.swap_promotions")
            rec.event(
                "serve.fleet.promote",
                model=slot.name,
                digest=_short(candidate),
                disagreement=disagree,
            )
        return slot.record(
            "promote", digest=_short(candidate), disagreement=disagree
        )

    def poll(
        self, names: Optional[List[str]] = None
    ) -> List[Dict[str, Any]]:
        """Check deployed artifacts for new versions; hot-swap on change.

        Returns the swap-machine events this poll produced (``promote``,
        ``reject``, ``install``), one dict per affected model.  Models in
        quarantine are skipped; a vanished file is left to the engine's
        degradation ladder.
        """
        rec = recorder()
        if rec.enabled:
            rec.incr("serve.fleet.polls")
        events: List[Dict[str, Any]] = []
        for name in names if names is not None else self.models:
            slot = self._slot(name)
            if slot.state == _QUARANTINED:
                continue
            fingerprint = _fingerprint(slot.artifact_path)
            if fingerprint is None or fingerprint == slot.fingerprint:
                continue
            event = self._attempt_swap(slot, fingerprint)
            if event is not None:
                events.append({"model": name, **event})
        return events

    # ------------------------------------------------------------------
    # Health / lifecycle
    # ------------------------------------------------------------------

    def health(self) -> List[FleetModelHealth]:
        """Per-model readiness rows, sorted by model name."""
        rows = []
        for name in self.models:
            slot = self._slots[name]
            engine = slot.engine
            rows.append(
                FleetModelHealth(
                    name=name,
                    state=slot.state,
                    resident=engine is not None,
                    source=engine.source if engine is not None else "cold",
                    verified=(
                        engine.serving_verified if engine is not None else False
                    ),
                    breaker=slot.breaker.state,
                    queue_depth=engine.queue_depth if engine is not None else 0,
                    answered=slot.answered
                    + (engine.answered if engine is not None else 0),
                    shed=slot.shed + (engine.shed if engine is not None else 0),
                    quarantines=slot.engine_quarantines
                    + (engine.quarantines if engine is not None else 0),
                    cold_loads=slot.cold_loads,
                    evictions=slot.evictions,
                    promotions=slot.promotions,
                    rejected_swaps=slot.rejected_swaps,
                    rollbacks=slot.rollbacks,
                    watching=slot.watching,
                    digest=engine.model_digest if engine is not None else None,
                    last_event=(
                        slot.history[-1]["action"] if slot.history else None
                    ),
                )
            )
        return rows

    def swap_history(self, name: str) -> List[Dict[str, Any]]:
        """The named model's recent swap-machine events (oldest first)."""
        return list(self._slot(name).history)

    def resumed_requests(self, name: str) -> int:
        """Answered requests recorded in the model's journal (+ segments)."""
        journal = self._journal_path(name)
        if journal is None:
            return 0
        _meta, _seq, answered, _digest = read_serve_journal(journal)
        return answered

    def close(self) -> None:
        """Evict every resident engine (journals closed cleanly)."""
        for name in list(self._resident):
            self.evict(name)

    def __enter__(self) -> "ModelFleet":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ModelFleet(models={len(self._slots)}, "
            f"resident={len(self._resident)}/{self.resident_limit})"
        )


def _short(artifact: Optional[ModelArtifact]) -> Optional[str]:
    if artifact is None or artifact.digest is None:
        return None
    return artifact.digest[:12]
