"""Hardened serving layer: durable model artifacts + fault-tolerant queries.

The paper's regime is fit-once / query-many: Theorems 2-4 pay for a fit
(labels, flow computations) to obtain a classifier whose queries are
cheap.  This package is the query-many half, built to survive a real
deployment:

* :mod:`repro.serve.artifact` — versioned, SHA-256-checksummed model
  artifacts with atomic writes, strict load-time verification, and
  quarantine of corrupt files;
* :mod:`repro.serve.engine` — :class:`ServeEngine`, answering single and
  batched classify queries with deadlines, a bounded load-shedding queue,
  retry + circuit-breaker protected reloads, a degradation ladder that
  keeps answers flowing (explicitly flagged) when the artifact store is
  hostile, and a crash-safe request journal for warm restarts;
* :mod:`repro.serve.chaos` — a deterministic chaos load-test harness
  proving the core invariant: zero silently wrong answers under artifact
  corruption, load delays, and worker kills.

See ``docs/serving.md`` for the artifact format, the degradation ladder,
and the ``serve.*`` metric catalog.
"""

from .artifact import (
    ARTIFACT_MAGIC,
    ARTIFACT_SCHEMA_VERSION,
    ModelArtifact,
    artifact_digest,
    fit_artifact,
    load_artifact,
    quarantine_artifact,
    save_artifact,
)
from .chaos import (
    ChaosServeReport,
    FaultyArtifactLoader,
    ServeFaultSpec,
    run_chaos_serve,
)
from .engine import (
    DEADLINE_EXCEEDED,
    DEGRADED,
    FAILED,
    OK,
    OVERLOADED,
    QueryResult,
    ServeEngine,
    ServeLoadTransient,
    last_good_path,
    read_serve_journal,
)

__all__ = [
    "ARTIFACT_MAGIC",
    "ARTIFACT_SCHEMA_VERSION",
    "ChaosServeReport",
    "DEADLINE_EXCEEDED",
    "DEGRADED",
    "FAILED",
    "FaultyArtifactLoader",
    "ModelArtifact",
    "OK",
    "OVERLOADED",
    "QueryResult",
    "ServeEngine",
    "ServeFaultSpec",
    "ServeLoadTransient",
    "artifact_digest",
    "fit_artifact",
    "last_good_path",
    "load_artifact",
    "quarantine_artifact",
    "read_serve_journal",
    "run_chaos_serve",
    "save_artifact",
]
