"""Hardened serving layer: durable model artifacts + fault-tolerant queries.

The paper's regime is fit-once / query-many: Theorems 2-4 pay for a fit
(labels, flow computations) to obtain a classifier whose queries are
cheap.  This package is the query-many half, built to survive a real
deployment:

* :mod:`repro.serve.artifact` — versioned, SHA-256-checksummed model
  artifacts with atomic writes, strict load-time verification, and
  quarantine of corrupt files;
* :mod:`repro.serve.engine` — :class:`ServeEngine`, answering single and
  batched classify queries with deadlines, a bounded load-shedding queue,
  retry + circuit-breaker protected reloads, a degradation ladder that
  keeps answers flowing (explicitly flagged) when the artifact store is
  hostile, and a crash-safe request journal (with size-capped rotation)
  for warm restarts;
* :mod:`repro.serve.fleet` — :class:`ModelFleet`, N named engines behind
  one dispatch surface with bulkhead isolation, an LRU resident-model
  cache, verified hot-swap with canary replay, and automatic rollback on
  verification failure or post-promotion error-rate spikes;
* :mod:`repro.serve.chaos` — deterministic chaos harnesses proving the
  core invariants: zero silently wrong answers under artifact corruption,
  load delays, and worker kills (:func:`run_chaos_serve`), and zero
  cross-model blast radius fleet-wide (:func:`run_chaos_fleet`).

See ``docs/serving.md`` for the artifact format, the degradation ladder,
the fleet's swap/rollback state machine, and the ``serve.*`` /
``serve.fleet.*`` metric catalogs.
"""

from .artifact import (
    ARTIFACT_MAGIC,
    ARTIFACT_SCHEMA_VERSION,
    ModelArtifact,
    artifact_digest,
    fit_artifact,
    load_artifact,
    quarantine_artifact,
    save_artifact,
)
from .chaos import (
    ChaosFleetReport,
    ChaosServeReport,
    FaultyArtifactLoader,
    FleetFaultSpec,
    ServeFaultSpec,
    run_chaos_fleet,
    run_chaos_serve,
)
from .engine import (
    DEADLINE_EXCEEDED,
    DEGRADED,
    FAILED,
    OK,
    OVERLOADED,
    QueryResult,
    ServeEngine,
    ServeLoadTransient,
    last_good_path,
    read_serve_journal,
    rotated_journal_segments,
)
from .fleet import UNAVAILABLE, FleetModelHealth, ModelFleet

__all__ = [
    "ARTIFACT_MAGIC",
    "ARTIFACT_SCHEMA_VERSION",
    "ChaosFleetReport",
    "ChaosServeReport",
    "DEADLINE_EXCEEDED",
    "DEGRADED",
    "FAILED",
    "FaultyArtifactLoader",
    "FleetFaultSpec",
    "FleetModelHealth",
    "ModelArtifact",
    "ModelFleet",
    "OK",
    "OVERLOADED",
    "QueryResult",
    "ServeEngine",
    "ServeFaultSpec",
    "ServeLoadTransient",
    "UNAVAILABLE",
    "artifact_digest",
    "fit_artifact",
    "last_good_path",
    "load_artifact",
    "quarantine_artifact",
    "read_serve_journal",
    "rotated_journal_segments",
    "run_chaos_fleet",
    "run_chaos_serve",
    "save_artifact",
]
