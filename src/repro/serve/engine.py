"""Fault-tolerant query engine: fit once, classify millions, survive chaos.

:class:`ServeEngine` answers ``classify(point)`` queries from a durable
:mod:`~repro.serve.artifact` under the failure modes of a real deployment:

* **Integrity-verified loads** — artifacts are digest-checked on load;
  corrupt/truncated/hostile bytes are *quarantined aside* (never retried
  forever, never a crash) and the engine walks a degradation ladder:
  primary artifact → last-good copy → the artifact's embedded fallback →
  the trivial fail-closed baseline.  Every non-primary answer is
  explicitly flagged — degraded answers are visible, never silently wrong.
* **Retry + circuit breaker** — transient load failures (a slow volume, an
  injected delay) retry under a PR 4 :class:`~repro.resilience.retry.RetryPolicy`
  with deterministic backoff; repeated failures trip a
  :class:`~repro.resilience.retry.CircuitBreaker` so a flapping artifact
  store cannot stall the query path.
* **Bounded admission queue** — ``submit``/``drain`` buffer at most
  ``queue_limit`` requests; excess load is *shed* with an explicit
  ``overloaded`` result instead of unbounded memory growth.
* **Per-request deadlines** — requests carry a deadline; one that expires
  in the queue is answered ``deadline_exceeded``, never served stale as if
  fresh.
* **Crash-safe warm restart** — every answered request is appended to a
  fsynced JSONL journal; :meth:`ServeEngine.warm_restart` resumes the
  request sequence from the journal and reloads the last-good artifact,
  so a SIGKILL mid-stream loses no answered-request accounting.

Everything is observable through :mod:`repro.obs` (``serve.*`` counters,
``serve.request_seconds`` latency histograms, ``serve.queue_depth``);
see ``docs/serving.md`` for the metric catalog and the operational flags.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from time import sleep as _sleep
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .._util import PathLike, as_float_matrix
from ..core.classifier import ConstantClassifier, MonotoneClassifier
from ..obs import recorder
from ..resilience.errors import CircuitOpenError
from ..resilience.retry import CircuitBreaker, RetryPolicy
from .artifact import ModelArtifact, load_artifact, quarantine_artifact, save_artifact

__all__ = [
    "DEADLINE_EXCEEDED",
    "DEGRADED",
    "FAILED",
    "OK",
    "OVERLOADED",
    "QueryResult",
    "ServeEngine",
    "ServeLoadTransient",
    "last_good_path",
    "read_serve_journal",
    "rotated_journal_segments",
]

#: Response statuses.  ``ok`` answers come from a digest-verified artifact
#: (primary or last-good) and must match that model exactly; everything
#: else is an explicit flag the client can see.
OK = "ok"
DEGRADED = "degraded"
OVERLOADED = "overloaded"
DEADLINE_EXCEEDED = "deadline_exceeded"
FAILED = "failed"

#: Model sources, in degradation-ladder order.
_PRIMARY = "primary"
_LAST_GOOD = "last_good"
_FALLBACK = "fallback"


class ServeLoadTransient(Exception):
    """A retryable artifact-load failure (slow store, injected delay)."""


def last_good_path(artifact_path: PathLike) -> Path:
    """The last-good copy paired with an artifact path."""
    artifact_path = Path(artifact_path)
    return artifact_path.with_name(artifact_path.name + ".last-good")


@dataclass(frozen=True)
class QueryResult:
    """One answered (or shed/expired) request.

    ``labels`` is ``None`` exactly when no classification happened
    (``overloaded`` / ``deadline_exceeded`` / ``failed``).  ``degraded``
    is ``True`` whenever the answer did *not* come from a digest-verified
    artifact — clients must treat such labels as best-effort.
    """

    request_id: int
    status: str
    source: str
    labels: Optional[np.ndarray] = None
    degraded: bool = False
    latency: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status == OK

    @property
    def label(self) -> Optional[int]:
        """The single-point view of ``labels`` (first entry)."""
        if self.labels is None or len(self.labels) == 0:
            return None
        return int(self.labels[0])

    @property
    def n(self) -> int:
        return 0 if self.labels is None else int(len(self.labels))


@dataclass
class _Pending:
    request_id: int
    coords: np.ndarray
    deadline_at: Optional[float]


def rotated_journal_segments(path: PathLike) -> List[Path]:
    """Rotated segments paired with a journal path, oldest first.

    Rotation names segments ``<journal>.1`` (most recently rotated) up
    through ``<journal>.k`` (oldest retained), so the stitching order is
    ``.k, ..., .1`` followed by the live file itself.
    """
    path = Path(path)
    segments: List[Path] = []
    k = 1
    while True:
        segment = path.with_name(f"{path.name}.{k}")
        if not segment.exists():
            break
        segments.append(segment)
        k += 1
    segments.reverse()
    return segments


def _journal_entries(path: Path, tolerate_tail: bool) -> List[Dict[str, Any]]:
    """Parse one journal file into entries, policing corruption.

    A maximal *suffix* of malformed lines is tolerated when
    ``tolerate_tail`` — a crash mid-append (or several crash/append
    cycles in a row) can tear multiple trailing records, and none of
    them ever happened.  A malformed line *followed by a valid one*
    means the journal body itself is corrupt and raises ``ValueError``
    naming the file, as does any malformed line in a rotated segment
    (segments are only ever rotated between complete, fsynced lines).
    """
    lines = path.read_text(errors="replace").splitlines()
    entries: List[Dict[str, Any]] = []
    first_corrupt: Optional[int] = None
    for lineno, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            entry: Any = json.loads(line)
        except json.JSONDecodeError:
            entry = None
        if not isinstance(entry, dict):
            if first_corrupt is None:
                first_corrupt = lineno
            continue
        if first_corrupt is not None:
            raise ValueError(
                f"{path}:{first_corrupt + 1}: corrupt journal line"
            )
        entries.append(entry)
    if first_corrupt is not None and not tolerate_tail:
        raise ValueError(f"{path}:{first_corrupt + 1}: corrupt journal line")
    return entries


def read_serve_journal(
    path: PathLike,
) -> Tuple[Optional[Dict[str, Any]], int, int, Optional[str]]:
    """Load ``(meta, last_seq, answered, last_model_digest)`` from a journal.

    Rotated segments (``<journal>.1..k``, see :class:`_ServeJournal`)
    are stitched in oldest-first order before the live file, so warm
    restart accounting spans rotation boundaries.  A torn tail — one or
    more truncated trailing lines from a crash mid-append — is tolerated
    in the newest file; malformed lines anywhere else raise
    ``ValueError`` naming the file, because they mean the journal itself
    is corrupt rather than merely cut short.
    """
    path = Path(path)
    meta: Optional[Dict[str, Any]] = None
    last_seq = -1
    answered = 0
    last_digest: Optional[str] = None
    files = rotated_journal_segments(path)
    if path.exists():
        files.append(path)
    for index, file in enumerate(files):
        for entry in _journal_entries(file, tolerate_tail=index == len(files) - 1):
            if "meta" in entry:
                meta = entry["meta"]
            elif "model" in entry:
                last_digest = entry.get("model")
            elif "seq" in entry:
                last_seq = max(last_seq, int(entry["seq"]))
                answered += 1
    return meta, last_seq, answered, last_digest


class _ServeJournal:
    """Append-only fsynced request journal (crash-safe accounting).

    With ``max_bytes`` set the journal rotates: when an append would push
    the live file past the cap it is renamed to ``<journal>.1`` (existing
    segments shift to ``.2..k``, the oldest beyond ``keep_segments`` is
    dropped) and a fresh live file starts with its own meta line, so every
    segment is self-describing.  :func:`read_serve_journal` stitches the
    retained segments back together.
    """

    def __init__(
        self,
        path: PathLike,
        meta: Optional[Dict[str, Any]] = None,
        max_bytes: Optional[int] = None,
        keep_segments: int = 8,
    ) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1; got {max_bytes}")
        if keep_segments < 1:
            raise ValueError(f"keep_segments must be >= 1; got {keep_segments}")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.keep_segments = int(keep_segments)
        self._meta = meta
        self.rotations = 0
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._handle = open(self.path, "a", encoding="utf-8")
        self._size = self.path.stat().st_size
        self.appends = 0
        if fresh and meta is not None:
            self.write({"meta": meta})

    def write(self, payload: Dict[str, Any]) -> None:
        line = json.dumps(payload, sort_keys=True) + "\n"
        if (
            self.max_bytes is not None
            and self._size > 0
            and self._size + len(line) > self.max_bytes
        ):
            self._rotate()
        self._handle.write(line)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._size += len(line)
        self.appends += 1
        rec = recorder()
        if rec.enabled:
            rec.incr("serve.journal_appends")

    def _rotate(self) -> None:
        """Shift ``.k-1 -> .k`` (dropping the oldest), live ``-> .1``."""
        self._handle.close()
        for k in range(self.keep_segments - 1, 0, -1):
            src = self.path.with_name(f"{self.path.name}.{k}")
            if src.exists():
                os.replace(src, self.path.with_name(f"{self.path.name}.{k + 1}"))
        os.replace(self.path, self.path.with_name(f"{self.path.name}.1"))
        self._handle = open(self.path, "a", encoding="utf-8")
        self._size = 0
        self.rotations += 1
        rec = recorder()
        if rec.enabled:
            rec.incr("serve.journal_rotations")
        if self._meta is not None:
            self.write({"meta": self._meta})

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


class ServeEngine:
    """Answer classify queries from a durable artifact, surviving faults.

    Parameters
    ----------
    artifact_path:
        The deployed artifact file.  Loading is lazy: the first query (or
        an explicit :meth:`reload`) triggers it.
    retry:
        :class:`RetryPolicy` for *transient* load failures.  Corrupt
        artifacts are never retried — they are quarantined immediately
        (the bytes will not get better) and the ladder walks on.
    breaker:
        Optional :class:`CircuitBreaker` guarding (re)loads; while open,
        reload attempts short-circuit and the engine keeps serving from
        whatever model it has.
    fallback:
        Last-rung classifier when no artifact is loadable.  Defaults to
        the fail-closed all-0 baseline; pass ``None`` to disable (queries
        then fail explicitly instead of degrading).
    queue_limit:
        Bounded admission queue size; further submits are shed with an
        ``overloaded`` result.
    default_deadline:
        Default per-request deadline in seconds (``None`` = no deadline).
    journal_path:
        Enables the crash-safe request journal.
    journal_max_bytes:
        Size cap on the live journal file; exceeding it rotates the file
        to ``<journal>.1..k`` (``None`` disables rotation).
    journal_keep:
        Rotated segments retained before the oldest is dropped.
    loader:
        Artifact loader hook (default :func:`load_artifact`); the chaos
        harness injects deterministic delay faults here.
    clock:
        Monotonic clock hook (default :func:`time.monotonic`); tests use
        a simulated clock to exercise deadlines deterministically.
    keep_last_good:
        Maintain a verified ``<artifact>.last-good`` copy after each
        successful primary load, the second rung of the ladder.
    """

    def __init__(
        self,
        artifact_path: PathLike,
        *,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        fallback: Optional[MonotoneClassifier] = ConstantClassifier(0),
        queue_limit: int = 1024,
        default_deadline: Optional[float] = None,
        journal_path: Optional[PathLike] = None,
        journal_max_bytes: Optional[int] = None,
        journal_keep: int = 8,
        loader: Optional[Callable[[PathLike], ModelArtifact]] = None,
        clock: Optional[Callable[[], float]] = None,
        keep_last_good: bool = True,
    ) -> None:
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1; got {queue_limit}")
        self.artifact_path = Path(artifact_path)
        self.retry = retry or RetryPolicy(max_attempts=3)
        self.breaker = breaker
        self.queue_limit = int(queue_limit)
        self.default_deadline = default_deadline
        self.keep_last_good = keep_last_good
        self._loader = loader or load_artifact
        self._clock = clock or time.monotonic
        self._constructor_fallback = fallback
        self._embedded_fallback: Optional[MonotoneClassifier] = None

        self.artifact: Optional[ModelArtifact] = None
        self._model: Optional[MonotoneClassifier] = None
        self._source = _FALLBACK
        self.model_digest: Optional[str] = None
        self._loaded_once = False

        self._queue: Deque[_Pending] = deque()
        self._next_id = 0
        self.resumed_requests = 0

        self.reloads = 0
        self.reload_failures = 0
        self.quarantines = 0
        self.shed = 0
        self.answered = 0

        self._journal: Optional[_ServeJournal] = None
        if journal_path is not None:
            self._journal = _ServeJournal(
                journal_path,
                meta={
                    "artifact_path": str(self.artifact_path),
                    "schema": 1,
                    "pid": os.getpid(),
                },
                max_bytes=journal_max_bytes,
                keep_segments=journal_keep,
            )

    # ------------------------------------------------------------------
    # Warm restart
    # ------------------------------------------------------------------

    @classmethod
    def warm_restart(
        cls, artifact_path: PathLike, journal_path: PathLike, **kwargs: Any
    ) -> "ServeEngine":
        """Resume after a crash: continue the journal, reload last-good.

        Reads the (possibly mid-append-truncated) journal, restores the
        request sequence number past every answered request, and
        constructs an engine that appends to the same journal.  The first
        query then walks the normal load ladder — if the primary artifact
        was the casualty of the crash, the verified last-good copy (or
        the fallback) serves, flagged accordingly.
        """
        _meta, last_seq, answered, _digest = read_serve_journal(journal_path)
        engine = cls(artifact_path, journal_path=journal_path, **kwargs)
        engine._next_id = last_seq + 1
        engine.resumed_requests = answered
        rec = recorder()
        if rec.enabled:
            rec.incr("serve.warm_restarts")
            rec.event("serve.warm_restart", resumed=answered)
        return engine

    # ------------------------------------------------------------------
    # Model loading / degradation ladder
    # ------------------------------------------------------------------

    def _install(
        self,
        model: MonotoneClassifier,
        source: str,
        artifact: Optional[ModelArtifact] = None,
    ) -> None:
        self._model = model
        self._source = source
        self.artifact = artifact
        self.model_digest = artifact.digest if artifact is not None else None
        if artifact is not None and artifact.fallback is not None:
            self._embedded_fallback = artifact.fallback
        if self._journal is not None:
            self._journal.write({"model": self.model_digest, "source": source})
        rec = recorder()
        if rec.enabled:
            rec.incr("serve.installs")
            rec.incr(f"serve.installs.{source}")

    def _fallback_model(self) -> Optional[MonotoneClassifier]:
        if self._embedded_fallback is not None:
            return self._embedded_fallback
        return self._constructor_fallback

    def _try_load(self, path: Path) -> Optional[ModelArtifact]:
        """One ladder rung: load ``path`` with retries; quarantine corrupt.

        Returns the artifact, or ``None`` when this rung is exhausted
        (corrupt and quarantined, transient failures past the retry
        budget, or breaker open).
        """
        rec = recorder()
        policy = self.retry
        for attempt in range(1, policy.max_attempts + 1):
            if self.breaker is not None:
                try:
                    self.breaker.before_call()
                except CircuitOpenError:
                    if rec.enabled:
                        rec.incr("serve.breaker_short_circuits")
                    return None
            try:
                artifact = self._loader(path)
            except ValueError as exc:
                # Corrupt bytes will not get better: quarantine, no retry.
                if self.breaker is not None:
                    self.breaker.record_failure()
                quarantined = quarantine_artifact(path, reason=str(exc))
                self.quarantines += 1
                if rec.enabled:
                    rec.incr("serve.reload_rejects")
                    rec.event(
                        "serve.artifact_rejected",
                        path=str(path),
                        quarantined=str(quarantined),
                    )
                return None
            except (ServeLoadTransient, OSError) as exc:
                if self.breaker is not None:
                    self.breaker.record_failure()
                if rec.enabled:
                    rec.incr("serve.reload_transients")
                if attempt >= policy.max_attempts:
                    if rec.enabled:
                        rec.event(
                            "serve.load_retries_exhausted",
                            path=str(path),
                            error=repr(exc),
                        )
                    return None
                delay = policy.delay_for(0, attempt)
                if rec.enabled:
                    rec.record_time("serve.reload_backoff_seconds", delay)
                if policy.sleep and delay > 0.0:
                    _sleep(delay)
                continue
            if self.breaker is not None:
                self.breaker.record_success()
            return artifact
        return None

    def reload(self) -> bool:
        """(Re)load the model, walking the degradation ladder.

        Returns ``True`` when a digest-verified artifact (primary or
        last-good) is serving, ``False`` when the engine degraded to a
        fallback classifier.  Never raises on corrupt artifacts — the
        server must stay up.
        """
        self.reloads += 1
        self._loaded_once = True
        rec = recorder()
        if rec.enabled:
            rec.incr("serve.reloads")
        artifact = self._try_load(self.artifact_path)
        if artifact is not None:
            self._install(artifact.classifier, _PRIMARY, artifact)
            if self.keep_last_good:
                # Persist a re-serialized (hence re-verified) copy: the
                # second ladder rung for the next corrupt deploy.
                try:
                    save_artifact(artifact, last_good_path(self.artifact_path))
                except OSError:
                    pass  # a full disk must not fail the serving path
            return True
        if self.keep_last_good:
            lg = last_good_path(self.artifact_path)
            if lg.exists():
                artifact = self._try_load(lg)
                if artifact is not None:
                    self._install(artifact.classifier, _LAST_GOOD, artifact)
                    return True
        self.reload_failures += 1
        if rec.enabled:
            rec.incr("serve.reload_failures")
        fallback = self._fallback_model()
        if fallback is not None:
            self._install(fallback, _FALLBACK, None)
        else:
            self._model = None
            self._source = _FALLBACK
            self.model_digest = None
        return False

    def install_verified(self, artifact: ModelArtifact) -> None:
        """Atomically install an already digest-verified artifact as primary.

        The hot-swap promotion path: a fleet shadow-loads a candidate
        (digest-verified by :func:`~repro.serve.artifact.load_artifact`)
        and canary-checks it against the incumbent, then promotes the
        in-memory object directly — no second disk read, no window where
        a half-written file could be picked up.  The last-good copy is
        refreshed so the ladder's second rung tracks the promotion.
        """
        if artifact.digest is None:
            raise ValueError(
                "install_verified requires a digest-verified artifact "
                "(load it through load_artifact or save it first)"
            )
        self._loaded_once = True
        self._install(artifact.classifier, _PRIMARY, artifact)
        if self.keep_last_good:
            try:
                save_artifact(artifact, last_good_path(self.artifact_path))
            except OSError:
                pass  # a full disk must not fail the swap path

    def _ensure_model(self) -> None:
        if not self._loaded_once:
            self.reload()

    @property
    def source(self) -> str:
        """Where answers currently come from (ladder rung name)."""
        return self._source

    @property
    def serving_verified(self) -> bool:
        """Whether answers come from a digest-verified artifact."""
        return self._model is not None and self._source in (_PRIMARY, _LAST_GOOD)

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------

    def _answer(self, pending: _Pending) -> QueryResult:
        rec = recorder()
        now = self._clock()
        if pending.deadline_at is not None and now > pending.deadline_at:
            if rec.enabled:
                rec.incr("serve.deadline_missed")
            return QueryResult(
                pending.request_id, DEADLINE_EXCEEDED, self._source, degraded=True
            )
        self._ensure_model()
        model = self._model
        if model is None:
            if rec.enabled:
                rec.incr("serve.unanswerable")
            return QueryResult(pending.request_id, FAILED, self._source, degraded=True)
        try:
            labels = model.classify_matrix(pending.coords)
        except ValueError:
            # A malformed query (wrong dimensionality) must not take the
            # server down; it fails explicitly, alone.
            if rec.enabled:
                rec.incr("serve.request_errors")
            return QueryResult(pending.request_id, FAILED, self._source, degraded=True)
        latency = self._clock() - now
        verified = self.serving_verified
        status = OK if verified else DEGRADED
        self.answered += 1
        if rec.enabled:
            rec.incr("serve.requests")
            rec.incr("serve.points", len(labels))
            rec.record_time("serve.request_seconds", latency)
            if not verified:
                rec.incr("serve.degraded_answers")
        result = QueryResult(
            pending.request_id,
            status,
            self._source,
            labels=labels,
            degraded=not verified,
            latency=latency,
        )
        if self._journal is not None:
            self._journal.write(
                {
                    "seq": pending.request_id,
                    "n": int(len(labels)),
                    "status": status,
                    "source": self._source,
                }
            )
        return result

    def classify_batch(
        self, coords: Any, deadline: Optional[float] = None
    ) -> QueryResult:
        """Answer one batched request synchronously (no queue)."""
        matrix = as_float_matrix(coords)
        request_id = self._next_id
        self._next_id += 1
        deadline = self.default_deadline if deadline is None else deadline
        deadline_at = None if deadline is None else self._clock() + deadline
        return self._answer(_Pending(request_id, matrix, deadline_at))

    def classify(
        self, point: Sequence[float], deadline: Optional[float] = None
    ) -> QueryResult:
        """Answer one single-point request synchronously."""
        return self.classify_batch([tuple(point)], deadline=deadline)

    def submit(
        self, coords: Any, deadline: Optional[float] = None
    ) -> Optional[QueryResult]:
        """Admit a request into the bounded queue.

        Returns ``None`` on admission; when the queue is full the request
        is *shed* and an ``overloaded`` :class:`QueryResult` is returned
        immediately — explicit backpressure, never unbounded memory.
        """
        rec = recorder()
        if len(self._queue) >= self.queue_limit:
            self.shed += 1
            request_id = self._next_id
            self._next_id += 1
            if rec.enabled:
                rec.incr("serve.shed")
            return QueryResult(request_id, OVERLOADED, self._source, degraded=True)
        matrix = as_float_matrix(coords)
        request_id = self._next_id
        self._next_id += 1
        deadline = self.default_deadline if deadline is None else deadline
        deadline_at = None if deadline is None else self._clock() + deadline
        self._queue.append(_Pending(request_id, matrix, deadline_at))
        if rec.enabled:
            rec.gauge_max("serve.queue_depth", len(self._queue))
        return None

    def drain(self, max_requests: Optional[int] = None) -> List[QueryResult]:
        """Answer queued requests in admission order; returns the results."""
        results: List[QueryResult] = []
        budget = len(self._queue) if max_requests is None else max_requests
        while self._queue and budget > 0:
            results.append(self._answer(self._queue.popleft()))
            budget -= 1
        return results

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close the journal handle (idempotent)."""
        if self._journal is not None:
            self._journal.close()

    def abandon(self) -> None:
        """Simulate an abrupt worker death (chaos harness hook).

        Drops the in-memory model and queue and closes the journal file
        descriptor without any shutdown marker — exactly what a SIGKILL
        leaves behind.  A subsequent :meth:`warm_restart` must recover.
        """
        self._model = None
        self.artifact = None
        self._loaded_once = False
        self._queue.clear()
        self.close()

    def __enter__(self) -> "ServeEngine":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ServeEngine({str(self.artifact_path)!r}, "
            f"source={self._source!r}, answered={self.answered}, "
            f"shed={self.shed}, reloads={self.reloads})"
        )
