"""Cross-module integration tests: full pipelines, failure injection.

Unit tests pin each module; these exercise realistic end-to-end flows —
generate → persist → solve → audit → serve — and the failure modes a
production user hits (budget exhaustion, hidden labels, corrupt files).
"""

from __future__ import annotations

import pytest

from repro import (
    LabelOracle,
    ProbeBudgetExceeded,
    active_classify,
    audit_active_result,
    audit_passive_result,
    error_count,
    load_classifier,
    save_classifier,
    solve_passive,
    with_exceptions,
)
from repro.cli import main as cli_main
from repro.datasets.synthetic import planted_monotone, width_controlled
from repro.experiments._common import chainwise_optimum
from repro.io import load_csv, save_csv


class TestFullPipelines:
    def test_generate_persist_solve_audit(self, tmp_path):
        """Dataset round-trips through CSV and the audited solve passes."""
        points = planted_monotone(150, 3, noise=0.1, rng=0, weights="random")
        path = tmp_path / "workload.csv"
        save_csv(points, path)
        loaded = load_csv(path)
        result = solve_passive(loaded)
        report = audit_passive_result(loaded, result)
        assert report.ok, report.failures
        # Same optimum as solving the in-memory original.
        assert result.optimal_error == \
            pytest.approx(solve_passive(points).optimal_error)

    def test_train_serialize_serve(self, tmp_path):
        """An actively-trained classifier survives save/load and serves."""
        points = width_controlled(3_000, 4, noise=0.08, rng=1)
        oracle = LabelOracle(points)
        result = active_classify(points.with_hidden_labels(), oracle,
                                 epsilon=0.5, rng=2)
        path = tmp_path / "model.json"
        save_classifier(result.classifier, path)
        served = load_classifier(path)
        assert (served.classify_set(points)
                == result.classifier.classify_set(points)).all()

    def test_train_with_exceptions_serialize_serve(self, tmp_path):
        points = width_controlled(1_500, 3, noise=0.1, rng=3)
        oracle = LabelOracle(points)
        result = active_classify(points.with_hidden_labels(), oracle,
                                 epsilon=0.5, rng=4)
        augmented = with_exceptions(result.classifier, points, oracle)
        path = tmp_path / "model.json"
        save_classifier(augmented, path)
        served = load_classifier(path)
        assert (served.classify_set(points)
                == augmented.classify_set(points)).all()

    def test_cli_generate_then_active_then_audit(self, tmp_path, capsys):
        data = tmp_path / "d.csv"
        assert cli_main(["generate", str(data), "--kind", "width",
                         "--n", "400", "--width", "4", "--seed", "7"]) == 0
        assert cli_main(["active", str(data), "--epsilon", "1.0"]) == 0
        assert cli_main(["audit", str(data)]) == 0

    def test_active_audit_end_to_end(self):
        points = width_controlled(2_500, 5, noise=0.08, rng=5)
        oracle = LabelOracle(points)
        result = active_classify(points.with_hidden_labels(), oracle,
                                 epsilon=0.5, rng=6)
        report = audit_active_result(points, result, oracle,
                                     true_optimum=chainwise_optimum(points))
        assert report.ok, report.failures


class TestFailureInjection:
    def test_budget_exhaustion_raises_cleanly(self):
        """Too small a probe budget aborts with the dedicated exception."""
        points = width_controlled(2_000, 4, noise=0.1, rng=7)
        oracle = LabelOracle(points, budget=10)
        with pytest.raises(ProbeBudgetExceeded):
            active_classify(points.with_hidden_labels(), oracle,
                            epsilon=0.5, rng=8)
        # The oracle still accounts exactly the budgeted probes.
        assert oracle.cost == 10

    def test_sufficient_budget_succeeds(self):
        points = width_controlled(2_000, 2, noise=0.05, rng=9)
        oracle = LabelOracle(points, budget=2_000)
        result = active_classify(points.with_hidden_labels(), oracle,
                                 epsilon=1.0, rng=10)
        assert result.probing_cost <= 2_000

    def test_passive_rejects_hidden_labels_everywhere(self):
        hidden = planted_monotone(50, 2, rng=11).with_hidden_labels()
        with pytest.raises(ValueError):
            solve_passive(hidden)

    def test_corrupt_csv_rejected(self, tmp_path):
        path = tmp_path / "corrupt.csv"
        path.write_text("x0,label,weight\nnot_a_number,0,1.0\n")
        with pytest.raises(ValueError):
            load_csv(path)

    def test_corrupt_model_rejected(self, tmp_path):
        path = tmp_path / "model.json"
        path.write_text('{"kind": "threshold"}')
        with pytest.raises(ValueError):
            load_classifier(path)

    def test_oracle_ground_truth_mismatch_is_detectable(self):
        """Auditing against the wrong oracle flags the label check."""
        points = width_controlled(500, 2, noise=0.1, rng=12)
        oracle = LabelOracle(points)
        result = active_classify(points.with_hidden_labels(), oracle,
                                 epsilon=1.0, rng=13)
        # A different workload's oracle — labels don't match Sigma.
        other = LabelOracle(width_controlled(500, 2, noise=0.4, rng=99))
        other.probe_many(range(500))
        report = audit_active_result(points, result, other)
        assert not report.ok


class TestConsistencyAcrossSolvers:
    """The same instance through every solver family must agree."""

    @pytest.mark.parametrize("seed", range(5))
    def test_passive_agreement_matrix(self, seed):
        points = planted_monotone(120, 2, noise=0.2, rng=seed, weights="random")
        answers = {
            "dinic": solve_passive(points, backend="dinic").optimal_error,
            "push_relabel": solve_passive(points,
                                          backend="push_relabel").optimal_error,
            "edmonds_karp": solve_passive(points,
                                          backend="edmonds_karp").optimal_error,
            "blockwise": solve_passive(points, block_size=16).optimal_error,
            "no_reduction": solve_passive(
                points, use_contending_reduction=False).optimal_error,
        }
        reference = answers["dinic"]
        for name, value in answers.items():
            assert value == pytest.approx(reference), name

    def test_active_exact_on_fully_probed_input(self):
        """When the active algorithm probes everything, it equals passive."""
        points = planted_monotone(80, 3, noise=0.2, rng=20)
        oracle = LabelOracle(points)
        result = active_classify(points.with_hidden_labels(), oracle,
                                 epsilon=0.25, rng=21)
        assert result.probing_cost == points.n
        assert error_count(points, result.classifier) == \
            solve_passive(points).optimal_error
